//! Structural validation of multicast trees.
//!
//! Independent of any particular algorithm, a well-formed scheduled
//! multicast must satisfy the invariants listed on [`MulticastTree`];
//! [`validate`] checks them all and is used by the property-test suites
//! to hold every algorithm to the same contract.

use crate::schedule::PortModel;
use crate::tree::MulticastTree;
use hcube::NodeId;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A violation of the multicast-tree contract.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TreeViolation {
    /// A requested destination never receives the payload.
    Unreached(NodeId),
    /// A node receives the payload more than once.
    DoubleDelivery(NodeId),
    /// A node transmits before it holds the payload.
    SendBeforeReceive {
        /// The offending sender.
        node: NodeId,
        /// The step it transmitted in.
        sent_at: u32,
        /// The step it received in (`None` = never).
        received_at: Option<u32>,
    },
    /// A step number of zero (steps are 1-based).
    ZeroStep(NodeId),
    /// Two sends of one node violate its port model within a step.
    PortOversubscribed {
        /// The offending sender.
        node: NodeId,
        /// The oversubscribed step.
        step: u32,
    },
    /// A node other than the source or a destination handles the payload.
    UnexpectedRelay(NodeId),
    /// A unicast whose source equals its destination.
    SelfSend(NodeId),
}

impl fmt::Display for TreeViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeViolation::Unreached(v) => write!(f, "destination {v} unreached"),
            TreeViolation::DoubleDelivery(v) => write!(f, "node {v} delivered twice"),
            TreeViolation::SendBeforeReceive {
                node,
                sent_at,
                received_at,
            } => write!(
                f,
                "node {node} sent at step {sent_at} but received at {received_at:?}"
            ),
            TreeViolation::ZeroStep(v) => write!(f, "unicast to {v} scheduled at step 0"),
            TreeViolation::PortOversubscribed { node, step } => {
                write!(f, "node {node} oversubscribed its ports in step {step}")
            }
            TreeViolation::UnexpectedRelay(v) => {
                write!(f, "non-destination processor {v} handles the payload")
            }
            TreeViolation::SelfSend(v) => write!(f, "node {v} sends to itself"),
        }
    }
}

/// Options for [`validate`].
#[derive(Clone, Copy, Debug)]
pub struct ValidateOptions {
    /// The port model the schedule must respect.
    pub port_model: PortModel,
    /// Whether non-destination relays are forbidden (true for all
    /// wormhole algorithms; false for the store-and-forward baseline).
    pub forbid_relays: bool,
}

/// Checks every structural invariant of a scheduled multicast tree
/// against the requested destination set. Returns all violations found.
#[must_use]
pub fn validate(
    tree: &MulticastTree,
    dests: &[NodeId],
    options: ValidateOptions,
) -> Vec<TreeViolation> {
    let mut violations = Vec::new();
    let wanted: HashSet<NodeId> = dests.iter().copied().collect();

    // Delivery exactly once; steps positive; no self-sends.
    let mut recv_step: HashMap<NodeId, u32> = HashMap::new();
    recv_step.insert(tree.source, 0);
    for u in &tree.unicasts {
        if u.step == 0 {
            violations.push(TreeViolation::ZeroStep(u.dst));
        }
        if u.src == u.dst {
            violations.push(TreeViolation::SelfSend(u.src));
        }
        if recv_step.insert(u.dst, u.step).is_some() {
            violations.push(TreeViolation::DoubleDelivery(u.dst));
        }
    }
    for &d in &wanted {
        if !recv_step.contains_key(&d) {
            violations.push(TreeViolation::Unreached(d));
        }
    }

    // Causality: each sender holds the payload strictly before sending.
    for u in &tree.unicasts {
        match recv_step.get(&u.src) {
            Some(&r) if r < u.step => {}
            other => violations.push(TreeViolation::SendBeforeReceive {
                node: u.src,
                sent_at: u.step,
                received_at: other.copied(),
            }),
        }
    }

    // Port discipline within each (sender, step).
    let mut port_use: HashMap<(NodeId, u32), Vec<Option<u8>>> = HashMap::new();
    for u in &tree.unicasts {
        let chan = tree.resolution.delta(u.src, u.dst).map(|d| d.0);
        port_use.entry((u.src, u.step)).or_default().push(chan);
    }
    for ((node, step), chans) in port_use {
        let distinct_ok = {
            let mut c: Vec<_> = chans.clone();
            c.sort_unstable();
            c.dedup();
            c.len() == chans.len()
        };
        let violated = match options.port_model {
            PortModel::OnePort => chans.len() > 1,
            PortModel::AllPort => !distinct_ok,
            PortModel::KPort(k) => !distinct_ok || chans.len() > usize::from(k.max(1)),
        };
        if violated {
            violations.push(TreeViolation::PortOversubscribed { node, step });
        }
    }

    // Processor involvement: only source and destinations, unless the
    // algorithm is an explicit relay-using baseline.
    if options.forbid_relays {
        for relay in tree.relays(dests) {
            violations.push(TreeViolation::UnexpectedRelay(relay));
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Unicast;
    use hcube::{Cube, Resolution};

    fn u(src: u32, dst: u32, step: u32, order: u32) -> Unicast {
        Unicast {
            src: NodeId(src),
            dst: NodeId(dst),
            step,
            order,
        }
    }

    fn opts() -> ValidateOptions {
        ValidateOptions {
            port_model: PortModel::AllPort,
            forbid_relays: true,
        }
    }

    fn tree(unicasts: Vec<Unicast>) -> MulticastTree {
        MulticastTree::new(Cube::of(4), Resolution::HighToLow, NodeId(0), unicasts)
    }

    #[test]
    fn valid_tree_passes() {
        let t = tree(vec![
            u(0, 0b1000, 1, 0),
            u(0, 0b0001, 1, 1),
            u(0b1000, 0b1010, 2, 0),
        ]);
        let dests = [NodeId(0b1000), NodeId(0b0001), NodeId(0b1010)];
        assert!(validate(&t, &dests, opts()).is_empty());
    }

    #[test]
    fn detects_unreached_destination() {
        let t = tree(vec![u(0, 0b1000, 1, 0)]);
        let v = validate(&t, &[NodeId(0b1000), NodeId(0b0001)], opts());
        assert!(v.contains(&TreeViolation::Unreached(NodeId(0b0001))));
    }

    #[test]
    fn detects_double_delivery() {
        let t = tree(vec![u(0, 0b1000, 1, 0), u(0, 0b1000, 2, 1)]);
        let v = validate(&t, &[NodeId(0b1000)], opts());
        assert!(v.contains(&TreeViolation::DoubleDelivery(NodeId(0b1000))));
    }

    #[test]
    fn detects_send_before_receive() {
        let t = tree(vec![u(0b1000, 0b1010, 1, 0), u(0, 0b1000, 1, 0)]);
        let v = validate(&t, &[NodeId(0b1000), NodeId(0b1010)], opts());
        assert!(v
            .iter()
            .any(|x| matches!(x, TreeViolation::SendBeforeReceive { node, .. } if *node == NodeId(0b1000))));
    }

    #[test]
    fn detects_all_port_channel_collision() {
        // Two same-step sends from 0 both leaving on channel 3.
        let t = tree(vec![u(0, 0b1000, 1, 0), u(0, 0b1010, 1, 1)]);
        let v = validate(&t, &[NodeId(0b1000), NodeId(0b1010)], opts());
        assert!(v
            .iter()
            .any(|x| matches!(x, TreeViolation::PortOversubscribed { node, step: 1 } if *node == NodeId(0))));
    }

    #[test]
    fn one_port_forbids_any_same_step_pair() {
        let t = tree(vec![u(0, 0b1000, 1, 0), u(0, 0b0001, 1, 1)]);
        let v = validate(
            &t,
            &[NodeId(0b1000), NodeId(0b0001)],
            ValidateOptions {
                port_model: PortModel::OnePort,
                forbid_relays: true,
            },
        );
        assert!(v
            .iter()
            .any(|x| matches!(x, TreeViolation::PortOversubscribed { .. })));
    }

    #[test]
    fn detects_unexpected_relay() {
        let t = tree(vec![u(0, 0b1000, 1, 0), u(0b1000, 0b1010, 2, 0)]);
        let v = validate(&t, &[NodeId(0b1010)], opts());
        assert!(v.contains(&TreeViolation::UnexpectedRelay(NodeId(0b1000))));
        // Allowed when relays are permitted.
        let v = validate(
            &t,
            &[NodeId(0b1010)],
            ValidateOptions {
                port_model: PortModel::AllPort,
                forbid_relays: false,
            },
        );
        assert!(v.is_empty());
    }

    #[test]
    fn detects_zero_step_and_self_send() {
        let t = tree(vec![u(0, 0b1000, 0, 0), u(0b1000, 0b1000, 1, 0)]);
        let v = validate(&t, &[NodeId(0b1000)], opts());
        assert!(v.contains(&TreeViolation::ZeroStep(NodeId(0b1000))));
        assert!(v.contains(&TreeViolation::SelfSend(NodeId(0b1000))));
    }
}
