//! A symbolic data oracle for collective schedules (extension beyond
//! the paper, after the `compute_expected_data` checks of the Fugaku
//! bine-tree simulator).
//!
//! Timing models tell you a schedule is *fast*; they say nothing about
//! whether it moves the *right data*. The oracle replays a schedule
//! symbolically: every node's buffer is `N` segments, and each segment
//! holds a multiset of contributions — a map from contributing node id
//! to how many times its value was combined in. Executing a
//! [`CollectiveSchedule`] op either **copies** the sender's segment
//! snapshot over the receiver's (broadcast data movement) or
//! **combines** it in (reduction data movement, adding contribution
//! counts). Counts, rather than sets, are the point: a schedule that
//! double-combines a contribution still produces the full *set*, but
//! count `2` flags the corruption immediately.
//!
//! Ops execute grouped by step, and every op in a step reads the state
//! as of the end of the *previous* step — a schedule that depends on a
//! payload delivered in its own step is wrong even if the op list
//! happens to be ordered favourably, and the snapshot semantics catch
//! it.
//!
//! Final-state checks (`N` nodes, segment `s` owned by node `s`):
//!
//! * **allgather** — every node's segment `s` is exactly `{s: 1}`;
//! * **reduce-scatter** — node `v`'s segment `v` is exactly
//!   `{0: 1, …, N−1: 1}`;
//! * **allreduce** — *every* segment of *every* node is the full
//!   all-ones map.
//!
//! [`verify_scatter`] and [`verify_gather`] apply the same philosophy
//! to the existing personalized-communication schedules: blocks are
//! tracked per edge and every destination must keep exactly its own
//! block (scatter) or the root must collect each source's block exactly
//! once (gather).

use crate::collectives::{CollectiveKind, CollectiveSchedule, Segments, Transfer};
use crate::collectives::{GatherSchedule, ScatterSchedule};
use hcube::NodeId;
use std::collections::BTreeMap;

/// One buffer segment: contributing node id → number of times its value
/// has been combined in. A correct final segment has every count at 1.
type Segment = BTreeMap<u32, u64>;

/// Replays `sched` symbolically and checks that every node ends with
/// exactly the blocks its [`CollectiveKind`] promises.
///
/// # Errors
/// A human-readable description of the first violation: a non-causal
/// dependency, an out-of-range node or segment, a missing contribution,
/// or a double-combined one.
pub fn verify_collective(sched: &CollectiveSchedule) -> Result<(), String> {
    let n = sched.nodes as usize;
    // Initial state: node v owns segment v. For reduce-scatter and
    // allreduce every node holds a full vector of its own contribution;
    // for allgather only its own segment is populated.
    let mut state: Vec<Vec<Segment>> = (0..n)
        .map(|v| {
            (0..n)
                .map(|s| {
                    let own = match sched.kind {
                        CollectiveKind::Allgather => s == v,
                        CollectiveKind::ReduceScatter | CollectiveKind::Allreduce => true,
                    };
                    if own {
                        BTreeMap::from([(v as u32, 1u64)])
                    } else {
                        BTreeMap::new()
                    }
                })
                .collect()
        })
        .collect();

    // Sanity of the DAG annotations before touching any data.
    for (i, op) in sched.ops.iter().enumerate() {
        if op.src.0 as usize >= n || op.dst.0 as usize >= n {
            return Err(format!("op {i}: node outside the {n}-node machine"));
        }
        if let Segments::One(s) = op.segments {
            if s as usize >= n {
                return Err(format!(
                    "op {i}: segment {s} outside the {n}-segment buffer"
                ));
            }
        }
        for &d in &op.deps {
            if d >= sched.ops.len() {
                return Err(format!("op {i}: dependency {d} out of range"));
            }
            if sched.ops[d].step >= op.step {
                return Err(format!(
                    "op {i} (step {}) depends on op {d} (step {}): not causal",
                    op.step, sched.ops[d].step
                ));
            }
            if sched.ops[d].dst != op.src {
                return Err(format!(
                    "op {i}: dependency {d} delivers to {} but the op sends from {}",
                    sched.ops[d].dst, op.src
                ));
            }
        }
    }

    // Execute grouped by step; payloads snapshot the state as of the
    // end of the previous step.
    let mut by_step: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, op) in sched.ops.iter().enumerate() {
        if op.step == 0 || op.step > sched.steps {
            return Err(format!(
                "op {i}: step {} outside 1..={}",
                op.step, sched.steps
            ));
        }
        by_step.entry(op.step).or_default().push(i);
    }
    for ops in by_step.values() {
        let payloads: Vec<(usize, Vec<(usize, Segment)>)> = ops
            .iter()
            .map(|&i| {
                let op = &sched.ops[i];
                let src = op.src.0 as usize;
                let segs: Vec<(usize, Segment)> = match op.segments {
                    Segments::One(s) => vec![(s as usize, state[src][s as usize].clone())],
                    Segments::All => state[src].iter().cloned().enumerate().collect(),
                };
                (i, segs)
            })
            .collect();
        for (i, segs) in payloads {
            let op = &sched.ops[i];
            let dst = op.dst.0 as usize;
            for (s, payload) in segs {
                match op.transfer {
                    Transfer::Copy => state[dst][s] = payload,
                    Transfer::Combine => {
                        for (contrib, count) in payload {
                            *state[dst][s].entry(contrib).or_insert(0) += count;
                        }
                    }
                }
            }
        }
    }

    // No contribution may ever be combined twice, whatever the kind.
    for (v, segs) in state.iter().enumerate() {
        for (s, seg) in segs.iter().enumerate() {
            if let Some((c, count)) = seg.iter().find(|&(_, &count)| count > 1) {
                return Err(format!(
                    "node {v} segment {s}: contribution of {c} combined {count} times"
                ));
            }
        }
    }

    let all_ones: Segment = (0..n as u32).map(|c| (c, 1)).collect();
    match sched.kind {
        CollectiveKind::Allgather => {
            for (v, segs) in state.iter().enumerate() {
                for (s, seg) in segs.iter().enumerate() {
                    let want = BTreeMap::from([(s as u32, 1)]);
                    if *seg != want {
                        return Err(format!(
                            "allgather: node {v} segment {s} ended as {seg:?}, want {want:?}"
                        ));
                    }
                }
            }
        }
        CollectiveKind::ReduceScatter => {
            for (v, segs) in state.iter().enumerate() {
                if segs[v] != all_ones {
                    return Err(format!(
                        "reduce-scatter: node {v} segment {v} ended as {:?}, want all {n} \
                         contributions once",
                        segs[v]
                    ));
                }
            }
        }
        CollectiveKind::Allreduce => {
            for (v, segs) in state.iter().enumerate() {
                for (s, seg) in segs.iter().enumerate() {
                    if *seg != all_ones {
                        return Err(format!(
                            "allreduce: node {v} segment {s} ended as {seg:?}, want all {n} \
                             contributions once"
                        ));
                    }
                }
            }
        }
    }
    Ok(())
}

/// Checks a [`ScatterSchedule`] at the data level: tracking the set of
/// destination blocks each edge carries, every destination must keep
/// exactly its own block, every relay must keep none, and the recorded
/// `bytes_per_edge` must equal `block_bytes × |subtree|`.
///
/// # Errors
/// A human-readable description of the first violation.
pub fn verify_scatter(
    sched: &ScatterSchedule,
    dests: &[NodeId],
    block_bytes: u32,
) -> Result<(), String> {
    let tree = &sched.tree;
    let is_dest: std::collections::HashSet<NodeId> = dests.iter().copied().collect();
    // Blocks carried by edge i = destination blocks in the subtree under
    // its receiver; built leaf-to-root like `subtree_sizes`.
    let mut inbound: BTreeMap<NodeId, usize> = BTreeMap::new();
    for (i, u) in tree.unicasts.iter().enumerate() {
        if inbound.insert(u.dst, i).is_some() {
            return Err(format!("node {} receives twice", u.dst));
        }
    }
    let mut blocks: Vec<Vec<NodeId>> = tree
        .unicasts
        .iter()
        .map(|u| {
            if is_dest.contains(&u.dst) {
                vec![u.dst]
            } else {
                Vec::new()
            }
        })
        .collect();
    let sizes = tree.subtree_sizes();
    for i in (0..tree.unicasts.len()).rev() {
        if let Some(&p) = inbound.get(&tree.unicasts[i].src) {
            let child = blocks[i].clone();
            blocks[p].extend(child);
        }
    }
    for (i, u) in tree.unicasts.iter().enumerate() {
        // Byte accounting: the schedule prices a block per subtree node
        // (relays included), exactly the post-order sizes.
        let want = u64::from(block_bytes) * sizes[i] as u64;
        if sched.bytes_per_edge[i] != want {
            return Err(format!(
                "edge {u:?}: carries {} bytes, want {want}",
                sched.bytes_per_edge[i]
            ));
        }
        // Data flow: what v keeps is what arrived minus what it passed
        // on; a destination keeps its own block, a relay keeps nothing.
        let mut kept = blocks[i].clone();
        for (j, w) in tree.unicasts.iter().enumerate() {
            if w.src == u.dst {
                kept.retain(|b| !blocks[j].contains(b));
            }
        }
        let want_kept: Vec<NodeId> = if is_dest.contains(&u.dst) {
            vec![u.dst]
        } else {
            Vec::new()
        };
        if kept != want_kept {
            return Err(format!("node {} keeps {kept:?}, want {want_kept:?}", u.dst));
        }
    }
    // Every destination must actually be reached.
    for &d in dests {
        if d != tree.source && !inbound.contains_key(&d) {
            return Err(format!("destination {d} never receives its block"));
        }
    }
    Ok(())
}

/// Checks a [`GatherSchedule`] at the data level: accumulating each
/// source's block along the mirrored tree, the root must end up with
/// every source's block exactly once.
///
/// # Errors
/// A human-readable description of the first violation.
pub fn verify_gather(
    sched: &GatherSchedule,
    sources: &[NodeId],
    block_bytes: u32,
) -> Result<(), String> {
    let mut buffers: BTreeMap<NodeId, Segment> = BTreeMap::new();
    for &s in sources {
        buffers.entry(s).or_default().insert(s.0, 1);
    }
    // The schedule is step-sorted and causal, so a linear replay sees
    // every contribution before it is forwarded.
    for (u, &bytes) in sched.unicasts.iter().zip(&sched.bytes_per_edge) {
        if bytes == 0 || bytes % u64::from(block_bytes) != 0 {
            return Err(format!("edge {u:?}: {bytes} bytes is not a block multiple"));
        }
        let payload = buffers.get(&u.src).cloned().unwrap_or_default();
        let dst = buffers.entry(u.dst).or_default();
        for (contrib, count) in payload {
            *dst.entry(contrib).or_insert(0) += count;
        }
    }
    let want: Segment = sources.iter().map(|s| (s.0, 1)).collect();
    let mut got = buffers.remove(&sched.root).unwrap_or_default();
    // The root's own block (if it is a source) never crosses an edge.
    got.retain(|_, &mut c| c > 0);
    if got != want {
        return Err(format!(
            "root {} collected {got:?}, want every source exactly once",
            sched.root
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collectives::{
        allgather, allgather_separate, allreduce, allreduce_separate, reduce_scatter,
        reduce_scatter_separate, scatter, CollectiveOp, TreeFamily,
    };
    use crate::{Algorithm, PortModel};
    use hcube::{Cube, Resolution, Torus};

    #[test]
    fn every_family_passes_on_the_cube() {
        let cube = Cube::of(4);
        for family in TreeFamily::SWEEP {
            for resolution in [Resolution::HighToLow, Resolution::LowToHigh] {
                let ag = allgather(family, cube, resolution, PortModel::AllPort, 64, None).unwrap();
                verify_collective(&ag).unwrap_or_else(|e| panic!("{} ag: {e}", family.name()));
                let rs =
                    reduce_scatter(family, cube, resolution, PortModel::AllPort, 64, None).unwrap();
                verify_collective(&rs).unwrap_or_else(|e| panic!("{} rs: {e}", family.name()));
                let ar = allreduce(
                    family,
                    cube,
                    resolution,
                    PortModel::AllPort,
                    hcube::NodeId(3),
                    64,
                    None,
                )
                .unwrap();
                verify_collective(&ar).unwrap_or_else(|e| panic!("{} ar: {e}", family.name()));
            }
        }
    }

    #[test]
    fn separate_addressing_passes_on_the_torus() {
        let torus = Torus::of(4, 2);
        verify_collective(&allgather_separate(&torus, 64)).unwrap();
        verify_collective(&reduce_scatter_separate(&torus, 64)).unwrap();
        verify_collective(&allreduce_separate(&torus, hcube::NodeId(5), 64)).unwrap();
    }

    #[test]
    fn double_combining_is_caught() {
        let torus = Torus::of(2, 2);
        let mut rs = reduce_scatter_separate(&torus, 64);
        // Duplicate one combining op: the set of contributions is still
        // complete, but the count check must flag it.
        let dup = rs.ops[0].clone();
        rs.ops.push(dup);
        let err = verify_collective(&rs).unwrap_err();
        assert!(err.contains("combined 2 times"), "{err}");
    }

    #[test]
    fn missing_delivery_is_caught() {
        let torus = Torus::of(2, 2);
        let mut ag = allgather_separate(&torus, 64);
        ag.ops.pop();
        let err = verify_collective(&ag).unwrap_err();
        assert!(err.contains("allgather"), "{err}");
    }

    #[test]
    fn same_step_forwarding_is_caught() {
        // A chain 0→1→2 squeezed into one step: node 1 forwards a block
        // it has not yet received under snapshot semantics.
        let torus = Torus::of(3, 1);
        let mut ag = allgather_separate(&torus, 64);
        ag.ops.retain(|op| {
            !(op.segments == crate::collectives::Segments::One(0) && op.dst == hcube::NodeId(2))
        });
        ag.ops.push(CollectiveOp {
            src: hcube::NodeId(1),
            dst: hcube::NodeId(2),
            step: 1,
            segments: crate::collectives::Segments::One(0),
            transfer: crate::collectives::Transfer::Copy,
            deps: Vec::new(),
            bytes: 64,
        });
        let err = verify_collective(&ag).unwrap_err();
        assert!(err.contains("segment 0"), "{err}");
    }

    #[test]
    fn non_causal_dependency_is_caught() {
        let torus = Torus::of(2, 2);
        let mut ar = allreduce_separate(&torus, hcube::NodeId(0), 64);
        // Point a gather-phase op at a broadcast-phase (later-step) op.
        let last = ar.ops.len() - 1;
        ar.ops[0].deps = vec![last];
        let err = verify_collective(&ar).unwrap_err();
        assert!(err.contains("not causal"), "{err}");
    }

    #[test]
    fn existing_scatter_and_gather_pass_the_oracle() {
        let dests: Vec<hcube::NodeId> = (1..32).map(hcube::NodeId).collect();
        for algo in Algorithm::ALL {
            let s = scatter(
                algo,
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::AllPort,
                hcube::NodeId(0),
                &dests,
                128,
            )
            .unwrap();
            verify_scatter(&s, &dests, 128).unwrap_or_else(|e| panic!("{algo}: {e}"));
            let g = crate::collectives::gather(
                algo,
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::AllPort,
                hcube::NodeId(0),
                &dests,
                128,
            )
            .unwrap();
            verify_gather(&g, &dests, 128).unwrap_or_else(|e| panic!("{algo}: {e}"));
        }
    }

    #[test]
    fn corrupted_scatter_bytes_are_caught() {
        let dests: Vec<hcube::NodeId> = (1..8).map(hcube::NodeId).collect();
        let mut s = scatter(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            hcube::NodeId(0),
            &dests,
            128,
        )
        .unwrap();
        s.bytes_per_edge[0] += 1;
        assert!(verify_scatter(&s, &dests, 128).is_err());
    }
}
