//! Fault-tolerant repair of multicast trees.
//!
//! The paper's algorithms assume a healthy cube: every E-cube channel of
//! every scheduled unicast is available. This module relaxes that
//! assumption. Given a structural fault set ([`NetworkFaults`]: dead
//! directed links and dead nodes — the static subset of `wormsim`'s
//! `FaultPlan`), [`repair`] transforms a [`MulticastTree`] into one that
//! still delivers to every *live* destination whenever the fault-free
//! portion of the cube remains connected:
//!
//! 1. **Prune** — destinations on dead nodes are dropped; unicasts whose
//!    E-cube path crosses a dead channel (or whose sender never received
//!    the payload) are discarded, in step order, so breakage cascades
//!    exactly as it would at run time.
//! 2. **Regraft** — the orphaned destinations are grouped under their
//!    nearest still-delivered ancestor and re-split from that ancestor
//!    with the same W-sort local splitting rule the distributed protocol
//!    uses (Figure 4), reusing [`crate::algorithms::weighted_sort`] and
//!    the protocol's `local_split`.
//! 3. **Reroute** — any regrafted unicast whose E-cube path is itself
//!    dirty falls back to a breadth-first search over *live* channels
//!    from the entire delivered set, materialized as a chain of one-hop
//!    unicasts through relay nodes (valid under
//!    [`crate::verify::ValidateOptions`] with `forbid_relays: false`).
//!
//! Steps are reassigned to preserve causality and all-port discipline
//! (no two sends of one node leave on the same dimension in one step).
//! Destinations that remain unreachable — the faults disconnect them
//! from the source — are reported, not silently dropped.

use crate::algorithms::Algorithm;
use crate::protocol::local_split;
use crate::tree::{MulticastTree, Unicast};
use hcube::chain::{from_relative, relative_chain};
use hcube::{Cube, Dim, NodeId, Resolution};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A structural (time-independent) fault set: dead directed channels and
/// dead nodes.
///
/// This mirrors the static portion of `wormsim`'s `FaultPlan` without the
/// temporal faults (stalls, deadlines), so tree repair can live in
/// `hypercast` without a dependency cycle; `wormsim` provides a
/// `From<&FaultPlan>` bridge.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetworkFaults {
    /// Dead directed channels, keyed `(from, dim)`.
    dead_links: BTreeSet<(u32, u8)>,
    /// Dead nodes (all incident channels dead, node cannot send/receive).
    dead_nodes: BTreeSet<u32>,
}

impl NetworkFaults {
    /// An empty (healthy-network) fault set.
    #[must_use]
    pub fn new() -> NetworkFaults {
        NetworkFaults::default()
    }

    /// Whether no faults are present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dead_links.is_empty() && self.dead_nodes.is_empty()
    }

    /// Kills the single directed channel leaving `from` in dimension
    /// `dim`.
    pub fn fail_link(&mut self, from: NodeId, dim: Dim) -> &mut Self {
        self.dead_links.insert((from.0, dim.0));
        self
    }

    /// Kills both directions of the physical link between `a` and
    /// `a ⊕ 2^dim`.
    pub fn fail_duplex(&mut self, a: NodeId, dim: Dim) -> &mut Self {
        self.fail_link(a, dim);
        self.fail_link(NodeId(a.0 ^ (1u32 << dim.0)), dim);
        self
    }

    /// Kills a node: it can neither send, receive, nor forward.
    pub fn fail_node(&mut self, v: NodeId) -> &mut Self {
        self.dead_nodes.insert(v.0);
        self
    }

    /// Whether node `v` is dead.
    #[must_use]
    pub fn node_dead(&self, v: NodeId) -> bool {
        self.dead_nodes.contains(&v.0)
    }

    /// Whether the directed channel leaving `from` in dimension `dim` is
    /// unusable — the link itself is dead or either endpoint node is.
    #[must_use]
    pub fn channel_dead(&self, from: NodeId, dim: Dim) -> bool {
        self.dead_links.contains(&(from.0, dim.0))
            || self.node_dead(from)
            || self.node_dead(NodeId(from.0 ^ (1u32 << dim.0)))
    }

    /// Number of individually killed directed links.
    #[must_use]
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.len()
    }

    /// Number of dead nodes.
    #[must_use]
    pub fn dead_node_count(&self) -> usize {
        self.dead_nodes.len()
    }

    /// Iterates the explicitly killed directed links.
    pub fn dead_links(&self) -> impl Iterator<Item = (NodeId, Dim)> + '_ {
        self.dead_links.iter().map(|&(v, d)| (NodeId(v), Dim(d)))
    }

    /// Iterates the dead nodes.
    pub fn dead_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dead_nodes.iter().map(|&v| NodeId(v))
    }
}

/// Whether the E-cube path `src → dst` under `resolution` avoids every
/// dead channel and dead node.
#[must_use]
pub fn path_is_clean(
    resolution: Resolution,
    src: NodeId,
    dst: NodeId,
    faults: &NetworkFaults,
) -> bool {
    if faults.node_dead(src) || faults.node_dead(dst) {
        return false;
    }
    hcube::Path::new(resolution, src, dst)
        .arcs()
        .all(|a| !faults.channel_dead(a.from, a.dim))
}

/// The unicasts of `tree` that are *directly* broken by `faults`: their
/// E-cube path crosses a dead channel or an endpoint node is dead.
///
/// Cascaded breakage (a healthy unicast whose sender never receives the
/// payload) is not included; [`repair`] accounts for it.
#[must_use]
pub fn broken_unicasts(tree: &MulticastTree, faults: &NetworkFaults) -> Vec<Unicast> {
    tree.unicasts
        .iter()
        .copied()
        .filter(|u| !path_is_clean(tree.resolution, u.src, u.dst, faults))
        .collect()
}

/// Whether `tree` survives `faults` untouched: the source is alive, no
/// receiver is dead, and no scheduled unicast crosses a dead channel.
#[must_use]
pub fn tree_is_clean(tree: &MulticastTree, faults: &NetworkFaults) -> bool {
    !faults.node_dead(tree.source)
        && tree
            .unicasts
            .iter()
            .all(|u| path_is_clean(tree.resolution, u.src, u.dst, faults))
}

/// The result of [`repair`].
#[derive(Clone, Debug)]
pub struct RepairOutcome {
    /// The repaired tree. Delivers to every original destination except
    /// those in `dropped` and `unreachable`.
    pub tree: MulticastTree,
    /// Destinations dropped because their node is dead.
    pub dropped: Vec<NodeId>,
    /// Live destinations the faults disconnect from the source — no live
    /// route exists at all.
    pub unreachable: Vec<NodeId>,
    /// Live destinations whose delivery had to change (regrafted or
    /// relay-routed).
    pub rerouted: Vec<NodeId>,
    /// Steps of the repaired tree beyond the original (`0` when the
    /// repair fits in the original schedule length).
    pub extra_steps: u32,
}

impl RepairOutcome {
    /// Destinations the repaired tree actually delivers to.
    #[must_use]
    pub fn delivered(&self) -> Vec<NodeId> {
        self.tree.receivers()
    }

    /// `delivered / (delivered + unreachable)` among live destinations;
    /// `1.0` when there is nothing left to deliver to.
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        let delivered = self.tree.unicasts.len();
        let live = delivered + self.unreachable.len();
        if live == 0 {
            1.0
        } else {
            delivered as f64 / live as f64
        }
    }
}

/// Repairs `tree` against `faults`: prunes broken subtrees, regrafts
/// orphaned destinations under their nearest delivered ancestor with the
/// W-sort splitting rule, and falls back to relay routes over live
/// channels where E-cube paths are unusable.
///
/// Deterministic: equal inputs produce equal repaired trees.
///
/// If the source itself is dead every live destination is unreachable
/// and the returned tree is empty.
#[must_use]
pub fn repair(tree: &MulticastTree, faults: &NetworkFaults) -> RepairOutcome {
    let res = tree.resolution;
    let cube = tree.cube;
    let n = cube.dimension();

    // Destination bookkeeping: receivers of the original tree, in
    // receipt order (deterministic).
    let receivers = tree.receivers();
    let dropped: Vec<NodeId> = receivers
        .iter()
        .copied()
        .filter(|&v| faults.node_dead(v))
        .collect();

    if faults.node_dead(tree.source) {
        let live: Vec<NodeId> = receivers
            .iter()
            .copied()
            .filter(|&v| !faults.node_dead(v))
            .collect();
        return RepairOutcome {
            tree: MulticastTree::new(cube, res, tree.source, Vec::new()),
            dropped,
            unreachable: live,
            rerouted: Vec::new(),
            extra_steps: 0,
        };
    }

    // ------------------------------------------------------------------
    // Phase 1: prune. Walk the schedule in step order; a unicast survives
    // iff its sender has (still) received the payload and its E-cube path
    // is clean. Everything else cascades into the orphan set.
    // ------------------------------------------------------------------
    let mut delivered: BTreeSet<NodeId> = BTreeSet::new();
    delivered.insert(tree.source);
    let mut kept: Vec<Unicast> = Vec::new();
    for u in &tree.unicasts {
        if faults.node_dead(u.dst) {
            continue;
        }
        if delivered.contains(&u.src) && path_is_clean(res, u.src, u.dst, faults) {
            kept.push(*u);
            delivered.insert(u.dst);
        }
    }
    let orphans: Vec<NodeId> = receivers
        .iter()
        .copied()
        .filter(|v| !faults.node_dead(*v) && !delivered.contains(v))
        .collect();

    // Step/port bookkeeping seeded from the surviving schedule.
    let mut recv_step: HashMap<NodeId, u32> = HashMap::new();
    recv_step.insert(tree.source, 0);
    let mut used: HashSet<(NodeId, u32, u8)> = HashSet::new();
    let mut order_next: HashMap<NodeId, u32> = HashMap::new();
    for u in &kept {
        recv_step.insert(u.dst, u.step);
        if let Some(d) = res.delta(u.src, u.dst) {
            used.insert((u.src, u.step, d.0));
        }
        let e = order_next.entry(u.src).or_insert(0);
        *e = (*e).max(u.order + 1);
    }

    // ------------------------------------------------------------------
    // Phase 2: regraft. Group orphans by their nearest delivered ancestor
    // (walking the original parent chain), then re-split each group from
    // that ancestor with the W-sort local rule — the same computation the
    // distributed protocol would perform on the replacement sub-chain.
    // ------------------------------------------------------------------
    let parent = tree.parent_map();
    let mut groups: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
    for &d in &orphans {
        let mut a = match parent.get(&d) {
            Some(p) => p.src,
            None => tree.source,
        };
        while !delivered.contains(&a) {
            a = match parent.get(&a) {
                Some(p) => p.src,
                None => tree.source,
            };
        }
        groups.entry(a).or_default().push(d);
    }

    // Candidate regraft edges `(src, dst)` in dependency (depth) order.
    let mut candidates: Vec<(NodeId, NodeId, u32)> = Vec::new();
    for (&anchor, members) in &groups {
        match relative_chain(res, n, anchor, members) {
            Ok(mut chain) => {
                crate::algorithms::weighted_sort::weighted_sort(&mut chain, n);
                let mut queue: VecDeque<(Vec<NodeId>, u32, u8)> = VecDeque::new();
                queue.push_back((chain, 0, n));
                while let Some((seg, depth, ns)) = queue.pop_front() {
                    for (child, child_ns) in local_split(Algorithm::WSort, &seg, ns) {
                        let from = from_relative(res, n, anchor, seg[0]);
                        let to = from_relative(res, n, anchor, child[0]);
                        candidates.push((from, to, depth + 1));
                        queue.push_back((child, depth + 1, child_ns));
                    }
                }
            }
            // Cannot happen for a valid tree (members are distinct, live,
            // and differ from the anchor) — but degrade gracefully: route
            // each member individually from the delivered set.
            Err(_) => {
                for &d in members {
                    candidates.push((anchor, d, 1));
                }
            }
        }
    }
    candidates.sort_by_key(|&(_, _, depth)| depth); // stable: keeps group order

    // ------------------------------------------------------------------
    // Phase 3: reroute + schedule. Emit each candidate if its E-cube path
    // is live; otherwise fall back to a shortest relay route over live
    // channels from the whole delivered set.
    // ------------------------------------------------------------------
    let mut new_unicasts: Vec<Unicast> = Vec::new();
    let mut unreachable: Vec<NodeId> = Vec::new();
    let emit = |src: NodeId,
                dst: NodeId,
                delivered: &mut BTreeSet<NodeId>,
                recv_step: &mut HashMap<NodeId, u32>,
                new_unicasts: &mut Vec<Unicast>,
                used: &mut HashSet<(NodeId, u32, u8)>,
                order_next: &mut HashMap<NodeId, u32>| {
        let Some(dim) = res.delta(src, dst) else {
            return; // src == dst: nothing to send
        };
        let mut step = recv_step.get(&src).copied().unwrap_or(0) + 1;
        while used.contains(&(src, step, dim.0)) {
            step += 1;
        }
        used.insert((src, step, dim.0));
        let order = order_next.entry(src).or_insert(0);
        new_unicasts.push(Unicast {
            src,
            dst,
            step,
            order: *order,
        });
        *order += 1;
        recv_step.insert(dst, step);
        delivered.insert(dst);
    };

    for (src, dst, _) in candidates {
        if delivered.contains(&dst) {
            continue; // already delivered (e.g. as an earlier relay)
        }
        if delivered.contains(&src) && path_is_clean(res, src, dst, faults) {
            emit(
                src,
                dst,
                &mut delivered,
                &mut recv_step,
                &mut new_unicasts,
                &mut used,
                &mut order_next,
            );
            continue;
        }
        // Relay fallback: shortest live route from *any* delivered node.
        match live_route(cube, faults, &delivered, dst) {
            Some(route) => {
                for hop in route.windows(2) {
                    if delivered.contains(&hop[1]) {
                        continue;
                    }
                    emit(
                        hop[0],
                        hop[1],
                        &mut delivered,
                        &mut recv_step,
                        &mut new_unicasts,
                        &mut used,
                        &mut order_next,
                    );
                }
            }
            None => unreachable.push(dst),
        }
    }

    let rerouted: Vec<NodeId> = orphans
        .iter()
        .copied()
        .filter(|v| delivered.contains(v))
        .collect();
    let mut all = kept;
    all.extend(new_unicasts);
    let repaired = MulticastTree::new(cube, res, tree.source, all);
    let extra_steps = repaired.steps.saturating_sub(tree.steps);
    RepairOutcome {
        tree: repaired,
        dropped,
        unreachable,
        rerouted,
        extra_steps,
    }
}

/// Multi-source BFS over live channels: a shortest node path from any
/// member of `delivered` to `dst`, avoiding dead channels and dead
/// nodes. Deterministic (sources in ascending order, dimensions scanned
/// low to high). `None` if `dst` is disconnected from the delivered set.
///
/// Shared with [`crate::protocol`]'s retrying executor, which reroutes a
/// message the same way after its retries are exhausted.
pub(crate) fn live_route(
    cube: Cube,
    faults: &NetworkFaults,
    delivered: &BTreeSet<NodeId>,
    dst: NodeId,
) -> Option<Vec<NodeId>> {
    if faults.node_dead(dst) {
        return None;
    }
    let mut pred: HashMap<NodeId, NodeId> = HashMap::new();
    let mut seen: HashSet<NodeId> = delivered.iter().copied().collect();
    let mut queue: VecDeque<NodeId> = delivered.iter().copied().collect();
    while let Some(v) = queue.pop_front() {
        if v == dst {
            let mut path = vec![v];
            let mut at = v;
            while let Some(&p) = pred.get(&at) {
                path.push(p);
                at = p;
            }
            path.reverse();
            return Some(path);
        }
        for d in cube.dims() {
            if faults.channel_dead(v, d) {
                continue;
            }
            let w = NodeId(v.0 ^ (1u32 << d.0));
            if seen.insert(w) {
                pred.insert(w, v);
                queue.push_back(w);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::PortModel;
    use crate::verify::{validate, ValidateOptions};
    use hcube::Resolution;

    fn opts() -> ValidateOptions {
        ValidateOptions {
            port_model: PortModel::AllPort,
            forbid_relays: false,
        }
    }

    fn wsort_tree(n: u8, source: u32, dests: &[u32]) -> (MulticastTree, Vec<NodeId>) {
        let dests: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        let tree = Algorithm::WSort
            .build(
                Cube::of(n),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(source),
                &dests,
            )
            .unwrap();
        (tree, dests)
    }

    /// Every destination that `repair` claims delivered is delivered, in
    /// a structurally valid tree, using no dead channel.
    fn assert_repaired(outcome: &RepairOutcome, faults: &NetworkFaults, live: &[NodeId]) {
        let delivered: std::collections::HashSet<NodeId> =
            outcome.tree.receivers().into_iter().collect();
        for &d in live {
            assert!(
                delivered.contains(&d) || outcome.unreachable.contains(&d),
                "live destination {d} neither delivered nor reported unreachable"
            );
        }
        let claim: Vec<NodeId> = live
            .iter()
            .copied()
            .filter(|d| !outcome.unreachable.contains(d))
            .collect();
        let violations = validate(&outcome.tree, &claim, opts());
        assert!(
            violations.is_empty(),
            "repaired tree invalid: {violations:?}"
        );
        for u in &outcome.tree.unicasts {
            assert!(
                path_is_clean(outcome.tree.resolution, u.src, u.dst, faults),
                "repaired unicast {}→{} crosses a fault",
                u.src,
                u.dst
            );
        }
    }

    #[test]
    fn no_faults_is_identity() {
        let (tree, _) = wsort_tree(5, 0, &[1, 4, 7, 9, 14, 17, 21, 22, 27, 30, 31]);
        let out = repair(&tree, &NetworkFaults::new());
        assert_eq!(out.tree.unicasts, tree.unicasts);
        assert_eq!(out.extra_steps, 0);
        assert!(out.dropped.is_empty() && out.unreachable.is_empty() && out.rerouted.is_empty());
    }

    #[test]
    fn any_single_link_failure_on_an_8_cube_still_delivers_everywhere() {
        // The acceptance criterion: for *every* possible single directed
        // link failure, the repaired broadcast tree delivers to all live
        // destinations (all of them — one link cannot disconnect a cube).
        let dests: Vec<u32> = (1u32..256).step_by(3).collect();
        let (tree, dest_ids) = wsort_tree(8, 0, &dests);
        let cube = Cube::of(8);
        for v in cube.nodes() {
            for d in cube.dims() {
                let mut faults = NetworkFaults::new();
                faults.fail_link(v, d);
                let out = repair(&tree, &faults);
                assert!(out.dropped.is_empty());
                assert!(
                    out.unreachable.is_empty(),
                    "link ({v},{d:?}) down made {:?} unreachable",
                    out.unreachable
                );
                // Relay fallbacks may add receivers, never lose them.
                assert!(out.tree.receivers().len() >= dest_ids.len());
                assert_repaired(&out, &faults, &dest_ids);
            }
        }
    }

    #[test]
    fn dead_destination_is_dropped_not_unreachable() {
        let (tree, dest_ids) = wsort_tree(5, 0, &[3, 9, 12, 20, 25, 31]);
        let mut faults = NetworkFaults::new();
        faults.fail_node(NodeId(12));
        let out = repair(&tree, &faults);
        assert_eq!(out.dropped, vec![NodeId(12)]);
        assert!(out.unreachable.is_empty());
        let live: Vec<NodeId> = dest_ids
            .iter()
            .copied()
            .filter(|&d| d != NodeId(12))
            .collect();
        assert_repaired(&out, &faults, &live);
    }

    #[test]
    fn dead_source_makes_everything_unreachable() {
        let (tree, dest_ids) = wsort_tree(4, 5, &[1, 2, 9, 14]);
        let mut faults = NetworkFaults::new();
        faults.fail_node(NodeId(5));
        let out = repair(&tree, &faults);
        assert!(out.tree.unicasts.is_empty());
        let mut got = out.unreachable.clone();
        got.sort_unstable();
        let mut want = dest_ids.clone();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn fully_isolated_destination_is_reported_unreachable() {
        let (tree, dest_ids) = wsort_tree(4, 0, &[3, 6, 10, 15]);
        let mut faults = NetworkFaults::new();
        // Sever every duplex link incident to node 6.
        for d in Cube::of(4).dims() {
            faults.fail_duplex(NodeId(6), d);
        }
        let out = repair(&tree, &faults);
        assert_eq!(out.unreachable, vec![NodeId(6)]);
        let live: Vec<NodeId> = dest_ids
            .iter()
            .copied()
            .filter(|&d| d != NodeId(6))
            .collect();
        assert_repaired(&out, &faults, &live);
    }

    #[test]
    fn relay_fallback_routes_around_a_blocked_ecube_path() {
        // Kill the entire E-cube "first hop fan" out of the source so the
        // regrafted unicasts cannot use their direct dimension-ordered
        // paths toward some destinations; repair must relay around.
        let (tree, dest_ids) = wsort_tree(5, 0, &(1u32..32).collect::<Vec<_>>());
        let mut faults = NetworkFaults::new();
        // Dead: source's channels in dims 4 and 3 (HighToLow first hops
        // for the upper half of the cube).
        faults.fail_link(NodeId(0), Dim(4));
        faults.fail_link(NodeId(0), Dim(3));
        let out = repair(&tree, &faults);
        assert!(out.unreachable.is_empty(), "cube is still connected");
        assert_repaired(&out, &faults, &dest_ids);
        assert!(!out.rerouted.is_empty());
    }

    #[test]
    fn wsort_degrades_gracefully_under_k_link_failures() {
        // Tentpole guarantee: bounded extra steps, no lost live
        // destinations, under k deterministic "random" link failures.
        let (tree, dest_ids) = wsort_tree(6, 0, &(1u32..64).collect::<Vec<_>>());
        let n = 6u32;
        for k in 1..=8u32 {
            let mut faults = NetworkFaults::new();
            // Deterministic pseudo-random link choices (LCG).
            let mut x = 0x2545_f491_4f6c_dd1du64.wrapping_mul(u64::from(k) + 11);
            for _ in 0..k {
                x = x
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(1_442_695_040_888_963_407);
                let v = NodeId(((x >> 33) as u32) % 64);
                let d = Dim(((x >> 7) as u8) % 6);
                faults.fail_link(v, d);
            }
            let out = repair(&tree, &faults);
            assert!(out.unreachable.is_empty(), "k={k}: {:?}", out.unreachable);
            assert_repaired(&out, &faults, &dest_ids);
            // Each failure can cost at most a relay detour: generous but
            // finite bound of n + 2k extra steps.
            assert!(
                out.extra_steps <= n + 2 * k,
                "k={k}: extra_steps={} exceeds bound",
                out.extra_steps
            );
        }
    }

    #[test]
    fn broken_unicasts_reports_direct_breakage_only() {
        let (tree, _) = wsort_tree(4, 0, &[1, 2, 4, 8, 15]);
        let mut faults = NetworkFaults::new();
        // Break the path 0 → 8 (HighToLow: single hop on dim 3).
        faults.fail_link(NodeId(0), Dim(3));
        let broken = broken_unicasts(&tree, &faults);
        assert!(broken
            .iter()
            .any(|u| u.src == NodeId(0) && u.dst == NodeId(8)));
        assert!(!tree_is_clean(&tree, &faults));
        assert!(tree_is_clean(&tree, &NetworkFaults::new()));
    }

    #[test]
    fn repair_is_deterministic() {
        let (tree, _) = wsort_tree(6, 3, &(4u32..40).collect::<Vec<_>>());
        let mut faults = NetworkFaults::new();
        faults
            .fail_link(NodeId(3), Dim(5))
            .fail_link(NodeId(19), Dim(1))
            .fail_node(NodeId(7));
        let a = repair(&tree, &faults);
        let b = repair(&tree, &faults);
        assert_eq!(a.tree.unicasts, b.tree.unicasts);
        assert_eq!(a.unreachable, b.unreachable);
        assert_eq!(a.rerouted, b.rerouted);
    }
}
