//! The contention-freedom verifier (Definitions 3–4).
//!
//! A multicast implementation is contention-free iff its constituent
//! unicasts are pairwise contention-free. Unicasts `(u, v, P(u, v), t)`
//! and `(x, y, P(x, y), τ)` with `t ≤ τ` are contention-free iff
//!
//! 1. `P(u, v)` and `P(x, y)` are arc-disjoint, **or**
//! 2. `t < τ` and `x ∈ R_u` — the later sender lies in the earlier
//!    sender's reachable set, so wormhole timing guarantees the earlier
//!    worm has drained past the shared arc before the later one starts.
//!
//! The checker is an exact (quadratic) implementation of that definition,
//! used by tests to validate Theorems 3 and 6 and by the benches to
//! *measure* how often U-cube's all-port schedule violates it.

use crate::tree::{MulticastTree, Unicast};
use hcube::disjoint::shared_arc;
use hcube::{Channel, NodeId};
use std::collections::{HashMap, HashSet};

/// A witness that two unicasts of a multicast implementation may contend
/// for a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contention {
    /// The earlier (or equal-step) unicast.
    pub earlier: Unicast,
    /// The later unicast.
    pub later: Unicast,
    /// A directed channel both paths occupy.
    pub arc: Channel,
}

/// Checks Definition 4 over every unicast pair of the tree.
///
/// Returns all witnesses (empty ⇒ the implementation is contention-free).
#[must_use]
pub fn contention_witnesses(tree: &MulticastTree) -> Vec<Contention> {
    let mut witnesses = Vec::new();
    // Precompute reachable sets: R_u for every sender u (Definition 3).
    let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for uc in &tree.unicasts {
        children.entry(uc.src).or_default().push(uc.dst);
    }
    let mut reach: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
    for &sender in children.keys() {
        let mut set = HashSet::new();
        let mut stack = vec![sender];
        while let Some(v) = stack.pop() {
            if set.insert(v) {
                if let Some(kids) = children.get(&v) {
                    stack.extend(kids.iter().copied());
                }
            }
        }
        reach.insert(sender, set);
    }

    let res = tree.resolution;
    for (i, &a) in tree.unicasts.iter().enumerate() {
        for &b in &tree.unicasts[i + 1..] {
            // Order the pair by step: `e` earlier, `l` later.
            let (e, l) = if a.step <= b.step { (a, b) } else { (b, a) };
            if e.step < l.step && reach[&e.src].contains(&l.src) {
                continue; // Definition 4, condition 2
            }
            if let Some(arc) = shared_arc(e.path(res), l.path(res)) {
                witnesses.push(Contention {
                    earlier: e,
                    later: l,
                    arc,
                });
            }
        }
    }
    witnesses
}

/// Convenience predicate: `true` iff [`contention_witnesses`] is empty.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::{Algorithm, PortModel};
/// use hypercast::contention::is_contention_free;
///
/// let dests: Vec<NodeId> = (1..10).map(NodeId).collect();
/// let tree = Algorithm::WSort
///     .build(Cube::of(4), Resolution::HighToLow, PortModel::AllPort,
///            NodeId(0), &dests)?;
/// assert!(is_contention_free(&tree)); // Theorem 6
/// # Ok::<(), hcube::HcubeError>(())
/// ```
#[must_use]
pub fn is_contention_free(tree: &MulticastTree) -> bool {
    contention_witnesses(tree).is_empty()
}

/// How many virtual lanes per physical link this tree needs to run
/// contention-free under worst-case timing.
///
/// Two unicasts that contend (Definition 4) on an arc must occupy
/// *different lanes* of that arc to avoid blocking. A worm's occupancy
/// of an arc is a time interval, and pairwise-intersecting intervals
/// always share a common point (the Helly property in one dimension), so
/// the worst-case *simultaneous* demand on an arc equals the largest set
/// of pairwise-contending unicasts crossing it — a maximum clique of the
/// per-arc conflict graph. The answer is the maximum over arcs, and `1`
/// for a contention-free tree.
///
/// Arcs carrying more than 64 mutually-contending unicasts (far beyond
/// anything the builders emit) fall back to the trivial bound: one lane
/// per contender.
#[must_use]
pub fn min_lanes_for_freedom(tree: &MulticastTree) -> u32 {
    let witnesses = contention_witnesses(tree);
    if witnesses.is_empty() {
        return 1;
    }
    let res = tree.resolution;
    // A witness records *one* shared arc per contending pair; lane demand
    // needs the conflict graph of *every* arc, so re-derive the full
    // shared-arc set for each witnessed pair (cheap: paths are short).
    let mut per_arc: HashMap<Channel, Vec<(Unicast, Unicast)>> = HashMap::new();
    for w in &witnesses {
        for arc in w.earlier.path(res).arcs() {
            if w.later.path(res).uses(arc) {
                per_arc.entry(arc).or_default().push((w.earlier, w.later));
            }
        }
    }
    let mut lanes = 1u32;
    for pairs in per_arc.values() {
        // Index the distinct unicasts touching this arc.
        let mut verts: Vec<Unicast> = Vec::new();
        let index = |u: Unicast, verts: &mut Vec<Unicast>| -> usize {
            match verts.iter().position(|&v| v == u) {
                Some(i) => i,
                None => {
                    verts.push(u);
                    verts.len() - 1
                }
            }
        };
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for &(a, b) in pairs {
            let i = index(a, &mut verts);
            let j = index(b, &mut verts);
            edges.push((i, j));
        }
        if verts.len() > 64 {
            lanes = lanes.max(verts.len() as u32);
            continue;
        }
        let mut adj = vec![0u64; verts.len()];
        for (i, j) in edges {
            adj[i] |= 1 << j;
            adj[j] |= 1 << i;
        }
        let mut best = 1;
        max_clique(&adj, (1u64 << verts.len()) - 1, 0, &mut best);
        lanes = lanes.max(best);
    }
    lanes
}

/// Lane demand of several multicasts running *concurrently* on the same
/// network.
///
/// Definition 4 speaks to one tree: its reachability condition exploits
/// the fact that a descendant cannot start sending before its ancestor's
/// worm has drained. Trees launched by independent sources share no such
/// ordering — whenever two unicasts from *different* trees cross the same
/// arc they may be in flight simultaneously, so they always conflict.
/// Same-tree pairs keep the Definition-4 test. The answer is again the
/// maximum per-arc clique of the combined conflict graph (see
/// [`min_lanes_for_freedom`] for the interval/Helly argument), with the
/// same >64-occupant fallback to the trivial one-lane-per-worm bound.
///
/// `min_lanes_for_concurrent(&[t])` coincides with
/// `min_lanes_for_freedom(&t)`.
#[must_use]
pub fn min_lanes_for_concurrent(trees: &[MulticastTree]) -> u32 {
    // Every arc's occupants, tagged by owning tree.
    let mut per_arc: HashMap<Channel, Vec<(usize, Unicast)>> = HashMap::new();
    for (ti, t) in trees.iter().enumerate() {
        for &u in &t.unicasts {
            for arc in u.path(t.resolution).arcs() {
                per_arc.entry(arc).or_default().push((ti, u));
            }
        }
    }
    // Same-tree conflicts are exactly the Definition-4 witnesses.
    let witness_pairs: Vec<Vec<(Unicast, Unicast)>> = trees
        .iter()
        .map(|t| {
            contention_witnesses(t)
                .iter()
                .map(|w| (w.earlier, w.later))
                .collect()
        })
        .collect();
    let mut lanes = 1u32;
    for occ in per_arc.values() {
        let n = occ.len();
        if n <= 1 {
            continue;
        }
        if n > 64 {
            lanes = lanes.max(n as u32);
            continue;
        }
        let mut adj = vec![0u64; n];
        for i in 0..n {
            let (ti, a) = occ[i];
            for (j, &(tj, b)) in occ.iter().enumerate().skip(i + 1) {
                let conflict = if ti == tj {
                    witness_pairs[ti]
                        .iter()
                        .any(|&(x, y)| (x == a && y == b) || (x == b && y == a))
                } else {
                    true
                };
                if conflict {
                    adj[i] |= 1 << j;
                    adj[j] |= 1 << i;
                }
            }
        }
        let mut best = 1;
        max_clique(&adj, (1u64 << n) - 1, 0, &mut best);
        lanes = lanes.max(best);
    }
    lanes
}

/// Branch-and-bound maximum clique over a ≤64-vertex bitmask adjacency.
fn max_clique(adj: &[u64], cand: u64, size: u32, best: &mut u32) {
    if size + cand.count_ones() <= *best {
        return;
    }
    if cand == 0 {
        *best = (*best).max(size);
        return;
    }
    let mut rest = cand;
    while rest != 0 {
        let v = rest.trailing_zeros() as usize;
        rest &= rest - 1;
        // Extend the clique with `v`; only later vertices (in `rest`)
        // remain candidates, so each clique is enumerated once.
        max_clique(adj, rest & adj[v], size + 1, best);
        if size + 1 + rest.count_ones() <= *best {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::{Cube, Resolution};

    fn u(src: u32, dst: u32, step: u32, order: u32) -> Unicast {
        Unicast {
            src: NodeId(src),
            dst: NodeId(dst),
            step,
            order,
        }
    }

    fn tree(unicasts: Vec<Unicast>) -> MulticastTree {
        MulticastTree::new(Cube::of(4), Resolution::HighToLow, NodeId(0), unicasts)
    }

    #[test]
    fn same_step_shared_arc_is_contention() {
        // 0000→0011 and 0001→... no wait: craft two same-step unicasts
        // through channel 0000→0010? Use 0000→0011 (path 0000,0010,0011)
        // and a disjoint sender 0110→0010? That path is 0110→0010: uses
        // arc 0110→0010, not shared. Use 1000→0011: path 1000,0000,0010,
        // 0011 — shares 0000→0010 and 0010→0011 with the first.
        let t = tree(vec![u(0, 0b0011, 1, 0), u(0b1000, 0b0011, 1, 0)]);
        let w = contention_witnesses(&t);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].arc.from, NodeId(0));
    }

    #[test]
    fn theorem_3_common_source_never_contends() {
        // Same source, same first channel, different steps: the later
        // sender x = u trivially lies in R_u.
        let t = tree(vec![u(0, 0b1100, 1, 0), u(0, 0b1011, 2, 1)]);
        assert!(is_contention_free(&t));
    }

    #[test]
    fn later_descendant_send_is_allowed() {
        // 0 → 0b1100 at step 1; then 0b1100 → 0b1000? shares nothing.
        // Instead: 0 → 0b1110 at step 1 (path 0,1000,1100,1110), and at
        // step 2 node 0b1110 → 0b1111. Arc-disjoint anyway; craft a
        // sharing case: 0 → 0b1100 step 1 (arcs 0→1000→1100) and
        // 0b1100 → ... can't reuse those arcs from 1100. Use condition 2
        // directly: 0 → 0b0011 step 1 and 0b0011's child 0b0011 → 0b0010?
        // distance 1, no shared arc. Simplest true case: the earlier
        // unicast's path is a prefix of the later sender's onward path.
        // 0 → 0b0010 step 1 (arc 0→0010); 0b0010 is NOT on… use:
        // e = (0, 0b0011, 1): arcs {0→0010, 0010→0011};
        // l = (0b0011, 0b0001, 2): arcs {0011→0001}. Disjoint.
        // Force a shared arc with an ancestor-descendant pair:
        // e = (0, 0b0111, 1): arcs {0→0100, 0100→0110, 0110→0111}
        // l = (0b0111, …) can never reuse e's arcs (they end at 0111).
        // So instead verify condition 2 with a *sibling-descendant*:
        // e = (0, 0b0110, 1) arcs {0→0100, 0100→0110}
        // l = (0b0110, 0b0101, 2) arcs {0110→0100?} no: P(0110,0101) =
        // dims 1,0: 0110→0100→0101 — shares NO arc with e (0100→0110 vs
        // 0110→0100 are opposite directions). Checker must accept
        // regardless because 0110 ∈ R_0 and steps differ.
        let t = tree(vec![u(0, 0b0110, 1, 0), u(0b0110, 0b0101, 2, 0)]);
        assert!(is_contention_free(&t));
    }

    #[test]
    fn later_non_descendant_shared_arc_is_contention() {
        // e = (0b0001, 0b0110, 1): P = 0001→0101? No: 0001⊕0110 = 0111,
        // dims 2,1,0: 0001→0101→0111→0110.
        // l = (0b1101, 0b0111, 2): 1101⊕0111 = 1010, dims 3,1:
        // 1101→0101→0111. Shares arc 0101→0111.
        // 1101 is not in R_{0001} (they are unrelated senders here).
        let t = tree(vec![
            u(0, 0b0001, 1, 0), /* make 0001 informed */
            u(0, 0b1101, 1, 1),
            u(0b0001, 0b0110, 2, 0),
            u(0b1101, 0b0111, 3, 0),
        ]);
        let w = contention_witnesses(&t);
        assert!(
            w.iter()
                .any(|c| c.arc.from == NodeId(0b0101) && c.arc.to() == NodeId(0b0111)),
            "expected shared arc 0101→0111, got {w:?}"
        );
    }

    #[test]
    fn arc_disjoint_same_step_is_fine() {
        let t = tree(vec![u(0, 0b0001, 1, 0), u(0b1000, 0b1001, 1, 0)]);
        assert!(is_contention_free(&t));
    }

    #[test]
    fn contention_free_trees_need_one_lane() {
        let t = tree(vec![u(0, 0b0001, 1, 0), u(0b1000, 0b1001, 1, 0)]);
        assert_eq!(min_lanes_for_freedom(&t), 1);
    }

    #[test]
    fn a_contending_pair_needs_two_lanes() {
        // Both paths share 0000→0010 (and 0010→0011) at the same step.
        let t = tree(vec![u(0, 0b0011, 1, 0), u(0b1000, 0b0011, 1, 0)]);
        assert_eq!(min_lanes_for_freedom(&t), 2);
    }

    #[test]
    fn three_pairwise_contenders_need_three_lanes() {
        // Three same-step unicasts from unrelated senders all funnel
        // through arc 0010→0011 (high-to-low resolution ends each path
        // with the dim-0 hop into 0011).
        let t = tree(vec![
            u(0b0000, 0b0011, 1, 0),
            u(0b1010, 0b0011, 1, 1),
            u(0b0110, 0b0011, 1, 2),
        ]);
        assert!(!is_contention_free(&t));
        assert_eq!(min_lanes_for_freedom(&t), 3);
    }

    #[test]
    fn concurrent_of_one_tree_matches_the_single_tree_bound() {
        for t in [
            tree(vec![u(0, 0b0001, 1, 0), u(0b1000, 0b1001, 1, 0)]),
            tree(vec![u(0, 0b0011, 1, 0), u(0b1000, 0b0011, 1, 0)]),
            tree(vec![
                u(0b0000, 0b0011, 1, 0),
                u(0b1010, 0b0011, 1, 1),
                u(0b0110, 0b0011, 1, 2),
            ]),
        ] {
            assert_eq!(
                min_lanes_for_concurrent(std::slice::from_ref(&t)),
                min_lanes_for_freedom(&t)
            );
        }
    }

    #[test]
    fn independent_trees_conflict_wherever_paths_cross() {
        // Each tree alone is trivially contention-free (one unicast), but
        // both paths ride arc 0010→0011: concurrently they need 2 lanes.
        let a = tree(vec![u(0, 0b0011, 1, 0)]);
        let b = MulticastTree::new(
            Cube::of(4),
            Resolution::HighToLow,
            NodeId(0b1000),
            vec![u(0b1000, 0b0011, 1, 0)],
        );
        assert_eq!(min_lanes_for_freedom(&a), 1);
        assert_eq!(min_lanes_for_freedom(&b), 1);
        assert_eq!(min_lanes_for_concurrent(&[a, b]), 2);
    }

    #[test]
    fn arc_disjoint_trees_still_need_one_lane() {
        let a = tree(vec![u(0, 0b0001, 1, 0)]);
        let b = MulticastTree::new(
            Cube::of(4),
            Resolution::HighToLow,
            NodeId(0b1000),
            vec![u(0b1000, 0b1001, 1, 0)],
        );
        assert_eq!(min_lanes_for_concurrent(&[a, b]), 1);
    }
}
