//! The contention-freedom verifier (Definitions 3–4).
//!
//! A multicast implementation is contention-free iff its constituent
//! unicasts are pairwise contention-free. Unicasts `(u, v, P(u, v), t)`
//! and `(x, y, P(x, y), τ)` with `t ≤ τ` are contention-free iff
//!
//! 1. `P(u, v)` and `P(x, y)` are arc-disjoint, **or**
//! 2. `t < τ` and `x ∈ R_u` — the later sender lies in the earlier
//!    sender's reachable set, so wormhole timing guarantees the earlier
//!    worm has drained past the shared arc before the later one starts.
//!
//! The checker is an exact (quadratic) implementation of that definition,
//! used by tests to validate Theorems 3 and 6 and by the benches to
//! *measure* how often U-cube's all-port schedule violates it.

use crate::tree::{MulticastTree, Unicast};
use hcube::disjoint::shared_arc;
use hcube::{Channel, NodeId};
use std::collections::{HashMap, HashSet};

/// A witness that two unicasts of a multicast implementation may contend
/// for a channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Contention {
    /// The earlier (or equal-step) unicast.
    pub earlier: Unicast,
    /// The later unicast.
    pub later: Unicast,
    /// A directed channel both paths occupy.
    pub arc: Channel,
}

/// Checks Definition 4 over every unicast pair of the tree.
///
/// Returns all witnesses (empty ⇒ the implementation is contention-free).
#[must_use]
pub fn contention_witnesses(tree: &MulticastTree) -> Vec<Contention> {
    let mut witnesses = Vec::new();
    // Precompute reachable sets: R_u for every sender u (Definition 3).
    let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for uc in &tree.unicasts {
        children.entry(uc.src).or_default().push(uc.dst);
    }
    let mut reach: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
    for &sender in children.keys() {
        let mut set = HashSet::new();
        let mut stack = vec![sender];
        while let Some(v) = stack.pop() {
            if set.insert(v) {
                if let Some(kids) = children.get(&v) {
                    stack.extend(kids.iter().copied());
                }
            }
        }
        reach.insert(sender, set);
    }

    let res = tree.resolution;
    for (i, &a) in tree.unicasts.iter().enumerate() {
        for &b in &tree.unicasts[i + 1..] {
            // Order the pair by step: `e` earlier, `l` later.
            let (e, l) = if a.step <= b.step { (a, b) } else { (b, a) };
            if e.step < l.step && reach[&e.src].contains(&l.src) {
                continue; // Definition 4, condition 2
            }
            if let Some(arc) = shared_arc(e.path(res), l.path(res)) {
                witnesses.push(Contention {
                    earlier: e,
                    later: l,
                    arc,
                });
            }
        }
    }
    witnesses
}

/// Convenience predicate: `true` iff [`contention_witnesses`] is empty.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::{Algorithm, PortModel};
/// use hypercast::contention::is_contention_free;
///
/// let dests: Vec<NodeId> = (1..10).map(NodeId).collect();
/// let tree = Algorithm::WSort
///     .build(Cube::of(4), Resolution::HighToLow, PortModel::AllPort,
///            NodeId(0), &dests)?;
/// assert!(is_contention_free(&tree)); // Theorem 6
/// # Ok::<(), hcube::HcubeError>(())
/// ```
#[must_use]
pub fn is_contention_free(tree: &MulticastTree) -> bool {
    contention_witnesses(tree).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::{Cube, Resolution};

    fn u(src: u32, dst: u32, step: u32, order: u32) -> Unicast {
        Unicast {
            src: NodeId(src),
            dst: NodeId(dst),
            step,
            order,
        }
    }

    fn tree(unicasts: Vec<Unicast>) -> MulticastTree {
        MulticastTree::new(Cube::of(4), Resolution::HighToLow, NodeId(0), unicasts)
    }

    #[test]
    fn same_step_shared_arc_is_contention() {
        // 0000→0011 and 0001→... no wait: craft two same-step unicasts
        // through channel 0000→0010? Use 0000→0011 (path 0000,0010,0011)
        // and a disjoint sender 0110→0010? That path is 0110→0010: uses
        // arc 0110→0010, not shared. Use 1000→0011: path 1000,0000,0010,
        // 0011 — shares 0000→0010 and 0010→0011 with the first.
        let t = tree(vec![u(0, 0b0011, 1, 0), u(0b1000, 0b0011, 1, 0)]);
        let w = contention_witnesses(&t);
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].arc.from, NodeId(0));
    }

    #[test]
    fn theorem_3_common_source_never_contends() {
        // Same source, same first channel, different steps: the later
        // sender x = u trivially lies in R_u.
        let t = tree(vec![u(0, 0b1100, 1, 0), u(0, 0b1011, 2, 1)]);
        assert!(is_contention_free(&t));
    }

    #[test]
    fn later_descendant_send_is_allowed() {
        // 0 → 0b1100 at step 1; then 0b1100 → 0b1000? shares nothing.
        // Instead: 0 → 0b1110 at step 1 (path 0,1000,1100,1110), and at
        // step 2 node 0b1110 → 0b1111. Arc-disjoint anyway; craft a
        // sharing case: 0 → 0b1100 step 1 (arcs 0→1000→1100) and
        // 0b1100 → ... can't reuse those arcs from 1100. Use condition 2
        // directly: 0 → 0b0011 step 1 and 0b0011's child 0b0011 → 0b0010?
        // distance 1, no shared arc. Simplest true case: the earlier
        // unicast's path is a prefix of the later sender's onward path.
        // 0 → 0b0010 step 1 (arc 0→0010); 0b0010 is NOT on… use:
        // e = (0, 0b0011, 1): arcs {0→0010, 0010→0011};
        // l = (0b0011, 0b0001, 2): arcs {0011→0001}. Disjoint.
        // Force a shared arc with an ancestor-descendant pair:
        // e = (0, 0b0111, 1): arcs {0→0100, 0100→0110, 0110→0111}
        // l = (0b0111, …) can never reuse e's arcs (they end at 0111).
        // So instead verify condition 2 with a *sibling-descendant*:
        // e = (0, 0b0110, 1) arcs {0→0100, 0100→0110}
        // l = (0b0110, 0b0101, 2) arcs {0110→0100?} no: P(0110,0101) =
        // dims 1,0: 0110→0100→0101 — shares NO arc with e (0100→0110 vs
        // 0110→0100 are opposite directions). Checker must accept
        // regardless because 0110 ∈ R_0 and steps differ.
        let t = tree(vec![u(0, 0b0110, 1, 0), u(0b0110, 0b0101, 2, 0)]);
        assert!(is_contention_free(&t));
    }

    #[test]
    fn later_non_descendant_shared_arc_is_contention() {
        // e = (0b0001, 0b0110, 1): P = 0001→0101? No: 0001⊕0110 = 0111,
        // dims 2,1,0: 0001→0101→0111→0110.
        // l = (0b1101, 0b0111, 2): 1101⊕0111 = 1010, dims 3,1:
        // 1101→0101→0111. Shares arc 0101→0111.
        // 1101 is not in R_{0001} (they are unrelated senders here).
        let t = tree(vec![
            u(0, 0b0001, 1, 0), /* make 0001 informed */
            u(0, 0b1101, 1, 1),
            u(0b0001, 0b0110, 2, 0),
            u(0b1101, 0b0111, 3, 0),
        ]);
        let w = contention_witnesses(&t);
        assert!(
            w.iter()
                .any(|c| c.arc.from == NodeId(0b0101) && c.arc.to() == NodeId(0b0111)),
            "expected shared arc 0101→0111, got {w:?}"
        );
    }

    #[test]
    fn arc_disjoint_same_step_is_fine() {
        let t = tree(vec![u(0, 0b0001, 1, 0), u(0b1000, 0b1001, 1, 0)]);
        assert!(is_contention_free(&t));
    }
}
