//! Step-count lower bounds and an exact port-limited optimum for small
//! instances.
//!
//! * One-port: `⌈log₂(m + 1)⌉` is a *tight* lower bound — the number of
//!   payload holders can at most double per step (the paper credits \[9]).
//! * All-port: `⌈log_{n+1}(m + 1)⌉` — each of the `k` holders can inform
//!   at most `n` new nodes per step, so the holder count multiplies by at
//!   most `n + 1`.
//! * [`min_steps_port_limited`] computes, for small destination sets, the
//!   exact minimum number of steps achievable when only the port
//!   constraints bind (channel contention between different senders is
//!   ignored, and only the source and destinations may relay, as the
//!   paper requires). It is a lower bound on the true contention-free
//!   optimum and is used by the ablation benches to measure each
//!   heuristic's optimality gap.

use crate::schedule::PortModel;
use hcube::chain::relative_chain;
use hcube::{delta_high, Cube, HcubeError, NodeId, Resolution};
use std::collections::HashMap;

/// `⌈log₂(m + 1)⌉` — the tight one-port lower bound on steps for `m`
/// destinations.
///
/// ```
/// use hypercast::bounds::one_port_lower_bound;
/// assert_eq!(one_port_lower_bound(8), 4);  // the Figure 3 instance
/// assert_eq!(one_port_lower_bound(7), 3);
/// ```
#[must_use]
pub fn one_port_lower_bound(m: usize) -> u32 {
    usize::BITS - m.leading_zeros()
}

/// `⌈log_{n+1}(m + 1)⌉` — the all-port capacity lower bound for `m`
/// destinations in an `n`-cube.
#[must_use]
pub fn all_port_lower_bound(n: u8, m: usize) -> u32 {
    let base = u128::from(n) + 1;
    let target = m as u128 + 1;
    let mut holders: u128 = 1;
    let mut steps = 0;
    while holders < target {
        holders = holders.saturating_mul(base);
        steps += 1;
    }
    steps
}

/// The largest destination count [`min_steps_port_limited`] accepts; the
/// state space is `3^(m+1)` subset pairs, so the search is restricted to
/// small instances.
pub const MAX_EXACT_DESTS: usize = 10;

/// Exact minimum multicast steps under port constraints alone (see module
/// docs). Only the source and destinations may hold and forward the
/// payload.
///
/// # Errors
/// * [`HcubeError::NodeOutOfRange`] / [`HcubeError::DuplicateAddress`]
///   for invalid inputs (as in [`crate::Algorithm::build`]);
/// * [`HcubeError::BadDimension`] if `dests.len() > MAX_EXACT_DESTS`
///   (reusing the error type to keep the API small; the message names the
///   limit).
pub fn min_steps_port_limited(
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    source: NodeId,
    dests: &[NodeId],
) -> Result<u32, HcubeError> {
    cube.check_node(source)?;
    for &d in dests {
        cube.check_node(d)?;
    }
    if dests.len() > MAX_EXACT_DESTS {
        return Err(HcubeError::BadDimension {
            n: dests.len().min(255) as u8,
        });
    }
    if dests.is_empty() {
        return Ok(0);
    }
    let chain = relative_chain(resolution, cube.dimension(), source, dests)?;
    // chain[0] = source (relative 0); participants indexed by chain order.
    let k = chain.len();
    let full: u32 = (1u32 << k) - 1;
    let start: u32 = 1;

    // BFS over informed sets; informing more nodes never hurts, so each
    // step may extend by any feasible subset (we enumerate all subsets of
    // the complement, which is fine at this size).
    let mut dist: HashMap<u32, u32> = HashMap::new();
    dist.insert(start, 0);
    let mut frontier = vec![start];
    let mut steps = 0u32;
    while !frontier.is_empty() {
        if dist.contains_key(&full) {
            return Ok(steps);
        }
        steps += 1;
        let mut next_frontier = Vec::new();
        for &informed in &frontier {
            let complement = full & !informed;
            // Enumerate non-empty subsets of the complement.
            let mut s = complement;
            while s != 0 {
                if feasible_one_step(&chain, informed, s, port_model, cube.dimension()) {
                    let next = informed | s;
                    if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(next) {
                        e.insert(steps);
                        next_frontier.push(next);
                    }
                }
                s = (s - 1) & complement;
            }
        }
        frontier = next_frontier;
    }
    // Unreachable: the full set is always reachable (separate addressing
    // eventually informs everyone).
    unreachable!("multicast completion is always feasible")
}

/// Can the holders in `informed` deliver to every receiver in `targets`
/// within a single step, respecting the port model?
fn feasible_one_step(
    chain: &[NodeId],
    informed: u32,
    targets: u32,
    port_model: PortModel,
    n: u8,
) -> bool {
    let receivers: Vec<usize> = (0..chain.len())
        .filter(|i| targets & (1 << i) != 0)
        .collect();
    let senders: Vec<usize> = (0..chain.len())
        .filter(|i| informed & (1 << i) != 0)
        .collect();
    match port_model {
        PortModel::OnePort => receivers.len() <= senders.len(),
        PortModel::KPort(k) => {
            // Capacity bound: each sender starts at most k transmissions;
            // distinct-channel feasibility is checked as in all-port but
            // with per-sender multiplicity capped. For the bound search we
            // use the simple counting relaxation (a lower bound remains a
            // lower bound).
            receivers.len() <= senders.len() * usize::from(k.max(1))
        }
        PortModel::AllPort => {
            // Bipartite matching: receiver → (sender, first channel) slot.
            // Slot id = sender_pos * n + channel.
            let slots_per_receiver: Vec<Vec<usize>> = receivers
                .iter()
                .map(|&r| {
                    senders
                        .iter()
                        .enumerate()
                        .map(|(si, &s)| {
                            let d = delta_high(chain[s], chain[r])
                                .expect("distinct participants")
                                .0;
                            si * n as usize + d as usize
                        })
                        .collect()
                })
                .collect();
            let slot_count = senders.len() * n as usize;
            // Kuhn's augmenting-path matching.
            let mut slot_owner: Vec<Option<usize>> = vec![None; slot_count];
            fn augment(
                r: usize,
                slots: &[Vec<usize>],
                slot_owner: &mut [Option<usize>],
                visited: &mut [bool],
            ) -> bool {
                for &slot in &slots[r] {
                    if visited[slot] {
                        continue;
                    }
                    visited[slot] = true;
                    match slot_owner[slot] {
                        None => {
                            slot_owner[slot] = Some(r);
                            return true;
                        }
                        Some(other) => {
                            if augment(other, slots, slot_owner, visited) {
                                slot_owner[slot] = Some(r);
                                return true;
                            }
                        }
                    }
                }
                false
            }
            for r in 0..receivers.len() {
                let mut visited = vec![false; slot_count];
                if !augment(r, &slots_per_receiver, &mut slot_owner, &mut visited) {
                    return false;
                }
            }
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn one_port_bound_values() {
        assert_eq!(one_port_lower_bound(0), 0);
        assert_eq!(one_port_lower_bound(1), 1);
        assert_eq!(one_port_lower_bound(2), 2);
        assert_eq!(one_port_lower_bound(3), 2);
        assert_eq!(one_port_lower_bound(7), 3);
        assert_eq!(one_port_lower_bound(8), 4);
    }

    #[test]
    fn all_port_bound_values() {
        // n = 4 ⇒ base 5: 1, 5, 25 holders after 0, 1, 2 steps.
        assert_eq!(all_port_lower_bound(4, 0), 0);
        assert_eq!(all_port_lower_bound(4, 4), 1);
        assert_eq!(all_port_lower_bound(4, 5), 2);
        assert_eq!(all_port_lower_bound(4, 8), 2);
        assert_eq!(all_port_lower_bound(4, 24), 2);
        assert_eq!(all_port_lower_bound(4, 25), 3);
    }

    #[test]
    fn exact_matches_one_port_bound() {
        // The paper: ⌈log₂(m+1)⌉ is tight on one-port hypercubes.
        let cube = Cube::of(4);
        let cases: &[&[u32]] = &[
            &[1],
            &[1, 2],
            &[1, 2, 4, 8],
            &[
                0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
            ],
        ];
        for dests in cases {
            let exact = min_steps_port_limited(
                cube,
                Resolution::HighToLow,
                PortModel::OnePort,
                NodeId(0),
                &ids(dests),
            )
            .unwrap();
            assert_eq!(exact, one_port_lower_bound(dests.len()));
        }
    }

    #[test]
    fn exact_all_port_on_figure_3e_set_is_two() {
        // W-sort achieves 2 steps on this set, and 2 is exactly optimal.
        let dests = ids(&[
            0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
        ]);
        let exact = min_steps_port_limited(
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
        )
        .unwrap();
        assert_eq!(exact, 2);
    }

    #[test]
    fn exact_single_destination() {
        let exact = min_steps_port_limited(
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(3),
            &ids(&[12]),
        )
        .unwrap();
        assert_eq!(exact, 1);
    }

    #[test]
    fn exact_respects_channel_multiplexing() {
        // Three destinations all behind channel 2 of the source: the
        // source alone cannot inform them in one step, but after step 1
        // the first receiver helps.
        let dests = ids(&[0b100, 0b101, 0b110]);
        let exact = min_steps_port_limited(
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
        )
        .unwrap();
        assert_eq!(exact, 2);
    }

    #[test]
    fn rejects_oversized_instances() {
        let dests: Vec<NodeId> = (1..=12).map(NodeId).collect();
        assert!(min_steps_port_limited(
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
        )
        .is_err());
    }

    #[test]
    fn empty_destinations_take_zero_steps() {
        let exact = min_steps_port_limited(
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &[],
        )
        .unwrap();
        assert_eq!(exact, 0);
    }
}
