//! Port models and step assignment.
//!
//! The algorithms in [`crate::algorithms`] decide *who forwards the
//! payload to whom, in what issue order*; this module decides *when* each
//! unicast is transmitted, given the node architecture's port model:
//!
//! * **one-port** — the local processor owns a single pair of internal
//!   channels, so all of a node's sends serialize (one per step);
//! * **all-port** — every external channel has its own internal channel,
//!   so a node may transmit on all `n` channels simultaneously. Two sends
//!   whose E-cube paths leave on the *same* channel still serialize on
//!   that port — this is exactly the effect the paper describes for
//!   U-cube on an all-port cube (Figure 3(d)): the unicast to 1011 is
//!   delayed behind the unicast to 1100 because both leave node 0111 on
//!   channel 3.
//!
//! A node that receives the payload in step `t` may transmit from step
//! `t + 1`; the source transmits from step 1.

use crate::tree::{MulticastTree, Unicast};
use hcube::chain::from_relative;
use hcube::{delta_high, Cube, NodeId, Resolution};
use std::collections::HashMap;

/// The number of internal channel pairs connecting each local processor
/// to its router (Section 1 of the paper).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PortModel {
    /// One pair of internal channels: sends (and receives) serialize.
    OnePort,
    /// One internal channel per external channel: a node can send to and
    /// receive on all `n` channels simultaneously.
    AllPort,
    /// `k` internal channel pairs (extension beyond the paper's one/all
    /// dichotomy): a node transmits on at most `k` distinct external
    /// channels per step. `KPort(1)` schedules like [`PortModel::OnePort`]
    /// (the simulator differs only in reception serialization, which
    /// `KPort` does not model); `KPort(n)` schedules like
    /// [`PortModel::AllPort`].
    KPort(u8),
}

impl PortModel {
    /// A short human-readable label, used in tables and plots.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            PortModel::OnePort => "one-port".to_string(),
            PortModel::AllPort => "all-port".to_string(),
            PortModel::KPort(k) => format!("{k}-port"),
        }
    }

    /// The maximum number of simultaneous transmissions a node can start
    /// in one step in an `n`-cube.
    #[must_use]
    pub fn concurrent_sends(self, n: u8) -> u8 {
        match self {
            PortModel::OnePort => 1,
            PortModel::AllPort => n,
            PortModel::KPort(k) => k.clamp(1, n),
        }
    }
}

/// The forwarding plan of an algorithm before steps are assigned: for
/// each index into the canonical relative chain, the ordered list of
/// chain indices that node sends the payload to.
///
/// Index 0 is always the source. Every other chain index must appear as a
/// receiver exactly once.
pub(crate) type SendPlan = Vec<Vec<usize>>;

/// Assigns steps to a [`SendPlan`] under `port_model` and materializes the
/// physical [`MulticastTree`].
///
/// `chain` is the canonical relative chain the plan indexes into (element
/// 0 is the source's relative address `0`).
pub(crate) fn schedule(
    cube: Cube,
    resolution: Resolution,
    source: NodeId,
    chain: &[NodeId],
    plan: &SendPlan,
    port_model: PortModel,
) -> MulticastTree {
    debug_assert_eq!(plan.len(), chain.len());
    let n = cube.dimension();
    let mut recv_step = vec![0u32; chain.len()];
    // Next free step per (sender, port). Under one-port a single logical
    // port (dimension n, never a real channel) is shared by all sends.
    let mut next_free: HashMap<(usize, u8), u32> = HashMap::new();
    // Per (sender, step) transmission counts, for the k-port cap.
    let mut step_load: HashMap<(usize, u32), u8> = HashMap::new();
    let cap = port_model.concurrent_sends(n);
    let mut unicasts = Vec::with_capacity(chain.len().saturating_sub(1));

    // Parents are always planned before their children, so a FIFO pass in
    // discovery order sees recv_step[sender] already settled.
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(0usize);
    while let Some(s) = queue.pop_front() {
        let earliest = recv_step[s] + 1;
        for (order, &d) in plan[s].iter().enumerate() {
            let port = match port_model {
                PortModel::OnePort => n, // one shared logical port
                PortModel::AllPort | PortModel::KPort(_) => {
                    delta_high(chain[s], chain[d])
                        .expect("a send never targets the sender itself")
                        .0
                }
            };
            let slot = next_free.entry((s, port)).or_insert(earliest);
            let mut step = (*slot).max(earliest);
            // k-port cap: at most `cap` transmissions per (sender, step).
            while *step_load.get(&(s, step)).unwrap_or(&0) >= cap {
                step += 1;
            }
            *step_load.entry((s, step)).or_insert(0) += 1;
            *slot = step + 1;
            recv_step[d] = step;
            unicasts.push(Unicast {
                src: from_relative(resolution, n, source, chain[s]),
                dst: from_relative(resolution, n, source, chain[d]),
                step,
                order: order as u32,
            });
            queue.push_back(d);
        }
    }
    MulticastTree::new(cube, resolution, source, unicasts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn one_port_serializes_all_sends() {
        // Source sends to three destinations directly.
        let chain = ids(&[0b000, 0b001, 0b010, 0b100]);
        let plan: SendPlan = vec![vec![1, 2, 3], vec![], vec![], vec![]];
        let t = schedule(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0),
            &chain,
            &plan,
            PortModel::OnePort,
        );
        let mut steps: Vec<u32> = t.unicasts.iter().map(|u| u.step).collect();
        steps.sort_unstable();
        assert_eq!(steps, vec![1, 2, 3]);
        assert_eq!(t.steps, 3);
    }

    #[test]
    fn all_port_parallelizes_distinct_channels() {
        let chain = ids(&[0b000, 0b001, 0b010, 0b100]);
        let plan: SendPlan = vec![vec![1, 2, 3], vec![], vec![], vec![]];
        let t = schedule(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0),
            &chain,
            &plan,
            PortModel::AllPort,
        );
        assert!(t.unicasts.iter().all(|u| u.step == 1));
        assert_eq!(t.steps, 1);
    }

    #[test]
    fn all_port_serializes_same_channel_sends() {
        // Both 0b100 and 0b110 are reached on first channel 2 from 0b000.
        let chain = ids(&[0b000, 0b100, 0b110]);
        let plan: SendPlan = vec![vec![1, 2], vec![], vec![]];
        let t = schedule(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0),
            &chain,
            &plan,
            PortModel::AllPort,
        );
        let by_dst: std::collections::HashMap<_, _> =
            t.unicasts.iter().map(|u| (u.dst, u.step)).collect();
        assert_eq!(by_dst[&NodeId(0b100)], 1);
        assert_eq!(by_dst[&NodeId(0b110)], 2);
    }

    #[test]
    fn forwarding_starts_after_receipt() {
        // 0 → 4 (step 1); 4 → 6 must be step ≥ 2.
        let chain = ids(&[0b000, 0b100, 0b110]);
        let plan: SendPlan = vec![vec![1], vec![2], vec![]];
        let t = schedule(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0),
            &chain,
            &plan,
            PortModel::AllPort,
        );
        let by_dst: std::collections::HashMap<_, _> =
            t.unicasts.iter().map(|u| (u.dst, u.step)).collect();
        assert_eq!(by_dst[&NodeId(0b100)], 1);
        assert_eq!(by_dst[&NodeId(0b110)], 2);
    }

    #[test]
    fn kport_caps_transmissions_per_step() {
        // Source sends to all 4 neighbors in a 4-cube: all-port = 1 step,
        // 2-port = 2 steps, 1-port = 4 steps.
        let chain = ids(&[0b0000, 0b0001, 0b0010, 0b0100, 0b1000]);
        let plan: SendPlan = vec![vec![1, 2, 3, 4], vec![], vec![], vec![], vec![]];
        let steps = |port: PortModel| {
            schedule(
                Cube::of(4),
                Resolution::HighToLow,
                NodeId(0),
                &chain,
                &plan,
                port,
            )
            .steps
        };
        assert_eq!(steps(PortModel::AllPort), 1);
        assert_eq!(steps(PortModel::KPort(2)), 2);
        assert_eq!(steps(PortModel::KPort(1)), 4);
        assert_eq!(steps(PortModel::OnePort), 4);
        assert_eq!(steps(PortModel::KPort(4)), 1);
        // k beyond n clamps to n.
        assert_eq!(steps(PortModel::KPort(9)), 1);
    }

    #[test]
    fn kport_still_serializes_same_channel_sends() {
        // Two sends on the same first channel can't share a step even
        // with spare port capacity.
        let chain = ids(&[0b000, 0b100, 0b110]);
        let plan: SendPlan = vec![vec![1, 2], vec![], vec![]];
        let t = schedule(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0),
            &chain,
            &plan,
            PortModel::KPort(3),
        );
        assert_eq!(t.steps, 2);
    }

    #[test]
    fn relative_chain_maps_back_to_physical_addresses() {
        // Source 0b101: chain element 0b011 is physical 0b110.
        let chain = ids(&[0b000, 0b011]);
        let plan: SendPlan = vec![vec![1], vec![]];
        let t = schedule(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0b101),
            &chain,
            &plan,
            PortModel::AllPort,
        );
        assert_eq!(t.unicasts[0].src, NodeId(0b101));
        assert_eq!(t.unicasts[0].dst, NodeId(0b110));
    }

    #[test]
    fn low_to_high_resolution_maps_through_bit_reversal() {
        // Canonical-relative element 0b001 under LowToHigh in a 3-cube is
        // physical source ⊕ reverse(0b001) = source ⊕ 0b100.
        let chain = ids(&[0b000, 0b001]);
        let plan: SendPlan = vec![vec![1], vec![]];
        let t = schedule(
            Cube::of(3),
            Resolution::LowToHigh,
            NodeId(0b010),
            &chain,
            &plan,
            PortModel::AllPort,
        );
        assert_eq!(t.unicasts[0].dst, NodeId(0b110));
    }
}
