//! Bine trees: an alternative broadcast/allgather tree family built
//! from Jacobsthal-distance peers (extension beyond the paper).
//!
//! The binomial tree doubles the informed set each step by pairing rank
//! `u` with rank `u + 2^s`. A *bine* (binomial-negabinomial) tree also
//! doubles the informed set each step, but the peer distances follow the
//! Jacobsthal sequence `1, 1, 3, 5, 11, 21, 43, 85, 171, 341, …`
//! (`J(s) = (2^s − (−1)^s) / 3`, OEIS A001045) and the *direction* of a
//! rank's send alternates with the parity of the rank itself:
//!
//! * at step `s` (0-based), every informed rank `u` sends to
//!   `u ± J(s+1) (mod N)`;
//! * even ranks start in the positive direction and flip each step
//!   (`+, −, +, …`), odd ranks start negative (`−, +, −, …`).
//!
//! This is the construction of the Fugaku bine-tree simulator
//! (HLC-Lab), restricted to a single dimension: our hypercube's node-id
//! space is treated as one ring of `N = 2^n` ranks, and each resulting
//! unicast travels an ordinary E-cube route. The informed sets stay
//! disjoint, so after `n` steps all `2^n` ranks hold the payload and
//! every rank received it exactly once — [`bine_broadcast`] asserts
//! this while building and the property suite pins it for every cube
//! size and source.
//!
//! Compared to the paper's U-cube/Maxport/W-sort trees, the bine tree
//! trades the hypercube's dimension structure (and its contention-
//! freedom guarantees) for peer distances whose binary expansions
//! alternate, which spreads the later, longer unicasts across many
//! dimensions instead of concentrating them on one. The collectives
//! sweep benchmarks the two families head to head.

use crate::tree::{MulticastTree, Unicast};
use hcube::{Cube, HcubeError, NodeId, Resolution};

/// The Jacobsthal sequence `J(1)..=J(10)`: the peer distance of step
/// `s` (0-based) is `JACOBSTHAL[s]`, supporting cubes up to dimension
/// 10 (1024 nodes).
pub const JACOBSTHAL: [u32; 10] = [1, 1, 3, 5, 11, 21, 43, 85, 171, 341];

/// The send direction of relative rank `rel` at 0-based step `s`: even
/// ranks go `+, −, +, …`, odd ranks `−, +, −, …` (the coordinate-parity
/// rule of the Fugaku simulator, applied to source-relative ranks so
/// the tree is translation-invariant).
#[must_use]
fn direction(rel: u32, s: u32) -> i64 {
    let start: i64 = if rel.is_multiple_of(2) { 1 } else { -1 };
    if s.is_multiple_of(2) {
        start
    } else {
        -start
    }
}

/// Builds the bine broadcast tree: `source` informs all `2^n − 1` other
/// nodes in `n` steps, every informed node sending to its
/// Jacobsthal-distance peer each step.
///
/// The schedule is inherently one-send-per-node-per-step, so the same
/// tree serves both port models (a node never has two sends in one
/// step).
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::bine::bine_broadcast;
///
/// let t = bine_broadcast(Cube::of(4), Resolution::HighToLow, NodeId(3))?;
/// assert_eq!(t.steps, 4);            // doubling: log2(16) steps
/// assert_eq!(t.message_count(), 15); // every other node exactly once
/// # Ok::<(), hcube::HcubeError>(())
/// ```
///
/// # Errors
/// [`HcubeError`] if `source` is outside the cube or the cube exceeds
/// dimension 10 (the supported Jacobsthal range).
///
/// # Panics
/// Never for valid inputs: the disjoint-doubling invariant is checked
/// while building and holds for every cube dimension `≤ 10`.
pub fn bine_broadcast(
    cube: Cube,
    resolution: Resolution,
    source: NodeId,
) -> Result<MulticastTree, HcubeError> {
    cube.check_node(source)?;
    let n = cube.dimension() as usize;
    if n > JACOBSTHAL.len() {
        return Err(HcubeError::BadDimension {
            n: cube.dimension(),
        });
    }
    let p = cube.node_count() as u32;
    let mut informed = vec![false; p as usize];
    informed[0] = true; // relative rank 0 = the source
    let mut sends = vec![0u32; p as usize];
    let mut frontier: Vec<u32> = vec![0];
    let mut unicasts = Vec::with_capacity(p as usize - 1);
    for s in 0..n as u32 {
        let d = i64::from(JACOBSTHAL[s as usize]);
        let mut next = Vec::with_capacity(frontier.len());
        for &rel in &frontier {
            let peer = (i64::from(rel) + direction(rel, s) * d).rem_euclid(i64::from(p)) as u32;
            assert!(
                !informed[peer as usize],
                "bine doubling collided at step {s}: rank {rel} -> {peer}"
            );
            informed[peer as usize] = true;
            unicasts.push(Unicast {
                src: NodeId((source.0 + rel) % p),
                dst: NodeId((source.0 + peer) % p),
                step: s + 1,
                // One send per node per step; the issue order counts the
                // sends this node made so far.
                order: sends[rel as usize],
            });
            sends[rel as usize] += 1;
            next.push(peer);
        }
        frontier.extend(next);
    }
    debug_assert!(informed.iter().all(|&i| i), "bine tree must span the cube");
    Ok(MulticastTree::new(cube, resolution, source, unicasts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{validate, ValidateOptions};
    use crate::PortModel;

    #[test]
    fn spans_every_cube_up_to_dimension_ten() {
        for n in 1..=10u8 {
            let cube = Cube::of(n);
            let t = bine_broadcast(cube, Resolution::HighToLow, NodeId(0)).unwrap();
            assert_eq!(t.steps, u32::from(n), "n={n}");
            assert_eq!(t.message_count(), cube.node_count() - 1, "n={n}");
            for v in cube.nodes() {
                assert!(
                    t.recv_step(v).is_some() || v == NodeId(0),
                    "n={n} missed {v}"
                );
            }
        }
    }

    #[test]
    fn trees_are_structurally_valid_multicasts() {
        for src in [0u32, 1, 5, 12, 15] {
            let cube = Cube::of(4);
            let t = bine_broadcast(cube, Resolution::HighToLow, NodeId(src)).unwrap();
            let dests: Vec<NodeId> = cube.nodes().filter(|&v| v != NodeId(src)).collect();
            let violations = validate(
                &t,
                &dests,
                ValidateOptions {
                    port_model: PortModel::AllPort,
                    forbid_relays: true,
                },
            );
            assert!(violations.is_empty(), "src {src}: {violations:?}");
        }
    }

    #[test]
    fn translation_invariance() {
        // The tree rooted at s is the tree rooted at 0, translated by s
        // on the node-id ring.
        let cube = Cube::of(5);
        let base = bine_broadcast(cube, Resolution::HighToLow, NodeId(0)).unwrap();
        let shifted = bine_broadcast(cube, Resolution::HighToLow, NodeId(7)).unwrap();
        let p = cube.node_count() as u32;
        // The unicast lists are sorted by absolute node id, so compare
        // the translated edge sets rather than positions.
        let translate = |t: &MulticastTree| {
            let mut edges: Vec<(u32, u32, u32)> = t
                .unicasts
                .iter()
                .map(|u| {
                    (
                        (u.src.0 + p - t.source.0) % p,
                        (u.dst.0 + p - t.source.0) % p,
                        u.step,
                    )
                })
                .collect();
            edges.sort_unstable();
            edges
        };
        assert_eq!(translate(&base), translate(&shifted));
    }

    #[test]
    fn early_peers_follow_the_jacobsthal_distances() {
        // Root 0 (even): +1, -1, +3, -5 on the ring.
        let t = bine_broadcast(Cube::of(4), Resolution::HighToLow, NodeId(0)).unwrap();
        let from_root: Vec<(u32, u32)> = t
            .unicasts
            .iter()
            .filter(|u| u.src == NodeId(0))
            .map(|u| (u.step, u.dst.0))
            .collect();
        assert_eq!(from_root, vec![(1, 1), (2, 15), (3, 3), (4, 11)]);
    }

    #[test]
    fn rejects_out_of_range_source_and_oversized_cube() {
        assert!(bine_broadcast(Cube::of(3), Resolution::HighToLow, NodeId(8)).is_err());
        assert!(bine_broadcast(Cube::of(12), Resolution::HighToLow, NodeId(0)).is_err());
    }
}
