//! Multicast trees: the output of every algorithm in this crate.
//!
//! A unicast-based multicast is a tree of unicast messages: the source
//! sends the payload to a subset of the destinations, each recipient
//! forwards it to a further subset, and so on (Section 2 of the paper).
//! [`MulticastTree`] records every constituent unicast together with the
//! *step* in which it is transmitted under the chosen port model.

use hcube::{Cube, NodeId, Path, Resolution};
use std::collections::HashMap;
use std::fmt::Write as _;

/// One constituent unicast `(u, v, P(u, v), t)` of a multicast
/// implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Unicast {
    /// The sending node `u` (the source or an earlier destination).
    pub src: NodeId,
    /// The receiving node `v`.
    pub dst: NodeId,
    /// The communication step `t ≥ 1` in which the message is transmitted.
    ///
    /// A node that receives the payload in step `t` can transmit from step
    /// `t + 1`; the source holds the payload from "step 0".
    pub step: u32,
    /// Issue order at the sender (0-based): the position of this send in
    /// the sequence of sends the algorithm generates at `src`. Drives
    /// software-startup serialization in the simulator.
    pub order: u32,
}

impl Unicast {
    /// The E-cube path of this unicast under the given resolution order.
    #[inline]
    #[must_use]
    pub fn path(&self, resolution: Resolution) -> Path {
        Path::new(resolution, self.src, self.dst)
    }
}

/// A complete scheduled multicast implementation.
///
/// Invariants (checked by [`crate::verify::validate`]):
/// * every destination appears as `dst` of exactly one unicast;
/// * every `src` is the source or a node that received in an earlier step;
/// * `steps` is the maximum step over all unicasts.
#[derive(Clone, Debug)]
pub struct MulticastTree {
    /// The cube the multicast runs in.
    pub cube: Cube,
    /// The router's address-resolution order, needed to reconstruct the
    /// E-cube path of each unicast.
    pub resolution: Resolution,
    /// The multicast source `d₀`.
    pub source: NodeId,
    /// The constituent unicasts, in (step, sender, issue-order) order.
    pub unicasts: Vec<Unicast>,
    /// The total number of steps, `max_t`.
    pub steps: u32,
}

impl MulticastTree {
    /// Builds a tree from raw unicasts, normalizing order and computing
    /// `steps`.
    #[must_use]
    pub fn new(
        cube: Cube,
        resolution: Resolution,
        source: NodeId,
        mut unicasts: Vec<Unicast>,
    ) -> MulticastTree {
        unicasts.sort_by_key(|u| (u.step, u.src, u.order));
        let steps = unicasts.iter().map(|u| u.step).max().unwrap_or(0);
        MulticastTree {
            cube,
            resolution,
            source,
            unicasts,
            steps,
        }
    }

    /// The nodes that receive the payload (every `dst`), in receipt order.
    #[must_use]
    pub fn receivers(&self) -> Vec<NodeId> {
        self.unicasts.iter().map(|u| u.dst).collect()
    }

    /// The step in which `v` receives the payload: 0 for the source,
    /// `Some(t)` for a receiver, `None` for uninvolved nodes.
    #[must_use]
    pub fn recv_step(&self, v: NodeId) -> Option<u32> {
        if v == self.source {
            return Some(0);
        }
        self.unicasts.iter().find(|u| u.dst == v).map(|u| u.step)
    }

    /// Map from each receiver to the unicast that delivered its payload.
    #[must_use]
    pub fn parent_map(&self) -> HashMap<NodeId, Unicast> {
        self.unicasts.iter().map(|u| (u.dst, *u)).collect()
    }

    /// The *reachable set* `R_u` of Definition 3: the nodes that receive
    /// the payload directly or indirectly through `u`, including `u`
    /// itself (the subtree rooted at `u`).
    #[must_use]
    pub fn reachable_set(&self, u: NodeId) -> Vec<NodeId> {
        let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for uc in &self.unicasts {
            children.entry(uc.src).or_default().push(uc.dst);
        }
        let mut out = Vec::new();
        let mut stack = vec![u];
        while let Some(v) = stack.pop() {
            out.push(v);
            if let Some(kids) = children.get(&v) {
                stack.extend(kids.iter().copied());
            }
        }
        out
    }

    /// Subtree sizes in one post-order pass: entry `i` is
    /// `|reachable_set(unicasts[i].dst)|`, the node count of the subtree
    /// delivered through unicast `i` (including its `dst`).
    ///
    /// Unicasts are sorted by `(step, src, order)` and a node's outbound
    /// unicasts are always scheduled at least one step after its inbound
    /// one, so child edges follow their parent edge in the sorted order;
    /// a single reverse sweep accumulates every subtree without the
    /// per-edge DFS (and per-edge allocation) of calling
    /// [`reachable_set`](MulticastTree::reachable_set) in a loop.
    #[must_use]
    pub fn subtree_sizes(&self) -> Vec<usize> {
        let inbound: HashMap<NodeId, usize> = self
            .unicasts
            .iter()
            .enumerate()
            .map(|(i, u)| (u.dst, i))
            .collect();
        let mut sizes = vec![1usize; self.unicasts.len()];
        for i in (0..self.unicasts.len()).rev() {
            if let Some(&p) = inbound.get(&self.unicasts[i].src) {
                sizes[p] += sizes[i];
            }
        }
        sizes
    }

    /// Number of unicast messages in the implementation (the paper calls
    /// this "traffic" in related work; each unicast occupies `‖u ⊕ v‖`
    /// channels).
    #[must_use]
    pub fn message_count(&self) -> usize {
        self.unicasts.len()
    }

    /// Total channel-occupations: `Σ ‖u ⊕ v‖` over constituent unicasts.
    #[must_use]
    pub fn channel_load(&self) -> u64 {
        self.unicasts
            .iter()
            .map(|u| u64::from(u.src.distance(u.dst)))
            .sum()
    }

    /// Nodes whose *local processor* handles the payload without being the
    /// source or a requested destination.
    ///
    /// For the wormhole algorithms this is always empty — intermediate
    /// routers relay without processor involvement. The store-and-forward
    /// baseline ([`crate::Algorithm::DimTree`]) reports its relays here.
    #[must_use]
    pub fn relays(&self, dests: &[NodeId]) -> Vec<NodeId> {
        use std::collections::HashSet;
        let wanted: HashSet<NodeId> = dests.iter().copied().collect();
        let mut relays: Vec<NodeId> = self
            .receivers()
            .into_iter()
            .filter(|v| !wanted.contains(v) && *v != self.source)
            .collect();
        relays.sort_unstable();
        relays.dedup();
        relays
    }

    /// Serializes the tree as pretty JSON (hand-written; the workspace
    /// carries no serialization dependency).
    ///
    /// The output is a flat object — cube dimension, resolution order,
    /// source, step count, and one record per constituent unicast — so
    /// external tooling can consume trees without knowing this crate.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"cube\": {},", self.cube.dimension());
        let _ = writeln!(out, "  \"resolution\": \"{:?}\",", self.resolution);
        let _ = writeln!(out, "  \"source\": {},", self.source.0);
        let _ = writeln!(out, "  \"steps\": {},", self.steps);
        out.push_str("  \"unicasts\": [");
        for (i, u) in self.unicasts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"src\": {}, \"dst\": {}, \"step\": {}, \"order\": {}}}",
                u.src.0, u.dst.0, u.step, u.order
            );
        }
        if self.unicasts.is_empty() {
            out.push_str("]\n");
        } else {
            out.push_str("\n  ]\n");
        }
        out.push('}');
        out
    }

    /// Renders the tree in Graphviz DOT format: nodes labeled with binary
    /// addresses, edges labeled with their step, intermediate E-cube
    /// routers drawn as points on multi-hop unicasts.
    #[must_use]
    pub fn to_dot(&self) -> String {
        use hcube::Path;
        let n = self.cube.dimension();
        let mut out = String::from("digraph multicast {\n  rankdir=TB;\n");
        let _ = writeln!(
            out,
            "  \"{}\" [shape=doublecircle,label=\"{}\"];",
            self.source.0,
            self.source.binary(n)
        );
        for u in &self.unicasts {
            let _ = writeln!(out, "  \"{}\" [label=\"{}\"];", u.dst.0, u.dst.binary(n));
            let path = Path::new(self.resolution, u.src, u.dst);
            if path.hops() <= 1 {
                let _ = writeln!(
                    out,
                    "  \"{}\" -> \"{}\" [label=\"{}\"];",
                    u.src.0, u.dst.0, u.step
                );
            } else {
                // Show router pass-throughs as small unlabeled points.
                let nodes: Vec<_> = path.nodes().collect();
                for w in nodes.windows(2) {
                    let (a, b) = (w[0], w[1]);
                    if b != u.dst {
                        let _ =
                            writeln!(out, "  \"r{}_{}\" [shape=point,label=\"\"];", u.dst.0, b.0);
                    }
                    let aa = if a == u.src {
                        format!("\"{}\"", a.0)
                    } else {
                        format!("\"r{}_{}\"", u.dst.0, a.0)
                    };
                    let bb = if b == u.dst {
                        format!("\"{}\"", b.0)
                    } else {
                        format!("\"r{}_{}\"", u.dst.0, b.0)
                    };
                    if a == u.src {
                        let _ = writeln!(out, "  \"{}\" -> {bb} [label=\"{}\"];", a.0, u.step);
                    } else {
                        let _ = writeln!(out, "  {aa} -> {bb};");
                    }
                }
            }
        }
        out.push_str("}\n");
        out
    }

    /// Renders the tree as an indented ASCII outline, one line per
    /// unicast, in the style of the paper's figures.
    #[must_use]
    pub fn render(&self) -> String {
        let n = self.cube.dimension();
        let mut children: HashMap<NodeId, Vec<&Unicast>> = HashMap::new();
        for u in &self.unicasts {
            children.entry(u.src).or_default().push(u);
        }
        for v in children.values_mut() {
            v.sort_by_key(|u| (u.step, u.order));
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} (source)", self.source.binary(n));
        fn rec(
            out: &mut String,
            children: &HashMap<NodeId, Vec<&Unicast>>,
            at: NodeId,
            depth: usize,
            n: u8,
        ) {
            if let Some(kids) = children.get(&at) {
                for u in kids {
                    let _ = writeln!(
                        out,
                        "{:indent$}└─[step {}]→ {}",
                        "",
                        u.step,
                        u.dst.binary(n),
                        indent = depth * 4
                    );
                    rec(out, children, u.dst, depth + 1, n);
                }
            }
        }
        rec(&mut out, &children, self.source, 1, n);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::Cube;

    fn sample_tree() -> MulticastTree {
        // 0 →(1) 4; 0 →(2) 1; 4 →(2) 6
        let u = |src: u32, dst: u32, step: u32, order: u32| Unicast {
            src: NodeId(src),
            dst: NodeId(dst),
            step,
            order,
        };
        MulticastTree::new(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0),
            vec![u(0, 1, 2, 1), u(0, 4, 1, 0), u(4, 6, 2, 0)],
        )
    }

    #[test]
    fn new_normalizes_and_counts_steps() {
        let t = sample_tree();
        assert_eq!(t.steps, 2);
        assert_eq!(t.unicasts[0].dst, NodeId(4)); // sorted by step first
        assert_eq!(t.message_count(), 3);
    }

    #[test]
    fn recv_steps() {
        let t = sample_tree();
        assert_eq!(t.recv_step(NodeId(0)), Some(0));
        assert_eq!(t.recv_step(NodeId(4)), Some(1));
        assert_eq!(t.recv_step(NodeId(6)), Some(2));
        assert_eq!(t.recv_step(NodeId(5)), None);
    }

    #[test]
    fn reachable_sets_match_definition_3() {
        let t = sample_tree();
        let mut r0 = t.reachable_set(NodeId(0));
        r0.sort_unstable();
        assert_eq!(r0, vec![NodeId(0), NodeId(1), NodeId(4), NodeId(6)]);
        let mut r4 = t.reachable_set(NodeId(4));
        r4.sort_unstable();
        assert_eq!(r4, vec![NodeId(4), NodeId(6)]);
        assert_eq!(t.reachable_set(NodeId(1)), vec![NodeId(1)]);
    }

    #[test]
    fn subtree_sizes_match_reachable_sets() {
        let t = sample_tree();
        let sizes = t.subtree_sizes();
        assert_eq!(sizes.len(), t.unicasts.len());
        for (u, &s) in t.unicasts.iter().zip(&sizes) {
            assert_eq!(s, t.reachable_set(u.dst).len(), "subtree of {:?}", u.dst);
        }
    }

    #[test]
    fn channel_load_sums_distances() {
        let t = sample_tree();
        // 0→4: 1 hop, 0→1: 1 hop, 4→6: 1 hop
        assert_eq!(t.channel_load(), 3);
    }

    #[test]
    fn relays_empty_when_all_receivers_are_destinations() {
        let t = sample_tree();
        let dests = [NodeId(1), NodeId(4), NodeId(6)];
        assert!(t.relays(&dests).is_empty());
        // If 4 was not a requested destination it is a relay.
        let dests = [NodeId(1), NodeId(6)];
        assert_eq!(t.relays(&dests), vec![NodeId(4)]);
    }

    #[test]
    fn dot_export_is_well_formed() {
        let t = sample_tree();
        let dot = t.to_dot();
        assert!(dot.starts_with("digraph multicast {"));
        assert!(dot.trim_end().ends_with('}'));
        // Every receiver node declared; source double-circled.
        assert!(dot.contains("doublecircle"));
        for u in &t.unicasts {
            assert!(dot.contains(&format!("\"{}\"", u.dst.0)));
        }
        // Balanced braces and quotes.
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert_eq!(dot.matches('"').count() % 2, 0);
    }

    #[test]
    fn dot_export_multihop_has_router_points() {
        // 0 → 7 is 3 hops: two router pass-through points.
        let t = MulticastTree::new(
            Cube::of(3),
            Resolution::HighToLow,
            NodeId(0),
            vec![Unicast {
                src: NodeId(0),
                dst: NodeId(7),
                step: 1,
                order: 0,
            }],
        );
        let dot = t.to_dot();
        assert_eq!(dot.matches("shape=point").count(), 2);
    }

    #[test]
    fn render_contains_every_receiver() {
        let t = sample_tree();
        let s = t.render();
        assert!(s.contains("000 (source)"));
        assert!(s.contains("100"));
        assert!(s.contains("110"));
        assert!(s.contains("[step 2]"));
    }
}
