//! # hypercast — collective data distribution in all-port wormhole-routed hypercubes
//!
//! A from-scratch implementation of the multicast algorithms and
//! contention theory of Robinson, Judd, McKinley & Cheng, *Efficient
//! Collective Data Distribution in All-Port Wormhole-Routed Hypercubes*
//! (Supercomputing '93):
//!
//! * [`Algorithm`] — the four compared tree-construction algorithms
//!   (**U-cube**, **Maxport**, **Combine**, **W-sort**) plus the
//!   separate-addressing and store-and-forward baselines, all scheduled
//!   under either [`PortModel`];
//! * [`algorithms::weighted_sort`] — the Figure 7 permutation with
//!   Theorem 5's guarantees;
//! * [`contention`] — the exact Definition 4 contention-freedom checker;
//! * [`verify`] — structural tree validation shared by the test suites;
//! * [`repair`] — fault-tolerant tree repair around dead links and nodes
//!   (robustness extension beyond the paper);
//! * [`bounds`] — step lower bounds and an exact port-limited optimum for
//!   small instances;
//! * [`collectives`] — broadcast / reduction / barrier plus the full
//!   MPI-style suite (allgather, reduce-scatter, allreduce) on cube and
//!   torus (extension beyond the paper);
//! * [`bine`] — the Jacobsthal-distance bine broadcast tree, an
//!   alternative tree family benchmarked against the paper's;
//! * [`oracle`] — a symbolic data oracle that replays collective
//!   schedules and asserts every node ends with exactly the right
//!   blocks.
//!
//! Timing-level evaluation (the paper's Figures 11–14) lives in the
//! companion `wormsim` crate, which replays these trees through a
//! discrete-event wormhole network model.
//!
//! ## Quick example
//!
//! ```
//! use hcube::{Cube, NodeId, Resolution};
//! use hypercast::{Algorithm, PortModel};
//!
//! // The multicast of the paper's Figure 3: source 0000, 8 destinations.
//! let dests: Vec<NodeId> = [0b0001u32, 0b0011, 0b0101, 0b0111,
//!                           0b1011, 0b1100, 0b1110, 0b1111]
//!     .into_iter().map(NodeId).collect();
//! let tree = Algorithm::WSort
//!     .build(Cube::of(4), Resolution::HighToLow, PortModel::AllPort,
//!            NodeId(0), &dests)
//!     .unwrap();
//! assert_eq!(tree.steps, 2); // Figure 3(e): optimal on all-port
//! assert!(hypercast::contention::is_contention_free(&tree)); // Theorem 6
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod algorithms;
pub mod bine;
pub mod bounds;
pub mod cache;
pub mod collectives;
pub mod contention;
pub mod oracle;
pub mod protocol;
pub mod repair;
pub mod schedule;
pub mod tree;
pub mod verify;

pub use algorithms::Algorithm;
pub use bine::bine_broadcast;
pub use cache::{CacheStats, StoreStats, TreeCache, TreeKey, TreeStore};
pub use collectives::{
    CollectiveKind, CollectiveOp, CollectiveSchedule, Segments, Transfer, TreeFamily,
};
pub use protocol::RetryPolicy;
pub use repair::{NetworkFaults, RepairOutcome};
pub use schedule::PortModel;
pub use tree::{MulticastTree, Unicast};
