//! Collective operations built on the multicast trees (extension beyond
//! the paper).
//!
//! The paper motivates multicast as the building block for the collective
//! routines of MPI-style libraries. This module derives the three classic
//! companions from any multicast tree:
//!
//! * **broadcast** — multicast to every other node;
//! * **reduction / gather** — the multicast tree run *in reverse*: each
//!   node sends its contribution to its tree parent after hearing from
//!   all its tree children (the step schedule is the mirror image of the
//!   multicast schedule, so the same contention-freedom arguments apply
//!   to the reversed channels);
//! * **barrier** — a reduction to the root followed by a broadcast from
//!   it.
//!
//! Beyond the single-tree companions, the module provides the full
//! MPI-style suite as explicit [`CollectiveSchedule`]s — **allgather**,
//! **reduce-scatter**, and **allreduce** — buildable from any
//! [`TreeFamily`] (the paper's algorithms or the Jacobsthal-distance
//! [bine tree](crate::bine)) on the hypercube, and from separate
//! addressing on *any* [`Topology`] (the torus backend). Every schedule
//! records, per constituent unicast, which data segments it carries and
//! whether the receiver combines or copies them, so the
//! [data oracle](crate::oracle) can replay the schedule symbolically
//! and assert that every node ends with exactly the right blocks.

use crate::algorithms::Algorithm;
use crate::bine::bine_broadcast;
use crate::cache::TreeCache;
use crate::schedule::PortModel;
use crate::tree::{MulticastTree, Unicast};
use hcube::{Cube, HcubeError, NodeId, Resolution, Topology};
use std::collections::HashMap;

/// Builds a broadcast (multicast to all `N − 1` other nodes) with the
/// given algorithm.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::{collectives::broadcast, Algorithm, PortModel};
///
/// let t = broadcast(Algorithm::WSort, Cube::of(4), Resolution::HighToLow,
///                   PortModel::AllPort, NodeId(0))?;
/// assert_eq!(t.message_count(), 15);
/// assert_eq!(t.steps, 4); // the spanning binomial tree
/// # Ok::<(), hcube::HcubeError>(())
/// ```
///
/// # Errors
/// Propagates [`Algorithm::build`] errors (out-of-range source).
pub fn broadcast(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    source: NodeId,
) -> Result<MulticastTree, HcubeError> {
    cube.check_node(source)?;
    let dests: Vec<NodeId> = cube.nodes().filter(|&v| v != source).collect();
    algo.build(cube, resolution, port_model, source, &dests)
}

/// A reduction (gather-with-combine) schedule: the mirror image of a
/// multicast tree.
#[derive(Clone, Debug)]
pub struct ReductionSchedule {
    /// The node at which contributions accumulate.
    pub root: NodeId,
    /// Constituent unicasts; `src` is the contributor, `dst` its tree
    /// parent. Sorted by step.
    pub unicasts: Vec<Unicast>,
    /// Total number of steps.
    pub steps: u32,
}

impl ReductionSchedule {
    /// Derives the reduction schedule from a multicast tree: every tree
    /// edge is reversed and its step mirrored (`t ↦ steps + 1 − t`), so a
    /// node transmits to its parent strictly after all of its children
    /// transmitted to it.
    #[must_use]
    pub fn from_multicast(tree: &MulticastTree) -> ReductionSchedule {
        let steps = tree.steps;
        let mut unicasts: Vec<Unicast> = tree
            .unicasts
            .iter()
            .map(|u| Unicast {
                src: u.dst,
                dst: u.src,
                step: steps + 1 - u.step,
                order: u.order,
            })
            .collect();
        unicasts.sort_by_key(|u| (u.step, u.src, u.order));
        ReductionSchedule {
            root: tree.source,
            unicasts,
            steps,
        }
    }

    /// Checks the combining constraint: every node sends to its parent
    /// only after hearing from all of its own children.
    #[must_use]
    pub fn is_causal(&self) -> bool {
        self.unicasts.iter().all(|up| {
            self.unicasts
                .iter()
                .filter(|down| down.dst == up.src)
                .all(|down| down.step < up.step)
        })
    }
}

/// A barrier schedule: reduce to the root, then broadcast from it.
#[derive(Clone, Debug)]
pub struct BarrierSchedule {
    /// Phase 1: all nodes report in.
    pub reduce: ReductionSchedule,
    /// Phase 2: the root releases everyone.
    pub release: MulticastTree,
}

impl BarrierSchedule {
    /// Total steps across both phases.
    #[must_use]
    pub fn steps(&self) -> u32 {
        self.reduce.steps + self.release.steps
    }
}

/// A personalized-communication (scatter) schedule: the root sends a
/// *distinct* block to every destination, so a unicast to a subtree root
/// carries all of its subtree's blocks (extension beyond the paper,
/// following the personalized-communication line of its reference \[5]).
#[derive(Clone, Debug)]
pub struct ScatterSchedule {
    /// The underlying multicast tree (who forwards to whom, and when).
    pub tree: MulticastTree,
    /// Payload bytes carried by each unicast, parallel to
    /// `tree.unicasts`: `block_bytes × |subtree(dst)|`.
    pub bytes_per_edge: Vec<u64>,
}

impl ScatterSchedule {
    /// Total bytes injected by the root: exactly `m × block_bytes`
    /// regardless of tree shape (every block leaves the root once).
    #[must_use]
    pub fn root_bytes(&self) -> u64 {
        self.tree
            .unicasts
            .iter()
            .zip(&self.bytes_per_edge)
            .filter(|(u, _)| u.src == self.tree.source)
            .map(|(_, &b)| b)
            .sum()
    }

    /// Total bytes crossing all channels (forwarding inflation): deeper
    /// trees re-transmit blocks more often.
    #[must_use]
    pub fn network_bytes(&self) -> u64 {
        self.tree
            .unicasts
            .iter()
            .zip(&self.bytes_per_edge)
            .map(|(u, &b)| b * u64::from(u.src.distance(u.dst)))
            .sum()
    }
}

/// Builds a scatter schedule on `algo`'s multicast tree: each of the `m`
/// destinations is to receive its own `block_bytes`-byte block.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn scatter(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    source: NodeId,
    dests: &[NodeId],
    block_bytes: u32,
) -> Result<ScatterSchedule, HcubeError> {
    let tree = algo.build(cube, resolution, port_model, source, dests)?;
    // One post-order pass over the edge list; calling `reachable_set`
    // per unicast would re-walk the whole tree for every edge (O(V·E)).
    let bytes_per_edge = tree
        .subtree_sizes()
        .into_iter()
        .map(|s| u64::from(block_bytes) * s as u64)
        .collect();
    Ok(ScatterSchedule {
        tree,
        bytes_per_edge,
    })
}

/// A gather schedule: the inverse of [`scatter`] — every destination
/// owns a distinct `block_bytes` block and the blocks *concatenate*
/// toward the root, so an edge toward the root carries its subtree's
/// accumulated blocks.
#[derive(Clone, Debug)]
pub struct GatherSchedule {
    /// The node collecting all blocks.
    pub root: NodeId,
    /// Constituent unicasts (`src` = contributor side), sorted by step.
    pub unicasts: Vec<Unicast>,
    /// Payload bytes per unicast, parallel to `unicasts`.
    pub bytes_per_edge: Vec<u64>,
    /// Total steps.
    pub steps: u32,
}

/// Builds a concatenation gather on `algo`'s multicast tree, mirrored:
/// each participant sends once, after hearing from all of its own tree
/// children, carrying its subtree's blocks.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn gather(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    root: NodeId,
    sources: &[NodeId],
    block_bytes: u32,
) -> Result<GatherSchedule, HcubeError> {
    let tree = algo.build(cube, resolution, port_model, root, sources)?;
    let reduction = ReductionSchedule::from_multicast(&tree);
    // In the mirrored tree, the message from v to its parent carries v's
    // whole multicast subtree worth of blocks. A single post-order pass
    // sizes every subtree at once; the reduction reorders the edges, so
    // index the sizes by the receiving node of the original tree edge.
    let size_of: HashMap<NodeId, usize> = tree
        .unicasts
        .iter()
        .zip(tree.subtree_sizes())
        .map(|(u, s)| (u.dst, s))
        .collect();
    let bytes_per_edge = reduction
        .unicasts
        .iter()
        .map(|u| u64::from(block_bytes) * size_of[&u.src] as u64)
        .collect();
    Ok(GatherSchedule {
        root,
        unicasts: reduction.unicasts,
        bytes_per_edge,
        steps: reduction.steps,
    })
}

/// Builds the `N` broadcast trees of an all-to-all broadcast (allgather):
/// every node broadcasts its block to everyone, all operations running
/// concurrently. Feed the trees to
/// `wormsim::simulate_concurrent_multicasts` to measure the composite.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn all_to_all_broadcast(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
) -> Result<Vec<MulticastTree>, HcubeError> {
    cube.nodes()
        .map(|src| broadcast(algo, cube, resolution, port_model, src))
        .collect()
}

/// Builds a full-machine barrier at `root` using `algo` for both the
/// gather tree and the release broadcast.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn barrier(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    root: NodeId,
) -> Result<BarrierSchedule, HcubeError> {
    let release = broadcast(algo, cube, resolution, port_model, root)?;
    let reduce = ReductionSchedule::from_multicast(&release);
    Ok(BarrierSchedule { reduce, release })
}

/// A family of broadcast trees usable as the skeleton of a collective:
/// the paper's algorithms, or the Jacobsthal-distance bine tree.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TreeFamily {
    /// One of the paper's tree-construction [`Algorithm`]s.
    Alg(Algorithm),
    /// The bine tree ([`crate::bine`]): ring-distance doubling, one send
    /// per node per step, so the port model is irrelevant to its shape.
    Bine,
}

impl TreeFamily {
    /// The families the collectives sweep compares on the hypercube.
    pub const SWEEP: [TreeFamily; 5] = [
        TreeFamily::Alg(Algorithm::UCube),
        TreeFamily::Alg(Algorithm::Maxport),
        TreeFamily::Alg(Algorithm::WSort),
        TreeFamily::Bine,
        TreeFamily::Alg(Algorithm::Separate),
    ];

    /// Display name used in tables and figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TreeFamily::Alg(a) => a.name(),
            TreeFamily::Bine => "Bine",
        }
    }

    /// Builds the family's broadcast tree from `source` to every other
    /// node. [`Algorithm`] trees go through `cache` when one is supplied
    /// (bine trees are cheap to build and bypass it).
    ///
    /// # Errors
    /// Propagates [`Algorithm::build`] / [`bine_broadcast`] errors.
    pub fn broadcast_tree(
        self,
        cube: Cube,
        resolution: Resolution,
        port_model: PortModel,
        source: NodeId,
        cache: Option<&mut TreeCache>,
    ) -> Result<MulticastTree, HcubeError> {
        match self {
            TreeFamily::Alg(algo) => match cache {
                Some(cache) => {
                    cube.check_node(source)?;
                    let dests: Vec<NodeId> = cube.nodes().filter(|&v| v != source).collect();
                    let tree =
                        cache.get_or_build(algo, cube, resolution, port_model, source, &dests)?;
                    Ok((*tree).clone())
                }
                None => broadcast(algo, cube, resolution, port_model, source),
            },
            TreeFamily::Bine => bine_broadcast(cube, resolution, source),
        }
    }
}

/// The collective operations of the full suite.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CollectiveKind {
    /// Every node ends with every node's block.
    Allgather,
    /// Every node ends with the reduction of segment `v` over all nodes.
    ReduceScatter,
    /// Every node ends with the full element-wise reduction.
    Allreduce,
}

impl CollectiveKind {
    /// All three collectives, in sweep order.
    pub const ALL: [CollectiveKind; 3] = [
        CollectiveKind::Allgather,
        CollectiveKind::ReduceScatter,
        CollectiveKind::Allreduce,
    ];

    /// Display name used in tables and the sweep artifact.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Allgather => "allgather",
            CollectiveKind::ReduceScatter => "reduce-scatter",
            CollectiveKind::Allreduce => "allreduce",
        }
    }
}

/// Which data segments a collective unicast carries. Buffers are modeled
/// as `N` equal segments, one per node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Segments {
    /// A single segment, identified by the owning node's id.
    One(u32),
    /// The whole `N`-segment vector (allreduce phases).
    All,
}

/// What the receiver does with an arriving payload.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transfer {
    /// Replace the receiver's segment(s) with the sender's (broadcast
    /// and allgather data movement).
    Copy,
    /// Element-wise combine into the receiver's segment(s) (reduction
    /// data movement).
    Combine,
}

/// One unicast of a [`CollectiveSchedule`], annotated with the data it
/// moves and the operations it must wait for.
#[derive(Clone, Debug)]
pub struct CollectiveOp {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// 1-based schedule step (concurrent trees share the step axis).
    pub step: u32,
    /// The segment(s) carried.
    pub segments: Segments,
    /// Combine or copy at the receiver.
    pub transfer: Transfer,
    /// Indices (into the schedule's `ops`) whose payloads must have
    /// arrived at `src` before this op can issue.
    pub deps: Vec<usize>,
    /// Payload bytes.
    pub bytes: u32,
}

/// A complete collective schedule: an explicit DAG of annotated unicasts
/// that the [data oracle](crate::oracle) can replay symbolically and the
/// wormhole engine can execute as a dependency workload.
#[derive(Clone, Debug)]
pub struct CollectiveSchedule {
    /// Which collective this schedule implements.
    pub kind: CollectiveKind,
    /// Number of participating nodes (= number of buffer segments).
    pub nodes: u32,
    /// Bytes per segment.
    pub block_bytes: u32,
    /// Total steps (max over concurrent trees / phases).
    pub steps: u32,
    /// The constituent unicasts, sorted by `(step, src)`.
    pub ops: Vec<CollectiveOp>,
}

impl CollectiveSchedule {
    /// Total payload bytes injected across all constituent unicasts.
    #[must_use]
    pub fn payload_bytes(&self) -> u64 {
        self.ops.iter().map(|op| u64::from(op.bytes)).sum()
    }
}

/// The whole-vector payload of an allreduce phase, in bytes.
fn full_vector_bytes(nodes: u32, block_bytes: u32) -> u32 {
    u32::try_from(u64::from(nodes) * u64::from(block_bytes))
        .expect("allreduce vector exceeds u32 bytes")
}

/// Builds an allgather: `N` concurrent broadcast trees of `family`, one
/// rooted at each node, each moving its root's block to everyone.
///
/// # Errors
/// Propagates [`TreeFamily::broadcast_tree`] errors.
pub fn allgather(
    family: TreeFamily,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    block_bytes: u32,
    mut cache: Option<&mut TreeCache>,
) -> Result<CollectiveSchedule, HcubeError> {
    let mut ops = Vec::new();
    let mut steps = 0;
    for src in cube.nodes() {
        let tree =
            family.broadcast_tree(cube, resolution, port_model, src, cache.as_deref_mut())?;
        steps = steps.max(tree.steps);
        // Within one tree a forwarder depends on the op that delivered
        // the block to it; `unicasts` is step-sorted, so the inbound op
        // is always indexed before its dependents.
        let mut inbound: HashMap<NodeId, usize> = HashMap::new();
        for u in &tree.unicasts {
            let deps = inbound.get(&u.src).map_or_else(Vec::new, |&i| vec![i]);
            let idx = ops.len();
            ops.push(CollectiveOp {
                src: u.src,
                dst: u.dst,
                step: u.step,
                segments: Segments::One(src.0),
                transfer: Transfer::Copy,
                deps,
                bytes: block_bytes,
            });
            inbound.insert(u.dst, idx);
        }
    }
    Ok(CollectiveSchedule {
        kind: CollectiveKind::Allgather,
        nodes: cube.node_count() as u32,
        block_bytes,
        steps,
        ops,
    })
}

/// Builds a reduce-scatter: `N` concurrent mirrored reductions of
/// `family`'s trees, the one rooted at `r` combining everyone's segment
/// `r` toward node `r`.
///
/// # Errors
/// Propagates [`TreeFamily::broadcast_tree`] errors.
pub fn reduce_scatter(
    family: TreeFamily,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    block_bytes: u32,
    mut cache: Option<&mut TreeCache>,
) -> Result<CollectiveSchedule, HcubeError> {
    let mut ops = Vec::new();
    let mut steps = 0;
    for root in cube.nodes() {
        let tree =
            family.broadcast_tree(cube, resolution, port_model, root, cache.as_deref_mut())?;
        let red = ReductionSchedule::from_multicast(&tree);
        steps = steps.max(red.steps);
        // A contributor combines all of its children's payloads before
        // sending; the mirror construction makes those arrive at
        // strictly earlier steps (`is_causal`), hence earlier indices.
        let mut inbound: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for u in &red.unicasts {
            let deps = inbound.get(&u.src).cloned().unwrap_or_default();
            let idx = ops.len();
            ops.push(CollectiveOp {
                src: u.src,
                dst: u.dst,
                step: u.step,
                segments: Segments::One(root.0),
                transfer: Transfer::Combine,
                deps,
                bytes: block_bytes,
            });
            inbound.entry(u.dst).or_default().push(idx);
        }
    }
    Ok(CollectiveSchedule {
        kind: CollectiveKind::ReduceScatter,
        nodes: cube.node_count() as u32,
        block_bytes,
        steps,
        ops,
    })
}

/// Builds an allreduce: reduce the whole vector to `root` along
/// `family`'s mirrored tree, then broadcast the result back along the
/// same tree. Both phases carry the full `N × block_bytes` vector.
///
/// # Errors
/// Propagates [`TreeFamily::broadcast_tree`] errors.
///
/// # Panics
/// If the full vector exceeds `u32::MAX` bytes.
pub fn allreduce(
    family: TreeFamily,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    root: NodeId,
    block_bytes: u32,
    cache: Option<&mut TreeCache>,
) -> Result<CollectiveSchedule, HcubeError> {
    let nodes = cube.node_count() as u32;
    let full = full_vector_bytes(nodes, block_bytes);
    let tree = family.broadcast_tree(cube, resolution, port_model, root, cache)?;
    let red = ReductionSchedule::from_multicast(&tree);
    let mut ops = Vec::with_capacity(2 * tree.unicasts.len());
    let mut inbound_red: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for u in &red.unicasts {
        let deps = inbound_red.get(&u.src).cloned().unwrap_or_default();
        let idx = ops.len();
        ops.push(CollectiveOp {
            src: u.src,
            dst: u.dst,
            step: u.step,
            segments: Segments::All,
            transfer: Transfer::Combine,
            deps,
            bytes: full,
        });
        inbound_red.entry(u.dst).or_default().push(idx);
    }
    // Phase 2: the root's sends wait for the entire reduction to reach
    // it; every other forwarder waits for its own broadcast delivery.
    let root_deps = inbound_red.remove(&root).unwrap_or_default();
    let mut inbound_bcast: HashMap<NodeId, usize> = HashMap::new();
    for u in &tree.unicasts {
        let deps = if u.src == root {
            root_deps.clone()
        } else {
            vec![inbound_bcast[&u.src]]
        };
        let idx = ops.len();
        ops.push(CollectiveOp {
            src: u.src,
            dst: u.dst,
            step: red.steps + u.step,
            segments: Segments::All,
            transfer: Transfer::Copy,
            deps,
            bytes: full,
        });
        inbound_bcast.insert(u.dst, idx);
    }
    Ok(CollectiveSchedule {
        kind: CollectiveKind::Allreduce,
        nodes,
        block_bytes,
        steps: red.steps + tree.steps,
        ops,
    })
}

/// Builds a separate-addressing allgather on *any* topology: every node
/// sends its block directly to every other node in one step. This is the
/// baseline the torus rows of the collectives sweep use.
pub fn allgather_separate<T: Topology>(topo: &T, block_bytes: u32) -> CollectiveSchedule {
    let nodes = topo.node_count() as u32;
    let mut ops = Vec::with_capacity((nodes as usize) * (nodes as usize - 1));
    for src in 0..nodes {
        for dst in 0..nodes {
            if src != dst {
                ops.push(CollectiveOp {
                    src: NodeId(src),
                    dst: NodeId(dst),
                    step: 1,
                    segments: Segments::One(src),
                    transfer: Transfer::Copy,
                    deps: Vec::new(),
                    bytes: block_bytes,
                });
            }
        }
    }
    CollectiveSchedule {
        kind: CollectiveKind::Allgather,
        nodes,
        block_bytes,
        steps: 1,
        ops,
    }
}

/// Builds a separate-addressing reduce-scatter on *any* topology: every
/// node sends segment `r` directly to node `r`, which combines the
/// `N − 1` arrivals with its own segment.
pub fn reduce_scatter_separate<T: Topology>(topo: &T, block_bytes: u32) -> CollectiveSchedule {
    let nodes = topo.node_count() as u32;
    let mut ops = Vec::with_capacity((nodes as usize) * (nodes as usize - 1));
    for src in 0..nodes {
        for root in 0..nodes {
            if src != root {
                ops.push(CollectiveOp {
                    src: NodeId(src),
                    dst: NodeId(root),
                    step: 1,
                    segments: Segments::One(root),
                    transfer: Transfer::Combine,
                    deps: Vec::new(),
                    bytes: block_bytes,
                });
            }
        }
    }
    CollectiveSchedule {
        kind: CollectiveKind::ReduceScatter,
        nodes,
        block_bytes,
        steps: 1,
        ops,
    }
}

/// Builds a separate-addressing allreduce on *any* topology: all nodes
/// send their full vector to `root` (which combines), then `root` sends
/// the result back to everyone.
///
/// # Panics
/// If `root` is outside the topology, or the full vector exceeds
/// `u32::MAX` bytes.
pub fn allreduce_separate<T: Topology>(
    topo: &T,
    root: NodeId,
    block_bytes: u32,
) -> CollectiveSchedule {
    let nodes = topo.node_count() as u32;
    assert!(root.0 < nodes, "allreduce root {root} outside the topology");
    let full = full_vector_bytes(nodes, block_bytes);
    let mut ops = Vec::with_capacity(2 * (nodes as usize - 1));
    for src in 0..nodes {
        if src != root.0 {
            ops.push(CollectiveOp {
                src: NodeId(src),
                dst: root,
                step: 1,
                segments: Segments::All,
                transfer: Transfer::Combine,
                deps: Vec::new(),
                bytes: full,
            });
        }
    }
    let gather_deps: Vec<usize> = (0..ops.len()).collect();
    for dst in 0..nodes {
        if dst != root.0 {
            ops.push(CollectiveOp {
                src: root,
                dst: NodeId(dst),
                step: 2,
                segments: Segments::All,
                transfer: Transfer::Copy,
                deps: gather_deps.clone(),
                bytes: full,
            });
        }
    }
    CollectiveSchedule {
        kind: CollectiveKind::Allreduce,
        nodes,
        block_bytes,
        steps: 2,
        ops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_every_node() {
        for algo in Algorithm::PAPER {
            let t = broadcast(
                algo,
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(5),
            )
            .unwrap();
            for v in Cube::of(4).nodes() {
                if v != NodeId(5) {
                    assert!(t.recv_step(v).is_some(), "{algo} missed {v}");
                }
            }
            assert_eq!(t.message_count(), 15);
        }
    }

    #[test]
    fn reduction_mirrors_the_tree() {
        let t = broadcast(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let r = ReductionSchedule::from_multicast(&t);
        assert_eq!(r.root, NodeId(0));
        assert_eq!(r.unicasts.len(), t.unicasts.len());
        assert_eq!(r.steps, t.steps);
        assert!(r.is_causal());
        // Every multicast edge appears reversed.
        for u in &t.unicasts {
            assert!(r
                .unicasts
                .iter()
                .any(|v| v.src == u.dst && v.dst == u.src && v.step == t.steps + 1 - u.step));
        }
    }

    #[test]
    fn reduction_is_causal_for_every_algorithm_and_port_model() {
        for algo in Algorithm::ALL {
            for port in [PortModel::OnePort, PortModel::AllPort] {
                let t = algo
                    .build(
                        Cube::of(4),
                        Resolution::HighToLow,
                        port,
                        NodeId(2),
                        &[NodeId(1), NodeId(7), NodeId(9), NodeId(14)],
                    )
                    .unwrap();
                let r = ReductionSchedule::from_multicast(&t);
                assert!(r.is_causal(), "{algo} {port:?}");
            }
        }
    }

    #[test]
    fn barrier_steps_are_the_sum_of_phases() {
        let b = barrier(
            Algorithm::WSort,
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        assert_eq!(b.steps(), b.reduce.steps + b.release.steps);
        assert!(b.reduce.is_causal());
    }

    #[test]
    fn gather_mirrors_scatter() {
        let sources: Vec<NodeId> = (1..16).map(NodeId).collect();
        let g = gather(
            Algorithm::WSort,
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &sources,
            1024,
        )
        .unwrap();
        assert_eq!(g.unicasts.len(), 15);
        // Edges arriving at the root carry, in total, every block.
        let into_root: u64 = g
            .unicasts
            .iter()
            .zip(&g.bytes_per_edge)
            .filter(|(u, _)| u.dst == NodeId(0))
            .map(|(_, &b)| b)
            .sum();
        assert_eq!(into_root, 15 * 1024);
        // Leaf contributors send exactly one block.
        for (u, &b) in g.unicasts.iter().zip(&g.bytes_per_edge) {
            assert!(b >= 1024);
            assert_eq!(b % 1024, 0);
            let _ = u;
        }
    }

    #[test]
    fn all_to_all_produces_one_tree_per_node() {
        let trees = all_to_all_broadcast(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
        )
        .unwrap();
        assert_eq!(trees.len(), 8);
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(t.source, NodeId(i as u32));
            assert_eq!(t.message_count(), 7);
        }
    }

    #[test]
    fn scatter_edge_bytes_cover_subtrees() {
        let dests: Vec<NodeId> = (1..16).map(NodeId).collect();
        let s = scatter(
            Algorithm::WSort,
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
            1024,
        )
        .unwrap();
        // The root injects every block exactly once.
        assert_eq!(s.root_bytes(), 15 * 1024);
        // Leaves receive exactly one block.
        for (u, &b) in s.tree.unicasts.iter().zip(&s.bytes_per_edge) {
            let subtree = s.tree.reachable_set(u.dst).len() as u64;
            assert_eq!(b, subtree * 1024);
            assert!(b >= 1024);
        }
        // Forwarding inflates network bytes beyond the root's injection.
        assert!(s.network_bytes() >= s.root_bytes());
    }

    #[test]
    fn scatter_separate_addressing_has_no_forwarding_inflation() {
        // Under separate addressing, each block travels directly: edge
        // bytes are exactly one block each.
        let dests: Vec<NodeId> = (1..8).map(NodeId).collect();
        let s = scatter(
            Algorithm::Separate,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
            512,
        )
        .unwrap();
        assert!(s.bytes_per_edge.iter().all(|&b| b == 512));
    }

    #[test]
    fn scatter_and_gather_bytes_match_the_per_edge_reachable_sets() {
        // Regression for the O(V·E) fix: the single post-order pass must
        // reproduce, byte for byte, what per-unicast `reachable_set`
        // calls computed before.
        for algo in Algorithm::ALL {
            for resolution in [Resolution::HighToLow, Resolution::LowToHigh] {
                let dests: Vec<NodeId> =
                    [3u32, 5, 6, 9, 10, 12, 15, 17, 23, 30].map(NodeId).to_vec();
                let s = scatter(
                    algo,
                    Cube::of(5),
                    resolution,
                    PortModel::AllPort,
                    NodeId(1),
                    &dests,
                    640,
                )
                .unwrap();
                for (u, &b) in s.tree.unicasts.iter().zip(&s.bytes_per_edge) {
                    let old = 640 * s.tree.reachable_set(u.dst).len() as u64;
                    assert_eq!(b, old, "{algo} {resolution:?} scatter {u:?}");
                }
                let g = gather(
                    algo,
                    Cube::of(5),
                    resolution,
                    PortModel::AllPort,
                    NodeId(1),
                    &dests,
                    640,
                )
                .unwrap();
                let tree = algo
                    .build(
                        Cube::of(5),
                        resolution,
                        PortModel::AllPort,
                        NodeId(1),
                        &dests,
                    )
                    .unwrap();
                for (u, &b) in g.unicasts.iter().zip(&g.bytes_per_edge) {
                    let old = 640 * tree.reachable_set(u.src).len() as u64;
                    assert_eq!(b, old, "{algo} {resolution:?} gather {u:?}");
                }
            }
        }
    }

    #[test]
    fn allgather_has_one_op_per_tree_edge() {
        for family in TreeFamily::SWEEP {
            let s = allgather(
                family,
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                256,
                None,
            )
            .unwrap();
            assert_eq!(s.ops.len(), 16 * 15, "{}", family.name());
            assert_eq!(s.payload_bytes(), 16 * 15 * 256, "{}", family.name());
            assert!(s.steps >= 1);
            // Dependencies always point backwards (a valid DAG order).
            for (i, op) in s.ops.iter().enumerate() {
                assert!(op.deps.iter().all(|&d| d < i));
            }
        }
    }

    #[test]
    fn reduce_scatter_combines_toward_every_root() {
        let s = reduce_scatter(
            TreeFamily::Alg(Algorithm::WSort),
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            512,
            None,
        )
        .unwrap();
        assert_eq!(s.ops.len(), 8 * 7);
        for root in 0..8u32 {
            // Segment `root` flows only toward node `root` and every
            // non-root node sends it exactly once.
            let seg_ops: Vec<_> = s
                .ops
                .iter()
                .filter(|op| op.segments == Segments::One(root))
                .collect();
            assert_eq!(seg_ops.len(), 7);
            assert!(seg_ops.iter().all(|op| op.transfer == Transfer::Combine));
        }
    }

    #[test]
    fn allreduce_runs_reduce_then_broadcast() {
        let s = allreduce(
            TreeFamily::Bine,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(2),
            128,
            None,
        )
        .unwrap();
        assert_eq!(s.ops.len(), 2 * 7);
        assert_eq!(s.steps, 6); // 3 reduce + 3 broadcast steps
        assert!(s.ops.iter().all(|op| op.bytes == 8 * 128));
        // The root's first broadcast send depends on all 7 reduce ops
        // that terminate at it transitively; directly, on its inbound.
        let first_bcast = s
            .ops
            .iter()
            .find(|op| op.transfer == Transfer::Copy && op.src == NodeId(2))
            .unwrap();
        assert!(!first_bcast.deps.is_empty());
    }

    #[test]
    fn separate_builders_work_on_any_topology() {
        let torus = hcube::Torus::of(3, 2); // 3-ary 2-cube: 9 nodes
        let ag = allgather_separate(&torus, 64);
        assert_eq!(ag.nodes, 9);
        assert_eq!(ag.ops.len(), 9 * 8);
        assert_eq!(ag.steps, 1);
        let rs = reduce_scatter_separate(&torus, 64);
        assert_eq!(rs.ops.len(), 9 * 8);
        let ar = allreduce_separate(&torus, NodeId(0), 64);
        assert_eq!(ar.ops.len(), 2 * 8);
        assert_eq!(ar.steps, 2);
        assert!(ar.ops.iter().all(|op| op.bytes == 9 * 64));
        // Broadcast-phase ops wait on the whole gather phase.
        assert!(ar.ops[8..].iter().all(|op| op.deps.len() == 8));
    }

    #[test]
    fn tree_families_share_the_cache_for_algorithm_trees() {
        let mut cache = TreeCache::new(64);
        let cube = Cube::of(3);
        for _ in 0..2 {
            allgather(
                TreeFamily::Alg(Algorithm::WSort),
                cube,
                Resolution::HighToLow,
                PortModel::AllPort,
                64,
                Some(&mut cache),
            )
            .unwrap();
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 8); // one build per root, first pass only
        assert_eq!(stats.hits, 8); // second pass entirely cached
    }

    #[test]
    fn empty_reduction_from_trivial_tree() {
        let t = Algorithm::UCube
            .build(
                Cube::of(3),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &[],
            )
            .unwrap();
        let r = ReductionSchedule::from_multicast(&t);
        assert!(r.unicasts.is_empty());
        assert_eq!(r.steps, 0);
        assert!(r.is_causal());
    }
}
