//! Collective operations built on the multicast trees (extension beyond
//! the paper).
//!
//! The paper motivates multicast as the building block for the collective
//! routines of MPI-style libraries. This module derives the three classic
//! companions from any multicast tree:
//!
//! * **broadcast** — multicast to every other node;
//! * **reduction / gather** — the multicast tree run *in reverse*: each
//!   node sends its contribution to its tree parent after hearing from
//!   all its tree children (the step schedule is the mirror image of the
//!   multicast schedule, so the same contention-freedom arguments apply
//!   to the reversed channels);
//! * **barrier** — a reduction to the root followed by a broadcast from
//!   it.

use crate::algorithms::Algorithm;
use crate::schedule::PortModel;
use crate::tree::{MulticastTree, Unicast};
use hcube::{Cube, HcubeError, NodeId, Resolution};

/// Builds a broadcast (multicast to all `N − 1` other nodes) with the
/// given algorithm.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::{collectives::broadcast, Algorithm, PortModel};
///
/// let t = broadcast(Algorithm::WSort, Cube::of(4), Resolution::HighToLow,
///                   PortModel::AllPort, NodeId(0))?;
/// assert_eq!(t.message_count(), 15);
/// assert_eq!(t.steps, 4); // the spanning binomial tree
/// # Ok::<(), hcube::HcubeError>(())
/// ```
///
/// # Errors
/// Propagates [`Algorithm::build`] errors (out-of-range source).
pub fn broadcast(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    source: NodeId,
) -> Result<MulticastTree, HcubeError> {
    cube.check_node(source)?;
    let dests: Vec<NodeId> = cube.nodes().filter(|&v| v != source).collect();
    algo.build(cube, resolution, port_model, source, &dests)
}

/// A reduction (gather-with-combine) schedule: the mirror image of a
/// multicast tree.
#[derive(Clone, Debug)]
pub struct ReductionSchedule {
    /// The node at which contributions accumulate.
    pub root: NodeId,
    /// Constituent unicasts; `src` is the contributor, `dst` its tree
    /// parent. Sorted by step.
    pub unicasts: Vec<Unicast>,
    /// Total number of steps.
    pub steps: u32,
}

impl ReductionSchedule {
    /// Derives the reduction schedule from a multicast tree: every tree
    /// edge is reversed and its step mirrored (`t ↦ steps + 1 − t`), so a
    /// node transmits to its parent strictly after all of its children
    /// transmitted to it.
    #[must_use]
    pub fn from_multicast(tree: &MulticastTree) -> ReductionSchedule {
        let steps = tree.steps;
        let mut unicasts: Vec<Unicast> = tree
            .unicasts
            .iter()
            .map(|u| Unicast {
                src: u.dst,
                dst: u.src,
                step: steps + 1 - u.step,
                order: u.order,
            })
            .collect();
        unicasts.sort_by_key(|u| (u.step, u.src, u.order));
        ReductionSchedule {
            root: tree.source,
            unicasts,
            steps,
        }
    }

    /// Checks the combining constraint: every node sends to its parent
    /// only after hearing from all of its own children.
    #[must_use]
    pub fn is_causal(&self) -> bool {
        self.unicasts.iter().all(|up| {
            self.unicasts
                .iter()
                .filter(|down| down.dst == up.src)
                .all(|down| down.step < up.step)
        })
    }
}

/// A barrier schedule: reduce to the root, then broadcast from it.
#[derive(Clone, Debug)]
pub struct BarrierSchedule {
    /// Phase 1: all nodes report in.
    pub reduce: ReductionSchedule,
    /// Phase 2: the root releases everyone.
    pub release: MulticastTree,
}

impl BarrierSchedule {
    /// Total steps across both phases.
    #[must_use]
    pub fn steps(&self) -> u32 {
        self.reduce.steps + self.release.steps
    }
}

/// A personalized-communication (scatter) schedule: the root sends a
/// *distinct* block to every destination, so a unicast to a subtree root
/// carries all of its subtree's blocks (extension beyond the paper,
/// following the personalized-communication line of its reference \[5]).
#[derive(Clone, Debug)]
pub struct ScatterSchedule {
    /// The underlying multicast tree (who forwards to whom, and when).
    pub tree: MulticastTree,
    /// Payload bytes carried by each unicast, parallel to
    /// `tree.unicasts`: `block_bytes × |subtree(dst)|`.
    pub bytes_per_edge: Vec<u64>,
}

impl ScatterSchedule {
    /// Total bytes injected by the root: exactly `m × block_bytes`
    /// regardless of tree shape (every block leaves the root once).
    #[must_use]
    pub fn root_bytes(&self) -> u64 {
        self.tree
            .unicasts
            .iter()
            .zip(&self.bytes_per_edge)
            .filter(|(u, _)| u.src == self.tree.source)
            .map(|(_, &b)| b)
            .sum()
    }

    /// Total bytes crossing all channels (forwarding inflation): deeper
    /// trees re-transmit blocks more often.
    #[must_use]
    pub fn network_bytes(&self) -> u64 {
        self.tree
            .unicasts
            .iter()
            .zip(&self.bytes_per_edge)
            .map(|(u, &b)| b * u64::from(u.src.distance(u.dst)))
            .sum()
    }
}

/// Builds a scatter schedule on `algo`'s multicast tree: each of the `m`
/// destinations is to receive its own `block_bytes`-byte block.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn scatter(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    source: NodeId,
    dests: &[NodeId],
    block_bytes: u32,
) -> Result<ScatterSchedule, HcubeError> {
    let tree = algo.build(cube, resolution, port_model, source, dests)?;
    let bytes_per_edge = tree
        .unicasts
        .iter()
        .map(|u| u64::from(block_bytes) * tree.reachable_set(u.dst).len() as u64)
        .collect();
    Ok(ScatterSchedule {
        tree,
        bytes_per_edge,
    })
}

/// A gather schedule: the inverse of [`scatter`] — every destination
/// owns a distinct `block_bytes` block and the blocks *concatenate*
/// toward the root, so an edge toward the root carries its subtree's
/// accumulated blocks.
#[derive(Clone, Debug)]
pub struct GatherSchedule {
    /// The node collecting all blocks.
    pub root: NodeId,
    /// Constituent unicasts (`src` = contributor side), sorted by step.
    pub unicasts: Vec<Unicast>,
    /// Payload bytes per unicast, parallel to `unicasts`.
    pub bytes_per_edge: Vec<u64>,
    /// Total steps.
    pub steps: u32,
}

/// Builds a concatenation gather on `algo`'s multicast tree, mirrored:
/// each participant sends once, after hearing from all of its own tree
/// children, carrying its subtree's blocks.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn gather(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    root: NodeId,
    sources: &[NodeId],
    block_bytes: u32,
) -> Result<GatherSchedule, HcubeError> {
    let tree = algo.build(cube, resolution, port_model, root, sources)?;
    let reduction = ReductionSchedule::from_multicast(&tree);
    // In the mirrored tree, the message from v to its parent carries v's
    // whole multicast subtree worth of blocks.
    let bytes_per_edge = reduction
        .unicasts
        .iter()
        .map(|u| u64::from(block_bytes) * tree.reachable_set(u.src).len() as u64)
        .collect();
    Ok(GatherSchedule {
        root,
        unicasts: reduction.unicasts,
        bytes_per_edge,
        steps: reduction.steps,
    })
}

/// Builds the `N` broadcast trees of an all-to-all broadcast (allgather):
/// every node broadcasts its block to everyone, all operations running
/// concurrently. Feed the trees to
/// `wormsim::simulate_concurrent_multicasts` to measure the composite.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn all_to_all_broadcast(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
) -> Result<Vec<MulticastTree>, HcubeError> {
    cube.nodes()
        .map(|src| broadcast(algo, cube, resolution, port_model, src))
        .collect()
}

/// Builds a full-machine barrier at `root` using `algo` for both the
/// gather tree and the release broadcast.
///
/// # Errors
/// Propagates [`Algorithm::build`] errors.
pub fn barrier(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    port_model: PortModel,
    root: NodeId,
) -> Result<BarrierSchedule, HcubeError> {
    let release = broadcast(algo, cube, resolution, port_model, root)?;
    let reduce = ReductionSchedule::from_multicast(&release);
    Ok(BarrierSchedule { reduce, release })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_reaches_every_node() {
        for algo in Algorithm::PAPER {
            let t = broadcast(
                algo,
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(5),
            )
            .unwrap();
            for v in Cube::of(4).nodes() {
                if v != NodeId(5) {
                    assert!(t.recv_step(v).is_some(), "{algo} missed {v}");
                }
            }
            assert_eq!(t.message_count(), 15);
        }
    }

    #[test]
    fn reduction_mirrors_the_tree() {
        let t = broadcast(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let r = ReductionSchedule::from_multicast(&t);
        assert_eq!(r.root, NodeId(0));
        assert_eq!(r.unicasts.len(), t.unicasts.len());
        assert_eq!(r.steps, t.steps);
        assert!(r.is_causal());
        // Every multicast edge appears reversed.
        for u in &t.unicasts {
            assert!(r
                .unicasts
                .iter()
                .any(|v| v.src == u.dst && v.dst == u.src && v.step == t.steps + 1 - u.step));
        }
    }

    #[test]
    fn reduction_is_causal_for_every_algorithm_and_port_model() {
        for algo in Algorithm::ALL {
            for port in [PortModel::OnePort, PortModel::AllPort] {
                let t = algo
                    .build(
                        Cube::of(4),
                        Resolution::HighToLow,
                        port,
                        NodeId(2),
                        &[NodeId(1), NodeId(7), NodeId(9), NodeId(14)],
                    )
                    .unwrap();
                let r = ReductionSchedule::from_multicast(&t);
                assert!(r.is_causal(), "{algo} {port:?}");
            }
        }
    }

    #[test]
    fn barrier_steps_are_the_sum_of_phases() {
        let b = barrier(
            Algorithm::WSort,
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        assert_eq!(b.steps(), b.reduce.steps + b.release.steps);
        assert!(b.reduce.is_causal());
    }

    #[test]
    fn gather_mirrors_scatter() {
        let sources: Vec<NodeId> = (1..16).map(NodeId).collect();
        let g = gather(
            Algorithm::WSort,
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &sources,
            1024,
        )
        .unwrap();
        assert_eq!(g.unicasts.len(), 15);
        // Edges arriving at the root carry, in total, every block.
        let into_root: u64 = g
            .unicasts
            .iter()
            .zip(&g.bytes_per_edge)
            .filter(|(u, _)| u.dst == NodeId(0))
            .map(|(_, &b)| b)
            .sum();
        assert_eq!(into_root, 15 * 1024);
        // Leaf contributors send exactly one block.
        for (u, &b) in g.unicasts.iter().zip(&g.bytes_per_edge) {
            assert!(b >= 1024);
            assert_eq!(b % 1024, 0);
            let _ = u;
        }
    }

    #[test]
    fn all_to_all_produces_one_tree_per_node() {
        let trees = all_to_all_broadcast(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
        )
        .unwrap();
        assert_eq!(trees.len(), 8);
        for (i, t) in trees.iter().enumerate() {
            assert_eq!(t.source, NodeId(i as u32));
            assert_eq!(t.message_count(), 7);
        }
    }

    #[test]
    fn scatter_edge_bytes_cover_subtrees() {
        let dests: Vec<NodeId> = (1..16).map(NodeId).collect();
        let s = scatter(
            Algorithm::WSort,
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
            1024,
        )
        .unwrap();
        // The root injects every block exactly once.
        assert_eq!(s.root_bytes(), 15 * 1024);
        // Leaves receive exactly one block.
        for (u, &b) in s.tree.unicasts.iter().zip(&s.bytes_per_edge) {
            let subtree = s.tree.reachable_set(u.dst).len() as u64;
            assert_eq!(b, subtree * 1024);
            assert!(b >= 1024);
        }
        // Forwarding inflates network bytes beyond the root's injection.
        assert!(s.network_bytes() >= s.root_bytes());
    }

    #[test]
    fn scatter_separate_addressing_has_no_forwarding_inflation() {
        // Under separate addressing, each block travels directly: edge
        // bytes are exactly one block each.
        let dests: Vec<NodeId> = (1..8).map(NodeId).collect();
        let s = scatter(
            Algorithm::Separate,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests,
            512,
        )
        .unwrap();
        assert!(s.bytes_per_edge.iter().all(|&b| b == 512));
    }

    #[test]
    fn empty_reduction_from_trivial_tree() {
        let t = Algorithm::UCube
            .build(
                Cube::of(3),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &[],
            )
            .unwrap();
        let r = ReductionSchedule::from_multicast(&t);
        assert!(r.unicasts.is_empty());
        assert_eq!(r.steps, 0);
        assert!(r.is_causal());
    }
}
