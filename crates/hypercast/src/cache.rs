//! Cache-aware tree construction: an LRU cache of built multicast trees.
//!
//! Under sustained load (the open-loop traffic engine of the `traffic`
//! crate) the same multicast groups recur constantly — many users, few
//! distinct communication patterns — and rebuilding an identical
//! `W-sort` tree for every arrival wastes the dominant share of session
//! setup time. [`TreeCache`] memoizes [`Algorithm::build`] keyed by the
//! complete construction input `(algorithm, cube, resolution, port
//! model, source, destination set)`.
//!
//! **Transparency.** Tree construction is a pure function of that key:
//! `relative_chain` sorts the destination set before any algorithm looks
//! at it, so the *order* in which callers list destinations is
//! irrelevant and the cache canonicalizes it away (the key stores the
//! sorted set). A cached tree is therefore structurally identical —
//! unicast for unicast — to a cold-built one; `traffic`'s proptest suite
//! pins this down.
//!
//! Entries are shared as [`Arc`]s: a hit is a pointer clone, and trees
//! stay alive while any in-flight session still replays them even after
//! eviction.

use crate::algorithms::Algorithm;
use crate::repair::{repair, NetworkFaults};
use crate::schedule::PortModel;
use crate::tree::MulticastTree;
use hcube::{Cube, HcubeError, NodeId, Resolution};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The complete input of a tree construction, with the destination set
/// canonicalized (sorted ascending). Two calls that build the same tree
/// always produce the same key.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct TreeKey {
    /// Tree-construction algorithm.
    pub algo: Algorithm,
    /// The cube the multicast runs in.
    pub cube: Cube,
    /// Address-resolution order of the router.
    pub resolution: Resolution,
    /// Port model the tree is scheduled under.
    pub port: PortModel,
    /// Multicast source.
    pub source: NodeId,
    /// Destination set, sorted ascending (canonical form).
    pub dests: Vec<NodeId>,
    /// Fault epoch the tree was built under. Always 0 for pristine-cube
    /// trees (they are fault-independent); the cache's current epoch for
    /// trees routed around faults, so a stale repaired tree can never be
    /// served after the topology changes.
    pub epoch: u64,
    /// Whether the tree went through [`repair`](crate::repair::repair())
    /// against the epoch's fault state.
    pub repaired: bool,
}

impl TreeKey {
    /// Builds the canonical key for a construction call (sorts a copy of
    /// `dests`; duplicates are kept and will surface as the same
    /// [`HcubeError::DuplicateAddress`] the uncached build reports).
    #[must_use]
    pub fn new(
        algo: Algorithm,
        cube: Cube,
        resolution: Resolution,
        port: PortModel,
        source: NodeId,
        dests: &[NodeId],
    ) -> TreeKey {
        let mut dests = dests.to_vec();
        dests.sort_unstable();
        TreeKey {
            algo,
            cube,
            resolution,
            port,
            source,
            dests,
            epoch: 0,
            repaired: false,
        }
    }
}

/// Hit/miss/eviction/invalidation counters of a [`TreeCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build the tree.
    pub misses: u64,
    /// Entries evicted to respect the capacity bound.
    pub evictions: u64,
    /// Repaired entries dropped because the fault epoch advanced (their
    /// topology snapshot went stale); pristine entries are never
    /// invalidated.
    pub invalidations: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`; 0.0 before the first lookup.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter deltas accumulated since an `earlier` snapshot of the
    /// same cache: `cache.stats().since(before)` isolates the lookups a
    /// single session (or retry attempt) performed. Counters are
    /// monotone, so the subtraction never wraps on well-ordered
    /// snapshots; `saturating_sub` guards a misordered pair.
    #[must_use]
    pub fn since(&self, earlier: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
        }
    }
}

/// A bounded LRU cache of built multicast trees.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::cache::TreeCache;
/// use hypercast::{Algorithm, PortModel};
///
/// let mut cache = TreeCache::new(64);
/// let dests = [NodeId(3), NodeId(9), NodeId(17)];
/// let a = cache
///     .get_or_build(Algorithm::WSort, Cube::of(5), Resolution::HighToLow,
///                   PortModel::AllPort, NodeId(0), &dests)
///     .unwrap();
/// // Same group, different listing order: a pointer-identical hit.
/// let b = cache
///     .get_or_build(Algorithm::WSort, Cube::of(5), Resolution::HighToLow,
///                   PortModel::AllPort, NodeId(0), &[NodeId(17), NodeId(3), NodeId(9)])
///     .unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Debug)]
pub struct TreeCache {
    capacity: usize,
    /// Monotonic use-stamp; drives the LRU order.
    clock: u64,
    /// Current fault epoch; repaired entries are keyed to it.
    epoch: u64,
    map: HashMap<TreeKey, (u64, Arc<MulticastTree>)>,
    /// Reverse index stamp → key; the first entry is least recently used.
    lru: BTreeMap<u64, TreeKey>,
    stats: CacheStats,
}

impl TreeCache {
    /// Creates a cache holding at most `capacity` trees. A capacity of 0
    /// disables caching entirely (every lookup is a miss that builds).
    #[must_use]
    pub fn new(capacity: usize) -> TreeCache {
        TreeCache {
            capacity,
            clock: 0,
            epoch: 0,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// The fault epoch repaired entries are currently keyed to.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Advances the cache to fault epoch `epoch`. If the epoch actually
    /// changes, every *repaired* entry is dropped — its topology
    /// snapshot is stale — and counted in
    /// [`CacheStats::invalidations`]; pristine-cube entries survive
    /// (they are fault-independent). A same-epoch call is a no-op.
    pub fn set_epoch(&mut self, epoch: u64) {
        if epoch == self.epoch {
            return;
        }
        self.epoch = epoch;
        let stale: Vec<TreeKey> = self.map.keys().filter(|k| k.repaired).cloned().collect();
        for key in stale {
            if let Some((stamp, _)) = self.map.remove(&key) {
                self.lru.remove(&stamp);
                self.stats.invalidations += 1;
            }
        }
    }

    /// Number of trees currently cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drops every entry (counters are preserved).
    pub fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
    }

    /// Returns the tree for the given construction input, building (and
    /// caching) it on a miss. Hits refresh the entry's LRU position and
    /// cost one `HashMap` probe plus an `Arc` clone.
    ///
    /// # Errors
    /// Exactly the errors of [`Algorithm::build`]
    /// ([`HcubeError::NodeOutOfRange`] / [`HcubeError::DuplicateAddress`]);
    /// failed builds are never cached.
    pub fn get_or_build(
        &mut self,
        algo: Algorithm,
        cube: Cube,
        resolution: Resolution,
        port: PortModel,
        source: NodeId,
        dests: &[NodeId],
    ) -> Result<Arc<MulticastTree>, HcubeError> {
        let key = TreeKey::new(algo, cube, resolution, port, source, dests);
        if let Some(tree) = self.lookup(&key) {
            return Ok(tree);
        }
        self.stats.misses += 1;
        // Build from the canonical (sorted) destination set: construction
        // is order-insensitive, so this matches any listing order.
        let tree = Arc::new(algo.build(cube, resolution, port, source, &key.dests)?);
        self.insert(key, &tree);
        Ok(tree)
    }

    /// Like [`get_or_build`](TreeCache::get_or_build), but the returned
    /// tree is routed around `faults` via [`repair`](crate::repair::repair()):
    /// destinations on dead nodes are pruned and paths crossing dead
    /// channels rerouted. The entry is keyed to the cache's current
    /// fault [`epoch`](TreeCache::epoch) (plus a `repaired` marker), so
    /// repeated retries within one epoch hit while a later
    /// [`set_epoch`](TreeCache::set_epoch) makes it unreachable.
    ///
    /// Unreachable or pruned destinations are *not* an error here — they
    /// simply have no unicast in the returned tree; callers diff the
    /// requested set against the tree's coverage (that is what the
    /// traffic engine's retry layer does).
    ///
    /// # Errors
    /// Exactly the errors of the underlying pristine
    /// [`Algorithm::build`]; repair itself cannot fail.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_build_repaired(
        &mut self,
        algo: Algorithm,
        cube: Cube,
        resolution: Resolution,
        port: PortModel,
        source: NodeId,
        dests: &[NodeId],
        faults: &NetworkFaults,
    ) -> Result<Arc<MulticastTree>, HcubeError> {
        let mut key = TreeKey::new(algo, cube, resolution, port, source, dests);
        key.epoch = self.epoch;
        key.repaired = true;
        if let Some(tree) = self.lookup(&key) {
            return Ok(tree);
        }
        self.stats.misses += 1;
        let pristine = algo.build(cube, resolution, port, source, &key.dests)?;
        let tree = Arc::new(repair(&pristine, faults).tree);
        self.insert(key, &tree);
        Ok(tree)
    }

    /// Returns the tree for `key`, calling `make` for it on a miss. The
    /// hit/miss/eviction accounting is identical to
    /// [`get_or_build`](TreeCache::get_or_build) — this is the
    /// bring-your-own-tree entry point used by the sharded traffic
    /// driver to *replay* a run's lookup sequence against trees that
    /// were already built concurrently (in a
    /// [`TreeStore`]), so the reported [`CacheStats`] stay a pure
    /// function of the lookup order, not of thread scheduling.
    ///
    /// The key is taken verbatim: callers are responsible for
    /// canonicalizing it ([`TreeKey::new`] sorts the destination set)
    /// and for stamping `epoch`/`repaired` exactly as the equivalent
    /// build call would have.
    pub fn get_or_insert_with<F>(&mut self, key: TreeKey, make: F) -> Arc<MulticastTree>
    where
        F: FnOnce() -> Arc<MulticastTree>,
    {
        if let Some(tree) = self.lookup(&key) {
            return tree;
        }
        self.stats.misses += 1;
        let tree = make();
        self.insert(key, &tree);
        tree
    }

    /// Hit path: refreshes the LRU position and counts the hit.
    fn lookup(&mut self, key: &TreeKey) -> Option<Arc<MulticastTree>> {
        let (stamp, tree) = self.map.get_mut(key)?;
        self.stats.hits += 1;
        // Refresh the LRU position.
        self.lru.remove(stamp);
        self.clock += 1;
        *stamp = self.clock;
        self.lru.insert(self.clock, key.clone());
        Some(Arc::clone(tree))
    }

    /// Miss path: caches the freshly built tree, evicting the LRU entry
    /// if the capacity bound is exceeded.
    fn insert(&mut self, key: TreeKey, tree: &Arc<MulticastTree>) {
        if self.capacity == 0 {
            return;
        }
        self.clock += 1;
        self.map.insert(key.clone(), (self.clock, Arc::clone(tree)));
        self.lru.insert(self.clock, key);
        if self.map.len() > self.capacity {
            // Evict the least recently used entry (smallest stamp).
            if let Some((&stamp, _)) = self.lru.iter().next() {
                if let Some(victim) = self.lru.remove(&stamp) {
                    self.map.remove(&victim);
                    self.stats.evictions += 1;
                }
            }
        }
    }
}

/// Hit/miss counters of a [`TreeStore`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served from the store.
    pub hits: u64,
    /// Lookups that had to build the tree.
    pub misses: u64,
}

#[derive(Debug, Default)]
struct StoreInner {
    map: HashMap<TreeKey, Arc<MulticastTree>>,
    stats: StoreStats,
}

/// A thread-safe, unbounded build memo of multicast trees, shared by
/// the worker threads of a sharded run (and across the requests of a
/// long-running `mcast serve` daemon). Keyed by the same canonical
/// [`TreeKey`] as [`TreeCache`], but with no LRU order, no eviction,
/// and interior locking so workers can share one store behind an `Arc`.
///
/// The store is deliberately **not** the determinism surface: its
/// hit/miss split depends on thread interleaving, so reported
/// [`CacheStats`] always come from a serial [`TreeCache`] replay of the
/// run's lookup order (see `TreeCache::get_or_insert_with`), never from
/// the store. The store only short-circuits redundant builds, which is
/// invisible in any output because tree construction is a pure function
/// of the key.
///
/// Builds run *outside* the lock: two workers racing on the same cold
/// key may both build, and the first insert wins — harmless, because
/// both build the identical tree.
#[derive(Debug, Default)]
pub struct TreeStore {
    inner: std::sync::Mutex<StoreInner>,
}

impl TreeStore {
    /// Creates an empty store.
    #[must_use]
    pub fn new() -> TreeStore {
        TreeStore::default()
    }

    /// Returns the tree for `key`, building it on a miss. For a
    /// `repaired` key the pristine tree is built and then routed around
    /// `faults` (which must be the fault state of the epoch the key is
    /// stamped with); for a pristine key `faults` must be `None`.
    ///
    /// # Errors
    /// Exactly the errors of [`Algorithm::build`]; failed builds are
    /// never stored.
    ///
    /// # Panics
    /// Panics if `key.repaired` disagrees with `faults.is_some()`, or
    /// if the store lock was poisoned by a panicking worker.
    pub fn get_or_build(
        &self,
        key: &TreeKey,
        faults: Option<&NetworkFaults>,
    ) -> Result<Arc<MulticastTree>, HcubeError> {
        assert_eq!(
            key.repaired,
            faults.is_some(),
            "repaired keys need the epoch's fault state; pristine keys must not have one"
        );
        if let Some(tree) = self.get(key) {
            return Ok(tree);
        }
        // Build outside the lock; a concurrent duplicate build is
        // harmless (pure function of the key) and first-insert wins.
        let pristine =
            key.algo
                .build(key.cube, key.resolution, key.port, key.source, &key.dests)?;
        let tree = match faults {
            Some(faults) => Arc::new(repair(&pristine, faults).tree),
            None => Arc::new(pristine),
        };
        let mut inner = self.inner.lock().expect("tree store lock poisoned");
        Ok(Arc::clone(inner.map.entry(key.clone()).or_insert(tree)))
    }

    /// Returns the stored tree for `key` without building, counting a
    /// hit or a miss.
    ///
    /// # Panics
    /// Panics if the store lock was poisoned by a panicking worker.
    #[must_use]
    pub fn get(&self, key: &TreeKey) -> Option<Arc<MulticastTree>> {
        let mut inner = self.inner.lock().expect("tree store lock poisoned");
        match inner.map.get(key) {
            Some(tree) => {
                let tree = Arc::clone(tree);
                inner.stats.hits += 1;
                Some(tree)
            }
            None => {
                inner.stats.misses += 1;
                None
            }
        }
    }

    /// Counter snapshot (operational only — scheduling-dependent).
    ///
    /// # Panics
    /// Panics if the store lock was poisoned by a panicking worker.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        self.inner.lock().expect("tree store lock poisoned").stats
    }

    /// Number of trees currently stored.
    ///
    /// # Panics
    /// Panics if the store lock was poisoned by a panicking worker.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("tree store lock poisoned")
            .map
            .len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every stored tree (counters are preserved).
    ///
    /// # Panics
    /// Panics if the store lock was poisoned by a panicking worker.
    pub fn clear(&self) {
        self.inner
            .lock()
            .expect("tree store lock poisoned")
            .map
            .clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dests(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    fn build_cached(cache: &mut TreeCache, d: &[u32]) -> Arc<MulticastTree> {
        cache
            .get_or_build(
                Algorithm::WSort,
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(d),
            )
            .unwrap()
    }

    #[test]
    fn hit_returns_the_same_tree() {
        let mut c = TreeCache::new(8);
        let a = build_cached(&mut c, &[1, 5, 9]);
        let b = build_cached(&mut c, &[9, 1, 5]);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 1,
                misses: 1,
                evictions: 0,
                invalidations: 0
            }
        );
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cached_tree_matches_cold_build() {
        let mut c = TreeCache::new(8);
        let warm = build_cached(&mut c, &[3, 7, 21, 30]);
        let cold = Algorithm::WSort
            .build(
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(&[30, 21, 3, 7]),
            )
            .unwrap();
        assert_eq!(warm.unicasts, cold.unicasts);
        assert_eq!(warm.steps, cold.steps);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut c = TreeCache::new(2);
        build_cached(&mut c, &[1]); // A
        build_cached(&mut c, &[2]); // B
        build_cached(&mut c, &[1]); // touch A (hit) → B is now LRU
        build_cached(&mut c, &[3]); // C evicts B
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        build_cached(&mut c, &[1]); // A still cached
        assert_eq!(c.stats().hits, 2);
        build_cached(&mut c, &[2]); // B was evicted → miss
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn distinct_keys_do_not_collide() {
        let mut c = TreeCache::new(16);
        let a = build_cached(&mut c, &[1, 2]);
        let b = c
            .get_or_build(
                Algorithm::UCube,
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(&[1, 2]),
            )
            .unwrap();
        assert_eq!(c.stats().misses, 2, "different algorithm, different key");
        assert!(!Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = TreeCache::new(0);
        build_cached(&mut c, &[1, 2]);
        build_cached(&mut c, &[1, 2]);
        assert_eq!(c.len(), 0);
        assert_eq!(
            c.stats(),
            CacheStats {
                hits: 0,
                misses: 2,
                evictions: 0,
                invalidations: 0
            }
        );
    }

    fn build_repaired(
        cache: &mut TreeCache,
        d: &[u32],
        faults: &NetworkFaults,
    ) -> Arc<MulticastTree> {
        cache
            .get_or_build_repaired(
                Algorithm::WSort,
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(d),
                faults,
            )
            .unwrap()
    }

    #[test]
    fn repaired_entries_hit_within_an_epoch() {
        let mut c = TreeCache::new(8);
        let mut faults = NetworkFaults::new();
        faults.fail_node(NodeId(5));
        let a = build_repaired(&mut c, &[1, 5, 9], &faults);
        let b = build_repaired(&mut c, &[9, 5, 1], &faults);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.stats().hits, 1);
        // Destination 5 is dead, so the repaired tree dropped it.
        assert!(a.unicasts.iter().all(|u| u.dst != NodeId(5)));
    }

    #[test]
    fn repaired_and_pristine_entries_do_not_collide() {
        let mut c = TreeCache::new(8);
        let faults = NetworkFaults::new();
        let plain = build_cached(&mut c, &[1, 5, 9]);
        let repaired = build_repaired(&mut c, &[1, 5, 9], &faults);
        assert_eq!(c.stats().misses, 2, "repaired key is distinct");
        assert!(!Arc::ptr_eq(&plain, &repaired));
        // With no faults, repair is the identity on structure.
        assert_eq!(plain.unicasts, repaired.unicasts);
    }

    #[test]
    fn epoch_change_invalidates_only_repaired_entries() {
        let mut c = TreeCache::new(8);
        let mut faults = NetworkFaults::new();
        faults.fail_node(NodeId(5));
        build_cached(&mut c, &[1, 2]);
        build_repaired(&mut c, &[1, 5, 9], &faults);
        build_repaired(&mut c, &[3, 7], &faults);
        assert_eq!(c.len(), 3);
        c.set_epoch(1);
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.len(), 1, "pristine entry survives");
        assert_eq!(c.stats().invalidations, 2);
        // Same-epoch call is a no-op.
        c.set_epoch(1);
        assert_eq!(c.stats().invalidations, 2);
        // The pristine entry still hits; the repaired ones rebuild.
        build_cached(&mut c, &[1, 2]);
        assert_eq!(c.stats().hits, 1);
        build_repaired(&mut c, &[3, 7], &faults);
        assert_eq!(c.stats().misses, 4);
    }

    #[test]
    fn get_or_insert_with_matches_get_or_build_accounting() {
        let mut built = TreeCache::new(2);
        let mut replay = TreeCache::new(2);
        let store = TreeStore::new();
        let groups: &[&[u32]] = &[&[1], &[2], &[1], &[3], &[1], &[2]];
        for d in groups {
            let tree = build_cached(&mut built, d);
            let key = TreeKey::new(
                Algorithm::WSort,
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(d),
            );
            let stored = store.get_or_build(&key, None).unwrap();
            let replayed = replay.get_or_insert_with(key, || Arc::clone(&stored));
            assert_eq!(tree.unicasts, replayed.unicasts);
        }
        assert_eq!(built.stats(), replay.stats());
        assert_eq!(built.len(), replay.len());
    }

    #[test]
    fn store_memoizes_and_counts() {
        let store = TreeStore::new();
        let key = TreeKey::new(
            Algorithm::WSort,
            Cube::of(5),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests(&[9, 1, 5]),
        );
        let a = store.get_or_build(&key, None).unwrap();
        let b = store.get_or_build(&key, None).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(store.len(), 1);
        // First call missed, second hit; every get_or_build probes once.
        assert_eq!(store.stats(), StoreStats { hits: 1, misses: 1 });
    }

    #[test]
    fn store_repaired_trees_match_cache_repaired_trees() {
        let mut cache = TreeCache::new(8);
        let mut faults = NetworkFaults::new();
        faults.fail_node(NodeId(5));
        let via_cache = build_repaired(&mut cache, &[1, 5, 9], &faults);

        let store = TreeStore::new();
        let mut key = TreeKey::new(
            Algorithm::WSort,
            Cube::of(5),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests(&[1, 5, 9]),
        );
        key.repaired = true;
        let via_store = store.get_or_build(&key, Some(&faults)).unwrap();
        assert_eq!(via_cache.unicasts, via_store.unicasts);
        assert_eq!(via_cache.steps, via_store.steps);
    }

    #[test]
    fn store_failed_builds_are_not_stored() {
        let store = TreeStore::new();
        let key = TreeKey::new(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests(&[1, 1]),
        );
        assert!(store.get_or_build(&key, None).is_err());
        assert!(store.is_empty());
    }

    #[test]
    fn failed_builds_are_not_cached() {
        let mut c = TreeCache::new(8);
        let r = c.get_or_build(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dests(&[1, 1]),
        );
        assert!(r.is_err());
        assert!(c.is_empty());
        assert_eq!(c.stats().misses, 1);
    }
}
