//! Distributed execution of the multicast protocol, with address-field
//! accounting.
//!
//! On a real machine nothing builds the whole tree centrally: the source
//! sorts the destination list once, and every unicast carries an
//! *address field* `D` — the sub-chain its receiver becomes responsible
//! for (Figure 4, step 6). Each receiver re-runs the same local splitting
//! rule on its own sub-chain only.
//!
//! [`execute`] simulates exactly that: per-node local handlers consuming
//! and emitting [`ProtocolMessage`]s. Tests assert the distributed
//! execution reconstructs the centralized [`crate::MulticastTree`]
//! edge-for-edge, and the address fields give the per-message *header
//! overhead* (`n`-bit addresses the paper's implementation must ship
//! with every forwarded copy).

use crate::algorithms::Algorithm;
use crate::schedule::PortModel;
use crate::tree::MulticastTree;
use hcube::chain::from_relative;
use hcube::{Cube, HcubeError, NodeId, Resolution};
use std::collections::VecDeque;

/// One message of the distributed protocol (in physical address space).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolMessage {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// The address field `D`: the destinations the receiver must deliver
    /// to (beyond itself), in chain order.
    pub addr_field: Vec<NodeId>,
    /// Hop count of the protocol tree (1 = sent by the source).
    pub depth: u32,
}

/// Result of a distributed execution.
#[derive(Clone, Debug)]
pub struct ProtocolRun {
    /// Every message exchanged, in a valid causal order.
    pub messages: Vec<ProtocolMessage>,
    /// Total address-field entries shipped (each costs one `n`-bit node
    /// address of header on the wire).
    pub total_addr_entries: usize,
}

impl ProtocolRun {
    /// Header bytes shipped across the whole operation, assuming
    /// `ceil(n/8)`-byte addresses plus a 2-byte count per message.
    #[must_use]
    pub fn header_bytes(&self, n: u8) -> usize {
        let addr = usize::from(n).div_ceil(8);
        self.messages.len() * 2 + self.total_addr_entries * addr
    }
}

/// Executes the multicast protocol distributedly: the source sorts the
/// chain (and weighted-sorts it for W-sort), then every node locally
/// splits only the sub-chain it received.
///
/// # Errors
/// Same validation as [`Algorithm::build`]. Only the four chain-based
/// algorithms participate in this protocol; the baselines return an
/// empty-chain error-free run built from their trees.
///
/// ```
/// use hcube::{Cube, NodeId, Resolution};
/// use hypercast::{protocol, Algorithm};
///
/// let dests: Vec<NodeId> = [1u32, 3, 5, 7, 11, 12, 14, 15]
///     .into_iter().map(NodeId).collect();
/// let run = protocol::execute(Algorithm::UCube, Cube::of(4),
///                             Resolution::HighToLow, NodeId(0), &dests)?;
/// // The source's first unicast carries the tail of the chain as its
/// // address field (Figure 4, step 6).
/// assert_eq!(run.messages[0].to, NodeId(7));
/// assert_eq!(run.messages[0].addr_field.len(), 4);
/// # Ok::<(), hcube::HcubeError>(())
/// ```
pub fn execute(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    source: NodeId,
    dests: &[NodeId],
) -> Result<ProtocolRun, HcubeError> {
    // The centralized construction already validates the input; reuse the
    // tree for the baseline algorithms and for cross-checking.
    let tree = algo.build(cube, resolution, PortModel::AllPort, source, dests)?;
    if !matches!(
        algo,
        Algorithm::UCube | Algorithm::Maxport | Algorithm::Combine | Algorithm::WSort
    ) {
        // Baselines: derive address fields from the tree subtrees.
        return Ok(from_tree(&tree));
    }

    let n = cube.dimension();
    // Phase 1 (at the source): sort once, exactly like the real protocol.
    let mut chain = hcube::chain::relative_chain(resolution, n, source, dests)?;
    if algo == Algorithm::WSort {
        crate::algorithms::weighted_sort::weighted_sort(&mut chain, n);
    }

    // Phase 2: local handlers. Each queue entry is a node's pending work:
    // (its own relative address, the sub-chain it owns, its depth, the
    // subcube dimensionality it received the chain in).
    let mut queue: VecDeque<(Vec<NodeId>, u32, u8)> = VecDeque::new();
    queue.push_back((chain, 0, n));
    let mut messages = Vec::new();
    let mut total_addr_entries = 0usize;
    while let Some((seg, depth, ns)) = queue.pop_front() {
        for (child_seg, child_ns) in local_split(algo, &seg, ns) {
            let to_rel = child_seg[0];
            let addr_field: Vec<NodeId> = child_seg[1..]
                .iter()
                .map(|&r| from_relative(resolution, n, source, r))
                .collect();
            total_addr_entries += addr_field.len();
            messages.push(ProtocolMessage {
                from: from_relative(resolution, n, source, seg[0]),
                to: from_relative(resolution, n, source, to_rel),
                addr_field,
                depth: depth + 1,
            });
            queue.push_back((child_seg, depth + 1, child_ns));
        }
    }
    Ok(ProtocolRun {
        messages,
        total_addr_entries,
    })
}

/// The purely local splitting rule: given the sub-chain a node owns
/// (`seg[0]` is the node itself), produce the sub-chains it forwards.
/// Returns each child's segment together with the subcube dimensionality
/// it is handed (used by the cube-ordered W-sort rule).
///
/// Shared with [`crate::repair`], which re-splits orphaned sub-chains
/// from a replacement ancestor with the same rule.
pub(crate) fn local_split(algo: Algorithm, seg: &[NodeId], ns: u8) -> Vec<(Vec<NodeId>, u8)> {
    let mut out = Vec::new();
    match algo {
        Algorithm::WSort => {
            let left = 0usize;
            let mut right = seg.len() - 1;
            let mut ns = ns;
            while left < right {
                let c = hcube::chain::cube_center(&seg[left..=right], ns);
                if c <= right - left {
                    let next = left + c;
                    out.push((seg[next..=right].to_vec(), ns - 1));
                    right = next - 1;
                }
                ns -= 1;
            }
        }
        _ => {
            let mut right = seg.len() - 1;
            let left = 0usize;
            while left < right {
                // `left < right` in a duplicate-free chain ⇒ the nodes
                // differ; if a malformed segment ever slips through we
                // stop splitting instead of panicking.
                let Some(x) = hcube::delta_high(seg[left], seg[right]) else {
                    break;
                };
                let highdim = left
                    + 1
                    + seg[left + 1..=right]
                        .partition_point(|&d| hcube::delta_high(seg[left], d) != Some(x));
                let center = left + (right - left).div_ceil(2);
                let next = match algo {
                    Algorithm::UCube => center,
                    Algorithm::Maxport => highdim,
                    Algorithm::Combine => highdim.max(center),
                    _ => unreachable!("chain algorithms only"),
                };
                out.push((seg[next..=right].to_vec(), ns));
                right = next - 1;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Fault-aware execution: acks, retries with exponential backoff, and
// relay rerouting once retries are exhausted.
// ---------------------------------------------------------------------

/// Retry discipline of the fault-aware executor ([`execute_with_faults`]).
///
/// A sender detects loss by ack timeout, waits
/// `base_backoff · backoff_factor^(i−1)` time units before the `i`-th
/// retransmission, and gives up (falling back to relay rerouting) after
/// `max_retries` retransmissions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum retransmissions per message before rerouting.
    pub max_retries: u32,
    /// Backoff before the first retransmission (abstract time units).
    pub base_backoff: u64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_backoff: 10,
            backoff_factor: 2,
        }
    }
}

impl RetryPolicy {
    /// Backoff before the `i`-th retransmission (1-based), saturating.
    #[must_use]
    pub fn backoff(&self, i: u32) -> u64 {
        let mut b = self.base_backoff;
        for _ in 1..i {
            b = b.saturating_mul(self.backoff_factor);
        }
        b
    }
}

/// A channel that drops the first `failures` messages traversing it and
/// then recovers — the transient counterpart of a dead link in
/// [`NetworkFaults`](crate::repair::NetworkFaults), modeling congestion
/// loss or corrupt flits caught by the ack timeout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransientFault {
    /// Channel tail: the sending endpoint.
    pub from: NodeId,
    /// Channel dimension.
    pub dim: hcube::Dim,
    /// How many traversal attempts fail before the channel recovers.
    pub failures: u32,
}

/// Outcome of a fault-aware distributed execution.
#[derive(Clone, Debug)]
pub struct FaultyRun {
    /// Messages actually delivered, in causal order — including relay
    /// hops introduced by rerouting (empty address fields except the
    /// final hop, which carries the original field).
    pub messages: Vec<ProtocolMessage>,
    /// Acks returned to senders (one per delivered message).
    pub acks: usize,
    /// Total retransmissions across all messages.
    pub retries: u32,
    /// Total backoff time units spent waiting across all retries.
    pub backoff_spent: u64,
    /// `(from, to)` pairs whose direct E-cube delivery was abandoned and
    /// replaced by a relay route.
    pub rerouted: Vec<(NodeId, NodeId)>,
    /// Nodes that never received the payload (disconnected by the
    /// permanent faults).
    pub undelivered: Vec<NodeId>,
}

impl FaultyRun {
    /// Number of distinct nodes holding the payload at the end
    /// (excluding the source).
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        let mut seen: std::collections::HashSet<NodeId> =
            self.messages.iter().map(|m| m.to).collect();
        seen.remove(&NodeId(u32::MAX)); // defensive; never present
        seen.len()
    }
}

/// Executes the distributed protocol over a faulty network: every
/// message is attempted on its E-cube path, lost messages (transient
/// drops or permanently dead channels) are retransmitted with
/// exponential backoff, and once [`RetryPolicy::max_retries`] is
/// exhausted the sender falls back to a relay route over permanently
/// live channels (computed from the full set of payload holders, like
/// [`crate::repair::repair`]'s phase 3).
///
/// Transient faults eventually clear, so retries alone recover from
/// them; permanent faults always burn the full retry budget first —
/// the sender cannot distinguish the two, only the ack timeout.
///
/// # Errors
/// Same input validation as [`execute`].
#[allow(clippy::too_many_arguments)]
pub fn execute_with_faults(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    source: NodeId,
    dests: &[NodeId],
    faults: &crate::repair::NetworkFaults,
    transient: &[TransientFault],
    policy: RetryPolicy,
) -> Result<FaultyRun, HcubeError> {
    use std::collections::BTreeSet;
    let base = execute(algo, cube, resolution, source, dests)?;

    let mut flaky: std::collections::HashMap<(NodeId, hcube::Dim), u32> = Default::default();
    for t in transient {
        *flaky.entry((t.from, t.dim)).or_insert(0) += t.failures;
    }

    // First blocking channel of an E-cube path, if any: permanent faults
    // dominate (they never clear); otherwise the first flaky channel
    // with failures left.
    let first_block = |src: NodeId,
                       dst: NodeId,
                       flaky: &std::collections::HashMap<(NodeId, hcube::Dim), u32>|
     -> Option<Option<(NodeId, hcube::Dim)>> {
        for arc in hcube::Path::new(resolution, src, dst).arcs() {
            if faults.channel_dead(arc.from, arc.dim) {
                return Some(None); // permanently blocked
            }
            if flaky.get(&(arc.from, arc.dim)).copied().unwrap_or(0) > 0 {
                return Some(Some((arc.from, arc.dim))); // transiently blocked
            }
        }
        None
    };

    let mut delivered: BTreeSet<NodeId> = BTreeSet::new();
    delivered.insert(source);
    let mut out = FaultyRun {
        messages: Vec::new(),
        acks: 0,
        retries: 0,
        backoff_spent: 0,
        rerouted: Vec::new(),
        undelivered: Vec::new(),
    };

    for msg in &base.messages {
        if delivered.contains(&msg.to) {
            continue; // already reached (e.g. as an earlier relay)
        }
        if faults.node_dead(msg.to) {
            out.undelivered.push(msg.to);
            continue;
        }
        // Direct attempts with retry/backoff, if the sender itself holds
        // the payload. A sender that never received the payload cannot
        // transmit; its children are recovered by rerouting below.
        let mut direct_ok = false;
        if delivered.contains(&msg.from) && !faults.node_dead(msg.from) {
            let mut sent = 0u32; // retransmissions so far
            loop {
                match first_block(msg.from, msg.to, &flaky) {
                    None => {
                        direct_ok = true;
                        break;
                    }
                    Some(blocked) => {
                        if let Some(key) = blocked {
                            // A transient drop consumes one failure.
                            if let Some(left) = flaky.get_mut(&key) {
                                *left = left.saturating_sub(1);
                            }
                        }
                        if sent == policy.max_retries {
                            break; // give up, reroute
                        }
                        sent += 1;
                        out.retries += 1;
                        out.backoff_spent += policy.backoff(sent);
                    }
                }
            }
        }
        if direct_ok {
            delivered.insert(msg.to);
            out.acks += 1;
            out.messages.push(msg.clone());
            continue;
        }
        // Relay fallback over permanently live channels.
        match crate::repair::live_route(cube, faults, &delivered, msg.to) {
            Some(route) => {
                out.rerouted.push((msg.from, msg.to));
                for hop in route.windows(2) {
                    if delivered.contains(&hop[1]) {
                        continue;
                    }
                    let last = hop[1] == msg.to;
                    delivered.insert(hop[1]);
                    out.acks += 1;
                    out.messages.push(ProtocolMessage {
                        from: hop[0],
                        to: hop[1],
                        addr_field: if last {
                            msg.addr_field.clone()
                        } else {
                            Vec::new()
                        },
                        depth: msg.depth,
                    });
                }
            }
            None => out.undelivered.push(msg.to),
        }
    }
    Ok(out)
}

/// Derives a `ProtocolRun` from an already-built tree (used for the
/// baselines, whose "protocol" is trivial).
fn from_tree(tree: &MulticastTree) -> ProtocolRun {
    let mut messages = Vec::new();
    let mut total = 0usize;
    for u in &tree.unicasts {
        let mut subtree = tree.reachable_set(u.dst);
        subtree.retain(|&v| v != u.dst);
        total += subtree.len();
        messages.push(ProtocolMessage {
            from: u.src,
            to: u.dst,
            addr_field: subtree,
            depth: u.step,
        });
    }
    ProtocolRun {
        messages,
        total_addr_entries: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn distributed_matches_centralized_for_all_chain_algorithms() {
        let cube = Cube::of(5);
        let dests = ids(&[1, 4, 7, 9, 14, 17, 21, 22, 27, 30, 31]);
        for algo in Algorithm::PAPER {
            for res in [Resolution::HighToLow, Resolution::LowToHigh] {
                let run = execute(algo, cube, res, NodeId(3), &dests).unwrap();
                let tree = algo
                    .build(cube, res, PortModel::AllPort, NodeId(3), &dests)
                    .unwrap();
                let mut a: Vec<(u32, u32)> =
                    run.messages.iter().map(|m| (m.from.0, m.to.0)).collect();
                let mut b: Vec<(u32, u32)> =
                    tree.unicasts.iter().map(|u| (u.src.0, u.dst.0)).collect();
                a.sort_unstable();
                b.sort_unstable();
                assert_eq!(a, b, "{algo} {res:?}: distributed ≠ centralized");
            }
        }
    }

    #[test]
    fn address_fields_partition_the_destinations() {
        let cube = Cube::of(4);
        let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
        let run = execute(
            Algorithm::WSort,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
        )
        .unwrap();
        // Every destination appears exactly once as a `to`.
        let mut tos: Vec<u32> = run.messages.iter().map(|m| m.to.0).collect();
        tos.sort_unstable();
        let mut expect: Vec<u32> = dests.iter().map(|d| d.0).collect();
        expect.sort_unstable();
        assert_eq!(tos, expect);
        // A message's address field is exactly the union of its subtree's
        // future receivers: total entries = Σ depths − m … simpler check:
        // every address-field member later appears as a `to` of a message
        // whose `from` chains back to this receiver.
        for msg in &run.messages {
            for d in &msg.addr_field {
                assert!(run.messages.iter().any(|m2| m2.to == *d));
            }
        }
    }

    #[test]
    fn figure_4_semantics_source_field_sizes() {
        // U-cube from 0 with m = 8 (chain of 9): the source's first send
        // targets chain[4] (= node 7, cf. Figure 8a) and hands it the
        // remaining tail {11, 12, 14, 15} — a 4-entry address field.
        let cube = Cube::of(4);
        let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
        let run = execute(
            Algorithm::UCube,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
        )
        .unwrap();
        let first = &run.messages[0];
        assert_eq!(first.from, NodeId(0));
        assert_eq!(first.to, NodeId(7));
        assert_eq!(first.addr_field, ids(&[11, 12, 14, 15]));
        assert_eq!(first.depth, 1);
    }

    #[test]
    fn header_overhead_grows_linearly_with_m() {
        let cube = Cube::of(8);
        let mk = |m: u32| -> usize {
            let dests: Vec<NodeId> = (1..=m).map(NodeId).collect();
            execute(
                Algorithm::WSort,
                cube,
                Resolution::HighToLow,
                NodeId(0),
                &dests,
            )
            .unwrap()
            .total_addr_entries
        };
        // Each destination address is carried once per tree level above
        // it; totals are Θ(Σ depth) and strictly monotone in m.
        assert!(mk(8) < mk(16));
        assert!(mk(16) < mk(64));
        // And bounded by m × tree depth.
        assert!(mk(64) <= 64 * 8);
    }

    #[test]
    fn baseline_protocols_come_from_trees() {
        let cube = Cube::of(4);
        let dests = ids(&[1, 2, 3]);
        let run = execute(
            Algorithm::Separate,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
        )
        .unwrap();
        assert_eq!(run.messages.len(), 3);
        assert_eq!(
            run.total_addr_entries, 0,
            "separate addressing ships no forward lists"
        );
        let run = execute(
            Algorithm::DimTree,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
        )
        .unwrap();
        assert!(run.messages.len() >= 3);
    }

    #[test]
    fn healthy_network_needs_no_retries() {
        let cube = Cube::of(4);
        let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
        let faults = crate::repair::NetworkFaults::new();
        let run = execute_with_faults(
            Algorithm::WSort,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
            &faults,
            &[],
            RetryPolicy::default(),
        )
        .unwrap();
        let base = execute(
            Algorithm::WSort,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
        )
        .unwrap();
        assert_eq!(run.messages, base.messages);
        assert_eq!(run.retries, 0);
        assert_eq!(run.backoff_spent, 0);
        assert_eq!(run.acks, base.messages.len());
        assert!(run.rerouted.is_empty() && run.undelivered.is_empty());
    }

    #[test]
    fn transient_fault_recovers_via_retries_with_exponential_backoff() {
        // U-cube from 0: first message is 0 → 7, E-cube first hop (0, dim 2).
        let cube = Cube::of(4);
        let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
        let flaky = [TransientFault {
            from: NodeId(0),
            dim: hcube::Dim(2),
            failures: 2,
        }];
        let run = execute_with_faults(
            Algorithm::UCube,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
            &crate::repair::NetworkFaults::new(),
            &flaky,
            RetryPolicy::default(),
        )
        .unwrap();
        // Two drops → two retransmissions, then success; no rerouting.
        assert_eq!(run.retries, 2);
        assert_eq!(
            run.backoff_spent,
            10 + 20,
            "exponential backoff: 10, then 20"
        );
        assert!(run.rerouted.is_empty() && run.undelivered.is_empty());
        assert_eq!(run.acks, run.messages.len());
        assert!(run.messages.iter().any(|m| m.to == NodeId(7)));
    }

    #[test]
    fn permanent_fault_burns_retries_then_reroutes() {
        let cube = Cube::of(4);
        let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
        let mut faults = crate::repair::NetworkFaults::new();
        faults.fail_link(NodeId(0), hcube::Dim(2)); // kills the 0→7 E-cube path
        let policy = RetryPolicy::default();
        let run = execute_with_faults(
            Algorithm::UCube,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
            &faults,
            &[],
            policy,
        )
        .unwrap();
        assert!(
            run.retries >= policy.max_retries,
            "retry budget exhausted before rerouting"
        );
        assert!(run.rerouted.contains(&(NodeId(0), NodeId(7))));
        assert!(run.undelivered.is_empty());
        // Every destination still holds the payload.
        for d in &dests {
            assert!(run.messages.iter().any(|m| m.to == *d), "{d} undelivered");
        }
        // Relay hops never cross the dead channel.
        for m in &run.messages {
            for arc in hcube::Path::new(Resolution::HighToLow, m.from, m.to).arcs() {
                assert!(!faults.channel_dead(arc.from, arc.dim));
            }
        }
    }

    #[test]
    fn disconnected_node_ends_up_undelivered() {
        let cube = Cube::of(4);
        let dests = ids(&[3, 6, 10, 15]);
        let mut faults = crate::repair::NetworkFaults::new();
        for d in cube.dims() {
            faults.fail_duplex(NodeId(15), d);
        }
        let run = execute_with_faults(
            Algorithm::WSort,
            cube,
            Resolution::HighToLow,
            NodeId(0),
            &dests,
            &faults,
            &[],
            RetryPolicy::default(),
        )
        .unwrap();
        assert_eq!(run.undelivered, vec![NodeId(15)]);
        for d in [3u32, 6, 10] {
            assert!(run.messages.iter().any(|m| m.to == NodeId(d)));
        }
    }

    #[test]
    fn header_bytes_accounting() {
        let run = ProtocolRun {
            messages: vec![ProtocolMessage {
                from: NodeId(0),
                to: NodeId(1),
                addr_field: ids(&[2, 3]),
                depth: 1,
            }],
            total_addr_entries: 2,
        };
        // 10-bit addresses → 2 bytes each; 1 message × 2 count bytes.
        assert_eq!(run.header_bytes(10), 2 + 2 * 2);
        // 8-bit addresses → 1 byte each.
        assert_eq!(run.header_bytes(8), 2 + 2);
    }
}
