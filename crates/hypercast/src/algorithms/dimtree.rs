//! The dimensional (store-and-forward era) multicast tree — the
//! historical baseline of Figure 3(a).
//!
//! Early hypercubes with store-and-forward switching relayed the payload
//! one hop per step through local processors. The classic scheme walks
//! the dimensions from high to low: every holder whose current subcube
//! region contains destinations across dimension `d` forwards to its
//! dimension-`d` *neighbor*, which becomes responsible for that half. The
//! neighbor may not itself be a destination — those nodes are the
//! *relays* whose processors the wormhole algorithms eliminate.

use crate::schedule::SendPlan;
use hcube::{Dim, NodeId};

/// Builds the dimensional tree for the canonical relative destination
/// set. Returns the node list (position 0 = source `0`, relays included)
/// and the forwarding plan over it.
pub(crate) fn dimtree_plan(rel_dests: &[NodeId], n: u8) -> (Vec<NodeId>, SendPlan) {
    let mut nodes = vec![NodeId(0)];
    let mut plan: SendPlan = vec![Vec::new()];
    if !rel_dests.is_empty() {
        let dests: Vec<NodeId> = rel_dests.to_vec();
        split(&mut nodes, &mut plan, 0, dests, n);
    }
    (nodes, plan)
}

/// `holder` (an index into `nodes`) is responsible for delivering to
/// `pending`, all of which agree with it on every bit ≥ `dim`.
fn split(
    nodes: &mut Vec<NodeId>,
    plan: &mut SendPlan,
    holder: usize,
    pending: Vec<NodeId>,
    dim: u8,
) {
    if pending.is_empty() {
        return;
    }
    let holder_addr = nodes[holder];
    let mut rest = pending;
    for d in (0..dim).rev() {
        let (other, own): (Vec<NodeId>, Vec<NodeId>) = rest
            .iter()
            .partition(|v| v.bit(Dim(d)) != holder_addr.bit(Dim(d)));
        rest = own;
        if other.is_empty() {
            continue;
        }
        // Forward one hop across dimension d; the neighbor takes over the
        // far half (it may be a relay, i.e. not itself a destination).
        let neighbor = holder_addr.flip(Dim(d));
        let child = nodes.len();
        nodes.push(neighbor);
        plan.push(Vec::new());
        plan[holder].push(child);
        let remaining: Vec<NodeId> = other.into_iter().filter(|&v| v != neighbor).collect();
        split(nodes, plan, child, remaining, d);
    }
    debug_assert!(
        rest.iter().all(|&v| v == holder_addr),
        "all pending nodes must be resolved by dimension 0"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn every_send_is_one_hop() {
        let (nodes, plan) = dimtree_plan(&ids(&[1, 3, 5, 7, 11, 12, 14, 15]), 4);
        for (s, sends) in plan.iter().enumerate() {
            for &d in sends {
                assert_eq!(nodes[s].distance(nodes[d]), 1);
            }
        }
    }

    #[test]
    fn covers_all_destinations() {
        let dests = ids(&[1, 3, 5, 7, 11, 12, 14, 15]);
        let (nodes, plan) = dimtree_plan(&dests, 4);
        let mut received: Vec<NodeId> = plan
            .iter()
            .flat_map(|v| v.iter().map(|&d| nodes[d]))
            .collect();
        received.sort_unstable();
        for d in &dests {
            assert!(received.contains(d), "destination {d} never delivered");
        }
        // Each node receives at most once.
        let before = received.len();
        received.dedup();
        assert_eq!(before, received.len());
    }

    #[test]
    fn figure_3a_set_uses_relays() {
        // The paper's Figure 3(a) notes non-destination relays are needed
        // for this destination set (it lists five under its tree shape;
        // the canonical dimensional tree needs some relays too).
        let dests = ids(&[
            0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
        ]);
        let (nodes, plan) = dimtree_plan(&dests, 4);
        let received: Vec<NodeId> = plan
            .iter()
            .flat_map(|v| v.iter().map(|&d| nodes[d]))
            .collect();
        let relays: Vec<NodeId> = received
            .iter()
            .copied()
            .filter(|v| !dests.contains(v) && v.0 != 0)
            .collect();
        assert!(!relays.is_empty(), "this set requires relay processors");
    }

    #[test]
    fn single_neighbor_destination_needs_no_relay() {
        let (nodes, plan) = dimtree_plan(&ids(&[0b1000]), 4);
        assert_eq!(nodes.len(), 2);
        assert_eq!(plan[0], vec![1]);
        assert_eq!(nodes[1], NodeId(0b1000));
    }

    #[test]
    fn distant_destination_chains_through_relays() {
        // Reaching 0b1111 alone requires 3 relays (1000, 1100, 1110).
        let (nodes, plan) = dimtree_plan(&ids(&[0b1111]), 4);
        assert_eq!(nodes.len(), 5);
        // A chain: each node sends exactly one message except the last.
        let sends: usize = plan.iter().map(Vec::len).sum();
        assert_eq!(sends, 4);
    }

    #[test]
    fn empty_destination_set() {
        let (nodes, plan) = dimtree_plan(&[], 4);
        assert_eq!(nodes.len(), 1);
        assert!(plan[0].is_empty());
    }
}
