//! The dimension-ordered-chain splitting engine behind U-cube, Maxport,
//! and Combine (Section 4.1).
//!
//! All three algorithms share the recursive structure of Figure 4 and
//! differ in a single statement — the choice of `next`, the chain position
//! the current holder transmits to:
//!
//! * **U-cube**: `next = center` — halve the chain (optimal one-port);
//! * **Maxport**: `next = highdim` — peel off the entire highest-dimension
//!   subcube, so every send of a node leaves on a distinct channel;
//! * **Combine**: `next = max(highdim, center)` — fan out like Maxport but
//!   never leave one child responsible for more than half the chain.

use crate::schedule::SendPlan;
use hcube::{delta_high, NodeId};

/// The `next` selection rule distinguishing the three Section 4.1
/// algorithms.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SplitRule {
    /// U-cube: split the chain at its midpoint.
    Center,
    /// Maxport: split at the first node of the highest-dimension subcube.
    HighDim,
    /// Combine: `max(highdim, center)`.
    Max,
}

/// Builds the forwarding plan for a *dimension-ordered* canonical relative
/// chain (ascending, `chain[0] = 0` is the source).
///
/// Implements the loop of Figure 4: repeatedly pick `next`, hand the tail
/// `{d_next, …, d_right}` to `d_next`, and keep `{d_left, …, d_next − 1}`.
/// Sends are recorded in issue order (highest split first), which is the
/// transmission order on a one-port node.
pub(crate) fn chain_split_plan(chain: &[NodeId], rule: SplitRule) -> SendPlan {
    let mut plan: SendPlan = vec![Vec::new(); chain.len()];
    if chain.len() <= 1 {
        return plan;
    }
    let mut stack = vec![(0usize, chain.len() - 1)];
    while let Some((left, mut right)) = stack.pop() {
        while left < right {
            // x: position of the first bit difference between the local
            // address and the chain's last address — the highest dimension
            // spanned by the remaining chain.
            let x = delta_high(chain[left], chain[right]).expect("chain elements are distinct");
            // d_highdim: the leftmost destination whose first difference
            // from d_left is x. δ(d_left, ·) is monotone along a
            // dimension-ordered chain, so binary search applies.
            let highdim = left
                + 1
                + chain[left + 1..=right]
                    .partition_point(|&d| delta_high(chain[left], d) != Some(x));
            // center = left + ⌈(right − left) / 2⌉
            let center = left + (right - left).div_ceil(2);
            let next = match rule {
                SplitRule::Center => center,
                SplitRule::HighDim => highdim,
                SplitRule::Max => highdim.max(center),
            };
            plan[left].push(next);
            stack.push((next, right));
            right = next - 1;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    /// Expands a plan into (sender, receiver) relative-address pairs.
    fn edges(chain: &[NodeId], plan: &SendPlan) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for (s, sends) in plan.iter().enumerate() {
            for &d in sends {
                out.push((chain[s].0, chain[d].0));
            }
        }
        out.sort_unstable();
        out
    }

    #[test]
    fn every_non_source_received_exactly_once() {
        let chain = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        for rule in [SplitRule::Center, SplitRule::HighDim, SplitRule::Max] {
            let plan = chain_split_plan(&chain, rule);
            let mut seen = vec![false; chain.len()];
            seen[0] = true;
            for sends in &plan {
                for &d in sends {
                    assert!(!seen[d], "{rule:?} delivered twice to index {d}");
                    seen[d] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "{rule:?} missed a destination");
        }
    }

    #[test]
    fn maxport_sends_leave_on_distinct_channels() {
        let chain = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        let plan = chain_split_plan(&chain, SplitRule::HighDim);
        for (s, sends) in plan.iter().enumerate() {
            let mut dims: Vec<u8> = sends
                .iter()
                .map(|&d| delta_high(chain[s], chain[d]).unwrap().0)
                .collect();
            let before = dims.len();
            dims.sort_unstable();
            dims.dedup();
            assert_eq!(dims.len(), before, "Maxport reused a channel at node {s}");
        }
    }

    #[test]
    fn figure_6_maxport_pathology() {
        // Source 0000 → {1001, 1010, 1011}: Maxport builds the degenerate
        // chain 0→1001→1010→1011 (three sequential sends).
        let chain = ids(&[0b0000, 0b1001, 0b1010, 0b1011]);
        let plan = chain_split_plan(&chain, SplitRule::HighDim);
        assert_eq!(
            edges(&chain, &plan),
            vec![(0b0000, 0b1001), (0b1001, 0b1010), (0b1010, 0b1011)]
        );
        // U-cube on the same set: 0→1010 (carrying 1011), 0→1001.
        let plan = chain_split_plan(&chain, SplitRule::Center);
        assert_eq!(
            edges(&chain, &plan),
            vec![(0b0000, 0b1001), (0b0000, 0b1010), (0b1010, 0b1011)]
        );
    }

    #[test]
    fn combine_equals_ucube_on_figure_6() {
        // max(highdim, center) = center here, avoiding the pathology.
        let chain = ids(&[0b0000, 0b1001, 0b1010, 0b1011]);
        assert_eq!(
            chain_split_plan(&chain, SplitRule::Max),
            chain_split_plan(&chain, SplitRule::Center)
        );
    }

    #[test]
    fn ucube_first_send_halves_the_chain() {
        // 9-element chain (m = 8): center = left + ⌈(right − left)/2⌉ = 4,
        // so the source's first send targets chain[4] = 7 — which is why
        // the paper's Figure 8(a) shows node 7 responsible for 11 and 12.
        let chain = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        let plan = chain_split_plan(&chain, SplitRule::Center);
        assert_eq!(plan[0][0], 4);
    }

    #[test]
    fn maxport_first_send_targets_first_of_high_subcube() {
        let chain = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        let plan = chain_split_plan(&chain, SplitRule::HighDim);
        // Highest spanned dimension is 3; the first chain element with
        // bit 3 set is 11 at index 5 — here highdim coincides with center.
        assert_eq!(plan[0][0], 5);
        // The source's remaining sends peel dimensions 2, 1, 0.
        assert_eq!(plan[0].len(), 4);
    }

    #[test]
    fn single_destination_chain() {
        let chain = ids(&[0, 9]);
        for rule in [SplitRule::Center, SplitRule::HighDim, SplitRule::Max] {
            let plan = chain_split_plan(&chain, rule);
            assert_eq!(plan[0], vec![1]);
            assert!(plan[1].is_empty());
        }
    }

    #[test]
    fn empty_destination_chain() {
        let chain = ids(&[0]);
        for rule in [SplitRule::Center, SplitRule::HighDim, SplitRule::Max] {
            let plan = chain_split_plan(&chain, rule);
            assert_eq!(plan, vec![Vec::<usize>::new()]);
        }
    }
}
