//! The cube-ordered-chain splitting engine of Section 4.2.
//!
//! Generalizes Maxport to any *cube-ordered* chain (Definition 5): when a
//! node holds a segment of the chain, it issues one unicast into each
//! maximal subcube that (1) does not contain the node, (2) lies within the
//! subcube the node received the message in, and (3) contains at least one
//! destination. On a dimension-ordered chain this reduces exactly to
//! Maxport; on a `weighted_sort`-permuted chain it is the W-sort
//! algorithm.

use crate::schedule::SendPlan;
use hcube::chain::cube_center;
use hcube::NodeId;

/// Builds the forwarding plan for a *cube-ordered* canonical relative
/// chain (`chain[0] = 0` is the source) in an `n`-cube.
///
/// Each holder walks its enclosing subcube down one dimension at a time;
/// whenever the other half of the current subcube holds destinations, the
/// contiguous block for that half is handed to the block's first node.
/// All sends of a holder therefore target disjoint subcubes and leave on
/// distinct channels.
pub(crate) fn cube_split_plan(chain: &[NodeId], n: u8) -> SendPlan {
    let mut plan: SendPlan = vec![Vec::new(); chain.len()];
    if chain.len() <= 1 {
        return plan;
    }
    let mut stack = vec![(0usize, chain.len() - 1, n)];
    while let Some((left, mut right, mut ns)) = stack.pop() {
        while left < right {
            debug_assert!(
                ns >= 1,
                "distinct chain elements cannot share a 0-dimensional subcube"
            );
            let seg = &chain[left..=right];
            let c = cube_center(seg, ns);
            if c <= right - left {
                // The half not containing the holder has destinations:
                // hand its whole contiguous block to its first node.
                let next = left + c;
                plan[left].push(next);
                stack.push((next, right, ns - 1));
                right = next - 1;
            }
            ns -= 1;
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::chain_split::{chain_split_plan, SplitRule};

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn reduces_to_maxport_on_dimension_ordered_chains() {
        let chains = [
            ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]),
            ids(&[0, 9]),
            ids(&[0, 1, 2, 3, 4, 5, 6, 7]),
            ids(&[0, 6, 9, 10, 13]),
        ];
        for chain in chains {
            assert_eq!(
                cube_split_plan(&chain, 4),
                chain_split_plan(&chain, SplitRule::HighDim),
                "chain {chain:?}"
            );
        }
    }

    #[test]
    fn figure_8c_weighted_chain_plan() {
        // The paper's weighted chain D̂ = {0,1,3,5,7,14,15,12,11}. The
        // source sends to 1, 3, 5 and 14; node 14 delivers 15, 12 and 11.
        let chain = ids(&[0, 1, 3, 5, 7, 14, 15, 12, 11]);
        let plan = cube_split_plan(&chain, 4);
        let mut edge_list: Vec<(u32, u32)> = Vec::new();
        for (s, v) in plan.iter().enumerate() {
            for &d in v {
                edge_list.push((chain[s].0, chain[d].0));
            }
        }
        edge_list.sort_unstable();
        assert_eq!(
            edge_list,
            vec![
                (0, 1),
                (0, 3),
                (0, 5),
                (0, 14),
                (5, 7),
                (14, 11),
                (14, 12),
                (14, 15),
            ]
        );
    }

    #[test]
    fn holder_keeps_its_own_half_every_level() {
        let chain = ids(&[0, 1, 3, 5, 7, 14, 15, 12, 11]);
        let plan = cube_split_plan(&chain, 4);
        // Source's sends in issue order: the 3-cube block head (14), then
        // lower dimensions: 5, 3, 1.
        assert_eq!(plan[0], vec![5, 3, 2, 1]);
    }

    #[test]
    fn single_and_empty_chains() {
        assert_eq!(cube_split_plan(&ids(&[0]), 4), vec![Vec::<usize>::new()]);
        let plan = cube_split_plan(&ids(&[0, 12]), 4);
        assert_eq!(plan[0], vec![1]);
    }
}
