//! The `weighted_sort` procedure (Figure 7) and Theorem 5's guarantees.
//!
//! `weighted_sort` permutes a cube-ordered chain so that, within every
//! subcube, the more populated half appears first — while never moving the
//! block containing the chain's first element (the multicast source) out
//! of front position. Feeding the permuted chain to the cube-ordered
//! Maxport engine yields the W-sort algorithm.

use hcube::chain::cube_center;
use hcube::NodeId;

/// Permutes `chain` in place per Figure 7. `chain[0]` must be the source
/// (it stays first, Theorem 5 part 3); all elements must lie in an
/// `n`-cube and form a cube-ordered chain.
///
/// Postconditions (Theorem 5, verified by tests): the result is a
/// cube-ordered permutation of the input with the same first element.
///
/// ```
/// use hcube::NodeId;
/// use hypercast::algorithms::weighted_sort::weighted_sort;
///
/// // The paper's Figure 8 example.
/// let mut d: Vec<NodeId> = [0u32, 1, 3, 5, 7, 11, 12, 14, 15]
///     .into_iter().map(NodeId).collect();
/// weighted_sort(&mut d, 4);
/// let out: Vec<u32> = d.iter().map(|v| v.0).collect();
/// assert_eq!(out, [0, 1, 3, 5, 7, 14, 15, 12, 11]);
/// ```
pub fn weighted_sort(chain: &mut [NodeId], n: u8) {
    ws_rec(chain, 0, n);
}

/// Recursive body. `base` is the global index of `seg[0]` within the full
/// chain — the paper's `first` — used for the "never displace the source"
/// guard (`first ≠ 0`).
fn ws_rec(seg: &mut [NodeId], base: usize, ns: u8) {
    // Figure 7 recurses only when last − first ≥ 2, i.e. three or more
    // elements. (With two elements the halves have one element each and
    // the strict `<` comparison never swaps.)
    if seg.len() < 3 {
        return;
    }
    debug_assert!(ns >= 1, "≥ 2 distinct nodes cannot share a 0-cube");
    let center = cube_center(seg, ns);
    if center >= seg.len() {
        // Whole segment in one half: descend a dimension without
        // splitting (Figure 7's second recursive call is empty).
        ws_rec(seg, base, ns - 1);
        return;
    }
    let (first_half, second_half) = seg.split_at_mut(center);
    ws_rec(first_half, base, ns - 1);
    ws_rec(second_half, base + center, ns - 1);
    // Swap the subcube halves when the first is strictly less populated —
    // unless the first block contains the source (first = 0).
    if base != 0 && center < seg.len() - center {
        seg.rotate_left(center);
    }
}

/// Allocating, literal transcription of Figure 7 operating on explicit
/// `(first, last)` indices, kept as a test oracle for [`weighted_sort`].
///
/// Semantically identical; materializes the swapped chain with a copy the
/// way the paper's pseudo-code writes it.
pub fn weighted_sort_reference(chain: &mut Vec<NodeId>, n: u8) {
    let last = chain.len().wrapping_sub(1);
    if chain.is_empty() {
        return;
    }
    ws_ref(chain, 0, last, n);
}

fn ws_ref(d: &mut Vec<NodeId>, first: usize, last: usize, ns: u8) {
    if last < first || last - first < 2 {
        return;
    }
    let seg: Vec<NodeId> = d[first..=last].to_vec();
    let c = cube_center(&seg, ns);
    if c >= seg.len() {
        ws_ref(d, first, last, ns - 1);
        return;
    }
    let center = first + c;
    ws_ref(d, first, center - 1, ns - 1);
    ws_ref(d, center, last, ns - 1);
    if first != 0 && (center - first) < (last - center + 1) {
        // D = {d_center .. d_last, d_first .. d_center−1}
        let mut swapped = Vec::with_capacity(last - first + 1);
        swapped.extend_from_slice(&d[center..=last]);
        swapped.extend_from_slice(&d[first..center]);
        d[first..=last].copy_from_slice(&swapped);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::chain::{check_cube_ordered, check_cube_ordered_naive};

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn paper_figure_8_example() {
        // D = {0,1,3,5,7,11,12,14,15} → D̂ = {0,1,3,5,7,14,15,12,11}.
        let mut d = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        weighted_sort(&mut d, 4);
        assert_eq!(d, ids(&[0, 1, 3, 5, 7, 14, 15, 12, 11]));
    }

    #[test]
    fn reference_matches_on_paper_example() {
        let mut d = ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]);
        weighted_sort_reference(&mut d, 4);
        assert_eq!(d, ids(&[0, 1, 3, 5, 7, 14, 15, 12, 11]));
    }

    #[test]
    fn theorem_5_postconditions() {
        let inputs = [
            ids(&[0, 1, 3, 5, 7, 11, 12, 14, 15]),
            ids(&[0, 8, 9, 10, 11, 12, 13, 14, 15]),
            ids(&[0, 2, 4, 6]),
            ids(&[0, 15]),
            ids(&[0]),
        ];
        for input in inputs {
            let mut d = input.clone();
            weighted_sort(&mut d, 4);
            // 3. the source stays first
            if !input.is_empty() {
                assert_eq!(d[0], input[0]);
            }
            // 2. a permutation of the input
            let mut a = input.clone();
            let mut b = d.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
            // 1. still cube-ordered
            assert_eq!(check_cube_ordered(&d, 4), Ok(()));
            assert_eq!(check_cube_ordered_naive(&d), Ok(()));
        }
    }

    #[test]
    fn crowded_half_moves_first_in_non_source_blocks() {
        // Within {8..15}: {11} (1 node) vs {12,14,15} (3 nodes): the more
        // populated half must end up first.
        let mut d = ids(&[0, 11, 12, 14, 15]);
        weighted_sort(&mut d, 4);
        assert_eq!(d, ids(&[0, 14, 15, 12, 11]));
    }

    #[test]
    fn source_half_never_swapped_even_when_smaller() {
        // Source's half {0} has 1 node, other half {8,9,10,11} has 4 —
        // but the source block must stay first.
        let mut d = ids(&[0, 8, 9, 10, 11]);
        weighted_sort(&mut d, 4);
        assert_eq!(d[0], NodeId(0));
    }

    #[test]
    fn equal_halves_do_not_swap() {
        // Strict `<` comparison: equal populations keep original order.
        let mut d = ids(&[0, 8, 10, 12, 14]);
        let orig = d.clone();
        weighted_sort(&mut d, 4);
        // {8,10} vs {12,14} inside {8..15}: equal → unchanged order of
        // blocks (inner recursion may still reorder deeper levels; here
        // each block has < 3 elements so nothing moves).
        assert_eq!(d, orig);
    }

    #[test]
    fn two_element_chain_untouched() {
        let mut d = ids(&[0, 9]);
        weighted_sort(&mut d, 4);
        assert_eq!(d, ids(&[0, 9]));
    }
}
