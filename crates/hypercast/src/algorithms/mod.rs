//! The multicast tree-construction algorithms compared in the paper,
//! plus two baselines.
//!
//! | Algorithm | Section | `next` rule / structure |
//! |---|---|---|
//! | [`Algorithm::UCube`] | 4.1 (prior art \[9]) | `next = center` |
//! | [`Algorithm::Maxport`] | 4.1 | `next = highdim` |
//! | [`Algorithm::Combine`] | 4.1 | `next = max(highdim, center)` |
//! | [`Algorithm::WSort`] | 4.2 | `weighted_sort` + cube-ordered Maxport |
//! | [`Algorithm::Separate`] | §2 baseline | one unicast per destination |
//! | [`Algorithm::DimTree`] | §2 baseline (Fig. 3a) | store-and-forward dimensional tree |
//!
//! Every algorithm goes through the same pipeline: canonicalize addresses
//! for the router's [`Resolution`], build the source-relative chain,
//! generate a forwarding plan, and schedule it under the [`PortModel`].

pub(crate) mod chain_split;
pub(crate) mod cube_split;
pub(crate) mod dimtree;
pub(crate) mod separate;
pub mod weighted_sort;

use crate::schedule::{schedule, PortModel};
use crate::tree::MulticastTree;
use chain_split::SplitRule;
use hcube::chain::relative_chain;
use hcube::{Cube, HcubeError, NodeId, Resolution};

/// A multicast tree-construction algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Algorithm {
    /// U-cube [McKinley et al. '92]: optimal on one-port architectures;
    /// oblivious to multiple ports.
    UCube,
    /// Maxport: always fan out on as many channels as the destination set
    /// permits.
    Maxport,
    /// Combine: Maxport's fan-out bounded by U-cube's halving.
    Combine,
    /// W-sort: `weighted_sort` the chain, then cube-ordered Maxport —
    /// the paper's contention-free all-port algorithm (Theorem 6).
    WSort,
    /// Separate addressing: one direct unicast per destination.
    Separate,
    /// The store-and-forward dimensional tree of Figure 3(a); uses
    /// non-destination relay processors.
    DimTree,
}

impl Algorithm {
    /// The four algorithms the paper's evaluation compares.
    pub const PAPER: [Algorithm; 4] = [
        Algorithm::UCube,
        Algorithm::Maxport,
        Algorithm::Combine,
        Algorithm::WSort,
    ];

    /// Every implemented algorithm, including the baselines.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::UCube,
        Algorithm::Maxport,
        Algorithm::Combine,
        Algorithm::WSort,
        Algorithm::Separate,
        Algorithm::DimTree,
    ];

    /// Display name used in tables and figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::UCube => "U-cube",
            Algorithm::Maxport => "Maxport",
            Algorithm::Combine => "Combine",
            Algorithm::WSort => "W-sort",
            Algorithm::Separate => "Separate",
            Algorithm::DimTree => "DimTree",
        }
    }

    /// Whether the algorithm involves local processors of nodes that are
    /// neither the source nor destinations (only the store-and-forward
    /// baseline does).
    #[must_use]
    pub fn uses_relays(self) -> bool {
        matches!(self, Algorithm::DimTree)
    }

    /// Whether the algorithm's all-port schedule is guaranteed
    /// contention-free by the paper's theory (Theorems 3 and 6 and the
    /// subcube-separation argument for Maxport). U-cube carries the
    /// guarantee only on one-port systems; Combine's mixed splits can
    /// place an ancestor's later same-port send into a half already being
    /// serviced by a sibling subtree.
    #[must_use]
    pub fn contention_free_all_port(self) -> bool {
        matches!(
            self,
            Algorithm::Maxport | Algorithm::WSort | Algorithm::Separate | Algorithm::DimTree
        )
    }

    /// Builds and schedules the multicast tree from `source` to `dests`.
    ///
    /// # Errors
    /// * [`HcubeError::NodeOutOfRange`] if the source or a destination is
    ///   not a node of `cube`;
    /// * [`HcubeError::DuplicateAddress`] if a destination repeats or
    ///   equals the source.
    pub fn build(
        self,
        cube: Cube,
        resolution: Resolution,
        port_model: PortModel,
        source: NodeId,
        dests: &[NodeId],
    ) -> Result<MulticastTree, HcubeError> {
        cube.check_node(source)?;
        for &d in dests {
            cube.check_node(d)?;
        }
        let n = cube.dimension();
        let mut chain = relative_chain(resolution, n, source, dests)?;
        let plan = match self {
            Algorithm::UCube => chain_split::chain_split_plan(&chain, SplitRule::Center),
            Algorithm::Maxport => chain_split::chain_split_plan(&chain, SplitRule::HighDim),
            Algorithm::Combine => chain_split::chain_split_plan(&chain, SplitRule::Max),
            Algorithm::WSort => {
                weighted_sort::weighted_sort(&mut chain, n);
                cube_split::cube_split_plan(&chain, n)
            }
            Algorithm::Separate => separate::separate_plan(chain.len()),
            Algorithm::DimTree => {
                let (nodes, plan) = dimtree::dimtree_plan(&chain[1..], n);
                chain = nodes;
                plan
            }
        };
        Ok(schedule(
            cube, resolution, source, &chain, &plan, port_model,
        ))
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    fn build(algo: Algorithm, n: u8, port: PortModel, source: u32, dests: &[u32]) -> MulticastTree {
        algo.build(
            Cube::of(n),
            Resolution::HighToLow,
            port,
            NodeId(source),
            &ids(dests),
        )
        .unwrap()
    }

    /// Figure 3(d): U-cube on the all-port 4-cube still needs 4 steps for
    /// the example destination set (node 1011 is delayed to step 3 behind
    /// the channel shared with the 1100 unicast, and its own forwarding
    /// obligations push the total to 4).
    #[test]
    fn figure_3d_ucube_all_port() {
        let t = build(
            Algorithm::UCube,
            4,
            PortModel::AllPort,
            0b0000,
            &[
                0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
            ],
        );
        assert_eq!(t.steps, 4);
        // The delayed unicast: 1011 received at step 3.
        assert_eq!(t.recv_step(NodeId(0b1011)), Some(3));
    }

    /// Figure 3(c): the same multicast on one-port needs 4 steps
    /// (⌈log₂(8+1)⌉ = 4, the one-port lower bound).
    #[test]
    fn figure_3c_ucube_one_port() {
        let t = build(
            Algorithm::UCube,
            4,
            PortModel::OnePort,
            0b0000,
            &[
                0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
            ],
        );
        assert_eq!(t.steps, 4);
    }

    /// Figure 3(e): W-sort reaches the same set in 2 steps on all-port.
    #[test]
    fn figure_3e_wsort_all_port() {
        let t = build(
            Algorithm::WSort,
            4,
            PortModel::AllPort,
            0b0000,
            &[
                0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
            ],
        );
        assert_eq!(t.steps, 2);
    }

    /// Figure 5: U-cube from source 0100 to eight destinations takes
    /// 4 steps on a one-port 4-cube.
    #[test]
    fn figure_5_ucube_from_nonzero_source() {
        let t = build(
            Algorithm::UCube,
            4,
            PortModel::OnePort,
            0b0100,
            &[
                0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111,
            ],
        );
        assert_eq!(t.steps, 4);
        assert_eq!(t.message_count(), 8);
    }

    /// Figure 6: Maxport needs 3 steps for {1001, 1010, 1011} while
    /// U-cube needs only 2.
    #[test]
    fn figure_6_maxport_vs_ucube() {
        let dests = [0b1001, 0b1010, 0b1011];
        let t = build(Algorithm::Maxport, 4, PortModel::AllPort, 0, &dests);
        assert_eq!(t.steps, 3);
        let t = build(Algorithm::UCube, 4, PortModel::AllPort, 0, &dests);
        assert_eq!(t.steps, 2);
        // Combine fixes the pathology.
        let t = build(Algorithm::Combine, 4, PortModel::AllPort, 0, &dests);
        assert_eq!(t.steps, 2);
    }

    /// Figure 8: on D = {0,1,3,5,7,11,12,14,15}, all-port U-cube and
    /// Maxport need 4 steps, W-sort needs 2.
    #[test]
    fn figure_8_step_counts() {
        let dests = [1, 3, 5, 7, 11, 12, 14, 15];
        assert_eq!(
            build(Algorithm::UCube, 4, PortModel::AllPort, 0, &dests).steps,
            4
        );
        assert_eq!(
            build(Algorithm::Maxport, 4, PortModel::AllPort, 0, &dests).steps,
            4
        );
        assert_eq!(
            build(Algorithm::WSort, 4, PortModel::AllPort, 0, &dests).steps,
            2
        );
    }

    #[test]
    fn separate_addressing_step_counts() {
        // One-port: m steps. All-port: destinations split across channels.
        let dests = [1, 2, 3];
        assert_eq!(
            build(Algorithm::Separate, 3, PortModel::OnePort, 0, &dests).steps,
            3
        );
        // Channels: 1→dim0, 2→dim1, 3→dim1 (δ(0,3)=1): dim1 serializes.
        assert_eq!(
            build(Algorithm::Separate, 3, PortModel::AllPort, 0, &dests).steps,
            2
        );
    }

    #[test]
    fn dimtree_reaches_all_with_single_hops() {
        let dests = [
            0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
        ];
        let t = build(Algorithm::DimTree, 4, PortModel::OnePort, 0, &dests);
        assert!(t.unicasts.iter().all(|u| u.src.distance(u.dst) == 1));
        for &d in &dests {
            assert!(t.recv_step(NodeId(d)).is_some());
        }
        assert!(!t.relays(&ids(&dests)).is_empty());
    }

    #[test]
    fn build_rejects_bad_input() {
        let c = Cube::of(3);
        let r = Resolution::HighToLow;
        let p = PortModel::AllPort;
        assert!(Algorithm::UCube
            .build(c, r, p, NodeId(9), &ids(&[1]))
            .is_err());
        assert!(Algorithm::UCube
            .build(c, r, p, NodeId(0), &ids(&[9]))
            .is_err());
        assert!(Algorithm::UCube
            .build(c, r, p, NodeId(0), &ids(&[1, 1]))
            .is_err());
        assert!(Algorithm::UCube
            .build(c, r, p, NodeId(1), &ids(&[1]))
            .is_err());
    }

    #[test]
    fn empty_destination_set_is_a_trivial_tree() {
        let t = build(Algorithm::WSort, 4, PortModel::AllPort, 3, &[]);
        assert_eq!(t.steps, 0);
        assert!(t.unicasts.is_empty());
    }

    #[test]
    fn broadcast_steps_all_port() {
        // Full broadcast in a 4-cube: W-sort/Maxport reach all 15 nodes.
        // Capacity bound: ⌈log₅(16)⌉ = 2 steps;
        // the spanning-binomial structure achieves... let the algorithms
        // speak; they must at least respect the bound and one-port must be
        // exactly n = log₂ N steps.
        for algo in [Algorithm::Maxport, Algorithm::WSort] {
            let dests: Vec<u32> = (1..16).collect();
            let t = build(algo, 4, PortModel::AllPort, 0, &dests);
            assert!(t.steps >= 2, "{algo}: capacity lower bound");
            assert!(t.steps <= 4, "{algo}: must not exceed one-port optimum");
        }
        let dests: Vec<u32> = (1..16).collect();
        let t = build(Algorithm::UCube, 4, PortModel::OnePort, 0, &dests);
        assert_eq!(t.steps, 4); // ⌈log₂ 16⌉
    }

    #[test]
    fn all_algorithms_work_from_any_source_and_resolution() {
        for algo in Algorithm::ALL {
            for res in [Resolution::HighToLow, Resolution::LowToHigh] {
                for port in [PortModel::OnePort, PortModel::AllPort] {
                    let t = algo
                        .build(
                            Cube::of(4),
                            res,
                            port,
                            NodeId(0b1010),
                            &ids(&[0b0001, 0b1111, 0b0110]),
                        )
                        .unwrap();
                    for d in [0b0001, 0b1111, 0b0110] {
                        assert!(
                            t.recv_step(NodeId(d)).is_some(),
                            "{algo} {res:?} {port:?} missed {d:#b}"
                        );
                    }
                }
            }
        }
    }
}
