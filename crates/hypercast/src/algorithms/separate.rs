//! Separate addressing: the naive baseline in which the source sends one
//! unicast per destination (Section 2's first strawman).
//!
//! On a one-port node the `m` sends serialize into `m` steps; on an
//! all-port node destinations sharing a first channel still serialize per
//! port, so the step count is the maximum number of destinations behind
//! any single channel.

use crate::schedule::SendPlan;

/// Builds the separate-addressing plan: the source transmits directly to
/// every chain position, in chain order.
pub(crate) fn separate_plan(chain_len: usize) -> SendPlan {
    let mut plan: SendPlan = vec![Vec::new(); chain_len];
    if chain_len > 1 {
        plan[0] = (1..chain_len).collect();
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_sends_from_source() {
        let plan = separate_plan(5);
        assert_eq!(plan[0], vec![1, 2, 3, 4]);
        assert!(plan[1..].iter().all(|v| v.is_empty()));
    }

    #[test]
    fn no_destinations() {
        assert_eq!(separate_plan(1), vec![Vec::<usize>::new()]);
    }
}
