//! Property-based tests holding every algorithm to the paper's claims on
//! randomized instances.

use hcube::{Cube, NodeId, Resolution};
use hypercast::bounds::{all_port_lower_bound, one_port_lower_bound};
use hypercast::collectives::{gather, scatter, ReductionSchedule};
use hypercast::contention::is_contention_free;
use hypercast::oracle::{verify_gather, verify_scatter};
use hypercast::verify::{validate, ValidateOptions};
use hypercast::{Algorithm, PortModel};
use proptest::prelude::*;

/// A random multicast instance: cube dimension, source, destination set.
fn instance() -> impl Strategy<Value = (u8, u32, Vec<u32>)> {
    (2u8..=8).prop_flat_map(|n| {
        let m = 1u32 << n;
        (
            Just(n),
            0..m,
            prop::collection::btree_set(0..m, 1..=(m as usize - 1).min(40)),
        )
            .prop_map(|(n, src, set)| {
                let dests: Vec<u32> = set.into_iter().filter(|&d| d != src).collect();
                (n, src, dests)
            })
    })
}

fn build(
    algo: Algorithm,
    n: u8,
    res: Resolution,
    port: PortModel,
    src: u32,
    dests: &[u32],
) -> hypercast::MulticastTree {
    let dests: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
    algo.build(Cube::of(n), res, port, NodeId(src), &dests)
        .unwrap()
}

proptest! {
    /// Every algorithm produces a structurally valid tree under both port
    /// models and both resolution orders.
    #[test]
    fn trees_are_structurally_valid((n, src, dests) in instance(),
                                    lowhigh in any::<bool>(),
                                    allport in any::<bool>()) {
        prop_assume!(!dests.is_empty());
        let res = if lowhigh { Resolution::LowToHigh } else { Resolution::HighToLow };
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        for algo in Algorithm::ALL {
            let t = build(algo, n, res, port, src, &dests);
            let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
            let violations = validate(
                &t,
                &dest_ids,
                ValidateOptions { port_model: port, forbid_relays: !algo.uses_relays() },
            );
            prop_assert!(
                violations.is_empty(),
                "{algo} {res:?} {port:?}: {violations:?}\n{}",
                t.render()
            );
        }
    }

    /// Theorem 6 and the subcube-separation argument: Maxport, W-sort and
    /// the baselines are contention-free under all-port scheduling.
    #[test]
    fn guaranteed_algorithms_are_contention_free((n, src, dests) in instance(),
                                                 lowhigh in any::<bool>()) {
        prop_assume!(!dests.is_empty());
        let res = if lowhigh { Resolution::LowToHigh } else { Resolution::HighToLow };
        for algo in Algorithm::ALL {
            if !algo.contention_free_all_port() {
                continue;
            }
            let t = build(algo, n, res, PortModel::AllPort, src, &dests);
            prop_assert!(
                is_contention_free(&t),
                "{algo} {res:?} contended:\n{}",
                t.render()
            );
        }
    }

    /// U-cube is contention-free on one-port systems (the [9] guarantee),
    /// as are all the others under one-port serialization.
    #[test]
    fn one_port_schedules_are_contention_free((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        for algo in Algorithm::ALL {
            let t = build(algo, n, Resolution::HighToLow, PortModel::OnePort, src, &dests);
            prop_assert!(
                is_contention_free(&t),
                "{algo} one-port contended:\n{}",
                t.render()
            );
        }
    }

    /// U-cube achieves exactly ⌈log₂(m+1)⌉ steps on one-port — the tight
    /// optimum claimed by the paper.
    #[test]
    fn ucube_one_port_is_optimal((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        let t = build(Algorithm::UCube, n, Resolution::HighToLow, PortModel::OnePort, src, &dests);
        prop_assert_eq!(t.steps, one_port_lower_bound(dests.len()));
    }

    /// No algorithm beats the capacity lower bounds.
    #[test]
    fn steps_respect_lower_bounds((n, src, dests) in instance(), allport in any::<bool>()) {
        prop_assume!(!dests.is_empty());
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        let bound = match port {
            PortModel::OnePort => one_port_lower_bound(dests.len()),
            PortModel::AllPort => all_port_lower_bound(n, dests.len()),
            PortModel::KPort(_) => unreachable!("not generated here"),
        };
        for algo in Algorithm::ALL {
            let t = build(algo, n, Resolution::HighToLow, port, src, &dests);
            prop_assert!(
                t.steps >= bound,
                "{algo} {port:?} claims {} steps < bound {bound}",
                t.steps
            );
        }
    }

    /// All-port never does worse than one-port for the same algorithm.
    #[test]
    fn all_port_never_slower((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        for algo in Algorithm::ALL {
            let one = build(algo, n, Resolution::HighToLow, PortModel::OnePort, src, &dests);
            let all = build(algo, n, Resolution::HighToLow, PortModel::AllPort, src, &dests);
            prop_assert!(all.steps <= one.steps, "{algo}");
        }
    }

    /// Resolution-order conjugation: running with low-to-high resolution
    /// is identical (step-for-step) to running with high-to-low on the
    /// bit-reversed instance — the formal version of the paper's remark
    /// that the nCUBE-2's opposite resolution order affects nothing.
    #[test]
    fn resolution_orders_are_conjugate((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        let rev = |v: u32| NodeId(v).bit_reverse(n).0;
        let rev_src = rev(src);
        let rev_dests: Vec<u32> = dests.iter().map(|&d| rev(d)).collect();
        for algo in Algorithm::ALL {
            for port in [PortModel::OnePort, PortModel::AllPort] {
                let a = build(algo, n, Resolution::LowToHigh, port, src, &dests);
                let b = build(algo, n, Resolution::HighToLow, port, rev_src, &rev_dests);
                prop_assert_eq!(a.steps, b.steps, "{} {:?}", algo, port);
                prop_assert_eq!(a.message_count(), b.message_count(), "{} {:?}", algo, port);
                // Unicast-for-unicast: b's unicasts are the bit-reversed
                // images of a's.
                let mut ea: Vec<(u32, u32, u32)> =
                    a.unicasts.iter().map(|u| (rev(u.src.0), rev(u.dst.0), u.step)).collect();
                let mut eb: Vec<(u32, u32, u32)> =
                    b.unicasts.iter().map(|u| (u.src.0, u.dst.0, u.step)).collect();
                ea.sort_unstable();
                eb.sort_unstable();
                prop_assert_eq!(ea, eb, "{} {:?}", algo, port);
            }
        }
    }

    /// The wormhole algorithms use exactly m unicasts (one delivery per
    /// destination, no relays); the store-and-forward baseline uses at
    /// least that many.
    #[test]
    fn message_counts((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        for algo in Algorithm::ALL {
            let t = build(algo, n, Resolution::HighToLow, PortModel::AllPort, src, &dests);
            if algo.uses_relays() {
                prop_assert!(t.message_count() >= dests.len());
            } else {
                prop_assert_eq!(t.message_count(), dests.len(), "{}", algo);
            }
        }
    }

    /// k-port interpolates between one-port and all-port: steps are
    /// non-increasing in k, KPort(n) matches AllPort, and every k-port
    /// schedule passes structural validation.
    #[test]
    fn kport_interpolates((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty());
        for algo in [Algorithm::UCube, Algorithm::WSort] {
            let mut prev = u32::MAX;
            for k in 1..=n {
                let t = build(algo, n, Resolution::HighToLow, PortModel::KPort(k), src, &dests);
                let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
                let v = validate(
                    &t,
                    &dest_ids,
                    ValidateOptions {
                        port_model: PortModel::KPort(k),
                        forbid_relays: true,
                    },
                );
                prop_assert!(v.is_empty(), "{algo} k={k}: {v:?}");
                prop_assert!(t.steps <= prev, "{algo}: steps not monotone in k");
                prev = t.steps;
            }
            let full = build(algo, n, Resolution::HighToLow, PortModel::KPort(n), src, &dests);
            let all = build(algo, n, Resolution::HighToLow, PortModel::AllPort, src, &dests);
            prop_assert_eq!(full.steps, all.steps, "{}", algo);
        }
    }

    /// Reductions derived from any tree are causal, and are the exact
    /// step-mirror of their multicast: every tree edge appears reversed
    /// at step `steps + 1 − t`, under every algorithm, resolution order,
    /// and port model.
    #[test]
    fn reductions_are_causal_step_mirrors((n, src, dests) in instance(),
                                          lowhigh in any::<bool>(),
                                          allport in any::<bool>()) {
        prop_assume!(!dests.is_empty());
        let res = if lowhigh { Resolution::LowToHigh } else { Resolution::HighToLow };
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        for algo in Algorithm::ALL {
            let t = build(algo, n, res, port, src, &dests);
            let r = ReductionSchedule::from_multicast(&t);
            prop_assert!(r.is_causal(), "{algo} {res:?} {port:?}");
            prop_assert_eq!(r.root, t.source, "{} {:?}", algo, res);
            prop_assert_eq!(r.steps, t.steps, "{} {:?}", algo, res);
            let mut mirrored: Vec<(u32, u32, u32)> = t
                .unicasts
                .iter()
                .map(|u| (u.dst.0, u.src.0, t.steps + 1 - u.step))
                .collect();
            let mut reduced: Vec<(u32, u32, u32)> =
                r.unicasts.iter().map(|u| (u.src.0, u.dst.0, u.step)).collect();
            mirrored.sort_unstable();
            reduced.sort_unstable();
            prop_assert_eq!(mirrored, reduced, "{} {:?} {:?}", algo, res, port);
        }
    }

    /// The data oracle certifies scatter and gather schedules built on
    /// random instances: every destination keeps exactly its own block,
    /// the root collects every contribution exactly once, and the edge
    /// byte annotations are consistent throughout.
    #[test]
    fn scatter_and_gather_pass_the_data_oracle((n, src, dests) in instance(),
                                               lowhigh in any::<bool>()) {
        prop_assume!(!dests.is_empty());
        let res = if lowhigh { Resolution::LowToHigh } else { Resolution::HighToLow };
        let cube = Cube::of(n);
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        for algo in Algorithm::ALL {
            let s = scatter(algo, cube, res, PortModel::AllPort, NodeId(src), &dest_ids, 512)
                .unwrap();
            prop_assert!(
                verify_scatter(&s, &dest_ids, 512).is_ok(),
                "{algo} {res:?} scatter: {:?}",
                verify_scatter(&s, &dest_ids, 512)
            );
            let g = gather(algo, cube, res, PortModel::AllPort, NodeId(src), &dest_ids, 512)
                .unwrap();
            prop_assert!(
                verify_gather(&g, &dest_ids, 512).is_ok(),
                "{algo} {res:?} gather: {:?}",
                verify_gather(&g, &dest_ids, 512)
            );
        }
    }

    /// The exact port-limited optimum lies between the capacity bound and
    /// every heuristic's step count (small instances only).
    #[test]
    fn exact_optimum_brackets((n, src, dests) in instance()) {
        prop_assume!(!dests.is_empty() && dests.len() <= 6 && n <= 6);
        let cube = Cube::of(n);
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        for port in [PortModel::OnePort, PortModel::AllPort] {
            let exact = hypercast::bounds::min_steps_port_limited(
                cube,
                Resolution::HighToLow,
                port,
                NodeId(src),
                &dest_ids,
            )
            .unwrap();
            let cap = match port {
                PortModel::OnePort => one_port_lower_bound(dests.len()),
                PortModel::AllPort => all_port_lower_bound(n, dests.len()),
                PortModel::KPort(_) => unreachable!("not generated here"),
            };
            prop_assert!(exact >= cap);
            for algo in Algorithm::PAPER {
                let t = build(algo, n, Resolution::HighToLow, port, src, &dests);
                prop_assert!(t.steps >= exact, "{algo} {port:?} beat the optimum");
            }
        }
    }
}

/// Statistical claim (the paper's headline): averaged over random sets,
/// the all-port-aware algorithms need no more steps than U-cube, and
/// W-sort is at least as good as Maxport on average.
#[test]
fn average_step_ordering_on_random_sets() {
    use rand::seq::SliceRandom;
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5C93);
    let n = 6u8;
    let cube = Cube::of(n);
    let mut totals = std::collections::HashMap::new();
    let trials = 300;
    for _ in 0..trials {
        let m = rng.gen_range(1..=40usize);
        let mut pool: Vec<u32> = (1..cube.node_count() as u32).collect();
        pool.shuffle(&mut rng);
        let dests: Vec<NodeId> = pool[..m].iter().map(|&v| NodeId(v)).collect();
        for algo in Algorithm::PAPER {
            let t = algo
                .build(
                    cube,
                    Resolution::HighToLow,
                    PortModel::AllPort,
                    NodeId(0),
                    &dests,
                )
                .unwrap();
            *totals.entry(algo).or_insert(0u64) += u64::from(t.steps);
        }
    }
    let avg = |a: Algorithm| totals[&a] as f64 / f64::from(trials);
    assert!(avg(Algorithm::WSort) <= avg(Algorithm::Maxport) + 1e-9);
    assert!(avg(Algorithm::WSort) < avg(Algorithm::UCube));
    assert!(avg(Algorithm::Combine) < avg(Algorithm::UCube));
    assert!(avg(Algorithm::Maxport) < avg(Algorithm::UCube));
}
