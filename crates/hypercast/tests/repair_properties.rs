//! Property-based tests of the fault-tolerance machinery: on randomized
//! instances with randomized fault sets, repaired trees never traverse a
//! dead channel, stay structurally valid, and never silently lose a live
//! destination.

use hcube::{Cube, Dim, NodeId, Resolution};
use hypercast::protocol::{self, RetryPolicy};
use hypercast::repair::{broken_unicasts, path_is_clean, repair, NetworkFaults};
use hypercast::verify::{validate, ValidateOptions};
use hypercast::{Algorithm, PortModel};
use proptest::prelude::*;

/// A random faulty multicast instance: cube dimension, source,
/// destination set, dead directed-link indices, dead nodes.
#[allow(clippy::type_complexity)]
fn faulty_instance() -> impl Strategy<Value = (u8, u32, Vec<u32>, Vec<u32>, Vec<u32>)> {
    (3u8..=7).prop_flat_map(|n| {
        let m = 1u32 << n;
        let links = m * u32::from(n);
        (
            Just(n),
            0..m,
            prop::collection::btree_set(0..m, 1..=(m as usize - 1).min(24)),
            prop::collection::btree_set(0..links, 0..=6),
            prop::collection::btree_set(0..m, 0..=2),
        )
            .prop_map(|(n, src, dset, lset, nset)| {
                let dests: Vec<u32> = dset.into_iter().filter(|&d| d != src).collect();
                (
                    n,
                    src,
                    dests,
                    lset.into_iter().collect(),
                    nset.into_iter().collect(),
                )
            })
    })
}

/// A *heavily* faulted instance: up to `3n` dead directed links and up
/// to 4 dead nodes at once, plus an algorithm selector — the combined
/// link+node churn an epoch of the traffic chaos layer can accumulate.
#[allow(clippy::type_complexity)]
fn heavy_combined_instance() -> impl Strategy<Value = (u8, u32, Vec<u32>, Vec<u32>, Vec<u32>, usize)>
{
    (4u8..=7).prop_flat_map(|n| {
        let m = 1u32 << n;
        let links = m * u32::from(n);
        (
            Just(n),
            0..m,
            prop::collection::btree_set(0..m, 1..=(m as usize - 1).min(24)),
            prop::collection::btree_set(0..links, 4..=(3 * n as usize)),
            prop::collection::btree_set(0..m, 1..=4),
            0..4usize,
        )
            .prop_map(|(n, src, dset, lset, nset, algo)| {
                let dests: Vec<u32> = dset.into_iter().filter(|&d| d != src).collect();
                (
                    n,
                    src,
                    dests,
                    lset.into_iter().collect(),
                    nset.into_iter().collect(),
                    algo,
                )
            })
    })
}

fn make_faults(n: u8, links: &[u32], nodes: &[u32]) -> NetworkFaults {
    let mut f = NetworkFaults::new();
    for &ix in links {
        f.fail_link(NodeId(ix / u32::from(n)), Dim((ix % u32::from(n)) as u8));
    }
    for &v in nodes {
        f.fail_node(NodeId(v));
    }
    f
}

proptest! {
    /// The repaired tree never schedules a unicast whose E-cube path
    /// crosses a dead channel or dead node.
    #[test]
    fn repaired_trees_never_traverse_a_dead_channel(
        (n, src, dests, links, nodes) in faulty_instance(),
        wsort in any::<bool>(),
    ) {
        prop_assume!(!dests.is_empty());
        let algo = if wsort { Algorithm::WSort } else { Algorithm::UCube };
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        let tree = algo
            .build(Cube::of(n), Resolution::HighToLow, PortModel::AllPort, NodeId(src), &dest_ids)
            .unwrap();
        let faults = make_faults(n, &links, &nodes);
        let out = repair(&tree, &faults);
        for u in &out.tree.unicasts {
            prop_assert!(
                path_is_clean(out.tree.resolution, u.src, u.dst, &faults),
                "unicast {} -> {} crosses a fault", u.src, u.dst
            );
        }
        prop_assert!(broken_unicasts(&out.tree, &faults).is_empty());
    }

    /// The repaired tree stays valid per `hypercast::verify` (relays
    /// allowed) against the destinations it claims to deliver, and every
    /// live destination is either delivered or reported unreachable —
    /// never silently lost.
    #[test]
    fn repaired_trees_remain_valid_and_lose_nothing_silently(
        (n, src, dests, links, nodes) in faulty_instance(),
    ) {
        prop_assume!(!dests.is_empty());
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        let tree = Algorithm::WSort
            .build(Cube::of(n), Resolution::HighToLow, PortModel::AllPort, NodeId(src), &dest_ids)
            .unwrap();
        let faults = make_faults(n, &links, &nodes);
        let out = repair(&tree, &faults);

        // Partition of the original destinations.
        let delivered: std::collections::HashSet<NodeId> =
            out.tree.receivers().into_iter().collect();
        for &d in &dest_ids {
            let dead = faults.node_dead(d);
            let dropped = out.dropped.contains(&d);
            let unreachable = out.unreachable.contains(&d);
            prop_assert_eq!(dead, dropped, "dropped iff dead: {}", d);
            prop_assert!(
                dead || delivered.contains(&d) || unreachable,
                "live destination {} silently lost", d
            );
            prop_assert!(
                !(delivered.contains(&d) && unreachable),
                "{} both delivered and unreachable", d
            );
        }

        // Structural validity against the claimed-delivered set.
        let claim: Vec<NodeId> = dest_ids
            .iter()
            .copied()
            .filter(|d| delivered.contains(d))
            .collect();
        let violations = validate(
            &out.tree,
            &claim,
            ValidateOptions { port_model: PortModel::AllPort, forbid_relays: false },
        );
        prop_assert!(violations.is_empty(), "repair violates tree contract: {:?}", violations);
    }

    /// Under heavy combined link+node fault plans, every paper algorithm's
    /// repaired tree partitions the destination set exactly: dead
    /// destinations are dropped, and each live destination is delivered
    /// clean of every fault or typed unreachable — never silently lost.
    #[test]
    fn heavy_combined_faults_partition_destinations_for_every_algorithm(
        (n, src, dests, links, nodes, algo_ix) in heavy_combined_instance(),
    ) {
        prop_assume!(!dests.is_empty());
        let algo = Algorithm::PAPER[algo_ix];
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        let tree = algo
            .build(Cube::of(n), Resolution::HighToLow, PortModel::AllPort, NodeId(src), &dest_ids)
            .unwrap();
        let faults = make_faults(n, &links, &nodes);
        let out = repair(&tree, &faults);

        for u in &out.tree.unicasts {
            prop_assert!(
                path_is_clean(out.tree.resolution, u.src, u.dst, &faults),
                "{}: unicast {} -> {} crosses a fault", algo.name(), u.src, u.dst
            );
        }
        prop_assert!(broken_unicasts(&out.tree, &faults).is_empty());

        let delivered: std::collections::HashSet<NodeId> =
            out.tree.receivers().into_iter().collect();
        for &d in &dest_ids {
            let buckets = usize::from(faults.node_dead(d) && out.dropped.contains(&d))
                + usize::from(delivered.contains(&d))
                + usize::from(out.unreachable.contains(&d));
            prop_assert_eq!(
                buckets, 1,
                "{}: destination {} must land in exactly one bucket \
                 (dead-and-dropped / delivered / unreachable)", algo.name(), d
            );
        }
    }

    /// Repair is idempotent: repairing an already-repaired tree against
    /// the same combined fault plan changes nothing — the chaos retry
    /// path may rebuild through the cache any number of times within an
    /// epoch without the tree drifting.
    #[test]
    fn repair_is_idempotent_under_combined_faults(
        (n, src, dests, links, nodes, algo_ix) in heavy_combined_instance(),
    ) {
        prop_assume!(!dests.is_empty());
        let algo = Algorithm::PAPER[algo_ix];
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        let tree = algo
            .build(Cube::of(n), Resolution::HighToLow, PortModel::AllPort, NodeId(src), &dest_ids)
            .unwrap();
        let faults = make_faults(n, &links, &nodes);
        let once = repair(&tree, &faults);
        let twice = repair(&once.tree, &faults);
        prop_assert_eq!(&twice.tree.unicasts, &once.tree.unicasts);
        prop_assert!(twice.rerouted.is_empty(), "second repair rerouted again");
        prop_assert!(twice.dropped.is_empty(), "second repair dropped again");
        prop_assert_eq!(twice.extra_steps, 0);
    }

    /// Repair on a healthy network is the identity.
    #[test]
    fn repair_without_faults_is_identity((n, src, dests, _l, _n2) in faulty_instance()) {
        prop_assume!(!dests.is_empty());
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        let tree = Algorithm::WSort
            .build(Cube::of(n), Resolution::HighToLow, PortModel::AllPort, NodeId(src), &dest_ids)
            .unwrap();
        let out = repair(&tree, &NetworkFaults::new());
        prop_assert_eq!(&out.tree.unicasts, &tree.unicasts);
        prop_assert_eq!(out.extra_steps, 0);
        prop_assert!(out.rerouted.is_empty() && out.unreachable.is_empty());
    }

    /// The retrying executor delivers to every destination it does not
    /// explicitly report undelivered, and its relay messages also avoid
    /// permanently dead channels.
    #[test]
    fn retrying_executor_accounts_for_every_destination(
        (n, src, dests, links, nodes) in faulty_instance(),
    ) {
        prop_assume!(!dests.is_empty());
        let faults = make_faults(n, &links, &nodes);
        prop_assume!(!faults.node_dead(NodeId(src)));
        let dest_ids: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
        let run = protocol::execute_with_faults(
            Algorithm::WSort,
            Cube::of(n),
            Resolution::HighToLow,
            NodeId(src),
            &dest_ids,
            &faults,
            &[],
            RetryPolicy::default(),
        )
        .unwrap();
        let got: std::collections::HashSet<NodeId> = run.messages.iter().map(|m| m.to).collect();
        for &d in &dest_ids {
            prop_assert!(
                got.contains(&d) || run.undelivered.contains(&d),
                "destination {} neither delivered nor reported undelivered", d
            );
        }
        for m in &run.messages {
            prop_assert!(
                path_is_clean(Resolution::HighToLow, m.from, m.to, &faults),
                "delivered message {} -> {} crosses a permanent fault", m.from, m.to
            );
        }
        prop_assert_eq!(run.acks, run.messages.len());
    }
}
