//! Determinism regression suite.
//!
//! The engine refactor (layered `engine/` submodules, router-generic
//! core) claims to preserve hypercube behavior *bit for bit*. These
//! tests pin that claim down three ways:
//!
//! 1. a golden-file compare of Figure 11 against JSON captured from the
//!    pre-refactor engine (same seeds, same trial count);
//! 2. byte-identical [`RunResult`]s across repeated engine runs, on both
//!    the hypercube and the torus backend;
//! 3. worker-count independence of [`run_matrix_with_workers`] — the
//!    parallel sweep must aggregate identically at 1, 2, and 7 threads.

use hcube::{Cube, NodeId, Resolution, Torus, TorusRouter};
use hypercast::{Algorithm, PortModel};
use workloads::chaossweep::{chaos_sweep, chaos_sweep_with_workers, ChaosSweep, ChaosSweepConfig};
use workloads::collectivessweep::{collectives_sweep, CollectivesConfig, CollectivesSweep};
use workloads::lanesweep::{lane_sweep, LaneSweep, LaneSweepConfig};
use workloads::sweep::{run_matrix_with_workers, MatrixResult};
use workloads::telemetrysweep::{
    telemetry_sweep_with_workers, TelemetrySweep, TelemetrySweepConfig,
};
use workloads::trafficsweep::{traffic_sweep, SweepConfig, TrafficSweep};
use wormsim::{simulate, simulate_on, DepMessage, RunResult, SimParams, SimTime};

/// Golden output of `fig11 --trials 2`, captured from the pre-refactor
/// monolithic engine. `fig11_12` must keep regenerating it byte for
/// byte: the trial RNG keys, the destination draws, and every simulated
/// delay are all part of the contract.
const FIG11_GOLDEN: &str = include_str!("golden/fig11_trials2_pre_refactor.json");

#[test]
fn fig11_matches_pre_refactor_golden() {
    let (avg, _) = workloads::figures::fig11_12(2);
    assert_eq!(
        avg.to_json(),
        FIG11_GOLDEN,
        "fig11 (trials=2) diverged from the pre-refactor engine"
    );
}

/// A deliberately contentious workload: hot-spot traffic into node 0
/// plus a dependency chain, exercising blocking, FIFO arbitration, and
/// the dependency cascade.
fn contentious_workload(n: u32) -> Vec<DepMessage> {
    let mut w: Vec<DepMessage> = (1..n)
        .map(|v| DepMessage {
            src: NodeId(v),
            dst: NodeId(0),
            bytes: 2048,
            deps: vec![],
            min_start: SimTime::ZERO,
        })
        .collect();
    w.push(DepMessage {
        src: NodeId(0),
        dst: NodeId(n - 1),
        bytes: 4096,
        deps: vec![0, 1],
        min_start: SimTime::ZERO,
    });
    w
}

fn assert_runs_identical(a: &RunResult, b: &RunResult) {
    assert_eq!(a.messages, b.messages, "per-message results diverged");
    assert_eq!(a.stats, b.stats, "aggregate statistics diverged");
}

#[test]
fn cube_runs_are_byte_identical_across_repeats() {
    let cube = Cube::of(4);
    let w = contentious_workload(16);
    for port in [PortModel::AllPort, PortModel::OnePort] {
        let params = SimParams::ncube2(port);
        let first = simulate(cube, Resolution::HighToLow, &params, &w);
        for _ in 0..3 {
            let again = simulate(cube, Resolution::HighToLow, &params, &w);
            assert_runs_identical(&first, &again);
        }
    }
}

#[test]
fn torus_runs_are_byte_identical_across_repeats() {
    let torus = Torus::of(4, 2);
    let router = TorusRouter::new(torus);
    let params = SimParams::ncube2(PortModel::AllPort);
    let w = contentious_workload(16);
    let first = simulate_on(router, &params, &w);
    for _ in 0..3 {
        assert_runs_identical(&first, &simulate_on(router, &params, &w));
    }
}

/// The lane refactor's safety rail: a router explicitly configured with
/// **one** lane per link is byte-identical to the pre-lane default — on
/// the cube, on the torus (whose two dateline VCs are now two lane
/// classes of the same mechanism), and under a faulted cube workload
/// that exercises the abort/cleanup paths. A wide (4-lane) run then
/// sanity-checks that adaptive lane selection still delivers everything.
#[test]
fn single_lane_routers_match_the_default_byte_for_byte() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let w = contentious_workload(16);
    let cube = Cube::of(4);

    for port in [PortModel::AllPort, PortModel::OnePort] {
        let params = SimParams::ncube2(port);
        let base = simulate_on(hcube::Ecube::new(cube, Resolution::HighToLow), &params, &w);
        let lane1 = simulate_on(
            hcube::Ecube::with_lanes(cube, Resolution::HighToLow, 1),
            &params,
            &w,
        );
        assert_runs_identical(&base, &lane1);
    }

    let torus = Torus::of(4, 2);
    let base = simulate_on(TorusRouter::new(torus), &params, &w);
    let m1 = simulate_on(TorusRouter::with_lane_multiplier(torus, 1), &params, &w);
    assert_runs_identical(&base, &m1);

    let mut plan = wormsim::FaultPlan::random_links(cube, 4, 5);
    plan.stall(
        NodeId(1),
        hcube::Dim(0),
        SimTime::ZERO,
        SimTime::from_ns(40_000),
    )
    .deadline_all(SimTime::from_ns(120_000));
    let base = wormsim::simulate_with_faults_on(
        hcube::Ecube::new(cube, Resolution::HighToLow),
        &params,
        &w,
        &plan,
    )
    .expect("faulted workload is well-formed");
    let lane1 = wormsim::simulate_with_faults_on(
        hcube::Ecube::with_lanes(cube, Resolution::HighToLow, 1),
        &params,
        &w,
        &plan,
    )
    .expect("faulted workload is well-formed");
    assert_runs_identical(&base, &lane1);

    let wide = simulate_on(
        hcube::Ecube::with_lanes(cube, Resolution::HighToLow, 4),
        &params,
        &w,
    );
    assert_eq!(
        wide.delivered_count(),
        w.len(),
        "a 4-lane run must still deliver the whole workload"
    );
}

/// The tentpole's safety rail: a run replayed into a reused
/// [`wormsim::EngineScratch`] is byte-identical to the fresh-allocation
/// path — on the cube, on the torus, and on a faulted cube workload
/// (dead links + stall windows + a global deadline), with **one**
/// scratch serving all three back to back across rounds. That exercises
/// the full reset contract: arenas resized across topologies, the route
/// memo restamped between routers, the channel table swept after runs
/// that aborted mid-flight.
#[test]
fn scratch_reuse_is_byte_identical_to_fresh_allocation() {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut scratch = wormsim::EngineScratch::new();

    let cube = Cube::of(4);
    let cube_router = hcube::Ecube::new(cube, Resolution::HighToLow);
    let torus_router = TorusRouter::new(Torus::of(4, 2));
    let w = contentious_workload(16);

    let mut plan = wormsim::FaultPlan::random_links(cube, 4, 5);
    plan.stall(
        NodeId(1),
        hcube::Dim(0),
        SimTime::ZERO,
        SimTime::from_ns(40_000),
    )
    .deadline_all(SimTime::from_ns(120_000));

    for _ in 0..3 {
        let fresh = simulate_on(cube_router, &params, &w);
        let reused = wormsim::simulate_on_with_scratch(cube_router, &params, &w, &mut scratch);
        assert_runs_identical(&fresh, &reused);

        let fresh = simulate_on(torus_router, &params, &w);
        let reused = wormsim::simulate_on_with_scratch(torus_router, &params, &w, &mut scratch);
        assert_runs_identical(&fresh, &reused);

        let fresh = wormsim::simulate_with_faults_on(cube_router, &params, &w, &plan)
            .expect("faulted workload is well-formed");
        let reused = wormsim::simulate_with_faults_on_with_scratch(
            cube_router,
            &params,
            &w,
            &plan,
            &mut scratch,
        )
        .expect("faulted workload is well-formed");
        assert_runs_identical(&fresh, &reused);
        assert!(
            fresh.stats.timed_out > 0 || fresh.messages.iter().any(|m| !m.outcome.is_delivered()),
            "the faulted leg must actually exercise the abort/cleanup paths"
        );
    }
    assert!(
        scratch.route_memo().hits() > 0,
        "replayed rounds must hit the route memo"
    );
}

/// The observability layer is part of the determinism contract too: the
/// contention heatmap (seeded destination draws + in-loop EventRecorder
/// blocked-time accounting) must regenerate byte-identically, and
/// attaching the recorder must not perturb the simulated schedule.
#[test]
fn contention_heatmap_regenerates_byte_identically() {
    let a = workloads::heatmap::contention_heatmap(2);
    let b = workloads::heatmap::contention_heatmap(2);
    assert_eq!(
        a.to_json(),
        b.to_json(),
        "contention_heatmap (trials=2) is not deterministic"
    );
}

#[test]
fn observed_runs_match_unobserved_runs_bit_for_bit() {
    let cube = Cube::of(4);
    let w = contentious_workload(16);
    let params = SimParams::ncube2(PortModel::AllPort);
    let plain = simulate(cube, Resolution::HighToLow, &params, &w);
    let mut rec = wormsim::EventRecorder::new();
    let observed = wormsim::simulate_observed(cube, Resolution::HighToLow, &params, &w, &mut rec);
    assert_runs_identical(&plain, &observed);
}

fn delay_metric(
    cube: Cube,
    src: NodeId,
    dests: &[NodeId],
    algo: Algorithm,
    scratch: &mut wormsim::EngineScratch,
) -> [f64; 2] {
    let tree = algo
        .build(cube, Resolution::HighToLow, PortModel::AllPort, src, dests)
        .expect("valid instance");
    let report = wormsim::simulate_multicast_with_scratch(
        &tree,
        &SimParams::ncube2(PortModel::AllPort),
        1024,
        scratch,
    );
    [report.avg_delay.as_ms(), report.max_delay.as_ms()]
}

#[test]
fn run_matrix_is_independent_of_worker_count() {
    let flatten = |r: &MatrixResult<2>| -> Vec<f64> {
        r.cells
            .iter()
            .flat_map(|row| {
                row.iter()
                    .flat_map(|cell| cell.iter().flat_map(|s| [s.mean, s.std]))
            })
            .collect()
    };
    let run = |workers: usize| {
        run_matrix_with_workers(
            "det-workers",
            Cube::of(5),
            &[2, 7, 19],
            6,
            &[Algorithm::WSort, Algorithm::UCube],
            workers,
            delay_metric,
        )
    };
    let serial = flatten(&run(1));
    for workers in [2, 7] {
        assert_eq!(
            flatten(&run(workers)),
            serial,
            "sweep output changed at {workers} workers"
        );
    }
}

/// The committed traffic-sweep artifact, validated with the first-party
/// parser — the same check `traffic_sweep --check` runs in CI.
const TRAFFIC_SWEEP_GOLDEN: &str = include_str!("../../../results/traffic_sweep.json");

/// The committed `results/traffic_sweep.json` must parse under the
/// schema, carry the full configuration, and satisfy every acceptance
/// property: 9 series (2 cubes x 4 algorithms + torus), >= 5 load
/// points per series, saturation detected per algorithm, and a nonzero
/// tree-cache hit rate on the cube series.
#[test]
fn committed_traffic_sweep_artifact_is_valid_and_complete() {
    let sweep = TrafficSweep::from_json(TRAFFIC_SWEEP_GOLDEN)
        .expect("committed traffic_sweep.json violates its own schema");
    assert_eq!(
        sweep.config,
        SweepConfig::full(),
        "committed artifact was not produced by SweepConfig::full()"
    );
    assert_eq!(sweep.series.len(), 9, "2 cubes x 4 algorithms + 1 torus");
    for s in &sweep.series {
        assert!(
            s.points.len() >= 5,
            "{} {}: need >= 5 load points, got {}",
            s.network,
            s.algorithm,
            s.points.len()
        );
        assert!(
            s.saturation_per_ms.is_some(),
            "{} {}: the swept ladder must drive the network into saturation",
            s.network,
            s.algorithm
        );
        // Ladders are ascending and match the config.
        let expect = if s.network == "cube8" {
            &sweep.config.loads_256
        } else {
            &sweep.config.loads_64
        };
        let offered: Vec<f64> = s.points.iter().map(|p| p.offered_per_ms).collect();
        assert_eq!(
            &offered, expect,
            "{} {}: load ladder",
            s.network, s.algorithm
        );
        if s.network.starts_with("cube") {
            assert!(
                s.points.iter().all(|p| p.cache_hit_rate > 0.0),
                "{} {}: recurring pool traffic must hit the tree cache",
                s.network,
                s.algorithm
            );
        }
    }
    // Serialization is canonical: re-emitting the parsed artifact must
    // reproduce the committed bytes exactly.
    assert_eq!(
        sweep.to_json(),
        TRAFFIC_SWEEP_GOLDEN.trim_end_matches('\n'),
        "to_json is not canonical for the committed artifact"
    );
}

/// Full-artifact byte-reproducibility: regenerating the sweep with the
/// committed configuration reproduces `results/traffic_sweep.json`
/// exactly. Expensive (minutes in debug builds), so ignored by default;
/// CI runs it in release via `cargo test --release -- --ignored`.
#[test]
#[ignore = "full sweep regeneration; run in release builds"]
fn committed_traffic_sweep_artifact_regenerates_byte_identically() {
    let regenerated = traffic_sweep(&SweepConfig::full());
    assert_eq!(
        regenerated.to_json(),
        TRAFFIC_SWEEP_GOLDEN.trim_end_matches('\n'),
        "results/traffic_sweep.json diverged from regeneration — rerun \
         `cargo run -p bench --release --bin traffic_sweep` and commit"
    );
}

/// The committed collectives-sweep artifact, validated with the
/// first-party parser — the same check `collectives_sweep --check` runs
/// in CI.
const COLLECTIVES_SWEEP_GOLDEN: &str = include_str!("../../../results/collectives_sweep.json");

/// The committed `results/collectives_sweep.json` must parse under the
/// schema, carry the full configuration, and satisfy the acceptance
/// properties: 18 schedule rows (3 collectives x 5 cube families +
/// 3 torus rows), **every row certified by the data oracle**, 6 traffic
/// rows with nonzero completion, and canonical serialization.
#[test]
fn committed_collectives_sweep_artifact_is_valid_and_complete() {
    let sweep = CollectivesSweep::from_json(COLLECTIVES_SWEEP_GOLDEN)
        .expect("committed collectives_sweep.json violates its own schema");
    assert_eq!(
        sweep.config,
        CollectivesConfig::full(),
        "committed artifact was not produced by CollectivesConfig::full()"
    );
    assert_eq!(
        sweep.rows.len(),
        18,
        "3 collectives x (5 cube families + 1 torus backend)"
    );
    for r in &sweep.rows {
        assert!(
            r.verified,
            "{} {} {}: committed artifact carries an oracle-unverified row",
            r.suite, r.network, r.family
        );
        assert!(r.makespan_ms > 0.0 && r.payload_bytes > 0 && r.ops > 0);
    }
    assert_eq!(sweep.traffic.len(), 6, "2 families x 3 collectives");
    for t in &sweep.traffic {
        assert!(
            t.completion_ratio > 0.0 && t.mean_latency_ms.is_finite(),
            "{} {}: traffic row must measure completed sessions",
            t.suite,
            t.family
        );
    }
    // Serialization is canonical: re-emitting the parsed artifact must
    // reproduce the committed bytes exactly.
    assert_eq!(
        sweep
            .to_json()
            .expect("committed artifact re-emits strictly"),
        COLLECTIVES_SWEEP_GOLDEN.trim_end_matches('\n'),
        "to_json is not canonical for the committed artifact"
    );
}

/// Full-artifact byte-reproducibility: regenerating the collectives
/// sweep with the committed configuration reproduces
/// `results/collectives_sweep.json` exactly. Expensive, so ignored by
/// default; CI runs it in release via `cargo test --release -- --ignored`.
#[test]
#[ignore = "full sweep regeneration; run in release builds"]
fn committed_collectives_sweep_artifact_regenerates_byte_identically() {
    let regenerated = collectives_sweep(&CollectivesConfig::full());
    assert_eq!(
        regenerated
            .to_json()
            .expect("regenerated sweep emits strictly"),
        COLLECTIVES_SWEEP_GOLDEN.trim_end_matches('\n'),
        "results/collectives_sweep.json diverged from regeneration — rerun \
         `cargo run -p bench --release --bin collectives_sweep` and commit"
    );
}

/// The committed chaos-sweep artifact, validated with the first-party
/// parser — the same check `chaos_sweep --check` runs in CI.
const CHAOS_SWEEP_GOLDEN: &str = include_str!("../../../results/chaos_sweep.json");

/// The committed `results/chaos_sweep.json` must parse under the
/// schema, carry the full configuration, and satisfy the robustness
/// acceptance properties: the churn-free rung of every series delivers
/// 1.0, churny rungs degrade smoothly (never to zero), every disrupted
/// run recovers in finite time, and the cube series exercise the
/// epoch-keyed tree cache (hits plus repaired-entry invalidations).
#[test]
fn committed_chaos_sweep_artifact_is_valid_and_complete() {
    let sweep = ChaosSweep::from_json(CHAOS_SWEEP_GOLDEN)
        .expect("committed chaos_sweep.json violates its own schema");
    assert_eq!(
        sweep.config,
        ChaosSweepConfig::full(),
        "committed artifact was not produced by ChaosSweepConfig::full()"
    );
    assert_eq!(sweep.series.len(), 9, "2 cubes x 4 algorithms + 1 torus");
    let rungs = sweep.config.link_mtbf_ladder_ms.len();
    for s in &sweep.series {
        let loads = if s.network == "cube8" {
            &sweep.config.loads_256
        } else {
            &sweep.config.loads_64
        };
        assert_eq!(
            s.points.len(),
            rungs * loads.len(),
            "{} {}: incomplete churn x load grid",
            s.network,
            s.algorithm
        );
        for p in &s.points {
            if p.link_mtbf_ms.is_finite() {
                assert!(
                    p.fault_events > 0 && p.epochs > 1,
                    "{} {}: churny rung must actually churn",
                    s.network,
                    s.algorithm
                );
                assert!(
                    p.delivery_ratio > 0.5,
                    "{} {}: delivery must degrade smoothly, not cliff (got {})",
                    s.network,
                    s.algorithm,
                    p.delivery_ratio
                );
                assert!(
                    p.time_to_recover_ms.is_some(),
                    "{} {}: churny rung must report a recovery time",
                    s.network,
                    s.algorithm
                );
            } else {
                assert_eq!(
                    p.delivery_ratio, 1.0,
                    "{} {}: churn-free anchor must deliver everything",
                    s.network, s.algorithm
                );
                assert_eq!(p.lost, 0);
                assert_eq!(p.time_to_recover_ms, None);
            }
        }
        // The harshest rung disrupts more sessions than the calmest
        // churny rung: sum of retried-or-lost across its load points.
        let disrupted = |mtbf: f64| -> u64 {
            s.points
                .iter()
                .filter(|p| p.link_mtbf_ms == mtbf)
                .map(|p| p.retry_histogram.iter().skip(1).sum::<u64>() + p.lost)
                .sum()
        };
        let finite: Vec<f64> = sweep
            .config
            .link_mtbf_ladder_ms
            .iter()
            .copied()
            .filter(|m| m.is_finite())
            .collect();
        let calmest = finite.iter().cloned().fold(f64::MIN, f64::max);
        let harshest = finite.iter().cloned().fold(f64::MAX, f64::min);
        assert!(
            disrupted(harshest) >= disrupted(calmest),
            "{} {}: disruption must not decrease as MTBF shrinks",
            s.network,
            s.algorithm
        );
        if s.network.starts_with("cube") {
            assert!(
                s.points.iter().all(|p| p.cache.hits > 0),
                "{} {}: recurring pool traffic must hit the tree cache",
                s.network,
                s.algorithm
            );
            assert!(
                s.points
                    .iter()
                    .any(|p| p.cache.invalidations > 0 || p.retry_histogram.len() == 1),
                "{} {}: repaired trees must be invalidated at epoch turns",
                s.network,
                s.algorithm
            );
        }
    }
    // Serialization is canonical: re-emitting the parsed artifact must
    // reproduce the committed bytes exactly.
    assert_eq!(
        sweep.to_json(),
        CHAOS_SWEEP_GOLDEN.trim_end_matches('\n'),
        "to_json is not canonical for the committed artifact"
    );
}

/// Chaos grid points are independent seeded runs, so the worker pool
/// must not leak state between them: the 1-worker and multi-worker
/// sweeps must serialize byte-identically (each worker reuses one
/// `EngineScratch` across whatever subset of the grid it drains).
#[test]
fn chaos_sweep_is_independent_of_worker_count() {
    let cfg = ChaosSweepConfig {
        sessions: 10,
        pool_groups: 3,
        bytes: 512,
        seed: 29,
        loads_64: vec![2.0],
        loads_256: vec![4.0],
        link_mtbf_ladder_ms: vec![f64::INFINITY, 400.0],
        ..ChaosSweepConfig::full()
    };
    let serial = chaos_sweep(&cfg);
    for workers in [2, 7] {
        assert_eq!(
            chaos_sweep_with_workers(&cfg, workers).to_json(),
            serial.to_json(),
            "chaos sweep output changed at {workers} workers"
        );
    }
}

/// Full-artifact byte-reproducibility: regenerating the chaos sweep
/// with the committed configuration reproduces
/// `results/chaos_sweep.json` exactly. Expensive, so ignored by
/// default; CI runs it in release via `cargo test --release -- --ignored`.
#[test]
#[ignore = "full sweep regeneration; run in release builds"]
fn committed_chaos_sweep_artifact_regenerates_byte_identically() {
    let regenerated = chaos_sweep_with_workers(&ChaosSweepConfig::full(), 4);
    assert_eq!(
        regenerated.to_json(),
        CHAOS_SWEEP_GOLDEN.trim_end_matches('\n'),
        "results/chaos_sweep.json diverged from regeneration — rerun \
         `cargo run -p bench --release --bin chaos_sweep` and commit"
    );
}

/// The committed lane-sweep artifact, validated with the first-party
/// parser — the same check `lane_sweep --check` runs in CI.
const LANE_SWEEP_GOLDEN: &str = include_str!("../../../results/lane_sweep.json");

/// The committed `results/lane_sweep.json` must parse under the schema,
/// carry the full configuration, and satisfy the acceptance properties:
/// 16 series (4 networks x 4 algorithms), the configured lane ladder on
/// cube and mesh (even rungs only on the torus), an analytic
/// [`min_lanes_for_concurrent`] bound above one lane on every cube
/// series, per-lane utilization vectors sized to their rung, and a
/// cube6 zero-contention rung for every algorithm.
///
/// [`min_lanes_for_concurrent`]: hypercast::contention::min_lanes_for_concurrent
#[test]
fn committed_lane_sweep_artifact_is_valid_and_complete() {
    let sweep = LaneSweep::from_json(LANE_SWEEP_GOLDEN)
        .expect("committed lane_sweep.json violates its own schema");
    assert_eq!(
        sweep.config,
        LaneSweepConfig::full(),
        "committed artifact was not produced by LaneSweepConfig::full()"
    );
    assert_eq!(sweep.series.len(), 16, "4 networks x 4 algorithms");
    let even: Vec<u8> = sweep
        .config
        .lane_ladder
        .iter()
        .copied()
        .filter(|l| l % 2 == 0)
        .collect();
    for s in &sweep.series {
        let rungs: Vec<u8> = s.points.iter().map(|p| p.lanes).collect();
        let expect = if s.network == "torus4x3" {
            &even
        } else {
            &sweep.config.lane_ladder
        };
        assert_eq!(&rungs, expect, "{} {}: lane ladder", s.network, s.algorithm);
        for p in &s.points {
            assert_eq!(
                p.lane_utilization.len(),
                p.lanes as usize,
                "{} {}: utilization vector must have one entry per lane",
                s.network,
                s.algorithm
            );
        }
        if s.network == "cube6" {
            let analytic = s
                .analytic_min_lanes
                .expect("cube series must carry the analytic bound");
            assert!(
                analytic > 1.0,
                "{}: concurrent sessions must raise the analytic bound",
                s.algorithm
            );
            assert!(
                s.lanes_to_zero_contention.is_some(),
                "{}: the cube ladder must reach zero contention",
                s.algorithm
            );
        } else {
            assert!(s.analytic_min_lanes.is_none());
        }
    }
    // Serialization is canonical: re-emitting the parsed artifact must
    // reproduce the committed bytes exactly.
    assert_eq!(
        sweep.to_json(),
        LANE_SWEEP_GOLDEN.trim_end_matches('\n'),
        "to_json is not canonical for the committed artifact"
    );
}

/// Full-artifact byte-reproducibility: regenerating the lane sweep with
/// the committed configuration reproduces `results/lane_sweep.json`
/// exactly. Expensive, so ignored by default; CI runs it in release via
/// `cargo test --release -- --ignored`.
#[test]
#[ignore = "full sweep regeneration; run in release builds"]
fn committed_lane_sweep_artifact_regenerates_byte_identically() {
    let regenerated = lane_sweep(&LaneSweepConfig::full());
    assert_eq!(
        regenerated.to_json(),
        LANE_SWEEP_GOLDEN.trim_end_matches('\n'),
        "results/lane_sweep.json diverged from regeneration — rerun \
         `cargo run -p bench --release --bin lane_sweep` and commit"
    );
}

/// The committed telemetry-sweep artifact, validated with the
/// first-party parser — the same check `telemetry_sweep --check` runs
/// in CI.
const TELEMETRY_SWEEP_GOLDEN: &str = include_str!("../../../results/telemetry_sweep.json");

/// The committed `results/telemetry_sweep.json` must parse under the
/// schema, carry the full configuration, and satisfy the recovery
/// acceptance properties ([`TelemetrySweep::check_recovery`]): every
/// series accounts for all offered sessions bucket by bucket, churn is
/// visible in the `live_faults` gauge, and goodput dips during the
/// churn window then refills after it — the flight recorder's
/// dip-and-refill signature.
#[test]
fn committed_telemetry_sweep_artifact_is_valid_and_complete() {
    let sweep = TelemetrySweep::from_json(TELEMETRY_SWEEP_GOLDEN)
        .expect("committed telemetry_sweep.json violates its own schema");
    assert_eq!(
        sweep.config,
        TelemetrySweepConfig::full(),
        "committed artifact was not produced by TelemetrySweepConfig::full()"
    );
    assert_eq!(sweep.series.len(), 5, "4 cube algorithms + 1 torus");
    sweep
        .check_recovery()
        .expect("committed artifact fails the dip-and-refill recovery check");
    for s in &sweep.series {
        assert_eq!(
            s.rows.len(),
            sweep.config.buckets,
            "{} {}: every bucket of the window must be present",
            s.network,
            s.algorithm
        );
        assert!(
            s.fault_events > 0,
            "{} {}: the churn timeline must actually churn",
            s.network,
            s.algorithm
        );
    }
    // Serialization is canonical: re-emitting the parsed artifact must
    // reproduce the committed bytes exactly.
    assert_eq!(
        sweep.to_json(),
        TELEMETRY_SWEEP_GOLDEN.trim_end_matches('\n'),
        "to_json is not canonical for the committed artifact"
    );
}

/// Full-artifact byte-reproducibility: regenerating the telemetry sweep
/// with the committed configuration reproduces
/// `results/telemetry_sweep.json` exactly. Expensive, so ignored by
/// default; CI runs it in release via `cargo test --release -- --ignored`.
#[test]
#[ignore = "full sweep regeneration; run in release builds"]
fn committed_telemetry_sweep_artifact_regenerates_byte_identically() {
    let regenerated = telemetry_sweep_with_workers(&TelemetrySweepConfig::full(), 4);
    assert_eq!(
        regenerated.to_json(),
        TELEMETRY_SWEEP_GOLDEN.trim_end_matches('\n'),
        "results/telemetry_sweep.json diverged from regeneration — rerun \
         `cargo run -p bench --release --bin telemetry_sweep` and commit"
    );
}

/// The sharded session driver's central contract: a sharded report is
/// byte-identical at 1, 2, and 8 workers, on every path it serves —
/// plain cube traffic, the torus separate-addressing backend, and both
/// chaos retry engines. The `{:?}` rendering covers every field of the
/// report (per-session records, batch-means latency, cache and network
/// counters), so any scheduling leak shows up as a byte diff.
#[test]
fn sharded_reports_are_byte_identical_across_worker_counts() {
    use traffic::{ArrivalProcess, Arrivals, ChaosSpec, ChurnSpec, DestPattern, TrafficSpec};

    let spec = TrafficSpec::new(
        Arrivals::new(ArrivalProcess::Poisson, 2.0),
        DestPattern::UniformRandom { m: 6 },
        40,
        11,
    );
    let params = SimParams::ncube2(PortModel::AllPort);
    let chaos = ChaosSpec {
        traffic: spec.clone(),
        churn: ChurnSpec {
            link_mtbf_ms: 8.0,
            link_mttr_ms: 2.0,
            node_mtbf_ms: 32.0,
            node_mttr_ms: 3.0,
            churn_until: SimTime::from_ms(15),
        },
        retry: hypercast::RetryPolicy {
            max_retries: 3,
            base_backoff: 500,
            backoff_factor: 4,
        },
    };
    let torus = Torus::new(4, 3).expect("a 4-ary 3-cube builds");

    let cube_run = |w: usize| {
        format!(
            "{:?}",
            traffic::run_cube_sharded(
                &spec,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                w,
            )
        )
    };
    let torus_run = |w: usize| {
        format!(
            "{:?}",
            traffic::run_separate_sharded_on(&spec, TorusRouter::new(torus), &params, w)
        )
    };
    let chaos_cube_run = |w: usize| {
        format!(
            "{:?}",
            traffic::run_chaos_cube_sharded(
                &chaos,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                w,
            )
        )
    };
    let chaos_torus_run = |w: usize| {
        format!(
            "{:?}",
            traffic::run_chaos_separate_sharded_on(&chaos, TorusRouter::new(torus), &params, w)
        )
    };

    for (label, run) in [
        ("cube", &cube_run as &dyn Fn(usize) -> String),
        ("torus", &torus_run),
        ("chaos cube", &chaos_cube_run),
        ("chaos torus", &chaos_torus_run),
    ] {
        let serial = run(1);
        for workers in [2, 8] {
            assert_eq!(
                run(workers),
                serial,
                "the sharded {label} report changed at {workers} workers"
            );
        }
    }
}
