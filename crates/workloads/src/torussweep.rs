//! Torus-vs-hypercube sweep (topology extension beyond the paper):
//! separate-addressing multicast delay on a 64-node hypercube and on a
//! 64-node k-ary n-cube torus, as the destination count grows.
//!
//! Both networks have 64 nodes and the same mean routing distance (3
//! hops), so the comparison isolates what the paper's Section 2 model
//! attributes to topology: the torus has twice the physical links per
//! dimension but routes each worm through dateline virtual channels,
//! while the hypercube spreads its six dimensions over six distinct
//! channel classes. Destination sets are drawn once per trial and reused
//! verbatim on both networks (the node-id space is shared), so every
//! point is an apples-to-apples replay.

use crate::figure::{Figure, Series};
use hcube::{Cube, NodeId, Resolution, Torus, TorusRouter};
use hypercast::PortModel;
use wormsim::{simulate, simulate_on, DepMessage, SimParams, SimTime};

/// Separate-addressing workload: one independent unicast from the source
/// to each destination.
fn separate_workload(source: NodeId, dests: &[NodeId], bytes: u32) -> Vec<DepMessage> {
    dests
        .iter()
        .map(|&dst| DepMessage {
            src: source,
            dst,
            bytes,
            deps: vec![],
            min_start: SimTime::ZERO,
        })
        .collect()
}

fn avg_delay_ms(run: &wormsim::RunResult) -> f64 {
    if run.messages.is_empty() {
        return 0.0;
    }
    let total: u64 = run.messages.iter().map(|m| m.delivered.as_ns()).sum();
    SimTime(total / run.messages.len() as u64).as_ms()
}

/// Runs the sweep: `m ∈ {1, 2, 4, 8, 16, 32, 63}` random destinations on
/// a 6-cube and on a 4-ary 3-cube torus (64 nodes each), 4 KB payloads,
/// nCUBE-2 all-port parameters, separate addressing. Returns a figure
/// with four series: average delay and makespan (ms) per topology.
#[must_use]
pub fn torus_sweep(trials: usize) -> Figure {
    let ms: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 63];
    let cube = Cube::of(6);
    let torus = Torus::of(4, 3);
    let router = TorusRouter::new(torus);
    let params = SimParams::ncube2(PortModel::AllPort);
    let names = [
        "hypercube avg delay (ms)",
        "torus avg delay (ms)",
        "hypercube makespan (ms)",
        "torus makespan (ms)",
    ];
    let mut series: Vec<Series> = names
        .iter()
        .map(|name| Series {
            name: (*name).to_string(),
            xs: ms.iter().map(|&m| m as f64).collect(),
            ys: Vec::with_capacity(ms.len()),
            std: Vec::with_capacity(ms.len()),
        })
        .collect();

    for (pi, &m) in ms.iter().enumerate() {
        let mut samples: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::with_capacity(trials));
        for trial in 0..trials {
            let mut rng = crate::destsets::trial_rng("torus_sweep", pi, trial);
            // One draw, replayed on both 64-node networks.
            let dests = crate::destsets::random_dests(&mut rng, cube, NodeId(0), m);
            let workload = separate_workload(NodeId(0), &dests, 4096);

            let on_cube = simulate(cube, Resolution::HighToLow, &params, &workload);
            let on_torus = simulate_on(router, &params, &workload);

            samples[0].push(avg_delay_ms(&on_cube));
            samples[1].push(avg_delay_ms(&on_torus));
            samples[2].push(on_cube.stats.makespan.as_ms());
            samples[3].push(on_torus.stats.makespan.as_ms());
        }
        for (si, s) in samples.iter().enumerate() {
            let summary = crate::stats::Summary::of(s);
            series[si].ys.push(summary.mean);
            series[si].std.push(summary.std);
        }
    }
    Figure {
        id: "torus_sweep".into(),
        title: "Torus vs hypercube: separate addressing (64 nodes, 4 KB)".into(),
        x_label: "destinations".into(),
        y_label: "avg delay / makespan (ms)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic() {
        let a = torus_sweep(2).to_json();
        let b = torus_sweep(2).to_json();
        assert_eq!(a, b, "same trials must regenerate bit-identically");
    }

    #[test]
    fn delays_are_positive_and_grow_with_fanout() {
        let f = torus_sweep(2);
        for s in &f.series {
            assert!(s.ys.iter().all(|&y| y > 0.0), "{}: {:?}", s.name, s.ys);
            assert!(
                *s.ys.last().unwrap() > s.ys[0],
                "{}: broadcast should cost more than a unicast",
                s.name
            );
        }
    }

    #[test]
    fn both_topologies_have_64_nodes() {
        use hcube::Topology;
        assert_eq!(Topology::node_count(&Cube::of(6)), 64);
        assert_eq!(Topology::node_count(&Torus::of(4, 3)), 64);
    }
}
