//! Figure data model and text rendering (tables and ASCII plots).
//!
//! Every experiment produces a [`Figure`]: named series over a shared
//! x-axis. Figures render as aligned text tables (the canonical artifact
//! recorded in EXPERIMENTS.md), as quick ASCII plots for eyeballing the
//! curve shapes the paper shows, and as JSON for archival.

use std::fmt::Write as _;

/// One curve of a figure.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend name (usually an algorithm).
    pub name: String,
    /// X coordinates (destination-set sizes, message sizes, …).
    pub xs: Vec<f64>,
    /// Mean Y value per point.
    pub ys: Vec<f64>,
    /// Sample standard deviation per point.
    pub std: Vec<f64>,
}

/// A complete figure: several series over one x-axis.
#[derive(Clone, Debug)]
pub struct Figure {
    /// Short identifier (`fig09`, `ablation_ports`, …).
    pub id: String,
    /// Human title, matching the paper's caption where applicable.
    pub title: String,
    /// X-axis label.
    pub x_label: String,
    /// Y-axis label.
    pub y_label: String,
    /// The curves.
    pub series: Vec<Series>,
}

impl Figure {
    /// Renders an aligned text table: one row per x value, one column per
    /// series.
    ///
    /// ```
    /// use workloads::{Figure, Series};
    ///
    /// let fig = Figure {
    ///     id: "demo".into(), title: "demo".into(),
    ///     x_label: "m".into(), y_label: "steps".into(),
    ///     series: vec![Series { name: "W-sort".into(),
    ///                           xs: vec![1.0, 2.0], ys: vec![1.0, 1.5],
    ///                           std: vec![0.0, 0.0] }],
    /// };
    /// let table = fig.to_table();
    /// assert!(table.contains("W-sort"));
    /// assert!(table.lines().count() >= 5);
    /// ```
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {} — {}", self.id, self.title);
        let _ = writeln!(out, "# y: {}", self.y_label);
        let mut header = format!("{:>10}", self.x_label);
        for s in &self.series {
            let _ = write!(header, " {:>12}", s.name);
        }
        let _ = writeln!(out, "{header}");
        let points = self.series.first().map_or(0, |s| s.xs.len());
        for i in 0..points {
            let x = self.series[0].xs[i];
            let mut row = if x.fract() == 0.0 {
                format!("{:>10}", x as i64)
            } else {
                format!("{x:>10.3}")
            };
            for s in &self.series {
                // Series may legitimately be shorter than the first one
                // (e.g. a 2-D mesh row next to 6-cube rows): show a dash
                // rather than a NaN for the positions it doesn't cover.
                match s.ys.get(i) {
                    Some(y) => {
                        let _ = write!(row, " {y:>12.3}");
                    }
                    None => {
                        let _ = write!(row, " {:>12}", "-");
                    }
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }

    /// Renders a rough ASCII line plot (`width`×`height` characters of
    /// plotting area), one letter per series.
    #[must_use]
    pub fn to_ascii_plot(&self, width: usize, height: usize) -> String {
        let glyphs = ['U', 'M', 'C', 'W', 'S', 'D', 'o', 'x', '+', '*'];
        let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
        let (ymin, mut ymax) = (0.0f64, f64::NEG_INFINITY);
        for s in &self.series {
            for (&x, &y) in s.xs.iter().zip(&s.ys) {
                xmin = xmin.min(x);
                xmax = xmax.max(x);
                ymax = ymax.max(y);
            }
        }
        if !xmin.is_finite() || !ymax.is_finite() || xmax <= xmin {
            return String::from("(empty figure)\n");
        }
        if ymax <= ymin {
            ymax = ymin + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        for (si, s) in self.series.iter().enumerate() {
            let g = glyphs[si % glyphs.len()];
            for (&x, &y) in s.xs.iter().zip(&s.ys) {
                let cx = ((x - xmin) / (xmax - xmin) * (width as f64 - 1.0)).round() as usize;
                let cy = ((y - ymin) / (ymax - ymin) * (height as f64 - 1.0)).round() as usize;
                let row = height - 1 - cy.min(height - 1);
                grid[row][cx.min(width - 1)] = g;
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "{} — {}", self.id, self.title);
        let _ = writeln!(out, "y: {} (0 .. {ymax:.2})", self.y_label);
        for row in grid {
            let line: String = row.into_iter().collect();
            let _ = writeln!(out, "|{line}");
        }
        let _ = writeln!(out, "+{}", "-".repeat(width));
        let _ = writeln!(out, " x: {} ({xmin:.0} .. {xmax:.0})", self.x_label);
        let legend: Vec<String> = self
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{}={}", glyphs[i % glyphs.len()], s.name))
            .collect();
        let _ = writeln!(out, " legend: {}", legend.join("  "));
        out
    }

    fn to_value(&self) -> crate::json::Value {
        use crate::json::Value;
        let series = self
            .series
            .iter()
            .map(|s| {
                let nums = |v: &[f64]| Value::Array(v.iter().map(|&x| Value::Number(x)).collect());
                Value::Object(vec![
                    ("name".into(), Value::from(s.name.as_str())),
                    ("xs".into(), nums(&s.xs)),
                    ("ys".into(), nums(&s.ys)),
                    ("std".into(), nums(&s.std)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("id".into(), Value::from(self.id.as_str())),
            ("title".into(), Value::from(self.title.as_str())),
            ("x_label".into(), Value::from(self.x_label.as_str())),
            ("y_label".into(), Value::from(self.y_label.as_str())),
            ("series".into(), Value::Array(series)),
        ])
    }

    /// Serializes the figure as pretty JSON (via [`crate::json`]).
    /// Lenient: non-finite points serialize as `null` (golden artifacts
    /// pin these bytes). Artifact pipelines that must not silently
    /// launder a NaN use [`Figure::to_json_strict`].
    #[must_use]
    pub fn to_json(&self) -> String {
        self.to_value().to_string_pretty()
    }

    /// [`Figure::to_json`] that fails fast on non-finite points instead
    /// of writing `null`. Byte-identical to [`Figure::to_json`] whenever
    /// it succeeds.
    ///
    /// # Errors
    /// [`crate::json::EmitError`] naming the poisoned point.
    pub fn to_json_strict(&self) -> Result<String, crate::json::EmitError> {
        self.to_value().to_string_pretty_strict()
    }

    /// Parses a figure previously produced by [`Figure::to_json`].
    ///
    /// # Errors
    /// Returns a message describing the first malformed or missing field.
    pub fn from_json(text: &str) -> Result<Figure, String> {
        use crate::json::Value;
        let v = crate::json::parse(text).map_err(|e| e.to_string())?;
        let field = |key: &str| -> Result<String, String> {
            v[key]
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("missing or non-string field `{key}`"))
        };
        let nums = |v: &Value, key: &str| -> Result<Vec<f64>, String> {
            v[key]
                .as_array()
                .ok_or_else(|| format!("missing array field `{key}`"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| format!("non-numeric entry in `{key}`"))
                })
                .collect()
        };
        let series = v["series"]
            .as_array()
            .ok_or_else(|| "missing array field `series`".to_string())?
            .iter()
            .map(|s| {
                Ok(Series {
                    name: s["name"]
                        .as_str()
                        .ok_or_else(|| "series missing `name`".to_string())?
                        .to_string(),
                    xs: nums(s, "xs")?,
                    ys: nums(s, "ys")?,
                    std: nums(s, "std")?,
                })
            })
            .collect::<Result<Vec<Series>, String>>()?;
        Ok(Figure {
            id: field("id")?,
            title: field("title")?,
            x_label: field("x_label")?,
            y_label: field("y_label")?,
            series,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Figure {
        Figure {
            id: "t".into(),
            title: "test figure".into(),
            x_label: "m".into(),
            y_label: "steps".into(),
            series: vec![
                Series {
                    name: "U-cube".into(),
                    xs: vec![1.0, 2.0, 3.0],
                    ys: vec![1.0, 2.0, 2.0],
                    std: vec![0.0; 3],
                },
                Series {
                    name: "W-sort".into(),
                    xs: vec![1.0, 2.0, 3.0],
                    ys: vec![1.0, 1.0, 1.5],
                    std: vec![0.0; 3],
                },
            ],
        }
    }

    #[test]
    fn table_contains_all_series_and_rows() {
        let t = sample().to_table();
        assert!(t.contains("U-cube"));
        assert!(t.contains("W-sort"));
        assert!(t.contains("test figure"));
        // 3 data rows
        assert_eq!(
            t.lines()
                .filter(|l| l.trim_start().starts_with(['1', '2', '3']))
                .count(),
            3
        );
    }

    #[test]
    fn ascii_plot_renders_without_panic() {
        let p = sample().to_ascii_plot(40, 10);
        assert!(p.contains('U'));
        assert!(p.contains('W') || p.contains("W-sort"));
        assert!(p.contains("legend"));
        assert_eq!(p.lines().filter(|l| l.starts_with('|')).count(), 10);
    }

    #[test]
    fn empty_figure_plot() {
        let f = Figure {
            id: "e".into(),
            title: "empty".into(),
            x_label: "x".into(),
            y_label: "y".into(),
            series: vec![],
        };
        assert_eq!(f.to_ascii_plot(10, 5), "(empty figure)\n");
    }

    #[test]
    fn json_round_trip() {
        let f = sample();
        let j = f.to_json();
        let back = Figure::from_json(&j).unwrap();
        assert_eq!(back.id, f.id);
        assert_eq!(back.series.len(), 2);
        assert_eq!(back.series[0].ys, f.series[0].ys);
        assert_eq!(back.series[1].name, "W-sort");
    }

    #[test]
    fn from_json_rejects_malformed() {
        assert!(Figure::from_json("not json").is_err());
        assert!(Figure::from_json("{\"id\": 3}").is_err());
    }

    #[test]
    fn strict_json_fails_fast_on_poisoned_points() {
        let mut f = sample();
        assert_eq!(f.to_json_strict().unwrap(), f.to_json());
        f.series[1].ys[0] = f64::NAN;
        let err = f.to_json_strict().unwrap_err();
        assert!(err.path.contains("/series/1/ys/0"), "{err}");
        // The lenient writer still launders it to null (pinned bytes).
        assert!(f.to_json().contains("null"));
    }
}
