//! Ablation experiments beyond the paper's figures (extensions flagged in
//! DESIGN.md §6): port-model impact, message-size sweeps, parameter
//! sensitivity, optimality gaps, and U-cube's all-port contention rate.

use crate::figure::{Figure, Series};
use crate::sweep::{run_matrix, MatrixResult};
use hcube::{Cube, NodeId, Resolution};
use hypercast::bounds::min_steps_port_limited;
use hypercast::contention::contention_witnesses;
use hypercast::{Algorithm, PortModel};
use wormsim::{simulate_multicast_with_scratch, EngineScratch, SimParams};

/// Port-model ablation: W-sort and U-cube maximum delay on a 5-cube under
/// one-port vs all-port nodes. Quantifies how much of the paper's win
/// comes from the architecture vs the algorithm.
#[must_use]
pub fn ablation_ports(trials: usize) -> Figure {
    let points: Vec<usize> = (1..=31).collect();
    let cube = Cube::of(5);
    let mut series = Vec::new();
    for (algo, port) in [
        (Algorithm::UCube, PortModel::OnePort),
        (Algorithm::UCube, PortModel::AllPort),
        (Algorithm::WSort, PortModel::OnePort),
        (Algorithm::WSort, PortModel::AllPort),
    ] {
        let params = SimParams::ncube2(port);
        let m: MatrixResult<1> = run_matrix(
            &format!("ablation_ports/{}/{}", algo.name(), port.label()),
            cube,
            &points,
            trials,
            &[algo],
            move |cube, src, dests, algo, scratch: &mut EngineScratch| {
                let t = algo
                    .build(cube, Resolution::HighToLow, port, src, dests)
                    .expect("valid instance");
                [simulate_multicast_with_scratch(&t, &params, 4096, scratch)
                    .max_delay
                    .as_ms()]
            },
        );
        let mut s = m.series(0).remove(0);
        s.name = format!("{} {}", algo.name(), port.label());
        series.push(s);
    }
    Figure {
        id: "ablation_ports".into(),
        title: "Port-model ablation: one-port vs all-port, 5-cube".into(),
        x_label: "dests".into(),
        y_label: "max delay (ms), 4096-byte message".into(),
        series,
    }
}

/// Message-size ablation: maximum delay vs payload size for a fixed
/// 16-destination multicast in a 6-cube. The paper fixes 4 KB; this shows
/// where the startup-dominated and bandwidth-dominated regimes lie.
#[must_use]
pub fn ablation_message_size(trials: usize) -> Figure {
    let sizes: Vec<usize> = (6..=15).map(|k| 1usize << k).collect(); // 64 B .. 32 KB
    let cube = Cube::of(6);
    let src = NodeId(0);
    let params = SimParams::ncube2(PortModel::AllPort);
    // The x-axis is payload size, not destination count, so this ablation
    // draws its own per-trial 16-destination sets instead of using the
    // generic sweep (reusing one local engine arena across all replays).
    let mut scratch = EngineScratch::new();
    let mut series: Vec<Series> = Algorithm::PAPER
        .iter()
        .map(|a| Series {
            name: a.name().to_string(),
            xs: sizes.iter().map(|&b| b as f64).collect(),
            ys: Vec::with_capacity(sizes.len()),
            std: Vec::with_capacity(sizes.len()),
        })
        .collect();
    for (pi, &bytes) in sizes.iter().enumerate() {
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); Algorithm::PAPER.len()];
        for trial in 0..trials {
            let mut rng = crate::destsets::trial_rng("ablation_msgsize", pi, trial);
            let dests = crate::destsets::random_dests(&mut rng, cube, src, 16);
            for (ai, algo) in Algorithm::PAPER.iter().enumerate() {
                let t = algo
                    .build(cube, Resolution::HighToLow, PortModel::AllPort, src, &dests)
                    .expect("valid instance");
                samples[ai].push(
                    simulate_multicast_with_scratch(&t, &params, bytes as u32, &mut scratch)
                        .max_delay
                        .as_ms(),
                );
            }
        }
        for (ai, s) in samples.iter().enumerate() {
            let summary = crate::stats::Summary::of(s);
            series[ai].ys.push(summary.mean);
            series[ai].std.push(summary.std);
        }
    }
    Figure {
        id: "ablation_msgsize".into(),
        title: "Message-size ablation: 16 destinations in a 6-cube".into(),
        x_label: "bytes".into(),
        y_label: "max delay (ms)".into(),
        series,
    }
}

/// Parameter-sensitivity ablation: U-cube vs W-sort max delay under
/// nCUBE-2 constants and under a hypothetical low-startup, 10×-bandwidth
/// network. The algorithms' ranking should persist; the gap shrinks as
/// transfer time stops dominating.
#[must_use]
pub fn ablation_sensitivity(trials: usize) -> Figure {
    let points: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 20, 24, 28, 31];
    let cube = Cube::of(5);
    let mut series = Vec::new();
    for (label, params) in [
        ("nCUBE-2", SimParams::ncube2(PortModel::AllPort)),
        ("fast-net", SimParams::fast_net(PortModel::AllPort)),
    ] {
        let m: MatrixResult<2> = run_matrix(
            &format!("ablation_sensitivity/{label}"),
            cube,
            &points,
            trials,
            &[Algorithm::UCube, Algorithm::WSort],
            move |cube, src, dests, algo, scratch: &mut EngineScratch| {
                let t = algo
                    .build(cube, Resolution::HighToLow, PortModel::AllPort, src, dests)
                    .expect("valid instance");
                let r = simulate_multicast_with_scratch(&t, &params, 4096, scratch);
                [r.max_delay.as_ms(), r.avg_delay.as_ms()]
            },
        );
        for mut s in m.series(0) {
            s.name = format!("{} ({label})", s.name);
            series.push(s);
        }
    }
    Figure {
        id: "ablation_sensitivity".into(),
        title: "Startup/bandwidth sensitivity: 5-cube, 4 KB".into(),
        x_label: "dests".into(),
        y_label: "max delay (ms)".into(),
        series,
    }
}

/// Optimality-gap ablation: mean steps of each heuristic vs the exact
/// port-limited optimum on small all-port instances (6-cube, m ≤ 8).
#[must_use]
pub fn ablation_optimality(trials: usize) -> Figure {
    let points: Vec<usize> = (1..=8).collect();
    let cube = Cube::of(6);
    let m: MatrixResult<1> = run_matrix(
        "ablation_optimality",
        cube,
        &points,
        trials,
        &Algorithm::PAPER,
        |cube, src, dests, algo, _scratch| {
            let t = algo
                .build(cube, Resolution::HighToLow, PortModel::AllPort, src, dests)
                .expect("valid instance");
            [f64::from(t.steps)]
        },
    );
    let mut series = m.series(0);
    // Add the exact optimum as its own curve.
    let exact: MatrixResult<1> = run_matrix(
        "ablation_optimality", // same key ⇒ identical destination sets
        cube,
        &points,
        trials,
        &[Algorithm::UCube], // algorithm ignored by the metric below
        |cube, src, dests, _, _scratch| {
            let s =
                min_steps_port_limited(cube, Resolution::HighToLow, PortModel::AllPort, src, dests)
                    .expect("small instance");
            [f64::from(s)]
        },
    );
    let mut opt = exact.series(0).remove(0);
    opt.name = "optimal".into();
    series.push(opt);
    Figure {
        id: "ablation_optimality".into(),
        title: "Optimality gap vs exact port-limited optimum (6-cube, m ≤ 8)".into(),
        x_label: "dests".into(),
        y_label: "steps (mean)".into(),
        series,
    }
}

/// Contention-rate ablation: how often U-cube's all-port schedule
/// violates Definition 4, and the channel blocking the simulator actually
/// observes, vs destination count in an 8-cube. The contention-free
/// algorithms sit at exactly zero.
#[must_use]
pub fn ablation_contention(trials: usize) -> Figure {
    let points: Vec<usize> = vec![8, 16, 32, 48, 64, 96, 128, 192, 255];
    let cube = Cube::of(8);
    let params = SimParams::ncube2(PortModel::AllPort);
    let m: MatrixResult<2> = run_matrix(
        "ablation_contention",
        cube,
        &points,
        trials,
        &[Algorithm::UCube, Algorithm::Combine, Algorithm::WSort],
        move |cube, src, dests, algo, scratch: &mut EngineScratch| {
            let t = algo
                .build(cube, Resolution::HighToLow, PortModel::AllPort, src, dests)
                .expect("valid instance");
            let witnesses = contention_witnesses(&t).len();
            let blocks = simulate_multicast_with_scratch(&t, &params, 4096, scratch).blocks as f64;
            [if witnesses > 0 { 1.0 } else { 0.0 }, blocks]
        },
    );
    let mut series = Vec::new();
    for (k, label) in [(0, "contention incidence"), (1, "sim blocks")] {
        for mut s in m.series(k) {
            s.name = format!("{} {label}", s.name);
            series.push(s);
        }
    }
    Figure {
        id: "ablation_contention".into(),
        title: "Definition-4 violations and observed blocking (8-cube)".into(),
        x_label: "dests".into(),
        y_label: "rate / count".into(),
        series,
    }
}

/// Background-load ablation: a W-sort vs U-cube multicast (40
/// destinations in an 8-cube) while `k` random background unicasts (4 KB)
/// cross the network, all injected at time zero. Even a contention-free
/// schedule must share channels with unrelated traffic; this measures the
/// degradation.
#[must_use]
pub fn ablation_background_load(trials: usize) -> Figure {
    use wormsim::{simulate, DepMessage, SimTime};
    let loads: Vec<usize> = vec![0, 8, 16, 32, 64, 128, 256];
    let cube = Cube::of(8);
    let params = SimParams::ncube2(PortModel::AllPort);
    let algos = [Algorithm::UCube, Algorithm::WSort];
    let mut series: Vec<Series> = algos
        .iter()
        .map(|a| Series {
            name: a.name().to_string(),
            xs: loads.iter().map(|&k| k as f64).collect(),
            ys: Vec::new(),
            std: Vec::new(),
        })
        .collect();
    for (pi, &k) in loads.iter().enumerate() {
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); algos.len()];
        for trial in 0..trials {
            let mut rng = crate::destsets::trial_rng("ablation_load", pi, trial);
            let dests = crate::destsets::random_dests(&mut rng, cube, NodeId(0), 40);
            // Background unicasts between random distinct pairs.
            let background: Vec<DepMessage> = (0..k)
                .map(|_| {
                    use rand::Rng;
                    let src = NodeId(rng.gen_range(0..cube.node_count() as u32));
                    let mut dst = src;
                    while dst == src {
                        dst = NodeId(rng.gen_range(0..cube.node_count() as u32));
                    }
                    DepMessage {
                        src,
                        dst,
                        bytes: 4096,
                        deps: Vec::new(),
                        min_start: SimTime::ZERO,
                    }
                })
                .collect();
            for (ai, algo) in algos.iter().enumerate() {
                let tree = algo
                    .build(
                        cube,
                        Resolution::HighToLow,
                        PortModel::AllPort,
                        NodeId(0),
                        &dests,
                    )
                    .expect("valid instance");
                // Compose the tree's dependency workload with background.
                let mut inbound = std::collections::HashMap::new();
                for (i, u) in tree.unicasts.iter().enumerate() {
                    inbound.insert(u.dst, i);
                }
                let mut workload: Vec<DepMessage> = tree
                    .unicasts
                    .iter()
                    .map(|u| DepMessage {
                        src: u.src,
                        dst: u.dst,
                        bytes: 4096,
                        deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
                        min_start: SimTime::ZERO,
                    })
                    .collect();
                let tree_len = workload.len();
                workload.extend(background.iter().cloned());
                let run = simulate(cube, Resolution::HighToLow, &params, &workload);
                let max_delay = run.messages[..tree_len]
                    .iter()
                    .map(|m| m.delivered)
                    .max()
                    .unwrap_or(SimTime::ZERO);
                samples[ai].push(max_delay.as_ms());
            }
        }
        for (ai, s) in samples.iter().enumerate() {
            let summary = crate::stats::Summary::of(s);
            series[ai].ys.push(summary.mean);
            series[ai].std.push(summary.std);
        }
    }
    Figure {
        id: "ablation_load".into(),
        title: "Multicast under background traffic (8-cube, 40 dests, 4 KB)".into(),
        x_label: "background unicasts".into(),
        y_label: "multicast max delay (ms)".into(),
        series,
    }
}

/// Pipelining ablation: chunked broadcast delay vs chunk count for small
/// and large payloads (extension: the paper's algorithms send the payload
/// monolithically; pipelined trees trade per-message startup for overlap).
#[must_use]
pub fn ablation_pipelining() -> Figure {
    use hypercast::collectives::broadcast;
    use wormsim::simulate_chunked_multicast;
    let chunk_counts: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
    let cube = Cube::of(8);
    let params = SimParams::ncube2(PortModel::AllPort);
    let tree = broadcast(
        Algorithm::WSort,
        cube,
        Resolution::HighToLow,
        PortModel::AllPort,
        NodeId(0),
    )
    .expect("broadcast");
    let mut series = Vec::new();
    for &bytes in &[4096u32, 65536] {
        let mut s = Series {
            name: format!("{} KB payload", bytes / 1024),
            xs: chunk_counts.iter().map(|&c| c as f64).collect(),
            ys: Vec::new(),
            std: Vec::new(),
        };
        for &c in &chunk_counts {
            let r = simulate_chunked_multicast(&tree, &params, bytes, c as u32);
            s.ys.push(r.max_delay.as_ms());
            s.std.push(0.0); // deterministic: fixed tree, no trials
        }
        series.push(s);
    }
    Figure {
        id: "ablation_pipelining".into(),
        title: "Chunked pipelined broadcast (8-cube, W-sort tree)".into(),
        x_label: "chunks".into(),
        y_label: "broadcast max delay (ms)".into(),
        series,
    }
}

/// Scatter (personalized communication) ablation: per-algorithm max delay
/// of delivering a distinct 1 KB block to each of m destinations in a
/// 6-cube, including the separate-addressing baseline (which, for
/// scatter, carries no forwarding inflation).
#[must_use]
pub fn ablation_scatter(trials: usize) -> Figure {
    use hypercast::collectives::scatter;
    use wormsim::simulate_scatter;
    let points: Vec<usize> = vec![1, 2, 4, 8, 16, 24, 32, 48, 63];
    let cube = Cube::of(6);
    let params = SimParams::ncube2(PortModel::AllPort);
    let algos = [
        Algorithm::UCube,
        Algorithm::Maxport,
        Algorithm::Combine,
        Algorithm::WSort,
        Algorithm::Separate,
    ];
    let m: MatrixResult<1> = run_matrix(
        "ablation_scatter",
        cube,
        &points,
        trials,
        &algos,
        move |cube, src, dests, algo, _scratch| {
            let sched = scatter(
                algo,
                cube,
                Resolution::HighToLow,
                PortModel::AllPort,
                src,
                dests,
                1024,
            )
            .expect("valid instance");
            [simulate_scatter(&sched, &params).max_delay.as_ms()]
        },
    );
    Figure {
        id: "ablation_scatter".into(),
        title: "Personalized communication (scatter), 1 KB blocks, 6-cube".into(),
        x_label: "dests".into(),
        y_label: "max delay (ms)".into(),
        series: m.series(0),
    }
}

/// Machine-scaling ablation: max delay of U-cube vs W-sort as the cube
/// grows from 4 to 10 dimensions, with the destination count fixed at a
/// quarter of the machine. With density held constant the *ratio* stays
/// roughly constant (~1.4×) while the *absolute* savings grow with
/// machine size — the per-figure W-sort-vs-Maxport separation of Figures
/// 13–14 is the effect that strengthens with scale.
#[must_use]
pub fn ablation_scaling(trials: usize) -> Figure {
    let dims: Vec<u8> = (4..=10).collect();
    let params = SimParams::ncube2(PortModel::AllPort);
    let algos = [Algorithm::UCube, Algorithm::WSort];
    let mut scratch = EngineScratch::new();
    let mut series: Vec<Series> = algos
        .iter()
        .map(|a| Series {
            name: a.name().to_string(),
            xs: dims.iter().map(|&n| f64::from(n)).collect(),
            ys: Vec::new(),
            std: Vec::new(),
        })
        .collect();
    let mut ratio = Series {
        name: "U-cube / W-sort".into(),
        xs: dims.iter().map(|&n| f64::from(n)).collect(),
        ys: Vec::new(),
        std: Vec::new(),
    };
    for (pi, &n) in dims.iter().enumerate() {
        let cube = Cube::of(n);
        let m = cube.node_count() / 4;
        let mut samples: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); algos.len()];
        for trial in 0..trials {
            let mut rng = crate::destsets::trial_rng("ablation_scaling", pi, trial);
            let dests = crate::destsets::random_dests(&mut rng, cube, NodeId(0), m);
            for (ai, algo) in algos.iter().enumerate() {
                let t = algo
                    .build(
                        cube,
                        Resolution::HighToLow,
                        PortModel::AllPort,
                        NodeId(0),
                        &dests,
                    )
                    .expect("valid instance");
                samples[ai].push(
                    simulate_multicast_with_scratch(&t, &params, 4096, &mut scratch)
                        .max_delay
                        .as_ms(),
                );
            }
        }
        let mut means = [0.0f64; 2];
        for (ai, s) in samples.iter().enumerate() {
            let summary = crate::stats::Summary::of(s);
            series[ai].ys.push(summary.mean);
            series[ai].std.push(summary.std);
            means[ai] = summary.mean;
        }
        ratio.ys.push(means[0] / means[1]);
        ratio.std.push(0.0);
    }
    series.push(ratio);
    Figure {
        id: "ablation_scaling".into(),
        title: "Scaling: max delay with m = N/4 destinations, 4 KB".into(),
        x_label: "cube dimension".into(),
        y_label: "max delay (ms) / ratio".into(),
        series,
    }
}

/// Concurrency ablation: k simultaneous W-sort multicasts (random sources,
/// 20 destinations each, 8-cube): per-operation contention-freedom does
/// not compose, and the observed cross-operation blocking quantifies it.
#[must_use]
pub fn ablation_concurrency(trials: usize) -> Figure {
    use wormsim::simulate_concurrent_multicasts;
    let counts: Vec<usize> = vec![1, 2, 4, 8, 16];
    let cube = Cube::of(8);
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut delay = Series {
        name: "mean op max-delay".into(),
        xs: counts.iter().map(|&k| k as f64).collect(),
        ys: Vec::new(),
        std: Vec::new(),
    };
    let mut blocks = Series {
        name: "mean blocks per op".into(),
        xs: counts.iter().map(|&k| k as f64).collect(),
        ys: Vec::new(),
        std: Vec::new(),
    };
    for (pi, &k) in counts.iter().enumerate() {
        let mut d_samples = Vec::with_capacity(trials);
        let mut b_samples = Vec::with_capacity(trials);
        for trial in 0..trials {
            let mut rng = crate::destsets::trial_rng("ablation_concurrency", pi, trial);
            let trees: Vec<_> = (0..k)
                .map(|_| {
                    use rand::Rng;
                    let src = NodeId(rng.gen_range(0..cube.node_count() as u32));
                    let dests = crate::destsets::random_dests(&mut rng, cube, src, 20);
                    Algorithm::WSort
                        .build(cube, Resolution::HighToLow, PortModel::AllPort, src, &dests)
                        .expect("valid instance")
                })
                .collect();
            let refs: Vec<&hypercast::MulticastTree> = trees.iter().collect();
            let reports = simulate_concurrent_multicasts(&refs, &params, 4096);
            let ops = reports.trees.len() as f64;
            let mean_delay = reports
                .trees
                .iter()
                .map(|r| r.max_delay.as_ms())
                .sum::<f64>()
                / ops;
            let mean_blocks = reports.trees.iter().map(|r| r.blocks as f64).sum::<f64>() / ops;
            d_samples.push(mean_delay);
            b_samples.push(mean_blocks);
        }
        let ds = crate::stats::Summary::of(&d_samples);
        let bs = crate::stats::Summary::of(&b_samples);
        delay.ys.push(ds.mean);
        delay.std.push(ds.std);
        blocks.ys.push(bs.mean);
        blocks.std.push(bs.std);
    }
    Figure {
        id: "ablation_concurrency".into(),
        title: "Concurrent W-sort multicasts (8-cube, 20 dests each, 4 KB)".into(),
        x_label: "concurrent operations".into(),
        y_label: "ms / blocking events".into(),
        series: vec![delay, blocks],
    }
}

/// Model-fidelity ablation: how conservative is the channel-holding
/// event model vs the exact flit-level model? Random same-time unicast
/// batches at increasing intensity; y = mean makespan overestimate of the
/// event model (%). Zero when traffic is contention-free.
#[must_use]
pub fn ablation_model_fidelity(trials: usize) -> Figure {
    use wormsim::{simulate, simulate_flits, DepMessage, FlitMessage, SimTime};
    let batch_sizes: Vec<usize> = vec![1, 2, 4, 8, 16, 32];
    let cube = Cube::of(5);
    let flits = 64u32;
    let cycle_params = wormsim::SimParams {
        t_send_sw: SimTime::ZERO,
        t_recv_sw: SimTime::ZERO,
        t_hop: SimTime::from_ns(1),
        t_byte: SimTime::from_ns(1),
        port_model: PortModel::AllPort,
        cpu_serialized_startup: false,
    };
    let mut over = Series {
        name: "event-model makespan overestimate (%)".into(),
        xs: batch_sizes.iter().map(|&k| k as f64).collect(),
        ys: Vec::new(),
        std: Vec::new(),
    };
    let mut blocked = Series {
        name: "trials with contention (%)".into(),
        xs: batch_sizes.iter().map(|&k| k as f64).collect(),
        ys: Vec::new(),
        std: Vec::new(),
    };
    for (pi, &k) in batch_sizes.iter().enumerate() {
        let mut o_samples = Vec::with_capacity(trials);
        let mut b_count = 0usize;
        for trial in 0..trials {
            use rand::Rng;
            let mut rng = crate::destsets::trial_rng("ablation_fidelity", pi, trial);
            let pairs: Vec<(NodeId, NodeId)> = (0..k)
                .map(|_| {
                    let s = NodeId(rng.gen_range(0..cube.node_count() as u32));
                    let mut d = s;
                    while d == s {
                        d = NodeId(rng.gen_range(0..cube.node_count() as u32));
                    }
                    (s, d)
                })
                .collect();
            let event_w: Vec<DepMessage> = pairs
                .iter()
                .map(|&(s, d)| DepMessage {
                    src: s,
                    dst: d,
                    bytes: flits,
                    deps: vec![],
                    min_start: SimTime::ZERO,
                })
                .collect();
            let flit_w: Vec<FlitMessage> = pairs
                .iter()
                .map(|&(s, d)| FlitMessage {
                    src: s,
                    dst: d,
                    flits,
                    start_cycle: 0,
                })
                .collect();
            let er = simulate(cube, Resolution::HighToLow, &cycle_params, &event_w);
            let fr = simulate_flits(cube, Resolution::HighToLow, &flit_w);
            let em = er
                .messages
                .iter()
                .map(|m| m.delivered.as_ns())
                .max()
                .unwrap() as f64;
            let fm = fr.iter().map(|f| f.delivered_cycle + 1).max().unwrap() as f64;
            o_samples.push((em - fm) / fm * 100.0);
            if er.stats.blocks > 0 {
                b_count += 1;
            }
        }
        let os = crate::stats::Summary::of(&o_samples);
        over.ys.push(os.mean);
        over.std.push(os.std);
        blocked.ys.push(b_count as f64 / trials as f64 * 100.0);
        blocked.std.push(0.0);
    }
    Figure {
        id: "ablation_fidelity".into(),
        title: "Event model vs flit-level model (5-cube, 64-flit worms)".into(),
        x_label: "simultaneous unicasts".into(),
        y_label: "percent".into(),
        series: vec![over, blocked],
    }
}

/// k-port ablation (steps): how many internal channel pairs does a node
/// need before the all-port advantage saturates? W-sort/Maxport/U-cube
/// scheduled under `KPort(k)` for k = 1..n on an 8-cube with 64 random
/// destinations.
#[must_use]
pub fn ablation_kport(trials: usize) -> Figure {
    let cube = Cube::of(8);
    let ks: Vec<usize> = (1..=8).collect();
    let algos = [Algorithm::UCube, Algorithm::Maxport, Algorithm::WSort];
    let mut series: Vec<Series> = algos
        .iter()
        .map(|a| Series {
            name: a.name().to_string(),
            xs: ks.iter().map(|&k| k as f64).collect(),
            ys: Vec::new(),
            std: Vec::new(),
        })
        .collect();
    // Paired design: the same destination sets are reused for every k, so
    // the per-instance monotonicity of k-port scheduling carries over to
    // the means.
    let mut samples: Vec<Vec<Vec<f64>>> =
        vec![vec![Vec::with_capacity(trials); ks.len()]; algos.len()];
    for trial in 0..trials {
        let mut rng = crate::destsets::trial_rng("ablation_kport", 0, trial);
        let dests = crate::destsets::random_dests(&mut rng, cube, NodeId(0), 64);
        for (ki, &k) in ks.iter().enumerate() {
            for (ai, algo) in algos.iter().enumerate() {
                let t = algo
                    .build(
                        cube,
                        Resolution::HighToLow,
                        PortModel::KPort(k as u8),
                        NodeId(0),
                        &dests,
                    )
                    .expect("valid instance");
                samples[ai][ki].push(f64::from(t.steps));
            }
        }
    }
    for (ai, per_k) in samples.iter().enumerate() {
        for s in per_k {
            let summary = crate::stats::Summary::of(s);
            series[ai].ys.push(summary.mean);
            series[ai].std.push(summary.std);
        }
    }
    Figure {
        id: "ablation_kport".into(),
        title: "k-port ablation: steps vs internal channel pairs (8-cube, 64 dests)".into(),
        x_label: "ports (k)".into(),
        y_label: "steps (mean)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_ablation_orders_architectures() {
        let f = ablation_ports(3);
        assert_eq!(f.series.len(), 4);
        let get = |name: &str| -> &Series { f.series.iter().find(|s| s.name == name).unwrap() };
        let w_one = get("W-sort one-port");
        let w_all = get("W-sort all-port");
        // At an intermediate multicast size, all-port must beat one-port.
        // (At full broadcast both equal the binomial tree's 5 transfer
        // generations, a classic equality.)
        assert!(w_all.ys[19] < w_one.ys[19]);
    }

    #[test]
    fn message_size_ablation_is_monotone() {
        let f = ablation_message_size(2);
        for s in &f.series {
            for w in s.ys.windows(2) {
                assert!(w[1] >= w[0] - 1e-9, "{}: delay must grow with size", s.name);
            }
        }
    }

    #[test]
    fn optimality_ablation_brackets_heuristics() {
        let f = ablation_optimality(3);
        let opt = f.series.iter().find(|s| s.name == "optimal").unwrap();
        for s in &f.series {
            if s.name == "optimal" {
                continue;
            }
            for i in 0..opt.ys.len() {
                assert!(
                    s.ys[i] >= opt.ys[i] - 1e-9,
                    "{} below the optimum at point {i}",
                    s.name
                );
            }
        }
    }

    #[test]
    fn background_load_degrades_delay_monotonically_at_extremes() {
        let f = ablation_background_load(2);
        for s in &f.series {
            let first = s.ys[0];
            let last = *s.ys.last().unwrap();
            assert!(
                last > first,
                "{}: load must hurt ({first} → {last})",
                s.name
            );
        }
    }

    #[test]
    fn pipelining_sweet_spot_exists_for_large_payloads() {
        let f = ablation_pipelining();
        let big = f.series.iter().find(|s| s.name.starts_with("64")).unwrap();
        // Some chunk count beats no chunking for 64 KB.
        let unchunked = big.ys[0];
        assert!(big.ys.iter().skip(1).any(|&y| y < unchunked));
    }

    #[test]
    fn scatter_ablation_runs_and_separate_is_competitive() {
        let f = ablation_scatter(2);
        let sep = f.series.iter().find(|s| s.name == "Separate").unwrap();
        let ucube = f.series.iter().find(|s| s.name == "U-cube").unwrap();
        // At the largest m, direct sends avoid forwarding whole subtree
        // payloads; separate addressing must not be the worst by far.
        let last = f.series[0].ys.len() - 1;
        assert!(sep.ys[last] < ucube.ys[last] * 3.0);
        for s in &f.series {
            assert!(s.ys.iter().all(|&y| y > 0.0));
        }
    }

    #[test]
    fn scaling_keeps_the_advantage_and_grows_absolute_savings() {
        let f = ablation_scaling(2);
        let ucube = f.series.iter().find(|s| s.name == "U-cube").unwrap();
        let wsort = f.series.iter().find(|s| s.name == "W-sort").unwrap();
        let ratio = f
            .series
            .iter()
            .find(|s| s.name == "U-cube / W-sort")
            .unwrap();
        assert!(ratio.ys.iter().all(|&r| r >= 1.0), "U-cube never faster");
        // The absolute saving grows with machine size...
        let first_gap = ucube.ys[0] - wsort.ys[0];
        let last_gap = ucube.ys.last().unwrap() - wsort.ys.last().unwrap();
        assert!(last_gap > first_gap);
        // ...while the relative advantage persists at every size.
        assert!(ratio.ys.iter().all(|&r| r > 1.1));
    }

    #[test]
    fn concurrency_ablation_shows_interference() {
        let f = ablation_concurrency(2);
        let delay = &f.series[0];
        let blocks = &f.series[1];
        // One operation alone: contention-free (Theorem 6).
        assert_eq!(blocks.ys[0], 0.0);
        // Many concurrent operations interfere.
        assert!(*blocks.ys.last().unwrap() > 0.0);
        assert!(*delay.ys.last().unwrap() > delay.ys[0]);
    }

    #[test]
    fn model_fidelity_zero_without_contention() {
        let f = ablation_model_fidelity(3);
        let over = &f.series[0];
        // A single unicast can never contend: the two models coincide.
        assert!(over.ys[0].abs() < 1e-9);
        // Overestimation never negative (event model is conservative).
        assert!(over.ys.iter().all(|&y| y >= -1e-9));
    }

    #[test]
    fn kport_ablation_saturates() {
        let f = ablation_kport(3);
        for s in &f.series {
            // Monotone non-increasing in k.
            for w in s.ys.windows(2) {
                assert!(w[1] <= w[0] + 1e-9, "{}", s.name);
            }
        }
        let wsort = f.series.iter().find(|s| s.name == "W-sort").unwrap();
        // Going from 1 to 2 ports helps W-sort a lot...
        assert!(wsort.ys[1] < wsort.ys[0]);
        // ...and the last port adds little.
        assert!(wsort.ys[7] > wsort.ys[6] - 0.5);
    }

    #[test]
    fn contention_ablation_zero_for_wsort() {
        let f = ablation_contention(2);
        let w_inc = f
            .series
            .iter()
            .find(|s| s.name == "W-sort contention incidence")
            .unwrap();
        let w_blk = f
            .series
            .iter()
            .find(|s| s.name == "W-sort sim blocks")
            .unwrap();
        assert!(w_inc.ys.iter().all(|&y| y == 0.0));
        assert!(w_blk.ys.iter().all(|&y| y == 0.0));
    }
}
