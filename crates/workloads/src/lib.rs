//! # workloads — experiment harness for the SC '93 reproduction
//!
//! Ties `hypercast` (the algorithms) and `wormsim` (the network model)
//! together into the experiments of the paper's Section 5:
//!
//! * [`destsets`] — seeded random destination sets ("nodes randomly
//!   distributed throughout the hypercube");
//! * [`sweep`] — parallel (point × trial × algorithm) sweeps with paired
//!   destination sets across algorithms;
//! * [`figures`] — one entry point per paper figure (Figures 9–14);
//! * [`ablations`] — extension experiments: port models, message sizes,
//!   parameter sensitivity, optimality gaps, contention rates;
//! * [`faultsweep`] — fault-injection sweep: delivery ratio and makespan
//!   vs dead links, with and without `hypercast::repair`;
//! * [`chaossweep`] — online fault churn under open-loop load: delivery
//!   degradation, retry distributions, and time-to-recover across a
//!   churn × load grid;
//! * [`collectivessweep`] — the collective suite (allgather /
//!   reduce-scatter / allreduce) across tree families and topologies:
//!   data-oracle-verified schedules plus open-loop collective traffic;
//! * [`torussweep`] — topology extension: separate-addressing delay on a
//!   64-node hypercube vs a 64-node k-ary n-cube torus;
//! * [`heatmap`] — measured per-dimension channel contention per
//!   algorithm, recorded in-loop by `wormsim::EventRecorder`;
//! * [`figure`] — the data model plus table / ASCII-plot / JSON output;
//! * [`lanesweep`] — virtual-lane ladder: contention of naive multicast
//!   trees vs lanes-per-link on cube, torus, and mesh networks;
//! * [`telemetrysweep`] — the flight recorder's windowed time-series
//!   across a churn-and-recover window: goodput dip and refill, latency
//!   quantiles, cache hit rate, live faults, per-dimension blocked time;
//! * [`json`] — a minimal first-party JSON tree, parser, and printer
//!   (the build environment is offline, so no `serde_json`);
//! * [`serve`] — the long-running service mode behind `mcast serve`:
//!   newline-delimited JSON requests dispatched onto the sharded
//!   session drivers with a persistent tree store, plus the spec
//!   builders and report formatters shared with the one-shot CLI;
//! * [`stats`] — summary statistics.
//!
//! Regeneration binaries live in the `bench` crate
//! (`cargo run -p bench --release --bin all_figures`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod ablations;
pub mod chaossweep;
pub mod collectivessweep;
pub mod destsets;
pub mod faultsweep;
pub mod figure;
pub mod figures;
pub mod heatmap;
pub mod json;
pub mod lanesweep;
pub mod serve;
pub mod stats;
pub mod sweep;
pub mod telemetrysweep;
pub mod torussweep;
pub mod trafficsweep;

pub use figure::{Figure, Series};
pub use stats::Summary;
