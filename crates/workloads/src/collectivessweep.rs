//! Collectives suite sweep: allgather / reduce-scatter / allreduce
//! across tree families and topologies.
//!
//! The schedule section builds every collective × family combination on
//! the 32-node 5-cube (the paper's tree algorithms plus the bine
//! family) and every collective under separate addressing on the
//! 16-node 4-ary 2-cube torus, replays each schedule symbolically
//! through the [data oracle](hypercast::oracle) — the `verified` column
//! — and executes it once on the idle wormhole engine for steps, bytes,
//! and makespan. The traffic section then injects the same collectives
//! as open-loop sessions on a 4-cube (W-sort vs bine trees) and reports
//! steady-state latency, completion, and tree-cache behaviour.
//!
//! Everything is keyed off [`CollectivesConfig::seed`]: identical
//! configs regenerate `results/collectives_sweep.{txt,json}`
//! byte-for-byte, and the determinism suite pins it. Emission goes
//! through the strict JSON writer
//! ([`Value::to_string_pretty_strict`](crate::json::Value::to_string_pretty_strict)):
//! a non-finite statistic aborts the artifact instead of laundering to
//! `null`.

use crate::json::{self, EmitError, Value};
use crate::trafficsweep::{horizon_for, run_seed};
use hcube::{Cube, NodeId, Resolution, Torus, TorusRouter};
use hypercast::collectives::{
    allgather, allgather_separate, allreduce, allreduce_separate, reduce_scatter,
    reduce_scatter_separate,
};
use hypercast::oracle::verify_collective;
use hypercast::{Algorithm, CollectiveKind, CollectiveSchedule, PortModel, TreeFamily};
use traffic::{ArrivalProcess, Arrivals, DestPattern, TrafficSpec};
use wormsim::{simulate_collective, simulate_collective_on, SimParams};

/// Sweep dimensions and seeding.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectivesConfig {
    /// Bytes per node block in every schedule-section collective.
    pub block_bytes: u32,
    /// Sessions per traffic-section run.
    pub traffic_sessions: usize,
    /// Offered load (sessions/ms) of the traffic section.
    pub traffic_rate_per_ms: f64,
    /// Bytes per node block in the traffic section.
    pub traffic_bytes: u32,
    /// Master seed; every traffic-run seed derives from it.
    pub seed: u64,
}

impl CollectivesConfig {
    /// The committed-artifact configuration.
    #[must_use]
    pub fn full() -> CollectivesConfig {
        CollectivesConfig {
            block_bytes: 1024,
            traffic_sessions: 48,
            traffic_rate_per_ms: 0.05,
            traffic_bytes: 512,
            seed: 93,
        }
    }

    /// A short configuration for CI smoke runs and debug-mode tests
    /// (same schema, same code paths, far less work).
    #[must_use]
    pub fn smoke() -> CollectivesConfig {
        CollectivesConfig {
            block_bytes: 256,
            traffic_sessions: 8,
            traffic_rate_per_ms: 0.2,
            traffic_bytes: 256,
            seed: 93,
        }
    }
}

/// One (collective, network, family) schedule measurement.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleRow {
    /// Collective name (`allgather`, `reduce-scatter`, `allreduce`).
    pub suite: String,
    /// Network label (`cube5`, `torus4x2`).
    pub network: String,
    /// Tree family / addressing mode (`W-sort`, `Bine`, `Separate`, …).
    pub family: String,
    /// Node count of the network.
    pub nodes: usize,
    /// Schedule steps.
    pub steps: u32,
    /// Constituent unicasts.
    pub ops: usize,
    /// Total payload bytes injected.
    pub payload_bytes: u64,
    /// Idle-network completion time of the collective (ms).
    pub makespan_ms: f64,
    /// Mean unicast delivery delay (ms).
    pub avg_delay_ms: f64,
    /// Channel-blocking episodes during the idle-network run.
    pub blocks: u64,
    /// Whether the data oracle certified the schedule.
    pub verified: bool,
}

/// One steady-state collective traffic measurement (4-cube).
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficRow {
    /// Collective name.
    pub suite: String,
    /// Tree family driving the session schedules.
    pub family: String,
    /// Mean session latency (ms) among completed measured sessions.
    pub mean_latency_ms: f64,
    /// Fraction of measured sessions completing inside the window.
    pub completion_ratio: f64,
    /// Completed sessions per millisecond of measurement span.
    pub throughput_per_ms: f64,
    /// Tree-cache hit rate of the run (0 for the bine family).
    pub cache_hit_rate: f64,
}

/// The complete collectives sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct CollectivesSweep {
    /// The configuration that produced it.
    pub config: CollectivesConfig,
    /// Schedule section: cube rows first (family order
    /// [`TreeFamily::SWEEP`]), torus rows last.
    pub rows: Vec<ScheduleRow>,
    /// Traffic section: W-sort and bine families × all collectives.
    pub traffic: Vec<TrafficRow>,
}

/// Builds one cube-side schedule of the sweep.
fn cube_schedule(
    kind: CollectiveKind,
    family: TreeFamily,
    cube: Cube,
    block_bytes: u32,
) -> CollectiveSchedule {
    let (resolution, port) = (Resolution::HighToLow, PortModel::AllPort);
    match kind {
        CollectiveKind::Allgather => allgather(family, cube, resolution, port, block_bytes, None),
        CollectiveKind::ReduceScatter => {
            reduce_scatter(family, cube, resolution, port, block_bytes, None)
        }
        CollectiveKind::Allreduce => {
            allreduce(family, cube, resolution, port, NodeId(0), block_bytes, None)
        }
    }
    .expect("full-machine collectives cannot fail to build")
}

fn row_from(
    sched: &CollectiveSchedule,
    suite: &str,
    network: &str,
    family: &str,
    report: &wormsim::SimReport,
) -> ScheduleRow {
    ScheduleRow {
        suite: suite.into(),
        network: network.into(),
        family: family.into(),
        nodes: sched.nodes as usize,
        steps: sched.steps,
        ops: sched.ops.len(),
        payload_bytes: sched.payload_bytes(),
        makespan_ms: report.max_delay.as_ms(),
        avg_delay_ms: report.avg_delay.as_ms(),
        blocks: report.blocks,
        verified: verify_collective(sched).is_ok(),
    }
}

/// Runs the full sweep for `cfg`. Deterministic: identical configs give
/// structurally identical results (and byte-identical JSON).
#[must_use]
pub fn collectives_sweep(cfg: &CollectivesConfig) -> CollectivesSweep {
    let params = SimParams::ncube2(PortModel::AllPort);
    let mut rows = Vec::new();

    // --- schedule section: 5-cube, every family --------------------------
    let cube = Cube::of(5);
    for kind in CollectiveKind::ALL {
        for family in TreeFamily::SWEEP {
            let sched = cube_schedule(kind, family, cube, cfg.block_bytes);
            let report = simulate_collective(&sched, cube, Resolution::HighToLow, &params);
            rows.push(row_from(
                &sched,
                kind.name(),
                "cube5",
                family.name(),
                &report,
            ));
        }
    }

    // --- schedule section: torus, separate addressing --------------------
    let torus = Torus::of(4, 2);
    for kind in CollectiveKind::ALL {
        let sched = match kind {
            CollectiveKind::Allgather => allgather_separate(&torus, cfg.block_bytes),
            CollectiveKind::ReduceScatter => reduce_scatter_separate(&torus, cfg.block_bytes),
            CollectiveKind::Allreduce => allreduce_separate(&torus, NodeId(0), cfg.block_bytes),
        };
        let report = simulate_collective_on(&sched, TorusRouter::new(torus), &params);
        rows.push(row_from(
            &sched,
            kind.name(),
            "torus4x2",
            "Separate",
            &report,
        ));
    }

    // --- traffic section: open-loop collectives on a 4-cube --------------
    let tcube = Cube::of(4);
    let mut traffic_rows = Vec::new();
    for family in [TreeFamily::Alg(Algorithm::WSort), TreeFamily::Bine] {
        for (ki, kind) in CollectiveKind::ALL.into_iter().enumerate() {
            let mut spec = TrafficSpec::new(
                Arrivals::new(ArrivalProcess::Poisson, cfg.traffic_rate_per_ms),
                // The pattern is unused by collective sessions (every
                // session spans the whole machine) but the spec needs one.
                DestPattern::UniformRandom { m: 4 },
                cfg.traffic_sessions,
                run_seed(cfg.seed, "cube4", family.name(), ki),
            );
            spec.bytes = cfg.traffic_bytes;
            spec.horizon = horizon_for(cfg.traffic_sessions, cfg.traffic_rate_per_ms);
            let r = traffic::run_collective_cube(
                &spec,
                tcube,
                Resolution::HighToLow,
                kind,
                family,
                &params,
            );
            traffic_rows.push(TrafficRow {
                suite: kind.name().into(),
                family: family.name().into(),
                mean_latency_ms: r.latency.mean,
                completion_ratio: r.completion_ratio,
                throughput_per_ms: r.throughput_per_ms,
                cache_hit_rate: r.cache.hit_rate(),
            });
        }
    }

    CollectivesSweep {
        config: cfg.clone(),
        rows,
        traffic: traffic_rows,
    }
}

// ----------------------------------------------------------------------
// Serialization (first-party JSON, schema pinned by `from_json`).
// ----------------------------------------------------------------------

impl CollectivesSweep {
    fn to_value(&self) -> Value {
        let config = Value::Object(vec![
            (
                "block_bytes".into(),
                Value::Number(f64::from(self.config.block_bytes)),
            ),
            (
                "traffic_sessions".into(),
                Value::Number(self.config.traffic_sessions as f64),
            ),
            (
                "traffic_rate_per_ms".into(),
                Value::Number(self.config.traffic_rate_per_ms),
            ),
            (
                "traffic_bytes".into(),
                Value::Number(f64::from(self.config.traffic_bytes)),
            ),
            ("seed".into(), Value::Number(self.config.seed as f64)),
        ]);
        let rows = Value::Array(
            self.rows
                .iter()
                .map(|r| {
                    Value::Object(vec![
                        ("suite".into(), Value::String(r.suite.clone())),
                        ("network".into(), Value::String(r.network.clone())),
                        ("family".into(), Value::String(r.family.clone())),
                        ("nodes".into(), Value::Number(r.nodes as f64)),
                        ("steps".into(), Value::Number(f64::from(r.steps))),
                        ("ops".into(), Value::Number(r.ops as f64)),
                        (
                            "payload_bytes".into(),
                            Value::Number(r.payload_bytes as f64),
                        ),
                        ("makespan_ms".into(), Value::Number(r.makespan_ms)),
                        ("avg_delay_ms".into(), Value::Number(r.avg_delay_ms)),
                        ("blocks".into(), Value::Number(r.blocks as f64)),
                        ("verified".into(), Value::Bool(r.verified)),
                    ])
                })
                .collect(),
        );
        let traffic = Value::Array(
            self.traffic
                .iter()
                .map(|t| {
                    Value::Object(vec![
                        ("suite".into(), Value::String(t.suite.clone())),
                        ("family".into(), Value::String(t.family.clone())),
                        ("mean_latency_ms".into(), Value::Number(t.mean_latency_ms)),
                        ("completion_ratio".into(), Value::Number(t.completion_ratio)),
                        (
                            "throughput_per_ms".into(),
                            Value::Number(t.throughput_per_ms),
                        ),
                        ("cache_hit_rate".into(), Value::Number(t.cache_hit_rate)),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("id".into(), Value::String("collectives_sweep".into())),
            (
                "title".into(),
                Value::String(
                    "Collective suite: schedules, data-oracle verification, and traffic".into(),
                ),
            ),
            ("config".into(), config),
            ("rows".into(), rows),
            ("traffic".into(), traffic),
        ])
    }

    /// Serializes the sweep as pretty-printed JSON through the strict
    /// writer: a non-finite statistic fails here instead of silently
    /// becoming `null` in a committed artifact.
    ///
    /// # Errors
    /// [`EmitError`] naming the path of the first non-finite number.
    pub fn to_json(&self) -> Result<String, EmitError> {
        self.to_value().to_string_pretty_strict()
    }

    /// Parses and validates a sweep artifact produced by
    /// [`CollectivesSweep::to_json`] — the schema check CI runs against
    /// the committed `results/collectives_sweep.json`.
    ///
    /// # Errors
    /// A human-readable message naming the first missing/mistyped field.
    pub fn from_json(input: &str) -> Result<CollectivesSweep, String> {
        let v = json::parse(input).map_err(|e| format!("invalid JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field: id")?;
        if id != "collectives_sweep" {
            return Err(format!("unexpected id {id:?}"));
        }
        let get_num = |obj: &Value, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field: {key}"))
        };
        let get_str = |obj: &Value, key: &str| -> Result<String, String> {
            obj.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field: {key}"))
        };
        let cfg = v.get("config").ok_or("missing object field: config")?;
        let config = CollectivesConfig {
            block_bytes: get_num(cfg, "block_bytes")? as u32,
            traffic_sessions: get_num(cfg, "traffic_sessions")? as usize,
            traffic_rate_per_ms: get_num(cfg, "traffic_rate_per_ms")?,
            traffic_bytes: get_num(cfg, "traffic_bytes")? as u32,
            seed: get_num(cfg, "seed")? as u64,
        };
        let rows_v = v
            .get("rows")
            .and_then(Value::as_array)
            .ok_or("missing array field: rows")?;
        let mut rows = Vec::with_capacity(rows_v.len());
        for (i, r) in rows_v.iter().enumerate() {
            let verified = match r.get("verified") {
                Some(Value::Bool(b)) => *b,
                _ => return Err(format!("rows[{i}]: missing boolean field verified")),
            };
            rows.push(ScheduleRow {
                suite: get_str(r, "suite").map_err(|e| format!("rows[{i}]: {e}"))?,
                network: get_str(r, "network").map_err(|e| format!("rows[{i}]: {e}"))?,
                family: get_str(r, "family").map_err(|e| format!("rows[{i}]: {e}"))?,
                nodes: get_num(r, "nodes")? as usize,
                steps: get_num(r, "steps")? as u32,
                ops: get_num(r, "ops")? as usize,
                payload_bytes: get_num(r, "payload_bytes")? as u64,
                makespan_ms: get_num(r, "makespan_ms")?,
                avg_delay_ms: get_num(r, "avg_delay_ms")?,
                blocks: get_num(r, "blocks")? as u64,
                verified,
            });
        }
        let traffic_v = v
            .get("traffic")
            .and_then(Value::as_array)
            .ok_or("missing array field: traffic")?;
        let mut traffic = Vec::with_capacity(traffic_v.len());
        for (i, t) in traffic_v.iter().enumerate() {
            traffic.push(TrafficRow {
                suite: get_str(t, "suite").map_err(|e| format!("traffic[{i}]: {e}"))?,
                family: get_str(t, "family").map_err(|e| format!("traffic[{i}]: {e}"))?,
                mean_latency_ms: get_num(t, "mean_latency_ms")?,
                completion_ratio: get_num(t, "completion_ratio")?,
                throughput_per_ms: get_num(t, "throughput_per_ms")?,
                cache_hit_rate: get_num(t, "cache_hit_rate")?,
            });
        }
        Ok(CollectivesSweep {
            config,
            rows,
            traffic,
        })
    }

    /// Renders the sweep as a plain-text report (the `.txt` artifact).
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Collective suite: schedules, data-oracle verification, and traffic\n");
        out.push_str(&format!(
            "block = {} B, traffic: {} sessions @ {} /ms, {} B blocks, seed = {}\n",
            self.config.block_bytes,
            self.config.traffic_sessions,
            self.config.traffic_rate_per_ms,
            self.config.traffic_bytes,
            self.config.seed
        ));
        out.push_str("\n== schedules (idle network) ==\n");
        out.push_str(
            "  collective       network    family     nodes  steps    ops   payload B   makespan ms   avg delay ms   blocks   oracle\n",
        );
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<14}   {:<8}   {:<8}   {:>5}  {:>5}  {:>5}   {:>9}   {:>11.4}   {:>12.4}   {:>6}   {}\n",
                r.suite,
                r.network,
                r.family,
                r.nodes,
                r.steps,
                r.ops,
                r.payload_bytes,
                r.makespan_ms,
                r.avg_delay_ms,
                r.blocks,
                if r.verified { "ok" } else { "FAIL" },
            ));
        }
        out.push_str("\n== open-loop traffic (cube4) ==\n");
        out.push_str("  collective       family     latency ms   complete   thru/ms   cache hit\n");
        for t in &self.traffic {
            out.push_str(&format!(
                "  {:<14}   {:<8}   {:>10.4}   {:>8.3}   {:>7.3}   {:>9.3}\n",
                t.suite,
                t.family,
                t.mean_latency_ms,
                t.completion_ratio,
                t.throughput_per_ms,
                t.cache_hit_rate,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_verified_and_round_trips() {
        let cfg = CollectivesConfig::smoke();
        let a = collectives_sweep(&cfg);
        let b = collectives_sweep(&cfg);
        assert_eq!(
            a.to_json().unwrap(),
            b.to_json().unwrap(),
            "sweep must regenerate bit-identically"
        );

        // 3 collectives x 5 cube families + 3 torus rows.
        assert_eq!(a.rows.len(), 18);
        // 2 traffic families x 3 collectives.
        assert_eq!(a.traffic.len(), 6);
        for r in &a.rows {
            assert!(
                r.verified,
                "{} {} {}: oracle must pass",
                r.suite, r.network, r.family
            );
            assert!(r.makespan_ms > 0.0);
            assert!(r.payload_bytes > 0);
        }
        for t in &a.traffic {
            assert!(t.completion_ratio > 0.0, "{} {}", t.suite, t.family);
        }

        let parsed = CollectivesSweep::from_json(&a.to_json().unwrap()).unwrap();
        assert_eq!(parsed.to_json().unwrap(), a.to_json().unwrap());
        assert_eq!(parsed, a);
    }

    #[test]
    fn tree_family_traffic_hits_the_cache_and_bine_does_not() {
        let sweep = collectives_sweep(&CollectivesConfig::smoke());
        for t in &sweep.traffic {
            if t.family == "Bine" {
                assert_eq!(t.cache_hit_rate, 0.0, "bine trees bypass the cache");
            } else if t.suite == "allreduce" {
                // Allreduce roots rotate round-robin: with fewer sessions
                // than nodes every session builds a fresh root tree.
                assert_eq!(t.cache_hit_rate, 0.0, "rotating roots never repeat here");
            } else {
                assert!(
                    t.cache_hit_rate > 0.0,
                    "{} {}: repeated sessions must hit the cache",
                    t.suite,
                    t.family
                );
            }
        }
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(CollectivesSweep::from_json("{}").is_err());
        assert!(CollectivesSweep::from_json("not json").is_err());
        assert!(CollectivesSweep::from_json("[3]").is_err());
        let wrong_id = r#"{ "id": "traffic_sweep", "config": {}, "rows": [], "traffic": [] }"#;
        assert!(CollectivesSweep::from_json(wrong_id).is_err());
        let missing_verified = r#"{ "id": "collectives_sweep",
            "config": { "block_bytes": 1, "traffic_sessions": 1,
                        "traffic_rate_per_ms": 1, "traffic_bytes": 1, "seed": 1 },
            "rows": [ { "suite": "allgather", "network": "cube5", "family": "Bine",
                        "nodes": 32, "steps": 5, "ops": 10, "payload_bytes": 100,
                        "makespan_ms": 1.0, "avg_delay_ms": 0.5, "blocks": 0 } ],
            "traffic": [] }"#;
        let err = CollectivesSweep::from_json(missing_verified).unwrap_err();
        assert!(err.contains("verified"), "{err}");
    }

    #[test]
    fn poisoned_rows_fail_at_emit_time_with_a_path() {
        let mut sweep = collectives_sweep(&CollectivesConfig::smoke());
        assert!(sweep.to_json().is_ok());
        sweep.rows[2].avg_delay_ms = f64::NAN;
        let err = sweep.to_json().unwrap_err();
        assert!(err.path.contains("/rows/2/avg_delay_ms"), "{err}");
    }
}
