//! Random destination-set generation.
//!
//! The paper evaluates "destination sets in which the nodes are randomly
//! distributed throughout the hypercube": for each data point, `m`
//! distinct destinations are drawn uniformly without replacement from the
//! `N − 1` non-source nodes. Seeding is fully deterministic per
//! (experiment, point, trial) so every figure regenerates bit-identically.

use hcube::{Cube, NodeId, Topology};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Draws `m` distinct destinations uniformly from the non-source nodes.
///
/// ```
/// use hcube::{Cube, NodeId};
/// use workloads::destsets::{random_dests, trial_rng};
///
/// let mut rng = trial_rng("doc", 0, 0);
/// let dests = random_dests(&mut rng, Cube::of(6), NodeId(0), 10);
/// assert_eq!(dests.len(), 10);
/// assert!(!dests.contains(&NodeId(0)));
/// ```
///
/// # Panics
/// If `m > N − 1` or the source is not in the cube.
#[must_use]
pub fn random_dests(rng: &mut StdRng, cube: Cube, source: NodeId, m: usize) -> Vec<NodeId> {
    random_dests_on(rng, &cube, source, m)
}

/// Topology-generic [`random_dests`]: draws `m` distinct destinations
/// uniformly from the non-source nodes of any [`Topology`] (cube, torus,
/// …). For a hypercube the draw is identical to `random_dests` given the
/// same RNG state.
///
/// Delegates to [`hcube::sampling::sample_distinct`], which owns the
/// draw primitive (the traffic generators sample through the same code,
/// so workload populations match across subsystems); the RNG consumption
/// is unchanged, keeping every golden figure byte-stable.
///
/// # Panics
/// If `m > N − 1` or the source is not in the topology.
#[must_use]
pub fn random_dests_on<T: Topology>(
    rng: &mut StdRng,
    topo: &T,
    source: NodeId,
    m: usize,
) -> Vec<NodeId> {
    hcube::sampling::sample_distinct(rng, topo, source, m)
}

/// Deterministic RNG for one trial of one experiment point.
///
/// The stream is keyed by a stable FNV-1a hash of
/// (experiment id, point index, trial index).
#[must_use]
pub fn trial_rng(experiment: &str, point: usize, trial: usize) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in experiment.bytes() {
        eat(b);
    }
    for b in (point as u64).to_le_bytes() {
        eat(b);
    }
    for b in (trial as u64).to_le_bytes() {
        eat(b);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_distinct_and_exclude_source() {
        let cube = Cube::of(6);
        let mut rng = trial_rng("test", 0, 0);
        for m in [1, 5, 31, 63] {
            let d = random_dests(&mut rng, cube, NodeId(17), m);
            assert_eq!(d.len(), m);
            let mut s = d.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), m, "duplicates drawn");
            assert!(!d.contains(&NodeId(17)));
            assert!(d.iter().all(|&v| cube.contains(v)));
        }
    }

    #[test]
    fn full_broadcast_set() {
        let cube = Cube::of(4);
        let mut rng = trial_rng("test", 0, 1);
        let d = random_dests(&mut rng, cube, NodeId(0), 15);
        assert_eq!(d.len(), 15);
    }

    #[test]
    #[should_panic(expected = "cannot draw")]
    fn rejects_oversized_request() {
        let cube = Cube::of(3);
        let mut rng = trial_rng("test", 0, 0);
        let _ = random_dests(&mut rng, cube, NodeId(0), 8);
    }

    #[test]
    fn trial_rngs_are_deterministic_and_distinct() {
        let cube = Cube::of(8);
        let a = random_dests(&mut trial_rng("fig09", 3, 7), cube, NodeId(0), 20);
        let b = random_dests(&mut trial_rng("fig09", 3, 7), cube, NodeId(0), 20);
        assert_eq!(a, b, "same key ⇒ same draw");
        let c = random_dests(&mut trial_rng("fig09", 3, 8), cube, NodeId(0), 20);
        assert_ne!(a, c, "different trial ⇒ different draw");
        let d = random_dests(&mut trial_rng("fig10", 3, 7), cube, NodeId(0), 20);
        assert_ne!(a, d, "different experiment ⇒ different draw");
    }

    #[test]
    fn draws_cover_the_cube_statistically() {
        // Over many draws, every node should appear at least once.
        let cube = Cube::of(5);
        let mut seen = vec![false; cube.node_count()];
        for trial in 0..200 {
            let mut rng = trial_rng("coverage", 0, trial);
            for v in random_dests(&mut rng, cube, NodeId(0), 8) {
                seen[v.0 as usize] = true;
            }
        }
        let covered = seen.iter().filter(|&&b| b).count();
        assert!(covered >= cube.node_count() - 1, "covered only {covered}");
    }
}
