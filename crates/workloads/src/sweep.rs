//! Generic parallel parameter sweeps.
//!
//! A sweep evaluates a metric function over (point × trial × algorithm),
//! with the *same* randomly drawn destination set shared by all
//! algorithms within a trial (paired comparison, as in the paper), and
//! aggregates per-(point, algorithm) summaries. Trials of different
//! points run concurrently on scoped threads; results are deterministic
//! because every trial's RNG is keyed by (experiment, point, trial).
//!
//! Every worker thread owns one [`wormsim::EngineScratch`] handed to the
//! metric on each call, so metrics that replay trees through the engine
//! reuse the worker's event heap, channel table, and route memo instead
//! of reallocating per trial. Scratch reuse is byte-invisible (the
//! engine's contract), so the summaries remain independent of how tasks
//! land on workers.

use crate::destsets::{random_dests, trial_rng};
use crate::stats::Summary;
use hcube::{Cube, NodeId};
use hypercast::Algorithm;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wormsim::EngineScratch;

/// Sweep results: `cells[point][algo]` holds `K` metric summaries.
#[derive(Clone, Debug)]
pub struct MatrixResult<const K: usize> {
    /// The swept destination-set sizes.
    pub points: Vec<usize>,
    /// The algorithms compared.
    pub algos: Vec<Algorithm>,
    /// Per-(point, algorithm) summaries of each of the `K` metrics.
    pub cells: Vec<Vec<[Summary; K]>>,
}

impl<const K: usize> MatrixResult<K> {
    /// Extracts metric `k` as figure series (one per algorithm).
    ///
    /// # Panics
    /// If `k >= K`.
    #[must_use]
    pub fn series(&self, k: usize) -> Vec<crate::figure::Series> {
        assert!(k < K);
        self.algos
            .iter()
            .enumerate()
            .map(|(ai, algo)| crate::figure::Series {
                name: algo.name().to_string(),
                xs: self.points.iter().map(|&m| m as f64).collect(),
                ys: self.cells.iter().map(|row| row[ai][k].mean).collect(),
                std: self.cells.iter().map(|row| row[ai][k].std).collect(),
            })
            .collect()
    }
}

/// Runs the sweep. For every point `m` and trial, draws a destination set
/// and evaluates `metric(cube, source, dests, algo, scratch) -> [f64; K]`
/// for each algorithm. The scratch is the calling worker's reusable
/// engine arena — pass it to
/// [`wormsim::simulate_multicast_with_scratch`] (or ignore it for
/// metrics that never simulate).
///
/// The source is fixed at node 0, as in the paper's experiments (the
/// problem is vertex-transitive: relabeling by XOR maps any source to 0).
pub fn run_matrix<const K: usize, F>(
    experiment: &str,
    cube: Cube,
    points: &[usize],
    trials: usize,
    algos: &[Algorithm],
    metric: F,
) -> MatrixResult<K>
where
    F: Fn(Cube, NodeId, &[NodeId], Algorithm, &mut EngineScratch) -> [f64; K] + Sync,
{
    let workers = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(32);
    run_matrix_with_workers(experiment, cube, points, trials, algos, workers, metric)
}

/// [`run_matrix`] with an explicit worker-thread count.
///
/// The result is independent of `workers`: every (point, trial) cell is
/// keyed by its own deterministic RNG and written into a pre-indexed
/// slot, so scheduling order cannot leak into the aggregates. The
/// determinism regression suite runs the same sweep at several worker
/// counts and asserts identical output.
///
/// # Panics
/// If `workers == 0`.
pub fn run_matrix_with_workers<const K: usize, F>(
    experiment: &str,
    cube: Cube,
    points: &[usize],
    trials: usize,
    algos: &[Algorithm],
    workers: usize,
    metric: F,
) -> MatrixResult<K>
where
    F: Fn(Cube, NodeId, &[NodeId], Algorithm, &mut EngineScratch) -> [f64; K] + Sync,
{
    assert!(workers > 0, "need at least one worker");
    let source = NodeId(0);
    // samples[point][algo][k][trial] — trial-indexed (not push-ordered),
    // so the floating-point aggregation order is independent of how the
    // scheduler interleaves workers.
    let results: Vec<Mutex<Vec<Vec<Vec<f64>>>>> = points
        .iter()
        .map(|_| Mutex::new(vec![vec![vec![0.0; trials]; K]; algos.len()]))
        .collect();

    let next = AtomicUsize::new(0);
    let total_tasks = points.len() * trials;
    std::thread::scope(|scope| {
        for _ in 0..workers.min(total_tasks.max(1)) {
            scope.spawn(|| {
                // One engine arena per worker, reused across every trial
                // this worker picks up.
                let mut scratch = EngineScratch::new();
                loop {
                    let task = next.fetch_add(1, Ordering::Relaxed);
                    if task >= total_tasks {
                        break;
                    }
                    let point = task / trials;
                    let trial = task % trials;
                    let m = points[point];
                    let mut rng = trial_rng(experiment, point, trial);
                    let dests = random_dests(&mut rng, cube, source, m);
                    let mut row: Vec<[f64; K]> = Vec::with_capacity(algos.len());
                    for &algo in algos {
                        row.push(metric(cube, source, &dests, algo, &mut scratch));
                    }
                    let mut cell = results[point].lock().expect("sweep mutex poisoned");
                    for (ai, vals) in row.into_iter().enumerate() {
                        for (k, v) in vals.into_iter().enumerate() {
                            cell[ai][k][trial] = v;
                        }
                    }
                }
            });
        }
    });

    let cells = results
        .into_iter()
        .map(|cell| {
            cell.into_inner()
                .expect("sweep mutex poisoned")
                .into_iter()
                .map(|per_algo| {
                    let mut out = [Summary::of(&[]); K];
                    for (k, samples) in per_algo.into_iter().enumerate() {
                        out[k] = Summary::of(&samples);
                    }
                    out
                })
                .collect()
        })
        .collect();
    MatrixResult {
        points: points.to_vec(),
        algos: algos.to_vec(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypercast::PortModel;

    fn steps_metric(
        cube: Cube,
        src: NodeId,
        dests: &[NodeId],
        algo: Algorithm,
        _scratch: &mut EngineScratch,
    ) -> [f64; 1] {
        let t = algo
            .build(
                cube,
                hcube::Resolution::HighToLow,
                PortModel::AllPort,
                src,
                dests,
            )
            .unwrap();
        [f64::from(t.steps)]
    }

    #[test]
    fn sweep_shapes_are_consistent() {
        let r: MatrixResult<1> = run_matrix(
            "test-sweep",
            Cube::of(5),
            &[1, 4, 16],
            10,
            &Algorithm::PAPER,
            steps_metric,
        );
        assert_eq!(r.points, vec![1, 4, 16]);
        assert_eq!(r.cells.len(), 3);
        for row in &r.cells {
            assert_eq!(row.len(), 4);
            for cell in row {
                assert_eq!(cell[0].n, 10);
                assert!(cell[0].mean >= 1.0);
            }
        }
        let series = r.series(0);
        assert_eq!(series.len(), 4);
        assert_eq!(series[0].xs, vec![1.0, 4.0, 16.0]);
    }

    #[test]
    fn sweep_is_deterministic() {
        let run = || -> Vec<f64> {
            let r: MatrixResult<1> = run_matrix(
                "det",
                Cube::of(5),
                &[3, 9],
                8,
                &[Algorithm::WSort, Algorithm::UCube],
                steps_metric,
            );
            r.cells
                .iter()
                .flat_map(|row| row.iter().map(|c| c[0].mean))
                .collect()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn single_destination_always_one_step() {
        let r: MatrixResult<1> = run_matrix(
            "single",
            Cube::of(4),
            &[1],
            20,
            &Algorithm::PAPER,
            steps_metric,
        );
        for cell in &r.cells[0] {
            assert_eq!(cell[0].mean, 1.0);
            assert_eq!(cell[0].std, 0.0);
        }
    }
}
