//! Long-running service mode: the `mcast serve` request loop.
//!
//! The one-shot CLI pays the process spawn, argument parse, and a cold
//! tree cache on every invocation. This module turns the same entry
//! points into a daemon: newline-delimited JSON requests on stdin,
//! newline-delimited JSON responses on stdout, a persistent
//! [`hypercast::TreeStore`] kept warm across requests, and the sharded
//! session drivers of [`traffic::shard`] parallelizing each request
//! across a worker pool.
//!
//! ## Protocol
//!
//! One request per line; one response line per request, in request
//! order. Every request needs an integer `id` (echoed back) and an
//! `op`; any request may also carry a string `tag`, echoed verbatim in
//! the success wrapper (`{"id":1,"tag":"…","ok":true,…}`) for client
//! correlation — arbitrary UTF-8 including non-BMP characters:
//!
//! ```text
//! {"id":1,"op":"traffic","n":6,"algo":"wsort","load":2.0,"random":8,"sessions":100,"seed":1}
//! {"id":2,"op":"chaos","n":6,"algo":"wsort","load":2.0,"random":8,"mtbf_ms":10.0,"mttr_ms":2.0}
//! {"id":3,"op":"multicast","n":6,"algo":"wsort","source":0,"dests":[3,9,17,33,60]}
//! {"id":4,"op":"stats"}
//! {"id":5,"op":"shutdown"}
//! ```
//!
//! Success wraps the *byte-identical* JSON object the one-shot CLI
//! prints for the same configuration (plus a `"workers":N` echo when
//! the request asked for a sharded run):
//!
//! ```text
//! {"id":1,"ok":true,"result":{"mode":"traffic","algo":"W-sort",...}}
//! ```
//!
//! Failures are typed and never kill the daemon:
//!
//! ```text
//! {"id":null,"ok":false,"error":{"kind":"bad_json","message":"..."}}
//! ```
//!
//! with `kind` one of `bad_json` (the line is not JSON), `bad_request`
//! (unknown op / unknown field / invalid value), `oversized` (a value
//! exceeds the server's configured caps), or `deadline_exceeded` (the
//! request carried a `deadline_ms` and spent longer than that queued).
//!
//! ## Execution model
//!
//! A reader thread parses lines into a bounded channel
//! ([`ServeOptions::max_inflight`] entries); when the queue is full the
//! reader stops consuming stdin, which backpressures the client through
//! the pipe. A single executor drains the queue **in request order** —
//! parallelism lives *inside* a request (the sharded drivers fan its
//! sessions across `workers` threads), so responses never interleave
//! and the output order is deterministic. `shutdown` answers after
//! every request queued before it (the reader stops at the shutdown
//! line), making drain graceful by construction.
//!
//! The spec builders ([`load_spec`], [`chaos_wrap`]) and report
//! formatters ([`traffic_report_json`], [`chaos_report_json`],
//! [`multicast_report_json`]) are the *single source* for both the
//! one-shot CLI and the daemon, so serve-vs-CLI equivalence is
//! structural, not coincidental.

use std::io::{BufRead, Write};
use std::sync::mpsc;
use std::time::Instant;

use hcube::{Cube, NodeId, Resolution, Topology, Torus, TorusRouter};
use hypercast::{Algorithm, PortModel, RetryPolicy, TreeStore};
use traffic::{
    ArrivalProcess, Arrivals, ChaosReport, ChaosSpec, ChurnSpec, DestPattern, TrafficReport,
    TrafficSpec,
};
use wormsim::{SimParams, SimReport, SimTime};

use crate::json::{self, Value};

// ---------------------------------------------------------------------------
// Shared spec builders (single source for the CLI and the daemon)
// ---------------------------------------------------------------------------

/// Builds the open-loop [`TrafficSpec`] of a `--load` run: `rate`
/// sessions/ms under `arrivals`, with the CLI's horizon convention —
/// enough simulated time for the nominal schedule plus 25% slack and a
/// 30 ms drain tail.
#[must_use]
pub fn load_spec(
    arrivals: ArrivalProcess,
    rate: f64,
    pattern: DestPattern,
    sessions: usize,
    seed: u64,
    bytes: u32,
) -> TrafficSpec {
    let mut spec = TrafficSpec::new(Arrivals::new(arrivals, rate), pattern, sessions, seed);
    spec.bytes = bytes;
    spec.horizon = SimTime::from_ms((sessions as f64 / rate * 1.25 + 30.0) as u64);
    spec
}

/// Wraps an open-loop spec with the `--chaos` churn process and retry
/// policy. Node churn rides along at 4x the link MTBF and 1.5x the
/// link MTTR (the sweep's convention); failures strike only in the
/// first 60% of the window so every run ends with a healed network.
#[must_use]
pub fn chaos_wrap(
    traffic: TrafficSpec,
    mtbf_ms: f64,
    mttr_ms: f64,
    retries: u32,
    backoff_us: u64,
) -> ChaosSpec {
    let churn = ChurnSpec {
        link_mtbf_ms: mtbf_ms,
        link_mttr_ms: mttr_ms,
        node_mtbf_ms: mtbf_ms * 4.0,
        node_mttr_ms: mttr_ms * 1.5,
        churn_until: SimTime::from_ns((traffic.horizon.as_ns() as f64 * 0.6) as u64),
    };
    ChaosSpec {
        traffic,
        churn,
        retry: RetryPolicy {
            max_retries: retries,
            base_backoff: backoff_us,
            backoff_factor: 4,
        },
    }
}

// ---------------------------------------------------------------------------
// Shared report formatters
// ---------------------------------------------------------------------------

fn fin(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".into()
    }
}

/// Appends `,"workers":N` inside the closing brace when the run was
/// sharded, so one-shot (contended) output stays byte-identical.
fn with_workers(mut line: String, workers: Option<usize>) -> String {
    if let Some(w) = workers {
        line.truncate(line.len() - 1);
        line.push_str(&format!(",\"workers\":{w}}}"));
    }
    line
}

/// The one-line JSON summary of an open-loop traffic report — the
/// exact object `mcast --load --json` prints.
#[must_use]
pub fn traffic_report_json(label: &str, r: &TrafficReport, workers: Option<usize>) -> String {
    let line = format!(
        "{{\"mode\":\"traffic\",\"algo\":\"{label}\",\"offered_per_ms\":{},\
         \"sessions\":{},\"measured\":{},\"completion_ratio\":{},\
         \"mean_latency_ms\":{},\"ci_half_width_ms\":{},\"throughput_per_ms\":{},\
         \"cache_hit_rate\":{},\"timed_out\":{}}}",
        r.offered_rate_per_ms,
        r.sessions.len(),
        r.measured_sessions,
        r.completion_ratio,
        fin(r.latency.mean),
        fin(r.latency.ci_half_width),
        r.throughput_per_ms,
        r.cache.hit_rate(),
        r.net.timed_out,
    );
    with_workers(line, workers)
}

/// The one-line JSON summary of a chaos report — the exact object
/// `mcast --load --chaos --json` prints.
#[must_use]
pub fn chaos_report_json(label: &str, r: &ChaosReport, workers: Option<usize>) -> String {
    let hist: Vec<String> = r.retry_histogram.iter().map(u64::to_string).collect();
    let line = format!(
        "{{\"mode\":\"chaos\",\"algo\":\"{label}\",\"offered_per_ms\":{},\
         \"sessions\":{},\"measured\":{},\"delivery_ratio\":{},\
         \"goodput_per_ms\":{},\"mean_latency_ms\":{},\"ci_half_width_ms\":{},\
         \"retry_histogram\":[{}],\"lost\":{},\"window_cut\":{},\
         \"time_to_recover_ms\":{},\"epochs\":{},\"fault_events\":{}}}",
        r.offered_rate_per_ms,
        r.sessions.len(),
        r.measured_sessions,
        r.delivery_ratio,
        r.goodput_per_ms,
        fin(r.latency.mean),
        fin(r.latency.ci_half_width),
        hist.join(","),
        r.lost,
        r.window_cut,
        r.time_to_recover
            .map_or("null".into(), |t| format!("{}", t.as_ms())),
        r.epochs,
        r.fault_events,
    );
    with_workers(line, workers)
}

/// The one-line JSON summary of a single-shot multicast — the exact
/// summary object `mcast --json` prints after the tree.
#[must_use]
pub fn multicast_report_json(label: &str, report: &SimReport, lanes: u8) -> String {
    let util: Vec<String> = report
        .stats
        .dim_utilization()
        .iter()
        .map(|u| format!("{u:.6}"))
        .collect();
    let lane_util: Vec<String> = report
        .stats
        .lane_utilization()
        .iter()
        .map(|u| format!("{u:.6}"))
        .collect();
    format!(
        "{{\"algo\":\"{label}\",\"avg_delay_ns\":{},\"max_delay_ns\":{},\"blocks\":{},\
         \"dim_utilization\":[{}],\"lanes\":{lanes},\"lane_utilization\":[{}],\
         \"max_queue_depth\":{}}}",
        report.avg_delay.as_ns(),
        report.max_delay.as_ns(),
        report.blocks,
        util.join(","),
        lane_util.join(","),
        report.stats.max_queue_depth
    )
}

// ---------------------------------------------------------------------------
// Server configuration and summary
// ---------------------------------------------------------------------------

/// Tunables of a [`serve_loop`]: the in-flight bound (backpressure) and
/// the size caps behind `oversized` refusals.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Parsed requests buffered between the reader and the executor;
    /// when full, the reader stops consuming input (backpressure).
    pub max_inflight: usize,
    /// Per-request session ceiling.
    pub max_sessions: usize,
    /// Topology size ceiling (nodes).
    pub max_nodes: usize,
    /// Destination-set size ceiling (explicit `dests` or `random` m).
    pub max_dests: usize,
    /// Worker-pool size ceiling for sharded requests.
    pub max_workers: usize,
    /// Request-line length ceiling in bytes.
    pub max_line_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            max_inflight: 16,
            max_sessions: 20_000,
            max_nodes: 1024,
            max_dests: 256,
            max_workers: 64,
            max_line_bytes: 1 << 20,
        }
    }
}

/// What a [`serve_loop`] did before it returned.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Successful responses written.
    pub served: u64,
    /// Error responses written.
    pub errors: u64,
    /// `true` if the loop ended on a `shutdown` request (`false`: EOF).
    pub shutdown: bool,
}

// ---------------------------------------------------------------------------
// Request plumbing
// ---------------------------------------------------------------------------

struct Job {
    received: Instant,
    parsed: Result<Value, String>,
}

/// A typed refusal: becomes the `error` object of a response line.
struct Refusal {
    kind: &'static str,
    message: String,
}

fn bad_request(message: impl Into<String>) -> Refusal {
    Refusal {
        kind: "bad_request",
        message: message.into(),
    }
}

fn oversized(message: impl Into<String>) -> Refusal {
    Refusal {
        kind: "oversized",
        message: message.into(),
    }
}

/// Strict field cursor over a request object: every `get` marks the
/// key as consumed, and [`Fields::finish`] refuses the request if any
/// key was never consumed — unknown fields are errors, not silence.
struct Fields<'a> {
    entries: &'a [(String, Value)],
    used: Vec<bool>,
}

impl<'a> Fields<'a> {
    fn new(v: &'a Value) -> Result<Fields<'a>, Refusal> {
        match v {
            Value::Object(entries) => Ok(Fields {
                used: vec![false; entries.len()],
                entries,
            }),
            _ => Err(bad_request("a request must be a JSON object")),
        }
    }

    fn get(&mut self, key: &str) -> Option<&'a Value> {
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if k == key {
                self.used[i] = true;
                return Some(v);
            }
        }
        None
    }

    fn finish(self) -> Result<(), Refusal> {
        for (i, (k, _)) in self.entries.iter().enumerate() {
            if !self.used[i] {
                return Err(bad_request(format!("unknown field `{k}`")));
            }
        }
        Ok(())
    }
}

/// A non-negative integer field (JSON numbers are `f64`; refuse
/// fractions and out-of-range magnitudes rather than truncating).
fn as_uint(v: &Value, key: &str) -> Result<u64, Refusal> {
    match v.as_f64() {
        Some(x) if x.fract() == 0.0 && (0.0..=9.0e15).contains(&x) => Ok(x as u64),
        _ => Err(bad_request(format!(
            "`{key}` must be a non-negative integer"
        ))),
    }
}

fn uint_field(f: &mut Fields, key: &str, default: u64) -> Result<u64, Refusal> {
    f.get(key).map_or(Ok(default), |v| as_uint(v, key))
}

fn float_field(f: &mut Fields, key: &str) -> Result<Option<f64>, Refusal> {
    match f.get(key) {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(x) if x.is_finite() => Ok(Some(x)),
            _ => Err(bad_request(format!("`{key}` must be a finite number"))),
        },
    }
}

fn str_field<'a>(f: &mut Fields<'a>, key: &str) -> Result<Option<&'a str>, Refusal> {
    match f.get(key) {
        None => Ok(None),
        Some(v) => v
            .as_str()
            .map(Some)
            .ok_or_else(|| bad_request(format!("`{key}` must be a string"))),
    }
}

fn parse_algorithm(name: &str) -> Result<Algorithm, Refusal> {
    Ok(match name {
        "ucube" | "u-cube" => Algorithm::UCube,
        "maxport" => Algorithm::Maxport,
        "combine" => Algorithm::Combine,
        "wsort" | "w-sort" => Algorithm::WSort,
        "separate" => Algorithm::Separate,
        "dimtree" => Algorithm::DimTree,
        other => return Err(bad_request(format!("unknown algorithm `{other}`"))),
    })
}

fn parse_port(f: &mut Fields) -> Result<PortModel, Refusal> {
    Ok(match str_field(f, "port")? {
        None | Some("all") | Some("all-port") => PortModel::AllPort,
        Some("one") | Some("one-port") => PortModel::OnePort,
        Some(other) => return Err(bad_request(format!("unknown port model `{other}`"))),
    })
}

/// The destination side of a request: explicit `dests` or `random` m,
/// exactly one, validated against the topology so the builders and
/// pattern samplers can't panic on daemon input.
fn parse_pattern(
    f: &mut Fields,
    source: u64,
    nodes: usize,
    opts: &ServeOptions,
) -> Result<DestPattern, Refusal> {
    if source >= nodes as u64 {
        return Err(bad_request(format!(
            "`source` {source} outside the {nodes}-node topology"
        )));
    }
    let random = f.get("random").map(|v| as_uint(v, "random")).transpose()?;
    let dests = f.get("dests");
    match (random, dests) {
        (Some(_), Some(_)) => Err(bad_request("give `dests` or `random`, not both")),
        (None, None) => Err(bad_request("provide `dests` or `random`")),
        (Some(m), None) => {
            let m = m as usize;
            if m == 0 {
                return Err(bad_request("`random` must be >= 1"));
            }
            if m > opts.max_dests {
                return Err(oversized(format!(
                    "`random` {m} exceeds the cap of {}",
                    opts.max_dests
                )));
            }
            if m >= nodes {
                return Err(bad_request(format!(
                    "`random` {m} needs {} candidates but the topology has {nodes} nodes",
                    m + 1
                )));
            }
            Ok(DestPattern::UniformRandom { m })
        }
        (None, Some(v)) => {
            let arr = v
                .as_array()
                .ok_or_else(|| bad_request("`dests` must be an array of node ids"))?;
            if arr.is_empty() {
                return Err(bad_request("`dests` must not be empty"));
            }
            if arr.len() > opts.max_dests {
                return Err(oversized(format!(
                    "{} dests exceed the cap of {}",
                    arr.len(),
                    opts.max_dests
                )));
            }
            let mut out = Vec::with_capacity(arr.len());
            for d in arr {
                let d = as_uint(d, "dests")?;
                if d >= nodes as u64 {
                    return Err(bad_request(format!(
                        "destination {d} outside the {nodes}-node topology"
                    )));
                }
                if d == source {
                    return Err(bad_request(format!("destination {d} is the source itself")));
                }
                let d = NodeId(d as u32);
                if out.contains(&d) {
                    return Err(bad_request(format!("duplicate destination {}", d.0)));
                }
                out.push(d);
            }
            Ok(DestPattern::Fixed {
                source: NodeId(source as u32),
                dests: out,
            })
        }
    }
}

// ---------------------------------------------------------------------------
// Request execution
// ---------------------------------------------------------------------------

enum Executed {
    Line(String),
    Shutdown(String),
}

fn request_id(v: &Value) -> Result<u64, Refusal> {
    match v.get("id") {
        Some(id) => as_uint(id, "id"),
        None => Err(bad_request("a request needs an integer `id`")),
    }
}

/// The traffic/chaos shared front half: topology + pattern + spec
/// fields, then the matching (sharded or contended) engine entry point.
fn run_load(
    chaos: bool,
    f: &mut Fields,
    store: &TreeStore,
    opts: &ServeOptions,
) -> Result<String, Refusal> {
    let topology = str_field(f, "topology")?.unwrap_or("cube");
    let n = uint_field(f, "n", 6)? as u8;
    let rate = match float_field(f, "load")? {
        Some(r) if r > 0.0 => r,
        Some(_) => return Err(bad_request("`load` must be > 0 sessions/ms")),
        None => return Err(bad_request("`load` (sessions/ms) is required")),
    };
    let sessions = uint_field(f, "sessions", 100)? as usize;
    if sessions == 0 {
        return Err(bad_request("`sessions` must be >= 1"));
    }
    if sessions > opts.max_sessions {
        return Err(oversized(format!(
            "{sessions} sessions exceed the cap of {}",
            opts.max_sessions
        )));
    }
    let arrivals = match str_field(f, "arrivals")? {
        None => ArrivalProcess::Poisson,
        Some(s) => ArrivalProcess::parse(s).map_err(bad_request)?,
    };
    let seed = uint_field(f, "seed", 1)?;
    let bytes = uint_field(f, "bytes", 4096)?;
    if bytes == 0 || bytes > u64::from(u32::MAX) {
        return Err(bad_request("`bytes` must be between 1 and 2^32-1"));
    }
    let bytes = bytes as u32;
    let workers = match f.get("workers") {
        None => None,
        Some(v) => {
            let w = as_uint(v, "workers")? as usize;
            if w == 0 {
                return Err(bad_request("`workers` must be >= 1"));
            }
            if w > opts.max_workers {
                return Err(oversized(format!(
                    "{w} workers exceed the cap of {}",
                    opts.max_workers
                )));
            }
            Some(w)
        }
    };
    let source = uint_field(f, "source", 0)?;
    let port = parse_port(f)?;
    let params = SimParams::ncube2(port);
    let retry = if chaos {
        let mtbf = match float_field(f, "mtbf_ms")? {
            Some(x) if x > 0.0 => x,
            _ => return Err(bad_request("`mtbf_ms` must be a number > 0")),
        };
        let mttr = match float_field(f, "mttr_ms")? {
            Some(x) if x > 0.0 => x,
            _ => return Err(bad_request("`mttr_ms` must be a number > 0")),
        };
        let retries = uint_field(f, "retries", 3)? as u32;
        let backoff_us = uint_field(f, "backoff_us", 500)?;
        if backoff_us == 0 {
            return Err(bad_request("`backoff_us` must be >= 1"));
        }
        Some((mtbf, mttr, retries, backoff_us))
    } else {
        None
    };

    match topology {
        "cube" => {
            let algo = parse_algorithm(str_field(f, "algo")?.unwrap_or("wsort"))?;
            let cube = Cube::new(n).map_err(|e| bad_request(e.to_string()))?;
            if cube.node_count() > opts.max_nodes {
                return Err(oversized(format!(
                    "a {n}-cube ({} nodes) exceeds the cap of {} nodes",
                    cube.node_count(),
                    opts.max_nodes
                )));
            }
            let pattern = parse_pattern(f, source, cube.node_count(), opts)?;
            let spec = load_spec(arrivals, rate, pattern, sessions, seed, bytes);
            match retry {
                Some((mtbf, mttr, retries, backoff_us)) => {
                    let spec = chaos_wrap(spec, mtbf, mttr, retries, backoff_us);
                    let r = match workers {
                        Some(w) => traffic::run_chaos_cube_sharded_with_store(
                            &spec,
                            cube,
                            Resolution::HighToLow,
                            algo,
                            &params,
                            w,
                            store,
                        ),
                        None => traffic::run_chaos_cube(
                            &spec,
                            cube,
                            Resolution::HighToLow,
                            algo,
                            &params,
                        ),
                    };
                    Ok(chaos_report_json(algo.name(), &r, workers))
                }
                None => {
                    let r = match workers {
                        Some(w) => traffic::run_cube_sharded(
                            &spec,
                            cube,
                            Resolution::HighToLow,
                            algo,
                            &params,
                            w,
                        ),
                        None => {
                            traffic::run_cube(&spec, cube, Resolution::HighToLow, algo, &params)
                        }
                    };
                    Ok(traffic_report_json(algo.name(), &r, workers))
                }
            }
        }
        "torus" => {
            let arity = uint_field(f, "arity", 4)? as u16;
            let torus = Torus::new(arity, n).map_err(|e| bad_request(e.to_string()))?;
            if torus.node_count() > opts.max_nodes {
                return Err(oversized(format!(
                    "a {arity}-ary {n}-cube torus ({} nodes) exceeds the cap of {} nodes",
                    torus.node_count(),
                    opts.max_nodes
                )));
            }
            let pattern = parse_pattern(f, source, torus.node_count(), opts)?;
            let spec = load_spec(arrivals, rate, pattern, sessions, seed, bytes);
            let router = TorusRouter::new(torus);
            match retry {
                Some((mtbf, mttr, retries, backoff_us)) => {
                    let spec = chaos_wrap(spec, mtbf, mttr, retries, backoff_us);
                    let r = match workers {
                        Some(w) => {
                            traffic::run_chaos_separate_sharded_on(&spec, router, &params, w)
                        }
                        None => traffic::run_chaos_separate_on(&spec, router, &params),
                    };
                    Ok(chaos_report_json("Separate", &r, workers))
                }
                None => {
                    let r = match workers {
                        Some(w) => traffic::run_separate_sharded_on(&spec, router, &params, w),
                        None => traffic::run_separate_on(&spec, router, &params),
                    };
                    Ok(traffic_report_json("Separate", &r, workers))
                }
            }
        }
        other => Err(bad_request(format!(
            "unknown topology `{other}` (cube or torus)"
        ))),
    }
}

/// A single-shot multicast request: build the tree, replay it on an
/// idle network, return the CLI's summary object.
fn run_multicast(f: &mut Fields, opts: &ServeOptions) -> Result<String, Refusal> {
    let n = uint_field(f, "n", 6)? as u8;
    let cube = Cube::new(n).map_err(|e| bad_request(e.to_string()))?;
    if cube.node_count() > opts.max_nodes {
        return Err(oversized(format!(
            "a {n}-cube ({} nodes) exceeds the cap of {} nodes",
            cube.node_count(),
            opts.max_nodes
        )));
    }
    let algo = parse_algorithm(str_field(f, "algo")?.unwrap_or("wsort"))?;
    let source = uint_field(f, "source", 0)?;
    let seed = uint_field(f, "seed", 1)?;
    let bytes = uint_field(f, "bytes", 4096)?;
    if bytes == 0 || bytes > u64::from(u32::MAX) {
        return Err(bad_request("`bytes` must be between 1 and 2^32-1"));
    }
    let lanes = uint_field(f, "lanes", 1)?;
    if lanes == 0 || lanes > 16 {
        return Err(bad_request("`lanes` must be between 1 and 16"));
    }
    let port = parse_port(f)?;
    let pattern = parse_pattern(f, source, cube.node_count(), opts)?;
    let source = NodeId(source as u32);
    let dests = match pattern {
        DestPattern::Fixed { dests, .. } => dests,
        DestPattern::UniformRandom { m } => {
            // The CLI's exact draw, so `mcast --random M --seed S --json`
            // and the equivalent request return the same tree.
            let mut rng = crate::destsets::trial_rng("mcast-cli", 0, seed as usize);
            crate::destsets::random_dests(&mut rng, cube, source, m)
        }
        _ => unreachable!("parse_pattern only builds Fixed or UniformRandom"),
    };
    let tree = algo
        .build(cube, Resolution::HighToLow, port, source, &dests)
        .map_err(|e| bad_request(e.to_string()))?;
    let params = SimParams::ncube2(port);
    let report = wormsim::simulate_multicast_lanes(&tree, &params, bytes as u32, lanes as u8);
    Ok(multicast_report_json(algo.name(), &report, lanes as u8))
}

fn execute(
    v: &Value,
    received: Instant,
    store: &TreeStore,
    opts: &ServeOptions,
    summary: &ServeSummary,
) -> Result<(Option<String>, Executed), Refusal> {
    let mut f = Fields::new(v)?;
    let _ = f.get("id");
    // An optional client correlation string, echoed verbatim in the
    // response wrapper. Arbitrary UTF-8 (the parser combines UTF-16
    // surrogate pairs, so non-BMP tags survive the round trip).
    let tag = str_field(&mut f, "tag")?.map(str::to_string);
    let op = str_field(&mut f, "op")?
        .ok_or_else(|| bad_request("`op` is required (traffic/chaos/multicast/stats/shutdown)"))?;
    if let Some(deadline_ms) = float_field(&mut f, "deadline_ms")? {
        if deadline_ms < 0.0 {
            return Err(bad_request("`deadline_ms` must be >= 0"));
        }
        let waited_ms = received.elapsed().as_secs_f64() * 1e3;
        if waited_ms > deadline_ms {
            return Err(Refusal {
                kind: "deadline_exceeded",
                message: format!("request waited {waited_ms:.1} ms, deadline {deadline_ms} ms"),
            });
        }
    }
    let executed = match op {
        "traffic" | "chaos" => {
            let line = run_load(op == "chaos", &mut f, store, opts)?;
            f.finish()?;
            Executed::Line(line)
        }
        "multicast" => {
            let line = run_multicast(&mut f, opts)?;
            f.finish()?;
            Executed::Line(line)
        }
        "stats" => {
            f.finish()?;
            let s = store.stats();
            Executed::Line(format!(
                "{{\"mode\":\"stats\",\"served\":{},\"errors\":{},\"store_trees\":{},\
                 \"store_hits\":{},\"store_misses\":{}}}",
                summary.served,
                summary.errors,
                store.len(),
                s.hits,
                s.misses
            ))
        }
        "shutdown" => {
            f.finish()?;
            Executed::Shutdown(format!(
                "{{\"mode\":\"shutdown\",\"served\":{},\"errors\":{}}}",
                summary.served, summary.errors
            ))
        }
        other => return Err(bad_request(format!("unknown op `{other}`"))),
    };
    Ok((tag, executed))
}

// ---------------------------------------------------------------------------
// The request loop
// ---------------------------------------------------------------------------

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn id_json(id: Option<u64>) -> String {
    id.map_or_else(|| "null".into(), |i| i.to_string())
}

/// The optional `,"tag":"…"` wrapper member: present only when the
/// request carried a tag, so untagged responses keep their exact bytes.
fn tag_json(tag: Option<&str>) -> String {
    tag.map_or_else(String::new, |t| format!(",\"tag\":\"{}\"", escape(t)))
}

/// The reader half: one parsed line per queue slot. Blank lines are
/// skipped; a `shutdown` op stops the reader after forwarding it, so
/// the executor drains everything queued before it and the loop's
/// thread scope joins cleanly.
fn read_requests(mut input: impl BufRead, tx: mpsc::SyncSender<Job>, max_line_bytes: usize) {
    let mut line = String::new();
    loop {
        line.clear();
        match input.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let parsed = if trimmed.len() > max_line_bytes {
            Err(format!(
                "request line of {} bytes exceeds the cap of {max_line_bytes}",
                trimmed.len()
            ))
        } else {
            json::parse(trimmed).map_err(|e| e.to_string())
        };
        let shutdown = matches!(
            &parsed,
            Ok(v) if v.get("op").and_then(Value::as_str) == Some("shutdown")
        );
        if tx
            .send(Job {
                received: Instant::now(),
                parsed,
            })
            .is_err()
        {
            break;
        }
        if shutdown {
            break;
        }
    }
}

/// Runs the daemon: reads requests from `input` until EOF or a
/// `shutdown` request, writing one response line per request to
/// `output` in request order. A malformed line (`bad_json`) is the
/// only way a request can fail without an echoed id.
///
/// The [`TreeStore`] persists across requests, so a chaos request
/// replaying a group pool the previous request already built gets its
/// repaired trees as pointer clones — the warm-daemon advantage the
/// one-shot CLI cannot have. Store warmth never changes response
/// bytes (pinned by the `traffic::shard` warmth-invariance test).
///
/// # Errors
///
/// Propagates `output` write failures; request-level problems become
/// error response lines instead.
pub fn serve_loop<R, W>(
    input: R,
    output: &mut W,
    opts: &ServeOptions,
) -> std::io::Result<ServeSummary>
where
    R: BufRead + Send,
    W: Write,
{
    let (tx, rx) = mpsc::sync_channel::<Job>(opts.max_inflight.max(1));
    let max_line_bytes = opts.max_line_bytes;
    std::thread::scope(|scope| {
        scope.spawn(move || read_requests(input, tx, max_line_bytes));
        let store = TreeStore::new();
        let mut summary = ServeSummary::default();
        for job in rx {
            let (id, outcome) = match &job.parsed {
                Err(e) => (
                    None,
                    Err(Refusal {
                        kind: "bad_json",
                        message: e.clone(),
                    }),
                ),
                Ok(v) => match request_id(v) {
                    Err(r) => (None, Err(r)),
                    Ok(id) => (Some(id), execute(v, job.received, &store, opts, &summary)),
                },
            };
            match outcome {
                Ok((tag, Executed::Line(result))) => {
                    writeln!(
                        output,
                        "{{\"id\":{}{},\"ok\":true,\"result\":{result}}}",
                        id_json(id),
                        tag_json(tag.as_deref())
                    )?;
                    output.flush()?;
                    summary.served += 1;
                }
                Ok((tag, Executed::Shutdown(result))) => {
                    writeln!(
                        output,
                        "{{\"id\":{}{},\"ok\":true,\"result\":{result}}}",
                        id_json(id),
                        tag_json(tag.as_deref())
                    )?;
                    output.flush()?;
                    summary.served += 1;
                    summary.shutdown = true;
                    break;
                }
                Err(refusal) => {
                    writeln!(
                        output,
                        "{{\"id\":{},\"ok\":false,\"error\":{{\"kind\":\"{}\",\"message\":\"{}\"}}}}",
                        id_json(id),
                        refusal.kind,
                        escape(&refusal.message)
                    )?;
                    output.flush()?;
                    summary.errors += 1;
                }
            }
        }
        Ok(summary)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn serve(input: &str, opts: &ServeOptions) -> (Vec<String>, ServeSummary) {
        let mut out = Vec::new();
        let summary = serve_loop(Cursor::new(input.to_string()), &mut out, opts)
            .expect("writing to a Vec cannot fail");
        let lines = String::from_utf8(out)
            .expect("responses are UTF-8")
            .lines()
            .map(str::to_string)
            .collect();
        (lines, summary)
    }

    fn strip_workers(line: &str) -> String {
        match line.find(",\"workers\":") {
            None => line.to_string(),
            Some(i) => {
                let rest = &line[i + 11..];
                let end = rest
                    .find(|c: char| !c.is_ascii_digit())
                    .expect("workers echo is followed by a brace");
                format!("{}{}", &line[..i], &rest[end..])
            }
        }
    }

    const TRAFFIC: &str = "{\"id\":1,\"op\":\"traffic\",\"n\":5,\"algo\":\"wsort\",\"load\":2.0,\
         \"random\":6,\"sessions\":40,\"seed\":7}";

    #[test]
    fn traffic_response_matches_the_one_shot_engine() {
        let (lines, summary) = serve(TRAFFIC, &ServeOptions::default());
        let spec = load_spec(
            ArrivalProcess::Poisson,
            2.0,
            DestPattern::UniformRandom { m: 6 },
            40,
            7,
            4096,
        );
        let report = traffic::run_cube(
            &spec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &SimParams::ncube2(PortModel::AllPort),
        );
        let expected = format!(
            "{{\"id\":1,\"ok\":true,\"result\":{}}}",
            traffic_report_json("W-sort", &report, None)
        );
        assert_eq!(lines, vec![expected]);
        assert_eq!(
            summary,
            ServeSummary {
                served: 1,
                errors: 0,
                shutdown: false
            }
        );
    }

    #[test]
    fn responses_are_worker_count_invariant_up_to_the_echo() {
        // Sharded (independent-session) responses are a distinct mode
        // from the contended engine, but within the mode the worker
        // count is invisible beyond the `"workers":N` echo.
        let request = |workers: usize| {
            TRAFFIC.replace(
                ",\"seed\":7}",
                &format!(",\"seed\":7,\"workers\":{workers}}}"),
            )
        };
        let base = serve(&request(1), &ServeOptions::default()).0;
        for workers in [2, 8] {
            let (lines, _) = serve(&request(workers), &ServeOptions::default());
            assert!(
                lines[0].contains(&format!("\"workers\":{workers}")),
                "the sharded response echoes its worker count: {}",
                lines[0]
            );
            assert_eq!(
                strip_workers(&lines[0]),
                strip_workers(&base[0]),
                "workers={workers} changed response bytes beyond the echo"
            );
        }
    }

    #[test]
    fn responses_are_interleaving_invariant() {
        let chaos = "{\"id\":2,\"op\":\"chaos\",\"n\":5,\"algo\":\"combine\",\"load\":1.5,\
                     \"random\":5,\"sessions\":30,\"seed\":3,\"mtbf_ms\":8.0,\"mttr_ms\":2.0,\
                     \"workers\":2}";
        let ab = serve(&format!("{TRAFFIC}\n{chaos}\n"), &ServeOptions::default()).0;
        let ba = serve(&format!("{chaos}\n{TRAFFIC}\n"), &ServeOptions::default()).0;
        assert_eq!(ab.len(), 2);
        assert_eq!(
            ab[0], ba[1],
            "the traffic response depends on its neighbors"
        );
        assert_eq!(ab[1], ba[0], "the chaos response depends on its neighbors");
    }

    #[test]
    fn chaos_response_matches_the_one_shot_engine_and_store_stays_warm() {
        let req = "{\"id\":4,\"op\":\"chaos\",\"n\":5,\"algo\":\"wsort\",\"load\":1.5,\
                   \"random\":5,\"sessions\":30,\"seed\":3,\"mtbf_ms\":8.0,\"mttr_ms\":2.0,\
                   \"workers\":2}";
        let stats = "{\"id\":5,\"op\":\"stats\"}";
        let input = format!("{req}\n{req}\n{stats}\n");
        let (lines, _) = serve(&input, &ServeOptions::default());
        assert_eq!(
            lines[0].replace("\"id\":4", ""),
            lines[1].replace("\"id\":4", "")
        );

        let spec = chaos_wrap(
            load_spec(
                ArrivalProcess::Poisson,
                1.5,
                DestPattern::UniformRandom { m: 5 },
                30,
                3,
                4096,
            ),
            8.0,
            2.0,
            3,
            500,
        );
        let report = traffic::run_chaos_cube_sharded_with_store(
            &spec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &SimParams::ncube2(PortModel::AllPort),
            2,
            &TreeStore::new(),
        );
        assert_eq!(
            lines[0],
            format!(
                "{{\"id\":4,\"ok\":true,\"result\":{}}}",
                chaos_report_json("W-sort", &report, Some(2))
            )
        );
        // The second identical request hit the persistent store.
        assert!(
            lines[2].contains("\"store_hits\":") && !lines[2].contains("\"store_hits\":0,"),
            "the second chaos request should reuse stored trees: {}",
            lines[2]
        );
    }

    #[test]
    fn multicast_response_matches_the_single_shot_replay() {
        let req = "{\"id\":9,\"op\":\"multicast\",\"n\":6,\"algo\":\"maxport\",\
                   \"dests\":[3,9,17,33,60]}";
        let (lines, _) = serve(req, &ServeOptions::default());
        let cube = Cube::of(6);
        let dests: Vec<NodeId> = [3, 9, 17, 33, 60].iter().map(|&d| NodeId(d)).collect();
        let tree = Algorithm::Maxport
            .build(
                cube,
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests,
            )
            .expect("a valid destination set builds");
        let report = wormsim::simulate_multicast_lanes(
            &tree,
            &SimParams::ncube2(PortModel::AllPort),
            4096,
            1,
        );
        assert_eq!(
            lines,
            vec![format!(
                "{{\"id\":9,\"ok\":true,\"result\":{}}}",
                multicast_report_json("Maxport", &report, 1)
            )]
        );
    }

    #[test]
    fn tag_echo_round_trips_non_bmp_strings_through_a_live_cycle() {
        // A standards-compliant client escapes U+1F600 as a UTF-16
        // surrogate pair; the daemon must echo the combined scalar, not
        // two replacement characters.
        let req = "{\"id\":11,\"op\":\"stats\",\"tag\":\"grin \\ud83d\\ude00 done\"}";
        let (lines, _) = serve(req, &ServeOptions::default());
        assert_eq!(lines.len(), 1);
        assert!(
            lines[0].starts_with("{\"id\":11,\"tag\":\"grin 😀 done\",\"ok\":true"),
            "{}",
            lines[0]
        );
        // The response line itself parses, and the echoed field is the
        // exact original string — the full client-side round trip.
        let v = json::parse(&lines[0]).expect("response is valid JSON");
        assert_eq!(v["tag"], "grin 😀 done");
        assert_eq!(v["id"], 11.0);
    }

    #[test]
    fn untagged_responses_keep_their_exact_bytes() {
        let tagged = "{\"id\":1,\"op\":\"stats\",\"tag\":\"t\"}";
        let plain = "{\"id\":1,\"op\":\"stats\"}";
        let (with_tag, _) = serve(tagged, &ServeOptions::default());
        let (without, _) = serve(plain, &ServeOptions::default());
        assert_eq!(with_tag[0].replace(",\"tag\":\"t\"", ""), without[0]);
        assert!(!without[0].contains("\"tag\""));
    }

    #[test]
    fn lone_surrogate_requests_are_rejected_as_bad_json() {
        let req = "{\"id\":12,\"op\":\"stats\",\"tag\":\"broken \\ud83d\"}";
        let (lines, summary) = serve(req, &ServeOptions::default());
        assert!(lines[0].contains("\"kind\":\"bad_json\""), "{}", lines[0]);
        assert_eq!(summary.errors, 1);
    }

    #[test]
    fn malformed_requests_get_typed_errors_and_the_daemon_stays_up() {
        let input = concat!(
            "this is not json\n",
            "{\"op\":\"traffic\",\"load\":1.0,\"random\":4}\n",
            "{\"id\":2,\"op\":\"warp\"}\n",
            "{\"id\":3,\"op\":\"traffic\",\"load\":1.0,\"random\":4,\"frobnicate\":1}\n",
            "{\"id\":4,\"op\":\"traffic\",\"load\":1.0,\"random\":4,\"sessions\":999999}\n",
            "{\"id\":5,\"op\":\"traffic\",\"load\":1.0,\"random\":4,\"deadline_ms\":0}\n",
            "{\"id\":6,\"op\":\"traffic\",\"load\":1.0,\"random\":4,\"sessions\":20,\"n\":5}\n",
            "{\"id\":7,\"op\":\"shutdown\"}\n",
        );
        let (lines, summary) = serve(input, &ServeOptions::default());
        assert_eq!(lines.len(), 8);
        assert!(lines[0].starts_with("{\"id\":null,\"ok\":false,\"error\":{\"kind\":\"bad_json\""));
        assert!(
            lines[1].starts_with("{\"id\":null,\"ok\":false,\"error\":{\"kind\":\"bad_request\"")
        );
        assert!(lines[2].contains("\"kind\":\"bad_request\"") && lines[2].contains("unknown op"));
        assert!(lines[3].contains("\"kind\":\"bad_request\"") && lines[3].contains("frobnicate"));
        assert!(lines[4].contains("\"kind\":\"oversized\""));
        assert!(lines[5].contains("\"kind\":\"deadline_exceeded\""));
        assert!(
            lines[6].starts_with("{\"id\":6,\"ok\":true,"),
            "the daemon keeps serving after errors: {}",
            lines[6]
        );
        assert!(lines[7].contains("\"mode\":\"shutdown\""));
        assert_eq!(
            summary,
            ServeSummary {
                served: 2,
                errors: 6,
                shutdown: true
            }
        );
    }

    #[test]
    fn shutdown_drains_the_queue_and_ignores_later_lines() {
        let input = format!("{TRAFFIC}\n{{\"id\":8,\"op\":\"shutdown\"}}\n{TRAFFIC}\n");
        let (lines, summary) = serve(&input, &ServeOptions::default());
        assert_eq!(lines.len(), 2, "nothing after shutdown is served");
        assert!(lines[0].starts_with("{\"id\":1,\"ok\":true,"));
        assert!(lines[1].contains("\"mode\":\"shutdown\",\"served\":1,\"errors\":0"));
        assert!(summary.shutdown);
    }

    #[test]
    fn escape_handles_quotes_and_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\u{1}"), "a\\\"b\\\\c\\nd\\u0001");
    }
}
