//! Telemetry sweep: the windowed time-series of a churn-and-recover
//! run, committed as an artifact.
//!
//! One series per (network × algorithm): the 64-node 6-cube under every
//! paper tree algorithm plus the 4-ary 3-cube torus under separate
//! addressing, each driven by Poisson multicast sessions while an
//! MTBF/MTTR churn process kills and revives links and nodes during the
//! first part of the window and then stops. The run goes through
//! [`traffic::run_chaos_cube_with_telemetry`] — the flight recorder —
//! and each series commits its windowed time-series: offered/delivered
//! sessions, goodput, latency quantiles, cache hit counters, live fault
//! elements, and per-dimension head-flit blocked time, bucket by bucket.
//!
//! The artifact makes self-healing *visible*: goodput dips while faults
//! are live (sessions fail and back off) and refills after churn ends
//! as the retry tail drains — [`TelemetrySweep::check_recovery`] pins
//! exactly that shape, and CI validates the committed
//! `results/telemetry_sweep.{txt,json}` with it.
//!
//! Determinism: the time-series is a pure fold over one seeded run per
//! series, so identical configs regenerate the artifact byte-for-byte
//! at any worker count; the determinism suite pins it.

use crate::json::{self, Value};
use crate::trafficsweep::{horizon_for, run_seed};
use hcube::{Cube, Resolution, Torus, TorusRouter};
use hypercast::{Algorithm, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic::{
    ArrivalProcess, Arrivals, ChaosReport, ChaosSpec, ChurnSpec, DestPattern, Quantiles, Telemetry,
    TelemetryConfig, TrafficSpec,
};
use wormsim::{Histogram, SimParams, SimTime};

/// Sweep dimensions, churn shape, and seeding.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySweepConfig {
    /// Sessions injected per series.
    pub sessions: usize,
    /// Recurring destination groups per network pool.
    pub pool_groups: usize,
    /// Destinations per multicast.
    pub m: usize,
    /// Payload bytes per multicast.
    pub bytes: u32,
    /// Master seed; every per-series seed derives from it.
    pub seed: u64,
    /// Offered load, sessions per millisecond.
    pub rate_per_ms: f64,
    /// Time-series buckets per window.
    pub buckets: usize,
    /// Per-link MTBF while churn is active.
    pub link_mtbf_ms: f64,
    /// Mean time to repair a failed link.
    pub link_mttr_ms: f64,
    /// Per-node MTBF as a multiple of the per-link MTBF.
    pub node_mtbf_factor: f64,
    /// Mean time to repair (reboot) a failed node.
    pub node_mttr_ms: f64,
    /// Fraction of the window during which new failures may strike;
    /// the remainder is the recovery tail the refill shows up in.
    pub churn_fraction: f64,
    /// Retry policy for faulted sessions (backoffs in µs of simulated
    /// time).
    pub retry: RetryPolicy,
}

impl TelemetrySweepConfig {
    /// The committed-artifact configuration.
    #[must_use]
    pub fn full() -> TelemetrySweepConfig {
        TelemetrySweepConfig {
            sessions: 240,
            pool_groups: 8,
            m: 8,
            bytes: 4096,
            seed: 211,
            // Light load: the series shows churn dynamics, not queueing.
            rate_per_ms: 0.5,
            buckets: 24,
            link_mtbf_ms: 400.0,
            link_mttr_ms: 4.0,
            node_mtbf_factor: 4.0,
            node_mttr_ms: 6.0,
            churn_fraction: 0.5,
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: 500,
                backoff_factor: 4,
            },
        }
    }

    /// A short configuration for CI smoke runs and debug-mode tests
    /// (same schema, same code paths, far less work).
    #[must_use]
    pub fn smoke() -> TelemetrySweepConfig {
        TelemetrySweepConfig {
            sessions: 48,
            pool_groups: 4,
            bytes: 1024,
            buckets: 12,
            link_mtbf_ms: 150.0,
            ..TelemetrySweepConfig::full()
        }
    }
}

/// One time-series bucket of one series (integer counters stay exact;
/// derived rates are recomputed on parse).
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetryRow {
    /// Bucket start, ms.
    pub start_ms: f64,
    /// Sessions that arrived in this bucket.
    pub offered: u64,
    /// Delivered sessions that completed in this bucket.
    pub delivered: u64,
    /// Delivered per millisecond of bucket width.
    pub goodput_per_ms: f64,
    /// Median latency of sessions completing here, ms (NaN when none).
    pub p50_ms: f64,
    /// 95th-percentile latency, ms (NaN when none).
    pub p95_ms: f64,
    /// Tree-cache hits among lookups launched in this bucket.
    pub cache_hits: u64,
    /// Tree-cache lookups launched in this bucket.
    pub cache_lookups: u64,
    /// Fault elements down at the bucket's start.
    pub live_faults: u64,
    /// External-channel head-flit blocked time by dimension, ns.
    pub blocked_ns_per_dim: Vec<u64>,
}

/// One (network × algorithm) run: headline aggregates plus the full
/// windowed time-series.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySeries {
    /// Network name (`cube6`, `torus4x3`).
    pub network: String,
    /// Node count.
    pub nodes: usize,
    /// Tree algorithm name, or `Separate`.
    pub algorithm: String,
    /// Fraction of measured sessions fully delivered.
    pub delivery_ratio: f64,
    /// Mean delivered-session latency, ms.
    pub mean_latency_ms: f64,
    /// 95th-percentile delivered-session latency, ms.
    pub p95_ms: f64,
    /// Total simulate attempts across all sessions.
    pub attempts: u64,
    /// Sessions lost to retry exhaustion or the horizon.
    pub lost: u64,
    /// Fault/repair events in the churn timeline.
    pub fault_events: u64,
    /// Time from the last fault event to the last disrupted session's
    /// resolution, ms (`None` when nothing was disrupted).
    pub time_to_recover_ms: Option<f64>,
    /// End of the churn window, ms.
    pub churn_until_ms: f64,
    /// Observation window, ms.
    pub horizon_ms: f64,
    /// Bucket width, ms.
    pub bucket_ms: f64,
    /// The time-series, in time order.
    pub rows: Vec<TelemetryRow>,
}

/// The complete telemetry sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct TelemetrySweep {
    /// The configuration that produced it.
    pub config: TelemetrySweepConfig,
    /// All series, cube algorithms first, torus last.
    pub series: Vec<TelemetrySeries>,
}

/// What one series simulates.
enum RunTarget {
    Cube { cube: Cube, algo: Algorithm },
    Torus { torus: Torus },
}

struct RunTask {
    target: RunTarget,
    network: &'static str,
    nodes: usize,
    algorithm: String,
    pattern: DestPattern,
    seed: u64,
}

fn chaos_spec_for(cfg: &TelemetrySweepConfig, task: &RunTask) -> ChaosSpec {
    let mut t = TrafficSpec::new(
        Arrivals::new(ArrivalProcess::Poisson, cfg.rate_per_ms),
        task.pattern.clone(),
        cfg.sessions,
        task.seed,
    );
    t.bytes = cfg.bytes;
    t.horizon = horizon_for(cfg.sessions, cfg.rate_per_ms);
    t.cache_capacity = 2 * cfg.pool_groups;
    let churn = ChurnSpec {
        link_mtbf_ms: cfg.link_mtbf_ms,
        link_mttr_ms: cfg.link_mttr_ms,
        node_mtbf_ms: cfg.link_mtbf_ms * cfg.node_mtbf_factor,
        node_mttr_ms: cfg.node_mttr_ms,
        churn_until: SimTime::from_ns((t.horizon.as_ns() as f64 * cfg.churn_fraction) as u64),
    };
    ChaosSpec {
        traffic: t,
        churn,
        retry: cfg.retry,
    }
}

fn series_for(
    task: &RunTask,
    spec: &ChaosSpec,
    report: &ChaosReport,
    tel: &Telemetry,
) -> TelemetrySeries {
    let mut latency = Histogram::new();
    for s in &tel.sessions {
        if s.delivered {
            latency.observe(s.latency().as_ns());
        }
    }
    let q = Quantiles::from_latency_histogram(&latency);
    let rows = tel
        .series
        .buckets
        .iter()
        .map(|b| TelemetryRow {
            start_ms: b.start.as_ms(),
            offered: b.offered,
            delivered: b.delivered,
            goodput_per_ms: b.goodput_per_ms,
            p50_ms: b.quantiles.p50_ms,
            p95_ms: b.quantiles.p95_ms,
            cache_hits: b.cache_hits,
            cache_lookups: b.cache_lookups,
            live_faults: b.live_faults,
            blocked_ns_per_dim: b.blocked_ns_per_dim.clone(),
        })
        .collect();
    TelemetrySeries {
        network: task.network.into(),
        nodes: task.nodes,
        algorithm: task.algorithm.clone(),
        delivery_ratio: report.delivery_ratio,
        mean_latency_ms: report.latency.mean,
        p95_ms: q.p95_ms,
        attempts: tel.sessions.iter().map(|s| s.attempts.len() as u64).sum(),
        lost: report.lost,
        fault_events: report.fault_events as u64,
        time_to_recover_ms: report.time_to_recover.map(SimTime::as_ms),
        churn_until_ms: spec.churn.churn_until.as_ms(),
        horizon_ms: report.horizon.as_ms(),
        bucket_ms: tel.series.bucket_ns as f64 / 1e6,
        rows,
    }
}

fn run_task(cfg: &TelemetrySweepConfig, task: &RunTask) -> TelemetrySeries {
    let params = SimParams::ncube2(hypercast::PortModel::AllPort);
    let spec = chaos_spec_for(cfg, task);
    let tcfg = TelemetryConfig::new(cfg.buckets);
    let (report, tel) = match task.target {
        RunTarget::Cube { cube, algo } => traffic::run_chaos_cube_with_telemetry(
            &spec,
            cube,
            Resolution::HighToLow,
            algo,
            &params,
            &tcfg,
        ),
        RunTarget::Torus { torus } => traffic::run_chaos_separate_with_telemetry_on(
            &spec,
            TorusRouter::new(torus),
            &params,
            &tcfg,
        ),
    };
    series_for(task, &spec, &report, &tel)
}

/// Runs the full telemetry sweep single-threaded. Deterministic:
/// identical configs give byte-identical JSON.
#[must_use]
pub fn telemetry_sweep(cfg: &TelemetrySweepConfig) -> TelemetrySweep {
    telemetry_sweep_with_workers(cfg, 1)
}

/// [`telemetry_sweep`] with a worker pool. Every series is an
/// independent seeded run writing into its own pre-assigned slot, so
/// the result is byte-identical for any worker count.
///
/// # Panics
/// Panics if `workers == 0` or a worker thread panics.
#[must_use]
pub fn telemetry_sweep_with_workers(cfg: &TelemetrySweepConfig, workers: usize) -> TelemetrySweep {
    assert!(workers > 0, "need at least one worker");

    let cube = Cube::of(6);
    let mut pool_rng = StdRng::seed_from_u64(run_seed(cfg.seed, "cube6", "pool", 0));
    let pattern = DestPattern::uniform_pool(&mut pool_rng, &cube, cfg.pool_groups, cfg.m);
    let mut tasks: Vec<RunTask> = Algorithm::PAPER
        .iter()
        .enumerate()
        .map(|(i, &algo)| RunTask {
            target: RunTarget::Cube { cube, algo },
            network: "cube6",
            nodes: 64,
            algorithm: algo.name().into(),
            pattern: pattern.clone(),
            seed: run_seed(cfg.seed, "cube6", algo.name(), i),
        })
        .collect();
    let torus = Torus::of(4, 3);
    let mut pool_rng = StdRng::seed_from_u64(run_seed(cfg.seed, "torus4x3", "pool", 0));
    tasks.push(RunTask {
        target: RunTarget::Torus { torus },
        network: "torus4x3",
        nodes: 64,
        algorithm: "Separate".into(),
        pattern: DestPattern::uniform_pool(&mut pool_rng, &torus, cfg.pool_groups, cfg.m),
        seed: run_seed(cfg.seed, "torus4x3", "Separate", 0),
    });

    // The sharded trial driver: task-indexed merge keeps the sweep
    // worker-count invariant. The telemetry entry points allocate their
    // own engine arenas, so the per-worker scratch goes unused here.
    let series = traffic::run_trials(workers, tasks.len(), |i, _scratch| run_task(cfg, &tasks[i]));
    TelemetrySweep {
        config: cfg.clone(),
        series,
    }
}

// ----------------------------------------------------------------------
// Validation
// ----------------------------------------------------------------------

impl TelemetrySweep {
    /// Checks the self-healing shape the artifact exists to show: in
    /// every series that saw fault events, (a) bucket sums reconcile
    /// with the session count, (b) some bucket had live faults, and
    /// (c) goodput *dips* while churn is active below the best
    /// *refill* bucket after churn ends — time-to-recover made visible.
    ///
    /// # Errors
    /// A message naming the first series violating the shape.
    pub fn check_recovery(&self) -> Result<(), String> {
        for s in &self.series {
            let offered: u64 = s.rows.iter().map(|r| r.offered).sum();
            if offered != self.config.sessions as u64 {
                return Err(format!(
                    "{} {}: bucket offered sum {} != {} sessions",
                    s.network, s.algorithm, offered, self.config.sessions
                ));
            }
            if s.fault_events == 0 {
                return Err(format!(
                    "{} {}: churn produced no fault events",
                    s.network, s.algorithm
                ));
            }
            if !s.rows.iter().any(|r| r.live_faults > 0) {
                return Err(format!(
                    "{} {}: no bucket saw a live fault",
                    s.network, s.algorithm
                ));
            }
            // Dip-and-refill: the worst churn-active bucket that had
            // arrivals must undershoot the best post-churn bucket.
            let dip = s
                .rows
                .iter()
                .filter(|r| r.start_ms < s.churn_until_ms && r.offered > 0)
                .map(|r| r.goodput_per_ms)
                .fold(f64::INFINITY, f64::min);
            let refill = s
                .rows
                .iter()
                .filter(|r| r.start_ms >= s.churn_until_ms)
                .map(|r| r.goodput_per_ms)
                .fold(0.0, f64::max);
            if !(dip.is_finite() && refill > dip) {
                return Err(format!(
                    "{} {}: goodput never refilled above the churn dip (dip {dip}, refill {refill})",
                    s.network, s.algorithm
                ));
            }
        }
        Ok(())
    }
}

// ----------------------------------------------------------------------
// Serialization (first-party JSON, schema pinned by `from_json`).
// ----------------------------------------------------------------------

fn num_or_null(x: f64) -> Value {
    if x.is_finite() {
        Value::Number(x)
    } else {
        Value::Null
    }
}

fn u64s_value(xs: &[u64]) -> Value {
    Value::Array(xs.iter().map(|&x| Value::Number(x as f64)).collect())
}

impl TelemetrySweep {
    /// Serializes the sweep as pretty-printed JSON (byte-stable for a
    /// given result). Empty-bucket quantiles are `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let retry = Value::Object(vec![
            (
                "max_retries".into(),
                Value::Number(f64::from(c.retry.max_retries)),
            ),
            (
                "base_backoff_us".into(),
                Value::Number(c.retry.base_backoff as f64),
            ),
            (
                "backoff_factor".into(),
                Value::Number(c.retry.backoff_factor as f64),
            ),
        ]);
        let config = Value::Object(vec![
            ("sessions".into(), Value::Number(c.sessions as f64)),
            ("pool_groups".into(), Value::Number(c.pool_groups as f64)),
            ("m".into(), Value::Number(c.m as f64)),
            ("bytes".into(), Value::Number(f64::from(c.bytes))),
            ("seed".into(), Value::Number(c.seed as f64)),
            ("arrivals".into(), Value::String("poisson".into())),
            ("rate_per_ms".into(), Value::Number(c.rate_per_ms)),
            ("buckets".into(), Value::Number(c.buckets as f64)),
            ("link_mtbf_ms".into(), Value::Number(c.link_mtbf_ms)),
            ("link_mttr_ms".into(), Value::Number(c.link_mttr_ms)),
            ("node_mtbf_factor".into(), Value::Number(c.node_mtbf_factor)),
            ("node_mttr_ms".into(), Value::Number(c.node_mttr_ms)),
            ("churn_fraction".into(), Value::Number(c.churn_fraction)),
            ("retry".into(), retry),
        ]);
        let series = Value::Array(
            self.series
                .iter()
                .map(|s| {
                    let rows = Value::Array(
                        s.rows
                            .iter()
                            .map(|r| {
                                Value::Object(vec![
                                    ("start_ms".into(), Value::Number(r.start_ms)),
                                    ("offered".into(), Value::Number(r.offered as f64)),
                                    ("delivered".into(), Value::Number(r.delivered as f64)),
                                    ("goodput_per_ms".into(), Value::Number(r.goodput_per_ms)),
                                    ("p50_ms".into(), num_or_null(r.p50_ms)),
                                    ("p95_ms".into(), num_or_null(r.p95_ms)),
                                    ("cache_hits".into(), Value::Number(r.cache_hits as f64)),
                                    (
                                        "cache_lookups".into(),
                                        Value::Number(r.cache_lookups as f64),
                                    ),
                                    ("live_faults".into(), Value::Number(r.live_faults as f64)),
                                    (
                                        "blocked_ns_per_dim".into(),
                                        u64s_value(&r.blocked_ns_per_dim),
                                    ),
                                ])
                            })
                            .collect(),
                    );
                    Value::Object(vec![
                        ("network".into(), Value::String(s.network.clone())),
                        ("nodes".into(), Value::Number(s.nodes as f64)),
                        ("algorithm".into(), Value::String(s.algorithm.clone())),
                        ("delivery_ratio".into(), Value::Number(s.delivery_ratio)),
                        ("mean_latency_ms".into(), num_or_null(s.mean_latency_ms)),
                        ("p95_ms".into(), num_or_null(s.p95_ms)),
                        ("attempts".into(), Value::Number(s.attempts as f64)),
                        ("lost".into(), Value::Number(s.lost as f64)),
                        ("fault_events".into(), Value::Number(s.fault_events as f64)),
                        (
                            "time_to_recover_ms".into(),
                            s.time_to_recover_ms.map_or(Value::Null, Value::Number),
                        ),
                        ("churn_until_ms".into(), Value::Number(s.churn_until_ms)),
                        ("horizon_ms".into(), Value::Number(s.horizon_ms)),
                        ("bucket_ms".into(), Value::Number(s.bucket_ms)),
                        ("buckets".into(), rows),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("id".into(), Value::String("telemetry_sweep".into())),
            (
                "title".into(),
                Value::String(
                    "Windowed telemetry: goodput dip and refill across a churn-and-recover window"
                        .into(),
                ),
            ),
            ("config".into(), config),
            ("series".into(), series),
        ])
        .to_string_pretty()
    }

    /// Parses and validates a sweep artifact produced by
    /// [`TelemetrySweep::to_json`] — the schema check CI runs against
    /// the committed `results/telemetry_sweep.json`.
    ///
    /// # Errors
    /// A human-readable message naming the first missing/mistyped field.
    pub fn from_json(input: &str) -> Result<TelemetrySweep, String> {
        let v = json::parse(input).map_err(|e| format!("invalid JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field: id")?;
        if id != "telemetry_sweep" {
            return Err(format!("unexpected id {id:?}"));
        }
        let cfg = v.get("config").ok_or("missing object field: config")?;
        let get_num = |obj: &Value, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field: {key}"))
        };
        let retry_v = cfg.get("retry").ok_or("missing object field: retry")?;
        let config = TelemetrySweepConfig {
            sessions: get_num(cfg, "sessions")? as usize,
            pool_groups: get_num(cfg, "pool_groups")? as usize,
            m: get_num(cfg, "m")? as usize,
            bytes: get_num(cfg, "bytes")? as u32,
            seed: get_num(cfg, "seed")? as u64,
            rate_per_ms: get_num(cfg, "rate_per_ms")?,
            buckets: get_num(cfg, "buckets")? as usize,
            link_mtbf_ms: get_num(cfg, "link_mtbf_ms")?,
            link_mttr_ms: get_num(cfg, "link_mttr_ms")?,
            node_mtbf_factor: get_num(cfg, "node_mtbf_factor")?,
            node_mttr_ms: get_num(cfg, "node_mttr_ms")?,
            churn_fraction: get_num(cfg, "churn_fraction")?,
            retry: RetryPolicy {
                max_retries: get_num(retry_v, "max_retries")? as u32,
                base_backoff: get_num(retry_v, "base_backoff_us")? as u64,
                backoff_factor: get_num(retry_v, "backoff_factor")? as u64,
            },
        };
        let series_v = v
            .get("series")
            .and_then(Value::as_array)
            .ok_or("missing array field: series")?;
        let mut series = Vec::with_capacity(series_v.len());
        for (i, s) in series_v.iter().enumerate() {
            let ctx = |key: &str| format!("series[{i}]: missing field {key}");
            // NaN (empty-bucket quantiles) serialize as null.
            let opt_num = |obj: &Value, key: &str| -> Result<f64, String> {
                match obj.get(key) {
                    Some(Value::Null) => Ok(f64::NAN),
                    Some(x) => x
                        .as_f64()
                        .ok_or_else(|| format!("series[{i}]: non-numeric {key}")),
                    None => Err(ctx(key)),
                }
            };
            let time_to_recover_ms = match s.get("time_to_recover_ms") {
                Some(Value::Null) => None,
                Some(x) => Some(
                    x.as_f64()
                        .ok_or_else(|| format!("series[{i}]: non-numeric time_to_recover_ms"))?,
                ),
                None => return Err(ctx("time_to_recover_ms")),
            };
            let rows_v = s
                .get("buckets")
                .and_then(Value::as_array)
                .ok_or_else(|| ctx("buckets"))?;
            let mut rows = Vec::with_capacity(rows_v.len());
            for r in rows_v {
                let dims = r
                    .get("blocked_ns_per_dim")
                    .and_then(Value::as_array)
                    .ok_or_else(|| ctx("blocked_ns_per_dim"))?
                    .iter()
                    .map(|x| {
                        x.as_f64().map(|n| n as u64).ok_or_else(|| {
                            format!("series[{i}]: non-numeric blocked_ns_per_dim entry")
                        })
                    })
                    .collect::<Result<Vec<u64>, String>>()?;
                rows.push(TelemetryRow {
                    start_ms: get_num(r, "start_ms")?,
                    offered: get_num(r, "offered")? as u64,
                    delivered: get_num(r, "delivered")? as u64,
                    goodput_per_ms: get_num(r, "goodput_per_ms")?,
                    p50_ms: opt_num(r, "p50_ms")?,
                    p95_ms: opt_num(r, "p95_ms")?,
                    cache_hits: get_num(r, "cache_hits")? as u64,
                    cache_lookups: get_num(r, "cache_lookups")? as u64,
                    live_faults: get_num(r, "live_faults")? as u64,
                    blocked_ns_per_dim: dims,
                });
            }
            series.push(TelemetrySeries {
                network: s
                    .get("network")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ctx("network"))?
                    .to_string(),
                nodes: get_num(s, "nodes")? as usize,
                algorithm: s
                    .get("algorithm")
                    .and_then(Value::as_str)
                    .ok_or_else(|| ctx("algorithm"))?
                    .to_string(),
                delivery_ratio: get_num(s, "delivery_ratio")?,
                mean_latency_ms: opt_num(s, "mean_latency_ms")?,
                p95_ms: opt_num(s, "p95_ms")?,
                attempts: get_num(s, "attempts")? as u64,
                lost: get_num(s, "lost")? as u64,
                fault_events: get_num(s, "fault_events")? as u64,
                time_to_recover_ms,
                churn_until_ms: get_num(s, "churn_until_ms")?,
                horizon_ms: get_num(s, "horizon_ms")?,
                bucket_ms: get_num(s, "bucket_ms")?,
                rows,
            });
        }
        Ok(TelemetrySweep { config, series })
    }

    /// Renders the sweep as a plain-text report (the `.txt` artifact).
    #[must_use]
    pub fn to_table(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        out.push_str(
            "Windowed telemetry: goodput dip and refill across a churn-and-recover window\n",
        );
        out.push_str(&format!(
            "sessions/series = {}, pool = {} groups (m = {}), payload = {} B, seed = {}, {} /ms poisson\n",
            c.sessions, c.pool_groups, c.m, c.bytes, c.seed, c.rate_per_ms
        ));
        out.push_str(&format!(
            "churn: link MTBF = {} ms, MTTR = {} ms, node MTBF = {}x link, MTTR = {} ms, active first {:.0}% of window\n",
            c.link_mtbf_ms,
            c.link_mttr_ms,
            c.node_mtbf_factor,
            c.node_mttr_ms,
            c.churn_fraction * 100.0
        ));
        out.push_str(&format!(
            "retry: up to {} retries, backoff {} µs x{}\n",
            c.retry.max_retries, c.retry.base_backoff, c.retry.backoff_factor
        ));
        for s in &self.series {
            out.push('\n');
            let recover = match s.time_to_recover_ms {
                Some(t) => format!("{t:.3} ms"),
                None => "-".into(),
            };
            out.push_str(&format!(
                "== {} ({} nodes), {} ==\n",
                s.network, s.nodes, s.algorithm
            ));
            out.push_str(&format!(
                "deliver {:.4}, attempts {}, lost {}, events {}, recover {}, churn ends {:.1} ms, window {:.1} ms\n",
                s.delivery_ratio, s.attempts, s.lost, s.fault_events, recover, s.churn_until_ms, s.horizon_ms
            ));
            out.push_str(
                "   t ms   offered   delivered   goodput/ms   p50 ms   p95 ms   cache h/l   faults   blocked µs\n",
            );
            for r in &s.rows {
                let p50 = if r.p50_ms.is_finite() {
                    format!("{:>6.3}", r.p50_ms)
                } else {
                    "     -".into()
                };
                let p95 = if r.p95_ms.is_finite() {
                    format!("{:>6.3}", r.p95_ms)
                } else {
                    "     -".into()
                };
                let blocked_us: f64 = r.blocked_ns_per_dim.iter().sum::<u64>() as f64 / 1000.0;
                out.push_str(&format!(
                    "  {:>5.1}   {:>7}   {:>9}   {:>10.4}   {}   {}   {:>9}   {:>6}   {:>10.3}\n",
                    r.start_ms,
                    r.offered,
                    r.delivered,
                    r.goodput_per_ms,
                    p50,
                    p95,
                    format!("{}/{}", r.cache_hits, r.cache_lookups),
                    r.live_faults,
                    blocked_us,
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TelemetrySweepConfig {
        TelemetrySweepConfig {
            sessions: 20,
            pool_groups: 3,
            bytes: 512,
            buckets: 10,
            link_mtbf_ms: 100.0,
            seed: 23,
            ..TelemetrySweepConfig::full()
        }
    }

    #[test]
    fn sweep_is_deterministic_and_round_trips() {
        let cfg = tiny();
        let a = telemetry_sweep(&cfg);
        let b = telemetry_sweep(&cfg);
        assert_eq!(a.to_json(), b.to_json());

        // 4 cube algorithms + the torus baseline.
        assert_eq!(a.series.len(), 5);
        for s in &a.series {
            assert_eq!(s.rows.len(), cfg.buckets, "{}", s.network);
            assert_eq!(
                s.rows.iter().map(|r| r.offered).sum::<u64>(),
                cfg.sessions as u64
            );
        }

        let parsed = TelemetrySweep::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.to_json(), a.to_json(), "JSON round-trip");
        assert_eq!(parsed.config, a.config);
    }

    #[test]
    fn worker_count_does_not_change_the_bytes() {
        let cfg = tiny();
        let serial = telemetry_sweep_with_workers(&cfg, 1);
        let pooled = telemetry_sweep_with_workers(&cfg, 4);
        assert_eq!(serial.to_json(), pooled.to_json());
        assert_eq!(serial.to_table(), pooled.to_table());
    }

    #[test]
    fn smoke_sweep_shows_the_recovery_shape() {
        let sweep = telemetry_sweep(&TelemetrySweepConfig::smoke());
        sweep.check_recovery().expect("dip-and-refill must hold");
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(TelemetrySweep::from_json("{}").is_err());
        assert!(TelemetrySweep::from_json("[1]").is_err());
        assert!(TelemetrySweep::from_json("not json").is_err());
        let wrong_id = r#"{ "id": "chaos_sweep", "config": {}, "series": [] }"#;
        assert!(TelemetrySweep::from_json(wrong_id).is_err());
    }
}
