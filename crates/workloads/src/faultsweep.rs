//! Fault-injection sweep (robustness extension beyond the paper):
//! delivery ratio and makespan of a W-sort multicast as random links
//! fail, with and without `hypercast::repair`.
//!
//! The unrepaired tree loses exactly the subtrees cut off by the dead
//! channels (the simulator's failure cascade); the repaired tree prunes,
//! regrafts, and relays around the damage before transmission, so its
//! delivery ratio stays at 1.0 until the faults actually disconnect the
//! cube — at the cost of extra steps visible as a makespan overhead.

use crate::figure::{Figure, Series};
use hcube::{Cube, NodeId, Resolution};
use hypercast::repair::{repair, NetworkFaults};
use hypercast::{Algorithm, PortModel};
use wormsim::{simulate_multicast_with_faults, FaultPlan, SimParams};

/// Runs the sweep: `k ∈ {0, 1, 2, 4, 8, 16, 32}` random dead directed
/// links in an 8-cube, a 64-destination W-sort multicast of 4 KB, nCUBE-2
/// parameters. Returns a figure with four series: delivery ratio and
/// makespan (ms), each unrepaired and repaired.
#[must_use]
pub fn fault_sweep(trials: usize) -> Figure {
    let ks: Vec<usize> = vec![0, 1, 2, 4, 8, 16, 32];
    let cube = Cube::of(8);
    let params = SimParams::ncube2(PortModel::AllPort);
    let names = [
        "unrepaired delivery ratio",
        "repaired delivery ratio",
        "unrepaired makespan (ms)",
        "repaired makespan (ms)",
    ];
    let mut series: Vec<Series> = names
        .iter()
        .map(|name| Series {
            name: (*name).to_string(),
            xs: ks.iter().map(|&k| k as f64).collect(),
            ys: Vec::with_capacity(ks.len()),
            std: Vec::with_capacity(ks.len()),
        })
        .collect();

    for (pi, &k) in ks.iter().enumerate() {
        let mut samples: [Vec<f64>; 4] = std::array::from_fn(|_| Vec::with_capacity(trials));
        for trial in 0..trials {
            let mut rng = crate::destsets::trial_rng("fault_sweep", pi, trial);
            let dests = crate::destsets::random_dests(&mut rng, cube, NodeId(0), 64);
            let tree = Algorithm::WSort
                .build(
                    cube,
                    Resolution::HighToLow,
                    PortModel::AllPort,
                    NodeId(0),
                    &dests,
                )
                .expect("valid instance");
            // Deterministic per-(point, trial) fault plan.
            let seed = (pi as u64) * 0x9e37 + trial as u64;
            let plan = FaultPlan::random_links(cube, k, seed);

            // Unrepaired: the tree is replayed as scheduled; cut subtrees
            // are lost. Dead links alone cannot deadlock the engine.
            let raw = simulate_multicast_with_faults(&tree, &params, 4096, &plan)
                .expect("dead links fail messages, they cannot deadlock");

            // Repaired: prune + regraft + relay before transmission.
            let faults = NetworkFaults::from(&plan);
            let fixed = repair(&tree, &faults);
            let rep = simulate_multicast_with_faults(&fixed.tree, &params, 4096, &plan)
                .expect("repaired tree avoids every dead channel");

            samples[0].push(raw.delivery_ratio);
            samples[1].push(rep.delivery_ratio);
            samples[2].push(raw.makespan.as_ms());
            samples[3].push(rep.makespan.as_ms());
        }
        for (si, s) in samples.iter().enumerate() {
            let summary = crate::stats::Summary::of(s);
            series[si].ys.push(summary.mean);
            series[si].std.push(summary.std);
        }
    }
    Figure {
        id: "fault_sweep".into(),
        title: "Fault sweep: W-sort multicast vs dead links (8-cube, 64 dests, 4 KB)".into(),
        x_label: "failed directed links".into(),
        y_label: "delivery ratio / makespan (ms)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_dominates_no_repair() {
        let f = fault_sweep(2);
        let raw_ratio = &f.series[0];
        let rep_ratio = &f.series[1];
        // Healthy network: both deliver everything.
        assert_eq!(raw_ratio.ys[0], 1.0);
        assert_eq!(rep_ratio.ys[0], 1.0);
        // Repair never delivers less than no repair.
        for i in 0..raw_ratio.ys.len() {
            assert!(
                rep_ratio.ys[i] >= raw_ratio.ys[i] - 1e-12,
                "point {i}: repaired {} < unrepaired {}",
                rep_ratio.ys[i],
                raw_ratio.ys[i]
            );
        }
        // Heavy damage loses deliveries without repair...
        assert!(*raw_ratio.ys.last().unwrap() < 1.0);
        // ...but a few dozen dead links cannot disconnect an 8-cube, so
        // the repaired tree still delivers everywhere.
        assert!(rep_ratio.ys.iter().all(|&y| y == 1.0));
    }

    #[test]
    fn makespans_are_positive_and_repair_overhead_is_bounded() {
        let f = fault_sweep(2);
        let raw_mk = &f.series[2];
        let rep_mk = &f.series[3];
        assert!(rep_mk.ys.iter().all(|&y| y > 0.0));
        // No faults ⇒ repair is the identity ⇒ identical makespan.
        assert!((rep_mk.ys[0] - raw_mk.ys[0]).abs() < 1e-9);
        // Detours cost time, but not unboundedly (< 4× the broadcast-ish
        // baseline even at 32 dead links).
        assert!(*rep_mk.ys.last().unwrap() < raw_mk.ys[0] * 4.0);
    }
}
