//! The experiment behind each of the paper's evaluation figures.
//!
//! | Paper figure | Function | Cube | Metric | Trials/point (paper) |
//! |---|---|---|---|---|
//! | Figure 9  | [`fig09`] | 6-cube  | steps (avg of max) | 100 |
//! | Figure 10 | [`fig10`] | 10-cube | steps (avg of max) | 100 |
//! | Figure 11 | [`fig11_12`].0 | 5-cube  | avg delay, 4 KB | 20 |
//! | Figure 12 | [`fig11_12`].1 | 5-cube  | max delay, 4 KB | 20 |
//! | Figure 13 | [`fig13_14`].0 | 10-cube | avg delay, 4 KB | 100 |
//! | Figure 14 | [`fig13_14`].1 | 10-cube | max delay, 4 KB | 100 |
//!
//! Delay figures replay each tree through the `wormsim` engine with
//! nCUBE-2-calibrated parameters — Figures 11–12 substitute simulation
//! for the paper's hardware measurements (see DESIGN.md §4), Figures
//! 13–14 mirror the paper's own MultiSim runs.

use crate::figure::Figure;
use crate::sweep::{run_matrix, MatrixResult};
use hcube::{Cube, NodeId, Resolution};
use hypercast::{Algorithm, PortModel};
use wormsim::{simulate_multicast_with_scratch, EngineScratch, SimParams};

/// Trials per point used by the paper for the step and simulation figures.
pub const PAPER_TRIALS_STEPS: usize = 100;
/// Trials per point used by the paper for the nCUBE-2 measurements.
pub const PAPER_TRIALS_NCUBE: usize = 20;
/// Payload size used by the paper's delay figures.
pub const PAPER_BYTES: u32 = 4096;

/// Destination-set sizes for the 10-cube figures: every power of two and
/// its neighbors (to expose U-cube's staircase) plus an even spread.
#[must_use]
pub fn ten_cube_points() -> Vec<usize> {
    let mut pts = vec![1, 2, 3, 4, 6];
    for k in 3..=9u32 {
        let p = 1usize << k;
        pts.extend([p - 1, p, p + 1, p + p / 2]);
    }
    pts.push(1023);
    pts.sort_unstable();
    pts.dedup();
    pts.retain(|&m| m <= 1023);
    pts
}

fn steps_metric(
    port: PortModel,
) -> impl Fn(Cube, NodeId, &[NodeId], Algorithm, &mut EngineScratch) -> [f64; 1] + Sync {
    move |cube, src, dests, algo, _scratch| {
        let t = algo
            .build(cube, Resolution::HighToLow, port, src, dests)
            .expect("valid sweep instance");
        [f64::from(t.steps)]
    }
}

fn delay_metric(
    params: SimParams,
    bytes: u32,
) -> impl Fn(Cube, NodeId, &[NodeId], Algorithm, &mut EngineScratch) -> [f64; 2] + Sync {
    move |cube, src, dests, algo, scratch| {
        let t = algo
            .build(cube, Resolution::HighToLow, params.port_model, src, dests)
            .expect("valid sweep instance");
        let r = simulate_multicast_with_scratch(&t, &params, bytes, scratch);
        [r.avg_delay.as_ms(), r.max_delay.as_ms()]
    }
}

fn steps_figure(id: &str, title: &str, n: u8, points: &[usize], trials: usize) -> Figure {
    let m: MatrixResult<1> = run_matrix(
        id,
        Cube::of(n),
        points,
        trials,
        &Algorithm::PAPER,
        steps_metric(PortModel::AllPort),
    );
    Figure {
        id: id.to_string(),
        title: title.to_string(),
        x_label: "dests".to_string(),
        y_label: "steps (mean of max over destinations)".to_string(),
        series: m.series(0),
    }
}

fn delay_figures(
    id_avg: &str,
    id_max: &str,
    title: &str,
    n: u8,
    points: &[usize],
    trials: usize,
) -> (Figure, Figure) {
    let params = SimParams::ncube2(PortModel::AllPort);
    let m: MatrixResult<2> = run_matrix(
        id_avg, // one experiment keys both figures: same destination sets
        Cube::of(n),
        points,
        trials,
        &Algorithm::PAPER,
        delay_metric(params, PAPER_BYTES),
    );
    let avg = Figure {
        id: id_avg.to_string(),
        title: format!("{title} — average delay among destinations"),
        x_label: "dests".to_string(),
        y_label: "avg delay (ms), 4096-byte message".to_string(),
        series: m.series(0),
    };
    let max = Figure {
        id: id_max.to_string(),
        title: format!("{title} — maximum delay among destinations"),
        x_label: "dests".to_string(),
        y_label: "max delay (ms), 4096-byte message".to_string(),
        series: m.series(1),
    };
    (avg, max)
}

/// Figure 9: stepwise comparisons on a 6-cube (all-port), m = 1..63.
#[must_use]
pub fn fig09(trials: usize) -> Figure {
    let points: Vec<usize> = (1..=63).collect();
    steps_figure(
        "fig09",
        "Stepwise comparisons on a 6-cube",
        6,
        &points,
        trials,
    )
}

/// Figure 10: stepwise comparisons on a 10-cube (all-port), sampled m.
#[must_use]
pub fn fig10(trials: usize) -> Figure {
    steps_figure(
        "fig10",
        "Stepwise comparisons on a 10-cube",
        10,
        &ten_cube_points(),
        trials,
    )
}

/// Figures 11 and 12: average and maximum delay on a 5-cube with
/// 4096-byte messages (simulated stand-in for the paper's nCUBE-2
/// measurements).
#[must_use]
pub fn fig11_12(trials: usize) -> (Figure, Figure) {
    let points: Vec<usize> = (1..=31).collect();
    delay_figures(
        "fig11",
        "fig12",
        "Delay comparisons on a 5-cube (nCUBE-2 parameters)",
        5,
        &points,
        trials,
    )
}

/// Figures 13 and 14: average and maximum delay on a 10-cube with
/// 4096-byte messages (large-system simulation).
#[must_use]
pub fn fig13_14(trials: usize) -> (Figure, Figure) {
    delay_figures(
        "fig13",
        "fig14",
        "Delay comparisons on a 10-cube (simulation)",
        10,
        &ten_cube_points(),
        trials,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_by<'f>(f: &'f Figure, name: &str) -> &'f crate::figure::Series {
        f.series.iter().find(|s| s.name == name).unwrap()
    }

    #[test]
    fn fig09_shape_holds_at_low_trial_count() {
        let f = fig09(5);
        assert_eq!(f.series.len(), 4);
        assert_eq!(f.series[0].xs.len(), 63);
        let ucube = series_by(&f, "U-cube");
        let wsort = series_by(&f, "W-sort");
        // W-sort never above U-cube on average, strictly below somewhere.
        let mut strictly = false;
        for i in 0..63 {
            assert!(wsort.ys[i] <= ucube.ys[i] + 1e-9, "at m={}", i + 1);
            strictly |= wsort.ys[i] < ucube.ys[i] - 1e-9;
        }
        assert!(strictly, "W-sort must beat U-cube somewhere");
        // U-cube's staircase: one-port-optimal ⌈log₂(m+1)⌉ is exceeded or
        // met; at m=63 U-cube needs ≥ 6 steps in expectation… check the
        // envelope instead: means are within [bound, n].
        for (i, &y) in ucube.ys.iter().enumerate() {
            let m = i + 1;
            assert!(y >= f64::from(hypercast::bounds::all_port_lower_bound(6, m)));
            assert!(y <= 7.0);
        }
    }

    #[test]
    fn ten_cube_points_cover_staircase_edges() {
        let pts = ten_cube_points();
        for k in [7usize, 8, 15, 16, 31, 32, 255, 256, 511, 512, 1023] {
            assert!(pts.contains(&k), "missing {k}");
        }
        assert!(pts.windows(2).all(|w| w[0] < w[1]));
        assert!(*pts.last().unwrap() == 1023);
    }

    #[test]
    fn fig11_12_quick_run_orders_algorithms() {
        let (avg, max) = fig11_12(3);
        assert_eq!(avg.series.len(), 4);
        let u_avg = series_by(&avg, "U-cube");
        let w_avg = series_by(&avg, "W-sort");
        // At an intermediate set size (m = 20) the multiport algorithms
        // must be clearly faster than U-cube.
        assert!(w_avg.ys[19] < u_avg.ys[19]);
        let u_max = series_by(&max, "U-cube");
        let w_max = series_by(&max, "W-sort");
        assert!(w_max.ys[19] < u_max.ys[19]);
        // At full broadcast (m = 31) every algorithm builds the same
        // spanning binomial tree: identical delays.
        for s in &avg.series {
            assert!((s.ys[30] - u_avg.ys[30]).abs() < 1e-9, "{}", s.name);
        }
        // The paper's Figure 11 anomaly: U-cube's average delay for an
        // intermediate multicast exceeds its full-broadcast delay because
        // it forces multiple messages out one channel.
        assert!(u_avg.ys[19] > u_avg.ys[30]);
        // Delays are in a plausible nCUBE-2 range (single transfer ≈ 2 ms,
        // staircases of a few steps ⇒ single-digit ms).
        assert!(w_max.ys[19] > 1.0 && w_max.ys[19] < 20.0);
    }
}
