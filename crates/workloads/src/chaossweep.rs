//! Fault-churn sweep: delivery degradation and self-healing recovery
//! under open-loop load.
//!
//! For each network (64-node 6-cube, 256-node 8-cube, 64-node 4-ary
//! 3-cube torus) and each tree algorithm, the sweep injects Poisson
//! multicast sessions at a small ladder of offered loads while an
//! MTBF/MTTR failure/repair process kills and revives links and nodes
//! (per-element MTBF, so larger networks churn proportionally more).
//! Faulted sessions retry under exponential backoff through
//! `hypercast::repair`-rebuilt trees; separate addressing on the torus
//! has no tree to repair and is the recovery baseline.
//!
//! Each series walks a churn ladder from no churn (infinite MTBF, the
//! anchor every rung is compared against) to the harshest rung, and each
//! point records delivery ratio, goodput, latency, the retry-attempt
//! histogram, losses, time-to-recover, and the full tree-cache counters
//! (epoch invalidations included).
//!
//! Everything is keyed off `ChaosSweepConfig::seed`: identical configs
//! regenerate `results/chaos_sweep.{txt,json}` byte-for-byte — with or
//! without worker threads — and the determinism suite pins it.

use crate::json::{self, Value};
use crate::trafficsweep::{horizon_for, run_seed};
use hcube::{Cube, Resolution, Torus, TorusRouter};
use hypercast::{Algorithm, CacheStats, RetryPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic::{
    ArrivalProcess, Arrivals, ChaosReport, ChaosSpec, ChurnSpec, DestPattern, TrafficSpec,
};
use wormsim::{EngineScratch, SimParams, SimTime};

/// Sweep dimensions, churn ladder, and seeding.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSweepConfig {
    /// Sessions injected per grid point.
    pub sessions: usize,
    /// Recurring destination groups per network pool.
    pub pool_groups: usize,
    /// Payload bytes per multicast.
    pub bytes: u32,
    /// Master seed; every per-run seed derives from it.
    pub seed: u64,
    /// Offered loads (sessions/ms) for the 64-node cube and the torus.
    pub loads_64: Vec<f64>,
    /// Offered loads (sessions/ms) for the 256-node cube.
    pub loads_256: Vec<f64>,
    /// Per-link MTBF ladder, calm to harsh; `f64::INFINITY` is the
    /// churn-free anchor rung.
    pub link_mtbf_ladder_ms: Vec<f64>,
    /// Mean time to repair a failed link.
    pub link_mttr_ms: f64,
    /// Per-node MTBF as a multiple of the rung's per-link MTBF.
    pub node_mtbf_factor: f64,
    /// Mean time to repair (reboot) a failed node.
    pub node_mttr_ms: f64,
    /// Fraction of the observation window during which new failures may
    /// strike; the remainder is the recovery tail.
    pub churn_fraction: f64,
    /// Retry policy for faulted sessions (backoffs in µs of simulated
    /// time).
    pub retry: RetryPolicy,
}

impl ChaosSweepConfig {
    /// The committed-artifact configuration.
    #[must_use]
    pub fn full() -> ChaosSweepConfig {
        ChaosSweepConfig {
            sessions: 120,
            pool_groups: 8,
            bytes: 4096,
            seed: 137,
            // Below every network's saturation point: the sweep isolates
            // churn effects, so the churn-free anchor rung must deliver
            // everything and queueing must stay light (sessions launched
            // in different fault epochs simulate in separate waves and do
            // not contend across the epoch boundary — a fine
            // approximation only while queues are short).
            loads_64: vec![0.25, 0.75],
            loads_256: vec![0.5, 1.0],
            link_mtbf_ladder_ms: vec![f64::INFINITY, 3000.0, 1200.0, 500.0],
            link_mttr_ms: 4.0,
            node_mtbf_factor: 4.0,
            node_mttr_ms: 6.0,
            churn_fraction: 0.6,
            retry: RetryPolicy {
                max_retries: 3,
                base_backoff: 500,
                backoff_factor: 4,
            },
        }
    }

    /// A short-horizon configuration for CI smoke runs and debug-mode
    /// tests (same schema, same code paths, far less work).
    #[must_use]
    pub fn smoke() -> ChaosSweepConfig {
        ChaosSweepConfig {
            sessions: 24,
            pool_groups: 4,
            bytes: 1024,
            seed: 137,
            loads_64: vec![1.0],
            loads_256: vec![1.0],
            link_mtbf_ladder_ms: vec![f64::INFINITY, 500.0],
            ..ChaosSweepConfig::full()
        }
    }
}

/// One measured (churn rung × offered load) point of one series.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosPoint {
    /// Offered load, sessions per millisecond.
    pub offered_per_ms: f64,
    /// The rung's per-link MTBF (`f64::INFINITY` = no churn).
    pub link_mtbf_ms: f64,
    /// Fraction of measured sessions fully delivered (retries
    /// included).
    pub delivery_ratio: f64,
    /// Mean delivered-session latency in ms (all attempts included).
    pub mean_latency_ms: f64,
    /// Batch-means 95% CI half-width of the latency.
    pub ci_half_width_ms: f64,
    /// Delivered measured sessions per millisecond.
    pub goodput_per_ms: f64,
    /// `retry_histogram[k]` = sessions that made exactly `k + 1`
    /// attempts.
    pub retry_histogram: Vec<u64>,
    /// Sessions lost to retry exhaustion or a retry past the horizon.
    pub lost: u64,
    /// Sessions cut off by the horizon (terminal, never retried).
    pub window_cut: u64,
    /// Time from the last fault/repair event to the last disrupted
    /// session's resolution, in ms (`None` when there was no churn).
    pub time_to_recover_ms: Option<f64>,
    /// Fault epochs the window was partitioned into.
    pub epochs: u64,
    /// Fault/repair events in the generated timeline.
    pub fault_events: u64,
    /// Full tree-cache counters of the run (all zero for separate
    /// addressing).
    pub cache: CacheStats,
}

/// One (network × algorithm) curve over the churn × load grid.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSeries {
    /// Network name (`cube6`, `cube8`, `torus4x3`).
    pub network: String,
    /// Node count.
    pub nodes: usize,
    /// Tree algorithm name, or `Separate`.
    pub algorithm: String,
    /// Destinations per multicast.
    pub m: usize,
    /// Grid points, churn-ladder-major, load-minor.
    pub points: Vec<ChaosPoint>,
}

/// The complete chaos sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosSweep {
    /// The configuration that produced it.
    pub config: ChaosSweepConfig,
    /// All series, cubes first, torus last.
    pub series: Vec<ChaosSeries>,
}

/// What one grid point simulates.
enum RunTarget {
    Cube { cube: Cube, algo: Algorithm },
    Torus { torus: Torus },
}

/// A fully-described grid point, ready for any worker to execute.
struct RunTask {
    target: RunTarget,
    pattern: DestPattern,
    rate: f64,
    link_mtbf_ms: f64,
    seed: u64,
}

fn chaos_spec_for(cfg: &ChaosSweepConfig, task: &RunTask) -> ChaosSpec {
    let mut t = TrafficSpec::new(
        Arrivals::new(ArrivalProcess::Poisson, task.rate),
        task.pattern.clone(),
        cfg.sessions,
        task.seed,
    );
    t.bytes = cfg.bytes;
    t.horizon = horizon_for(cfg.sessions, task.rate);
    t.cache_capacity = 2 * cfg.pool_groups;
    let churn = if task.link_mtbf_ms.is_finite() {
        ChurnSpec {
            link_mtbf_ms: task.link_mtbf_ms,
            link_mttr_ms: cfg.link_mttr_ms,
            node_mtbf_ms: task.link_mtbf_ms * cfg.node_mtbf_factor,
            node_mttr_ms: cfg.node_mttr_ms,
            churn_until: SimTime::from_ns((t.horizon.as_ns() as f64 * cfg.churn_fraction) as u64),
        }
    } else {
        ChurnSpec::quiet()
    };
    ChaosSpec {
        traffic: t,
        churn,
        retry: cfg.retry,
    }
}

fn point_for(task: &RunTask, r: &ChaosReport) -> ChaosPoint {
    ChaosPoint {
        offered_per_ms: task.rate,
        link_mtbf_ms: task.link_mtbf_ms,
        delivery_ratio: r.delivery_ratio,
        mean_latency_ms: r.latency.mean,
        ci_half_width_ms: r.latency.ci_half_width,
        goodput_per_ms: r.goodput_per_ms,
        retry_histogram: r.retry_histogram.clone(),
        lost: r.lost,
        window_cut: r.window_cut,
        time_to_recover_ms: r.time_to_recover.map(SimTime::as_ms),
        epochs: r.epochs as u64,
        fault_events: r.fault_events as u64,
        cache: r.cache,
    }
}

fn run_task(cfg: &ChaosSweepConfig, task: &RunTask, scratch: &mut EngineScratch) -> ChaosPoint {
    let params = SimParams::ncube2(hypercast::PortModel::AllPort);
    let spec = chaos_spec_for(cfg, task);
    let report = match task.target {
        RunTarget::Cube { cube, algo } => traffic::run_chaos_cube_with_scratch(
            &spec,
            cube,
            Resolution::HighToLow,
            algo,
            &params,
            scratch,
        ),
        RunTarget::Torus { torus } => traffic::run_chaos_separate_on_with_scratch(
            &spec,
            TorusRouter::new(torus),
            &params,
            scratch,
        ),
    };
    point_for(task, &report)
}

/// Runs the full chaos sweep single-threaded. Deterministic: identical
/// configs give byte-identical JSON.
#[must_use]
pub fn chaos_sweep(cfg: &ChaosSweepConfig) -> ChaosSweep {
    chaos_sweep_with_workers(cfg, 1)
}

/// [`chaos_sweep`] with a worker pool. Every grid point is an
/// independent seeded run writing into its own pre-assigned slot, so
/// the result is byte-identical for any worker count — the determinism
/// suite pins 1-worker and multi-worker bytes against each other.
///
/// # Panics
/// Panics if `workers == 0` or a worker thread panics.
#[must_use]
pub fn chaos_sweep_with_workers(cfg: &ChaosSweepConfig, workers: usize) -> ChaosSweep {
    assert!(workers > 0, "need at least one worker");

    // Lay out every series and its grid tasks up front, in output
    // order; workers fill slots, never append.
    let mut tasks: Vec<RunTask> = Vec::new();
    let mut layout: Vec<(String, usize, String, usize)> = Vec::new(); // network, nodes, algorithm, m
    for (network, dim, m, loads) in [
        ("cube6", 6u8, 8usize, &cfg.loads_64),
        ("cube8", 8u8, 16usize, &cfg.loads_256),
    ] {
        let cube = Cube::of(dim);
        // One pool per network, shared across algorithms and rungs, so
        // the curves are an apples-to-apples comparison.
        let mut pool_rng = StdRng::seed_from_u64(run_seed(cfg.seed, network, "pool", 0));
        let pattern = DestPattern::uniform_pool(&mut pool_rng, &cube, cfg.pool_groups, m);
        for algo in Algorithm::PAPER {
            layout.push((network.into(), 1 << dim, algo.name().into(), m));
            for (ri, &mtbf) in cfg.link_mtbf_ladder_ms.iter().enumerate() {
                for (li, &rate) in loads.iter().enumerate() {
                    tasks.push(RunTask {
                        target: RunTarget::Cube { cube, algo },
                        pattern: pattern.clone(),
                        rate,
                        link_mtbf_ms: mtbf,
                        seed: run_seed(cfg.seed, network, algo.name(), ri * loads.len() + li),
                    });
                }
            }
        }
    }
    let torus = Torus::of(4, 3);
    let mut pool_rng = StdRng::seed_from_u64(run_seed(cfg.seed, "torus4x3", "pool", 0));
    let pattern = DestPattern::uniform_pool(&mut pool_rng, &torus, cfg.pool_groups, 8);
    layout.push(("torus4x3".into(), 64, "Separate".into(), 8));
    for (ri, &mtbf) in cfg.link_mtbf_ladder_ms.iter().enumerate() {
        for (li, &rate) in cfg.loads_64.iter().enumerate() {
            tasks.push(RunTask {
                target: RunTarget::Torus { torus },
                pattern: pattern.clone(),
                rate,
                link_mtbf_ms: mtbf,
                seed: run_seed(
                    cfg.seed,
                    "torus4x3",
                    "Separate",
                    ri * cfg.loads_64.len() + li,
                ),
            });
        }
    }

    // The sharded trial driver: per-worker scratch (reuse across runs is
    // byte-invisible), task-indexed merge, so the sweep is worker-count
    // invariant.
    let mut points = traffic::run_trials(workers, tasks.len(), |i, scratch| {
        run_task(cfg, &tasks[i], scratch)
    })
    .into_iter();
    let per_series_64 = cfg.link_mtbf_ladder_ms.len() * cfg.loads_64.len();
    let per_series_256 = cfg.link_mtbf_ladder_ms.len() * cfg.loads_256.len();
    let series = layout
        .into_iter()
        .map(|(network, nodes, algorithm, m)| {
            let n = if network == "cube8" {
                per_series_256
            } else {
                per_series_64
            };
            ChaosSeries {
                network,
                nodes,
                algorithm,
                m,
                points: points.by_ref().take(n).collect(),
            }
        })
        .collect();
    ChaosSweep {
        config: cfg.clone(),
        series,
    }
}

// ----------------------------------------------------------------------
// Serialization (first-party JSON, schema pinned by `from_json`).
// ----------------------------------------------------------------------

fn num_or_null(x: f64) -> Value {
    if x.is_finite() {
        Value::Number(x)
    } else {
        Value::Null
    }
}

fn f64s_value(xs: &[f64]) -> Value {
    Value::Array(xs.iter().map(|&x| num_or_null(x)).collect())
}

impl ChaosSweep {
    /// Serializes the sweep as pretty-printed JSON (byte-stable for a
    /// given result). Infinite MTBFs and absent recovery times are
    /// `null`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let c = &self.config;
        let retry = Value::Object(vec![
            (
                "max_retries".into(),
                Value::Number(f64::from(c.retry.max_retries)),
            ),
            (
                "base_backoff_us".into(),
                Value::Number(c.retry.base_backoff as f64),
            ),
            (
                "backoff_factor".into(),
                Value::Number(c.retry.backoff_factor as f64),
            ),
        ]);
        let config = Value::Object(vec![
            ("sessions".into(), Value::Number(c.sessions as f64)),
            ("pool_groups".into(), Value::Number(c.pool_groups as f64)),
            ("bytes".into(), Value::Number(f64::from(c.bytes))),
            ("seed".into(), Value::Number(c.seed as f64)),
            ("arrivals".into(), Value::String("poisson".into())),
            ("loads_64".into(), f64s_value(&c.loads_64)),
            ("loads_256".into(), f64s_value(&c.loads_256)),
            (
                "link_mtbf_ladder_ms".into(),
                f64s_value(&c.link_mtbf_ladder_ms),
            ),
            ("link_mttr_ms".into(), Value::Number(c.link_mttr_ms)),
            ("node_mtbf_factor".into(), Value::Number(c.node_mtbf_factor)),
            ("node_mttr_ms".into(), Value::Number(c.node_mttr_ms)),
            ("churn_fraction".into(), Value::Number(c.churn_fraction)),
            ("retry".into(), retry),
        ]);
        let series = Value::Array(
            self.series
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("network".into(), Value::String(s.network.clone())),
                        ("nodes".into(), Value::Number(s.nodes as f64)),
                        ("algorithm".into(), Value::String(s.algorithm.clone())),
                        ("m".into(), Value::Number(s.m as f64)),
                        (
                            "points".into(),
                            Value::Array(s.points.iter().map(point_to_json).collect()),
                        ),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("id".into(), Value::String("chaos_sweep".into())),
            (
                "title".into(),
                Value::String(
                    "Fault churn: delivery degradation and self-healing recovery under load".into(),
                ),
            ),
            ("config".into(), config),
            ("series".into(), series),
        ])
        .to_string_pretty()
    }

    /// Parses and validates a sweep artifact produced by
    /// [`ChaosSweep::to_json`] — the schema check CI runs against the
    /// committed `results/chaos_sweep.json`.
    ///
    /// # Errors
    /// A human-readable message naming the first missing/mistyped field.
    pub fn from_json(input: &str) -> Result<ChaosSweep, String> {
        let v = json::parse(input).map_err(|e| format!("invalid JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field: id")?;
        if id != "chaos_sweep" {
            return Err(format!("unexpected id {id:?}"));
        }
        let cfg = v.get("config").ok_or("missing object field: config")?;
        let get_num = |obj: &Value, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field: {key}"))
        };
        // `null` in a numeric position means "infinite" (MTBF ladder).
        let get_f64s = |key: &str| -> Result<Vec<f64>, String> {
            cfg.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("missing array field: {key}"))?
                .iter()
                .map(|x| match x {
                    Value::Null => Ok(f64::INFINITY),
                    _ => x
                        .as_f64()
                        .ok_or_else(|| format!("non-numeric entry in {key}")),
                })
                .collect()
        };
        let retry_v = cfg.get("retry").ok_or("missing object field: retry")?;
        let config = ChaosSweepConfig {
            sessions: get_num(cfg, "sessions")? as usize,
            pool_groups: get_num(cfg, "pool_groups")? as usize,
            bytes: get_num(cfg, "bytes")? as u32,
            seed: get_num(cfg, "seed")? as u64,
            loads_64: get_f64s("loads_64")?,
            loads_256: get_f64s("loads_256")?,
            link_mtbf_ladder_ms: get_f64s("link_mtbf_ladder_ms")?,
            link_mttr_ms: get_num(cfg, "link_mttr_ms")?,
            node_mtbf_factor: get_num(cfg, "node_mtbf_factor")?,
            node_mttr_ms: get_num(cfg, "node_mttr_ms")?,
            churn_fraction: get_num(cfg, "churn_fraction")?,
            retry: RetryPolicy {
                max_retries: get_num(retry_v, "max_retries")? as u32,
                base_backoff: get_num(retry_v, "base_backoff_us")? as u64,
                backoff_factor: get_num(retry_v, "backoff_factor")? as u64,
            },
        };
        let series_v = v
            .get("series")
            .and_then(Value::as_array)
            .ok_or("missing array field: series")?;
        let mut series = Vec::with_capacity(series_v.len());
        for (i, s) in series_v.iter().enumerate() {
            let ctx = |key: &str| format!("series[{i}]: missing field {key}");
            let network = s
                .get("network")
                .and_then(Value::as_str)
                .ok_or_else(|| ctx("network"))?
                .to_string();
            let algorithm = s
                .get("algorithm")
                .and_then(Value::as_str)
                .ok_or_else(|| ctx("algorithm"))?
                .to_string();
            let nodes = get_num(s, "nodes")? as usize;
            let m = get_num(s, "m")? as usize;
            let pts = s
                .get("points")
                .and_then(Value::as_array)
                .ok_or_else(|| ctx("points"))?;
            let points = pts
                .iter()
                .map(|p| point_from_json(p, i))
                .collect::<Result<Vec<_>, String>>()?;
            series.push(ChaosSeries {
                network,
                nodes,
                algorithm,
                m,
                points,
            });
        }
        Ok(ChaosSweep { config, series })
    }

    /// Renders the sweep as a plain-text report (the `.txt` artifact).
    #[must_use]
    pub fn to_table(&self) -> String {
        let c = &self.config;
        let mut out = String::new();
        out.push_str("Fault churn: delivery degradation and self-healing recovery under load\n");
        out.push_str(&format!(
            "sessions/point = {}, pool = {} groups, payload = {} B, seed = {}, arrivals = poisson\n",
            c.sessions, c.pool_groups, c.bytes, c.seed
        ));
        out.push_str(&format!(
            "churn: link MTTR = {} ms, node MTBF = {}x link, node MTTR = {} ms, failures in first {:.0}% of window\n",
            c.link_mttr_ms,
            c.node_mtbf_factor,
            c.node_mttr_ms,
            c.churn_fraction * 100.0
        ));
        out.push_str(&format!(
            "retry: up to {} retries, backoff {} µs x{}\n",
            c.retry.max_retries, c.retry.base_backoff, c.retry.backoff_factor
        ));
        for s in &self.series {
            out.push('\n');
            out.push_str(&format!(
                "== {} ({} nodes), {}  [m = {}] ==\n",
                s.network, s.nodes, s.algorithm, s.m
            ));
            out.push_str(
                "  mtbf ms   load/ms   deliver   goodput   latency ms   attempts 1/2/3/4   lost   cut   recover ms   events   cache h/m/e/i\n",
            );
            for p in &s.points {
                let mtbf = if p.link_mtbf_ms.is_finite() {
                    format!("{:>7.0}", p.link_mtbf_ms)
                } else {
                    "    inf".into()
                };
                let mut hist = [0u64; 4];
                for (k, &n) in p.retry_histogram.iter().enumerate() {
                    hist[k.min(3)] += n;
                }
                let recover = match p.time_to_recover_ms {
                    Some(t) => format!("{t:>10.3}"),
                    None => "         -".into(),
                };
                out.push_str(&format!(
                    "  {}   {:>7.2}   {:>7.4}   {:>7.3}   {:>10.4}   {:>16}   {:>4}   {:>3}   {}   {:>6}   {}/{}/{}/{}\n",
                    mtbf,
                    p.offered_per_ms,
                    p.delivery_ratio,
                    p.goodput_per_ms,
                    p.mean_latency_ms,
                    format!("{}/{}/{}/{}", hist[0], hist[1], hist[2], hist[3]),
                    p.lost,
                    p.window_cut,
                    recover,
                    p.fault_events,
                    p.cache.hits,
                    p.cache.misses,
                    p.cache.evictions,
                    p.cache.invalidations,
                ));
            }
        }
        out
    }
}

fn point_to_json(p: &ChaosPoint) -> Value {
    Value::Object(vec![
        ("offered_per_ms".into(), Value::Number(p.offered_per_ms)),
        ("link_mtbf_ms".into(), num_or_null(p.link_mtbf_ms)),
        ("delivery_ratio".into(), Value::Number(p.delivery_ratio)),
        ("mean_latency_ms".into(), num_or_null(p.mean_latency_ms)),
        ("ci_half_width_ms".into(), num_or_null(p.ci_half_width_ms)),
        ("goodput_per_ms".into(), Value::Number(p.goodput_per_ms)),
        (
            "retry_histogram".into(),
            Value::Array(
                p.retry_histogram
                    .iter()
                    .map(|&n| Value::Number(n as f64))
                    .collect(),
            ),
        ),
        ("lost".into(), Value::Number(p.lost as f64)),
        ("window_cut".into(), Value::Number(p.window_cut as f64)),
        (
            "time_to_recover_ms".into(),
            p.time_to_recover_ms.map_or(Value::Null, Value::Number),
        ),
        ("epochs".into(), Value::Number(p.epochs as f64)),
        ("fault_events".into(), Value::Number(p.fault_events as f64)),
        ("cache_hits".into(), Value::Number(p.cache.hits as f64)),
        ("cache_misses".into(), Value::Number(p.cache.misses as f64)),
        (
            "cache_evictions".into(),
            Value::Number(p.cache.evictions as f64),
        ),
        (
            "cache_invalidations".into(),
            Value::Number(p.cache.invalidations as f64),
        ),
    ])
}

fn point_from_json(p: &Value, series_idx: usize) -> Result<ChaosPoint, String> {
    let get_num = |key: &str| -> Result<f64, String> {
        p.get(key)
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("series[{series_idx}]: missing numeric point field {key}"))
    };
    // `null` restores to NaN (latency of a zero-delivery point) or
    // infinity (the churn-free rung's MTBF), keyed by field.
    let opt_num = |key: &str, absent: f64| -> Result<f64, String> {
        match p.get(key) {
            Some(Value::Null) => Ok(absent),
            Some(x) => x
                .as_f64()
                .ok_or_else(|| format!("series[{series_idx}]: non-numeric {key}")),
            None => Err(format!("series[{series_idx}]: missing point field {key}")),
        }
    };
    let retry_histogram = p
        .get("retry_histogram")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("series[{series_idx}]: missing array field retry_histogram"))?
        .iter()
        .map(|x| {
            x.as_f64()
                .map(|n| n as u64)
                .ok_or_else(|| format!("series[{series_idx}]: non-numeric retry_histogram entry"))
        })
        .collect::<Result<Vec<u64>, String>>()?;
    let time_to_recover_ms = match p.get("time_to_recover_ms") {
        Some(Value::Null) => None,
        Some(x) => Some(
            x.as_f64()
                .ok_or_else(|| format!("series[{series_idx}]: non-numeric time_to_recover_ms"))?,
        ),
        None => {
            return Err(format!(
                "series[{series_idx}]: missing point field time_to_recover_ms"
            ))
        }
    };
    Ok(ChaosPoint {
        offered_per_ms: get_num("offered_per_ms")?,
        link_mtbf_ms: opt_num("link_mtbf_ms", f64::INFINITY)?,
        delivery_ratio: get_num("delivery_ratio")?,
        mean_latency_ms: opt_num("mean_latency_ms", f64::NAN)?,
        ci_half_width_ms: opt_num("ci_half_width_ms", f64::NAN)?,
        goodput_per_ms: get_num("goodput_per_ms")?,
        retry_histogram,
        lost: get_num("lost")? as u64,
        window_cut: get_num("window_cut")? as u64,
        time_to_recover_ms,
        epochs: get_num("epochs")? as u64,
        fault_events: get_num("fault_events")? as u64,
        cache: CacheStats {
            hits: get_num("cache_hits")? as u64,
            misses: get_num("cache_misses")? as u64,
            evictions: get_num("cache_evictions")? as u64,
            invalidations: get_num("cache_invalidations")? as u64,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChaosSweepConfig {
        ChaosSweepConfig {
            sessions: 12,
            pool_groups: 3,
            bytes: 512,
            seed: 11,
            loads_64: vec![2.0],
            loads_256: vec![4.0],
            link_mtbf_ladder_ms: vec![f64::INFINITY, 400.0],
            ..ChaosSweepConfig::full()
        }
    }

    #[test]
    fn sweep_is_deterministic_and_round_trips() {
        let cfg = tiny();
        let a = chaos_sweep(&cfg);
        let b = chaos_sweep(&cfg);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "sweep must regenerate bit-identically"
        );

        // 2 cubes x 4 algorithms + 1 torus series; 2 rungs x 1 load.
        assert_eq!(a.series.len(), 9);
        for s in &a.series {
            assert_eq!(s.points.len(), 2, "{}", s.network);
        }

        let parsed = ChaosSweep::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.to_json(), a.to_json(), "JSON round-trip");
        assert_eq!(parsed.config, a.config);
    }

    #[test]
    fn worker_count_does_not_change_the_bytes() {
        let cfg = tiny();
        let serial = chaos_sweep_with_workers(&cfg, 1);
        let pooled = chaos_sweep_with_workers(&cfg, 4);
        assert_eq!(serial.to_json(), pooled.to_json());
        assert_eq!(serial.to_table(), pooled.to_table());
    }

    #[test]
    fn quiet_rung_anchors_and_churny_rungs_degrade() {
        let sweep = chaos_sweep(&tiny());
        let mut disrupted_anywhere = false;
        for s in &sweep.series {
            for p in &s.points {
                if p.link_mtbf_ms.is_finite() {
                    assert!(
                        p.fault_events > 0,
                        "{}: churn rung saw no events",
                        s.network
                    );
                    assert!(p.epochs > 1);
                    assert!(p.delivery_ratio > 0.0, "no cliff to zero");
                    disrupted_anywhere |= p.retry_histogram.len() > 1 || p.lost > 0;
                } else {
                    assert_eq!(p.fault_events, 0);
                    assert_eq!(p.epochs, 1);
                    assert_eq!(p.delivery_ratio, 1.0, "{}: quiet anchor", s.network);
                    assert_eq!(p.lost, 0);
                    assert_eq!(p.time_to_recover_ms, None);
                }
            }
        }
        assert!(
            disrupted_anywhere,
            "harsh rung must disrupt at least one session somewhere"
        );
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(ChaosSweep::from_json("{}").is_err());
        assert!(ChaosSweep::from_json("[1]").is_err());
        assert!(ChaosSweep::from_json("not json").is_err());
        let wrong_id = r#"{ "id": "traffic_sweep", "config": {}, "series": [] }"#;
        assert!(ChaosSweep::from_json(wrong_id).is_err());
    }
}
