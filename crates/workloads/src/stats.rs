//! Small summary-statistics helpers for experiment aggregation.

/// Summary of a sample: count, mean, standard deviation, extrema.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 when `n < 2`).
    pub std: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample with Welford's single-pass algorithm.
    ///
    /// Returns a zeroed summary for an empty sample.
    #[must_use]
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let mut mean = 0.0f64;
        let mut m2 = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for (i, &x) in samples.iter().enumerate() {
            let delta = x - mean;
            mean += delta / (i as f64 + 1.0);
            m2 += delta * (x - mean);
            min = min.min(x);
            max = max.max(x);
        }
        let n = samples.len();
        let std = if n >= 2 {
            (m2 / (n as f64 - 1.0)).sqrt()
        } else {
            0.0
        };
        Summary {
            n,
            mean,
            std,
            min,
            max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[4.2]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 4.2);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.min, 4.2);
        assert_eq!(s.max, 4.2);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std of this classic set: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let s = Summary::of(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((s.mean - mean).abs() < 1e-9);
        assert!((s.std - var.sqrt()).abs() < 1e-9);
    }
}
