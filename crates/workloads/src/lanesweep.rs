//! Lane sweep: how many virtual lanes per link does it take for naive
//! concurrent multicasts to match W-sort's zero-contention row?
//!
//! The paper gets contention-freedom by construction (W-sort, Theorem
//! 6) — but only *within one multicast*. Collective data distribution
//! runs several multicasts at once, from independent sources that share
//! no schedule, and trees are routinely replayed on topologies they
//! were not designed for (a torus wrap, a west-first mesh). The lane
//! tentpole asks the dual question: how much lane redundancy buys back
//! zero blocking when the traffic is naive in either sense?
//!
//! Every trial draws `sources` concurrent multicast sessions on the
//! shared 64-node address space (distinct sources, paired destination
//! draws across algorithms), builds one tree per session per paper
//! algorithm on the 6-cube, and replays the *merged dependency
//! workload* at a ladder of lane counts on four routed networks:
//!
//! * `cube6` — E-cube routing, `lanes ∈ {1, 2, 4, 8}` (one lane class);
//! * `torus4x3` — dimension-ordered routing with dateline lane classes,
//!   `lanes ∈ {2, 4, 8}` (two classes of `m = lanes/2`);
//! * `mesh8x8` — the west-first [`MinimalAdaptive`] router;
//! * `mesh8x8-xy` — deterministic XY on the same mesh, the baseline
//!   that shows what adaptivity (rather than raw lane count) buys.
//!
//! For the cube series the sweep also reports the *analytic* lane
//! demand: [`hypercast::contention::min_lanes_for_concurrent`], the
//! maximum per-arc clique of the combined conflict graph (Definition-4
//! witnesses within a tree, unconditional conflicts across trees) — the
//! worst-case simultaneous demand a perfectly adaptive lane allocator
//! would have to absorb.
//!
//! Everything is keyed off `LaneSweepConfig::seed`; identical configs
//! regenerate `results/lane_sweep.{txt,json}` byte for byte.

use crate::json::{self, Value};
use crate::trafficsweep::run_seed;
use hcube::{Cube, Mesh, MeshXY, MinimalAdaptive, NodeId, Resolution, Torus, TorusRouter};
use hypercast::contention::min_lanes_for_concurrent;
use hypercast::{Algorithm, MulticastTree, PortModel};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wormsim::{multicast_workload, simulate_on_with_scratch, DepMessage, EngineScratch, SimParams};

/// Sweep dimensions and seeding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LaneSweepConfig {
    /// Destination draws per (network, algorithm, lane) cell.
    pub trials: usize,
    /// Concurrent multicast sessions per trial (distinct sources).
    pub sources: usize,
    /// Destinations per multicast.
    pub m: usize,
    /// Payload bytes per unicast.
    pub bytes: u32,
    /// Master seed; every trial's source/destination draw derives from it.
    pub seed: u64,
    /// Lane ladder for single-class routers (cube, mesh). The torus
    /// runs the even rungs only (its lanes come in dateline pairs).
    pub lane_ladder: Vec<u8>,
}

impl LaneSweepConfig {
    /// The committed-artifact configuration.
    #[must_use]
    pub fn full() -> LaneSweepConfig {
        LaneSweepConfig {
            trials: 6,
            sources: 4,
            m: 16,
            bytes: 4096,
            seed: 17,
            lane_ladder: vec![1, 2, 4, 8],
        }
    }

    /// A short configuration for CI smoke runs (same schema, same code
    /// paths, less work).
    #[must_use]
    pub fn smoke() -> LaneSweepConfig {
        LaneSweepConfig {
            trials: 2,
            sources: 3,
            m: 8,
            bytes: 1024,
            seed: 17,
            lane_ladder: vec![1, 2, 4],
        }
    }
}

/// One measured rung of one series: a lane count and the mean (over
/// trials) contention profile the replayed trees saw there.
#[derive(Clone, Debug, PartialEq)]
pub struct LanePoint {
    /// Virtual lanes per physical link in this rung.
    pub lanes: u8,
    /// Mean contention blocks per run (port waits excluded).
    pub blocks: f64,
    /// Mean total blocked time (ms) per run.
    pub blocked_ms: f64,
    /// Mean makespan (ms) per run.
    pub makespan_ms: f64,
    /// Mean per-lane link utilization, lane-index order (`len == lanes`).
    pub lane_utilization: Vec<f64>,
}

/// One (network, algorithm) contention-vs-lanes curve.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneSeries {
    /// Network label (`cube6`, `torus4x3`, `mesh8x8`, `mesh8x8-xy`).
    pub network: String,
    /// Tree algorithm whose workload is replayed.
    pub algorithm: String,
    /// Mean analytic lane demand of each trial's concurrent tree set
    /// ([`min_lanes_for_concurrent`]), cube series only — the
    /// Definition-4 analysis speaks E-cube paths.
    pub analytic_min_lanes: Option<f64>,
    /// The measured ladder, ascending lane count.
    pub points: Vec<LanePoint>,
    /// Smallest rung whose mean block count is exactly zero — the lane
    /// count at which the naive tree matches W-sort's contention-free
    /// row. `None`: the ladder never got there.
    pub lanes_to_zero_contention: Option<u8>,
}

/// The complete sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct LaneSweep {
    /// The configuration that produced it.
    pub config: LaneSweepConfig,
    /// All series: cube, torus, adaptive mesh, XY mesh — four
    /// algorithms each.
    pub series: Vec<LaneSeries>,
}

/// The four replay networks, in series order.
const NETWORKS: [&str; 4] = ["cube6", "torus4x3", "mesh8x8", "mesh8x8-xy"];

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Per-trial measurement: one simulated run, reduced to the artifact's
/// scalars plus the per-lane utilization vector.
struct Sample {
    blocks: f64,
    blocked_ms: f64,
    makespan_ms: f64,
    lane_utilization: Vec<f64>,
}

fn sample<R: hcube::Router>(
    router: R,
    params: &SimParams,
    workload: &[DepMessage],
    scratch: &mut EngineScratch,
) -> Sample {
    let run = simulate_on_with_scratch(router, params, workload, scratch);
    debug_assert_eq!(run.delivered_count(), workload.len());
    Sample {
        blocks: run.stats.blocks as f64,
        blocked_ms: run.stats.blocked_time.as_ms(),
        makespan_ms: run.stats.makespan.as_ms(),
        lane_utilization: run.stats.lane_utilization(),
    }
}

/// Lane rungs a network actually runs: the torus needs an even lane
/// count (two dateline classes), everyone else takes the ladder as-is.
fn rungs_for(network: &str, ladder: &[u8]) -> Vec<u8> {
    if network == "torus4x3" {
        ladder.iter().copied().filter(|l| l % 2 == 0).collect()
    } else {
        ladder.to_vec()
    }
}

/// Runs the full sweep for `cfg`. Deterministic: identical configs give
/// byte-identical JSON. One [`EngineScratch`] serves every run.
#[must_use]
pub fn lane_sweep(cfg: &LaneSweepConfig) -> LaneSweep {
    let params = SimParams::ncube2(PortModel::AllPort);
    let cube = Cube::of(6);
    let torus = Torus::of(4, 3);
    let mesh = Mesh::of(8, 8);
    let mut scratch = EngineScratch::new();
    let mut series: Vec<LaneSeries> = Vec::new();

    for network in NETWORKS {
        for algo in Algorithm::PAPER {
            let rungs = rungs_for(network, &cfg.lane_ladder);
            // Trees and workloads are drawn per trial and shared across
            // rungs, so a rung ladder is a controlled comparison. The
            // seed depends only on the trial (not the algorithm or
            // network), so every cell replays the same sessions.
            let mut workloads: Vec<Vec<DepMessage>> = Vec::with_capacity(cfg.trials);
            let mut analytic: Vec<f64> = Vec::with_capacity(cfg.trials);
            for trial in 0..cfg.trials {
                let mut rng =
                    StdRng::seed_from_u64(run_seed(cfg.seed, "lane_sweep", "sessions", trial));
                // Distinct concurrent sources (node 0 reserved out of the
                // draw), each with its own destination set.
                let srcs = crate::destsets::random_dests(&mut rng, cube, NodeId(0), cfg.sources);
                let trees: Vec<MulticastTree> = srcs
                    .iter()
                    .map(|&src| {
                        let dests = crate::destsets::random_dests(&mut rng, cube, src, cfg.m);
                        algo.build(cube, Resolution::HighToLow, PortModel::AllPort, src, &dests)
                            .expect("valid multicast instance")
                    })
                    .collect();
                analytic.push(f64::from(min_lanes_for_concurrent(&trees)));
                // Merge the sessions into one workload; dependency
                // indices are tree-local, so offset each batch.
                let mut merged: Vec<DepMessage> = Vec::new();
                for tree in &trees {
                    let base = merged.len();
                    merged.extend(multicast_workload(tree, cfg.bytes).into_iter().map(
                        |mut msg| {
                            for d in &mut msg.deps {
                                *d += base;
                            }
                            msg
                        },
                    ));
                }
                workloads.push(merged);
            }
            let points: Vec<LanePoint> = rungs
                .iter()
                .map(|&lanes| {
                    let samples: Vec<Sample> = workloads
                        .iter()
                        .map(|w| match network {
                            "cube6" => sample(
                                hcube::Ecube::with_lanes(cube, Resolution::HighToLow, lanes),
                                &params,
                                w,
                                &mut scratch,
                            ),
                            "torus4x3" => sample(
                                TorusRouter::with_lane_multiplier(torus, lanes / 2),
                                &params,
                                w,
                                &mut scratch,
                            ),
                            "mesh8x8" => sample(
                                MinimalAdaptive::with_lanes(mesh, lanes),
                                &params,
                                w,
                                &mut scratch,
                            ),
                            "mesh8x8-xy" => {
                                sample(MeshXY::with_lanes(mesh, lanes), &params, w, &mut scratch)
                            }
                            _ => unreachable!("unknown network {network}"),
                        })
                        .collect();
                    let lane_utilization = (0..lanes as usize)
                        .map(|l| {
                            mean(
                                &samples
                                    .iter()
                                    .map(|s| s.lane_utilization[l])
                                    .collect::<Vec<_>>(),
                            )
                        })
                        .collect();
                    LanePoint {
                        lanes,
                        blocks: mean(&samples.iter().map(|s| s.blocks).collect::<Vec<_>>()),
                        blocked_ms: mean(&samples.iter().map(|s| s.blocked_ms).collect::<Vec<_>>()),
                        makespan_ms: mean(
                            &samples.iter().map(|s| s.makespan_ms).collect::<Vec<_>>(),
                        ),
                        lane_utilization,
                    }
                })
                .collect();
            let lanes_to_zero_contention = points.iter().find(|p| p.blocks == 0.0).map(|p| p.lanes);
            series.push(LaneSeries {
                network: network.into(),
                algorithm: algo.name().into(),
                analytic_min_lanes: (network == "cube6").then(|| mean(&analytic)),
                points,
                lanes_to_zero_contention,
            });
        }
    }

    LaneSweep {
        config: cfg.clone(),
        series,
    }
}

// ----------------------------------------------------------------------
// Serialization (first-party JSON, schema pinned by `from_json`).
// ----------------------------------------------------------------------

impl LaneSweep {
    /// Serializes the sweep as pretty-printed JSON (byte-stable for a
    /// given result).
    #[must_use]
    pub fn to_json(&self) -> String {
        let config = Value::Object(vec![
            ("trials".into(), Value::Number(self.config.trials as f64)),
            ("sources".into(), Value::Number(self.config.sources as f64)),
            ("m".into(), Value::Number(self.config.m as f64)),
            ("bytes".into(), Value::Number(f64::from(self.config.bytes))),
            ("seed".into(), Value::Number(self.config.seed as f64)),
            (
                "lane_ladder".into(),
                Value::Array(
                    self.config
                        .lane_ladder
                        .iter()
                        .map(|&l| Value::Number(f64::from(l)))
                        .collect(),
                ),
            ),
        ]);
        let series = Value::Array(
            self.series
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("network".into(), Value::String(s.network.clone())),
                        ("algorithm".into(), Value::String(s.algorithm.clone())),
                        (
                            "analytic_min_lanes".into(),
                            s.analytic_min_lanes.map_or(Value::Null, Value::Number),
                        ),
                        (
                            "lanes_to_zero_contention".into(),
                            s.lanes_to_zero_contention
                                .map_or(Value::Null, |l| Value::Number(f64::from(l))),
                        ),
                        (
                            "points".into(),
                            Value::Array(
                                s.points
                                    .iter()
                                    .map(|p| {
                                        Value::Object(vec![
                                            ("lanes".into(), Value::Number(f64::from(p.lanes))),
                                            ("blocks".into(), Value::Number(p.blocks)),
                                            ("blocked_ms".into(), Value::Number(p.blocked_ms)),
                                            ("makespan_ms".into(), Value::Number(p.makespan_ms)),
                                            (
                                                "lane_utilization".into(),
                                                Value::Array(
                                                    p.lane_utilization
                                                        .iter()
                                                        .map(|&u| Value::Number(u))
                                                        .collect(),
                                                ),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("id".into(), Value::String("lane_sweep".into())),
            (
                "title".into(),
                Value::String(
                    "Virtual lanes vs concurrent-multicast contention (64-node networks)".into(),
                ),
            ),
            ("config".into(), config),
            ("series".into(), series),
        ])
        .to_string_pretty()
    }

    /// Parses and validates a sweep artifact produced by
    /// [`LaneSweep::to_json`] — the schema check CI runs against the
    /// committed `results/lane_sweep.json`.
    ///
    /// # Errors
    /// A human-readable message naming the first missing/mistyped field.
    pub fn from_json(input: &str) -> Result<LaneSweep, String> {
        let v = json::parse(input).map_err(|e| format!("invalid JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field: id")?;
        if id != "lane_sweep" {
            return Err(format!("unexpected id {id:?}"));
        }
        let cfg = v.get("config").ok_or("missing object field: config")?;
        let get_num = |obj: &Value, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field: {key}"))
        };
        let lane_ladder = cfg
            .get("lane_ladder")
            .and_then(Value::as_array)
            .ok_or("missing array field: lane_ladder")?
            .iter()
            .map(|x| {
                x.as_f64()
                    .map(|l| l as u8)
                    .ok_or_else(|| "non-numeric lane in lane_ladder".to_string())
            })
            .collect::<Result<Vec<u8>, String>>()?;
        let config = LaneSweepConfig {
            trials: get_num(cfg, "trials")? as usize,
            sources: get_num(cfg, "sources")? as usize,
            m: get_num(cfg, "m")? as usize,
            bytes: get_num(cfg, "bytes")? as u32,
            seed: get_num(cfg, "seed")? as u64,
            lane_ladder,
        };
        let series_v = v
            .get("series")
            .and_then(Value::as_array)
            .ok_or("missing array field: series")?;
        let mut series = Vec::with_capacity(series_v.len());
        for (i, s) in series_v.iter().enumerate() {
            let ctx = |key: &str| format!("series[{i}]: missing field {key}");
            let network = s
                .get("network")
                .and_then(Value::as_str)
                .ok_or_else(|| ctx("network"))?
                .to_string();
            let algorithm = s
                .get("algorithm")
                .and_then(Value::as_str)
                .ok_or_else(|| ctx("algorithm"))?
                .to_string();
            let analytic_min_lanes = match s.get("analytic_min_lanes") {
                Some(Value::Null) | None => None,
                Some(x) => Some(
                    x.as_f64()
                        .ok_or_else(|| format!("series[{i}]: non-numeric analytic_min_lanes"))?,
                ),
            };
            let lanes_to_zero_contention = match s.get("lanes_to_zero_contention") {
                Some(Value::Null) | None => None,
                Some(x) => Some(
                    x.as_f64()
                        .ok_or_else(|| format!("series[{i}]: non-numeric lanes_to_zero"))?
                        as u8,
                ),
            };
            let pts = s
                .get("points")
                .and_then(Value::as_array)
                .ok_or_else(|| ctx("points"))?;
            let points = pts
                .iter()
                .map(|p| {
                    let lanes = get_num(p, "lanes")? as u8;
                    let util = p
                        .get("lane_utilization")
                        .and_then(Value::as_array)
                        .ok_or_else(|| format!("series[{i}]: missing lane_utilization"))?
                        .iter()
                        .map(|x| {
                            x.as_f64()
                                .ok_or_else(|| format!("series[{i}]: non-numeric lane utilization"))
                        })
                        .collect::<Result<Vec<f64>, String>>()?;
                    if util.len() != lanes as usize {
                        return Err(format!(
                            "series[{i}]: lane_utilization has {} entries for {} lanes",
                            util.len(),
                            lanes
                        ));
                    }
                    Ok(LanePoint {
                        lanes,
                        blocks: get_num(p, "blocks")?,
                        blocked_ms: get_num(p, "blocked_ms")?,
                        makespan_ms: get_num(p, "makespan_ms")?,
                        lane_utilization: util,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            series.push(LaneSeries {
                network,
                algorithm,
                analytic_min_lanes,
                points,
                lanes_to_zero_contention,
            });
        }
        Ok(LaneSweep { config, series })
    }

    /// Renders the sweep as a plain-text report (the `.txt` artifact).
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Virtual lanes vs concurrent-multicast contention (64-node networks)\n");
        out.push_str(&format!(
            "trials/cell = {}, {} concurrent sessions, m = {} destinations, payload = {} B, \
             seed = {}, ladder = {:?}\n",
            self.config.trials,
            self.config.sources,
            self.config.m,
            self.config.bytes,
            self.config.seed,
            self.config.lane_ladder
        ));
        for s in &self.series {
            out.push('\n');
            out.push_str(&format!("== {} · {} ==\n", s.network, s.algorithm));
            if let Some(a) = s.analytic_min_lanes {
                out.push_str(&format!(
                    "  analytic lane demand (max per-arc clique, mean of trials): {a:.2}\n"
                ));
            }
            out.push_str("  lanes   blocks   blocked ms   makespan ms   per-lane utilization\n");
            for p in &s.points {
                let util = p
                    .lane_utilization
                    .iter()
                    .map(|u| format!("{u:.3}"))
                    .collect::<Vec<_>>()
                    .join(" ");
                out.push_str(&format!(
                    "  {:>5}   {:>6.1}   {:>10.4}   {:>11.4}   [{util}]\n",
                    p.lanes, p.blocks, p.blocked_ms, p.makespan_ms
                ));
            }
            match s.lanes_to_zero_contention {
                Some(l) => out.push_str(&format!("  zero contention reached at {l} lane(s)\n")),
                None => out.push_str("  contention persists through the whole ladder\n"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LaneSweepConfig {
        LaneSweepConfig {
            trials: 2,
            sources: 3,
            m: 8,
            bytes: 512,
            seed: 5,
            lane_ladder: vec![1, 2, 4],
        }
    }

    #[test]
    fn sweep_is_deterministic_and_round_trips() {
        let a = lane_sweep(&tiny());
        let b = lane_sweep(&tiny());
        assert_eq!(a.to_json(), b.to_json(), "must regenerate bit-identically");
        assert_eq!(a.series.len(), 16, "4 networks x 4 algorithms");
        let parsed = LaneSweep::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.to_json(), a.to_json(), "JSON round-trip");
        assert_eq!(parsed, a);
    }

    #[test]
    fn single_session_wsort_is_contention_free_at_one_lane() {
        // Theorem 6 survives the lane machinery: with one session, the
        // W-sort cube row blocks exactly zero on a single lane and the
        // analytic bound agrees.
        let mut cfg = tiny();
        cfg.sources = 1;
        let sweep = lane_sweep(&cfg);
        let wsort = sweep
            .series
            .iter()
            .find(|s| s.network == "cube6" && s.algorithm == Algorithm::WSort.name())
            .unwrap();
        assert_eq!(wsort.points[0].lanes, 1);
        assert_eq!(
            wsort.points[0].blocks, 0.0,
            "Theorem 6: W-sort all-port is contention-free on one lane"
        );
        assert_eq!(wsort.lanes_to_zero_contention, Some(1));
        assert_eq!(wsort.analytic_min_lanes, Some(1.0));
    }

    #[test]
    fn concurrent_sessions_actually_contend_on_the_cube() {
        // With several independent sources the single-lane cube rows
        // must show real blocking — otherwise the ladder measures
        // nothing — and the analytic bound must ask for more than one
        // lane.
        let sweep = lane_sweep(&tiny());
        let cube: Vec<_> = sweep
            .series
            .iter()
            .filter(|s| s.network == "cube6")
            .collect();
        assert!(
            cube.iter().any(|s| s.points[0].blocks > 0.0),
            "no cube series blocked at one lane"
        );
        assert!(
            cube.iter().all(|s| s.analytic_min_lanes.unwrap() > 1.0),
            "cross-session conflicts must raise the analytic bound"
        );
    }

    #[test]
    fn the_top_rung_never_blocks_more_than_the_bottom() {
        let sweep = lane_sweep(&tiny());
        for s in &sweep.series {
            let first = s.points.first().unwrap();
            let last = s.points.last().unwrap();
            assert!(
                last.blocks <= first.blocks,
                "{} · {}: {} lanes blocked more than {}",
                s.network,
                s.algorithm,
                last.lanes,
                first.lanes
            );
        }
    }

    #[test]
    fn torus_runs_even_rungs_only() {
        let sweep = lane_sweep(&tiny());
        for s in sweep.series.iter().filter(|s| s.network == "torus4x3") {
            let lanes: Vec<u8> = s.points.iter().map(|p| p.lanes).collect();
            assert_eq!(lanes, vec![2, 4], "{}", s.algorithm);
        }
    }

    #[test]
    fn utilization_vectors_match_lane_counts() {
        let sweep = lane_sweep(&tiny());
        for s in &sweep.series {
            for p in &s.points {
                assert_eq!(p.lane_utilization.len(), p.lanes as usize);
                assert!(p.lane_utilization.iter().all(|&u| (0.0..=1.0).contains(&u)));
            }
        }
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(LaneSweep::from_json("{}").is_err());
        assert!(LaneSweep::from_json("not json").is_err());
        let wrong_id = r#"{ "id": "traffic_sweep", "config": {}, "series": [] }"#;
        assert!(LaneSweep::from_json(wrong_id).is_err());
    }
}
