//! Contention heatmap: *measured* per-dimension blocked time per
//! algorithm, the in-loop counterpart of the paper's step-count
//! comparison.
//!
//! The paper's contention theory (Definitions 3–4, Theorem 3) predicts
//! *where* worms block: U-cube on an all-port cube funnels its subtree
//! forwards through the same dimension-ordered channels, while W-sort is
//! contention-free by construction (Theorem 6). The step-count figures
//! only show the consequence (delay); this table shows the cause — the
//! exact time worms spent blocked on each dimension's channels, recorded
//! by the engine's in-loop [`wormsim::EventRecorder`] rather than
//! reconstructed after the fact.
//!
//! The heatmap charges **all** blocked time to the dimension of the
//! channel being waited for, including hop-0 episodes (a worm waiting
//! at its own source for an outgoing channel a sibling send still
//! holds). For a single multicast at nCUBE-2 parameters that hop-0
//! component *is* the measurable contention: startup serialization
//! spaces worms out enough that deeper blocking only appears under
//! concurrent operations, while U-cube's dimension-ordered funneling
//! piles same-dimension sends onto one source channel — the exact
//! effect Theorem 3 prices and W-sort's weighted ordering removes.
//!
//! Two mesh series extend the comparison off the hypercube: the same
//! payload separately addressed to 32 random nodes of an 8×8 mesh (64
//! nodes, matching the cube) under deterministic XY routing and under
//! the west-first minimal-adaptive router. Separate addressing fires
//! every unicast at once from one source, so the X/Y rows show how much
//! of the source-funnel contention adaptivity can dodge when the first
//! hop has a choice of dimension.

use crate::figure::{Figure, Series};
use hcube::{Cube, Ecube, Mesh, MeshXY, MinimalAdaptive, NodeId, Resolution, Router};
use hypercast::{Algorithm, PortModel};
use wormsim::network::ChannelMap;
use wormsim::{
    multicast_workload, simulate_observed_on, DepMessage, EventRecorder, SimParams, SimTime,
};

/// Cube dimension of the heatmap experiment (64 nodes, as Figure 11).
const N: u8 = 6;
/// Destinations per trial (half the cube, randomly placed).
const DESTS: usize = 32;
/// Payload bytes per multicast.
const BYTES: u32 = 4096;

/// Runs the contention heatmap: for each of the paper's four algorithms
/// (U-cube, Maxport, Combine, W-sort), multicast a 4 KB payload from
/// node 0 to 32 random destinations of a 6-cube (all-port nCUBE-2
/// parameters) and record the **exact** blocked time on each
/// dimension's external channels with an in-loop [`EventRecorder`].
///
/// Returns a figure with one series per algorithm: `xs` are dimension
/// indices `0..6`, `ys` the mean blocked time (ms) charged to that
/// dimension across `trials` seeded destination draws (the same draws
/// for every algorithm — a paired comparison). Hop-0 blocking is
/// included (see the module docs). W-sort's row is all zeros:
/// Theorem 6's contention-freedom, measured rather than assumed.
///
/// Two further series (`Mesh-XY`, `Mesh-adaptive`) measure the same
/// blocked-time breakdown for separate addressing on an 8×8 mesh under
/// deterministic XY and west-first minimal-adaptive routing; their `xs`
/// are the mesh's two dimensions (0 = X, 1 = Y), and the two series
/// share destination draws with each other (but not with the cube — a
/// different topology has different node numbering).
#[must_use]
pub fn contention_heatmap(trials: usize) -> Figure {
    let cube = Cube::of(N);
    let resolution = Resolution::HighToLow;
    let params = SimParams::ncube2(PortModel::AllPort);
    let map = ChannelMap::new(Ecube::new(cube, resolution));

    let mut series = Vec::with_capacity(Algorithm::PAPER.len());
    for &algo in &Algorithm::PAPER {
        // blocked_ms[d][trial]: contention blocked time on dimension d.
        let mut blocked_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); N as usize];
        for trial in 0..trials {
            // Point index 0: one experimental point per algorithm; the
            // destination draw depends only on the trial, so every
            // algorithm sees the same destination sets.
            let mut rng = crate::destsets::trial_rng("contention_heatmap", 0, trial);
            let dests = crate::destsets::random_dests(&mut rng, cube, NodeId(0), DESTS);
            let tree = algo
                .build(cube, resolution, PortModel::AllPort, NodeId(0), &dests)
                .expect("valid multicast input");
            let workload = multicast_workload(&tree, BYTES);
            let mut rec = EventRecorder::new();
            let _run =
                simulate_observed_on(Ecube::new(cube, resolution), &params, &workload, &mut rec);
            let mut per_dim = vec![0u64; N as usize];
            for ch in 0..map.externals() {
                per_dim[map.dim_of(ch) as usize] += rec.blocked_ns(ch);
            }
            for (d, &ns) in per_dim.iter().enumerate() {
                blocked_ms[d].push(ns as f64 / 1_000_000.0);
            }
        }
        let mut ys = Vec::with_capacity(N as usize);
        let mut std = Vec::with_capacity(N as usize);
        for samples in &blocked_ms {
            let s = crate::stats::Summary::of(samples);
            ys.push(s.mean);
            std.push(s.std);
        }
        series.push(Series {
            name: algo.name().to_string(),
            xs: (0..N).map(f64::from).collect(),
            ys,
            std,
        });
    }
    // Mesh extension: the same payload separately addressed on an 8x8
    // mesh, deterministic XY vs west-first minimal-adaptive.
    let mesh = Mesh::of(8, 8);
    series.push(mesh_series(
        "Mesh-XY",
        MeshXY::new(mesh),
        &mesh,
        &params,
        trials,
    ));
    series.push(mesh_series(
        "Mesh-adaptive",
        MinimalAdaptive::new(mesh),
        &mesh,
        &params,
        trials,
    ));

    Figure {
        id: "contention_heatmap".into(),
        title: format!(
            "Measured channel contention per dimension ({N}-cube multicast vs 8x8-mesh separate \
             addressing, all-port, {DESTS} dests, 4 KB)"
        ),
        x_label: "dimension".into(),
        y_label: "blocked time (ms)".into(),
        series,
    }
}

/// One mesh series: per-dimension blocked time of separate addressing
/// (all unicasts launched at once from node 0) under `router`, averaged
/// over the same seeded destination draws for every router.
fn mesh_series<R: Router + Copy>(
    name: &str,
    router: R,
    mesh: &Mesh,
    params: &SimParams,
    trials: usize,
) -> Series {
    let map = ChannelMap::new(router);
    let dims = map.dimensions() as usize;
    let mut blocked_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); dims];
    for trial in 0..trials {
        // Point index 1 keeps the mesh draws distinct from the cube's
        // (same node ids would land on different coordinates anyway);
        // both mesh routers see identical destination sets per trial.
        let mut rng = crate::destsets::trial_rng("contention_heatmap", 1, trial);
        let dests = crate::destsets::random_dests_on(&mut rng, mesh, NodeId(0), DESTS);
        let workload: Vec<DepMessage> = dests
            .iter()
            .map(|&dst| DepMessage {
                src: NodeId(0),
                dst,
                bytes: BYTES,
                deps: Vec::new(),
                min_start: SimTime::ZERO,
            })
            .collect();
        let mut rec = EventRecorder::new();
        let _run = simulate_observed_on(router, params, &workload, &mut rec);
        let mut per_dim = vec![0u64; dims];
        for ch in 0..map.externals() {
            per_dim[map.dim_of(ch) as usize] += rec.blocked_ns(ch);
        }
        for (d, &ns) in per_dim.iter().enumerate() {
            blocked_ms[d].push(ns as f64 / 1_000_000.0);
        }
    }
    let mut ys = Vec::with_capacity(dims);
    let mut std = Vec::with_capacity(dims);
    for samples in &blocked_ms {
        let s = crate::stats::Summary::of(samples);
        ys.push(s.mean);
        std.push(s.std);
    }
    Series {
        name: name.to_string(),
        xs: (0..dims).map(|d| d as f64).collect(),
        ys,
        std,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_is_deterministic() {
        let a = contention_heatmap(2).to_json();
        let b = contention_heatmap(2).to_json();
        assert_eq!(a, b, "same trials must regenerate bit-identically");
    }

    #[test]
    fn wsort_row_is_zero_and_ucube_contends() {
        let f = contention_heatmap(3);
        let row = |name: &str| {
            f.series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        let wsort_total: f64 = row("W-sort").ys.iter().sum();
        assert_eq!(wsort_total, 0.0, "Theorem 6: W-sort is contention-free");
        let ucube_total: f64 = row("U-cube").ys.iter().sum();
        assert!(
            ucube_total > 0.0,
            "all-port U-cube should show measured contention"
        );
    }

    #[test]
    fn every_series_covers_all_dimensions() {
        let f = contention_heatmap(1);
        assert_eq!(f.series.len(), Algorithm::PAPER.len() + 2);
        for s in &f.series {
            let dims = if s.name.starts_with("Mesh") {
                2
            } else {
                N as usize
            };
            assert_eq!(s.xs.len(), dims, "series {}", s.name);
            assert_eq!(s.ys.len(), dims, "series {}", s.name);
        }
    }

    #[test]
    fn mesh_series_contend_and_pair_their_draws() {
        let f = contention_heatmap(3);
        let row = |name: &str| {
            f.series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        let xy: f64 = row("Mesh-XY").ys.iter().sum();
        let adaptive: f64 = row("Mesh-adaptive").ys.iter().sum();
        // 32 unicasts fired at once from one mesh node must fight over
        // the source's four ports under either router.
        assert!(xy > 0.0, "XY separate addressing should contend");
        assert!(
            adaptive > 0.0,
            "adaptive separate addressing should contend"
        );
    }
}
