//! Contention heatmap: *measured* per-dimension blocked time per
//! algorithm, the in-loop counterpart of the paper's step-count
//! comparison.
//!
//! The paper's contention theory (Definitions 3–4, Theorem 3) predicts
//! *where* worms block: U-cube on an all-port cube funnels its subtree
//! forwards through the same dimension-ordered channels, while W-sort is
//! contention-free by construction (Theorem 6). The step-count figures
//! only show the consequence (delay); this table shows the cause — the
//! exact time worms spent blocked on each dimension's channels, recorded
//! by the engine's in-loop [`wormsim::EventRecorder`] rather than
//! reconstructed after the fact.
//!
//! The heatmap charges **all** blocked time to the dimension of the
//! channel being waited for, including hop-0 episodes (a worm waiting
//! at its own source for an outgoing channel a sibling send still
//! holds). For a single multicast at nCUBE-2 parameters that hop-0
//! component *is* the measurable contention: startup serialization
//! spaces worms out enough that deeper blocking only appears under
//! concurrent operations, while U-cube's dimension-ordered funneling
//! piles same-dimension sends onto one source channel — the exact
//! effect Theorem 3 prices and W-sort's weighted ordering removes.

use crate::figure::{Figure, Series};
use hcube::{Cube, Ecube, NodeId, Resolution};
use hypercast::{Algorithm, PortModel};
use wormsim::network::ChannelMap;
use wormsim::{multicast_workload, simulate_observed_on, EventRecorder, SimParams};

/// Cube dimension of the heatmap experiment (64 nodes, as Figure 11).
const N: u8 = 6;
/// Destinations per trial (half the cube, randomly placed).
const DESTS: usize = 32;
/// Payload bytes per multicast.
const BYTES: u32 = 4096;

/// Runs the contention heatmap: for each of the paper's four algorithms
/// (U-cube, Maxport, Combine, W-sort), multicast a 4 KB payload from
/// node 0 to 32 random destinations of a 6-cube (all-port nCUBE-2
/// parameters) and record the **exact** blocked time on each
/// dimension's external channels with an in-loop [`EventRecorder`].
///
/// Returns a figure with one series per algorithm: `xs` are dimension
/// indices `0..6`, `ys` the mean blocked time (ms) charged to that
/// dimension across `trials` seeded destination draws (the same draws
/// for every algorithm — a paired comparison). Hop-0 blocking is
/// included (see the module docs). W-sort's row is all zeros:
/// Theorem 6's contention-freedom, measured rather than assumed.
#[must_use]
pub fn contention_heatmap(trials: usize) -> Figure {
    let cube = Cube::of(N);
    let resolution = Resolution::HighToLow;
    let params = SimParams::ncube2(PortModel::AllPort);
    let map = ChannelMap::new(Ecube::new(cube, resolution));

    let mut series = Vec::with_capacity(Algorithm::PAPER.len());
    for &algo in &Algorithm::PAPER {
        // blocked_ms[d][trial]: contention blocked time on dimension d.
        let mut blocked_ms: Vec<Vec<f64>> = vec![Vec::with_capacity(trials); N as usize];
        for trial in 0..trials {
            // Point index 0: one experimental point per algorithm; the
            // destination draw depends only on the trial, so every
            // algorithm sees the same destination sets.
            let mut rng = crate::destsets::trial_rng("contention_heatmap", 0, trial);
            let dests = crate::destsets::random_dests(&mut rng, cube, NodeId(0), DESTS);
            let tree = algo
                .build(cube, resolution, PortModel::AllPort, NodeId(0), &dests)
                .expect("valid multicast input");
            let workload = multicast_workload(&tree, BYTES);
            let mut rec = EventRecorder::new();
            let _run =
                simulate_observed_on(Ecube::new(cube, resolution), &params, &workload, &mut rec);
            let mut per_dim = vec![0u64; N as usize];
            for ch in 0..map.externals() {
                per_dim[map.dim_of(ch) as usize] += rec.blocked_ns(ch);
            }
            for (d, &ns) in per_dim.iter().enumerate() {
                blocked_ms[d].push(ns as f64 / 1_000_000.0);
            }
        }
        let mut ys = Vec::with_capacity(N as usize);
        let mut std = Vec::with_capacity(N as usize);
        for samples in &blocked_ms {
            let s = crate::stats::Summary::of(samples);
            ys.push(s.mean);
            std.push(s.std);
        }
        series.push(Series {
            name: algo.name().to_string(),
            xs: (0..N).map(f64::from).collect(),
            ys,
            std,
        });
    }
    Figure {
        id: "contention_heatmap".into(),
        title: format!(
            "Measured channel contention per dimension ({N}-cube, all-port, {DESTS} dests, 4 KB)"
        ),
        x_label: "dimension".into(),
        y_label: "blocked time (ms)".into(),
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_is_deterministic() {
        let a = contention_heatmap(2).to_json();
        let b = contention_heatmap(2).to_json();
        assert_eq!(a, b, "same trials must regenerate bit-identically");
    }

    #[test]
    fn wsort_row_is_zero_and_ucube_contends() {
        let f = contention_heatmap(3);
        let row = |name: &str| {
            f.series
                .iter()
                .find(|s| s.name == name)
                .unwrap_or_else(|| panic!("missing series {name}"))
        };
        let wsort_total: f64 = row("W-sort").ys.iter().sum();
        assert_eq!(wsort_total, 0.0, "Theorem 6: W-sort is contention-free");
        let ucube_total: f64 = row("U-cube").ys.iter().sum();
        assert!(
            ucube_total > 0.0,
            "all-port U-cube should show measured contention"
        );
    }

    #[test]
    fn every_series_covers_all_dimensions() {
        let f = contention_heatmap(1);
        assert_eq!(f.series.len(), 4);
        for s in &f.series {
            assert_eq!(s.xs.len(), N as usize);
            assert_eq!(s.ys.len(), N as usize);
        }
    }
}
