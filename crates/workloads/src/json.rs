//! Minimal first-party JSON: a [`Value`] tree, a recursive-descent
//! parser, and a pretty printer.
//!
//! The build environment is offline, so the workspace carries no
//! `serde`/`serde_json` dependency. The figure and tree artifacts this
//! repo emits are small and flat, and the subset implemented here —
//! null, booleans, finite numbers, strings, arrays, objects — covers
//! them completely. Objects preserve insertion order.

use std::fmt;
use std::str::FromStr;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`, like `serde_json`'s default).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a [`Value::String`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a [`Value::Number`].
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(x) => Some(*x),
            _ => None,
        }
    }

    /// The array payload, if this is a [`Value::Array`].
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object member lookup (`None` for missing keys or non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline-free
    /// top level, matching the style of `serde_json::to_string_pretty`.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// [`Value::to_string_pretty`] that **fails fast** on non-finite
    /// numbers instead of writing `null`. Artifact emitters use this so
    /// a NaN produced upstream errors at emit time (with the path to the
    /// poisoned field) rather than surfacing later as a confusing
    /// `--check` schema failure; the lenient generic writer keeps its
    /// `null` convention.
    ///
    /// # Errors
    /// [`EmitError`] naming the first non-finite number, depth-first.
    pub fn to_string_pretty_strict(&self) -> Result<String, EmitError> {
        self.check_finite("")?;
        Ok(self.to_string_pretty())
    }

    fn check_finite(&self, path: &str) -> Result<(), EmitError> {
        match self {
            Value::Number(x) if !x.is_finite() => Err(EmitError {
                path: if path.is_empty() {
                    "/".to_string()
                } else {
                    path.to_string()
                },
                value: *x,
            }),
            Value::Array(items) => items
                .iter()
                .enumerate()
                .try_for_each(|(i, v)| v.check_finite(&format!("{path}/{i}"))),
            Value::Object(members) => members
                .iter()
                .try_for_each(|(k, v)| v.check_finite(&format!("{path}/{k}"))),
            _ => Ok(()),
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(x) => write_number(out, *x),
            Value::String(s) => write_string(out, s),
            Value::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Writes `x` so that parsing the text recovers the exact same `f64`
/// (Rust's float formatter emits the shortest round-tripping decimal).
/// Non-finite values have no JSON representation and serialize as
/// `null`, mirroring the common lenient convention.
fn write_number(out: &mut String, x: f64) {
    use std::fmt::Write as _;
    if x.is_finite() {
        let _ = write!(out, "{x}");
        // Integral floats print without a fraction ("3"); that is valid
        // JSON and parses back to the same f64, so leave it be.
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// `json["key"]` — missing keys yield [`Value::Null`], like `serde_json`.
impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// `json[i]` — out-of-range indices yield [`Value::Null`].
impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl From<f64> for Value {
    fn from(x: f64) -> Value {
        Value::Number(x)
    }
}

impl From<u32> for Value {
    fn from(x: u32) -> Value {
        Value::Number(f64::from(x))
    }
}

impl From<Vec<Value>> for Value {
    fn from(items: Vec<Value>) -> Value {
        Value::Array(items)
    }
}

/// A strict-emission error: a non-finite number reached the serializer.
#[derive(Clone, Debug, PartialEq)]
pub struct EmitError {
    /// Slash-separated path to the offending number (e.g.
    /// `/rows/3/makespan_ms`; `/` for a bare top-level number).
    pub path: String,
    /// The offending value (NaN or ±infinity).
    pub value: f64,
}

impl fmt::Display for EmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot serialize non-finite number {} at {}",
            self.value, self.path
        )
    }
}

impl std::error::Error for EmitError {}

/// A JSON parse error with a byte offset into the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
/// Returns a [`ParseError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after value"));
    }
    Ok(v)
}

impl FromStr for Value {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Value, ParseError> {
        parse(s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = match code {
                                // A high surrogate must be followed by a
                                // low one; the pair combines into one
                                // supplementary-plane scalar.
                                0xD800..=0xDBFF => {
                                    if self.peek() != Some(b'\\') {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 1;
                                    if self.peek() != Some(b'u') {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    self.pos += 1;
                                    let low = self.hex4()?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(self.err("unpaired high surrogate"));
                                    }
                                    let scalar = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(scalar)
                                        .expect("surrogate pairs combine to a scalar")
                                }
                                0xDC00..=0xDFFF => return Err(self.err("unpaired low surrogate")),
                                _ => char::from_u32(code).expect("non-surrogate BMP code point"),
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self
                        .bytes
                        .get(self.pos)
                        .is_some_and(|&b| (b & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }

    /// Four hex digits of a `\u` escape.
    fn hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|h| std::str::from_utf8(h).ok())
            .ok_or_else(|| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError {
                offset: start,
                message: "invalid number".into(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in ["null", "true", "false", "0", "-17", "3.25", "1e3", "\"hi\""] {
            let v = parse(src).unwrap();
            let again = parse(&v.to_string_pretty()).unwrap();
            assert_eq!(v, again, "{src}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let src = r#"{"id": "fig09", "series": [{"name": "W-sort", "ys": [1, 2.5, 3]}], "n": 10}"#;
        let v = parse(src).unwrap();
        assert_eq!(v["id"], "fig09");
        assert_eq!(v["series"][0]["name"], "W-sort");
        assert_eq!(v["series"][0]["ys"][1], 2.5);
        assert_eq!(v["n"], 10.0);
        assert_eq!(v["missing"], Value::Null);
        let again = parse(&v.to_string_pretty()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn float_round_trip_is_exact() {
        let xs = [0.1, 1.0 / 3.0, f64::MAX, 5e-324, 123456.789, -0.0];
        let arr = Value::Array(xs.iter().map(|&x| Value::Number(x)).collect());
        let back = parse(&arr.to_string_pretty()).unwrap();
        let back = back.as_array().unwrap();
        for (i, &x) in xs.iter().enumerate() {
            let y = back[i].as_f64().unwrap();
            assert!(y == x || (y == 0.0 && x == 0.0), "{x} -> {y}");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t unicode é∆";
        let v = Value::String(s.to_string());
        assert_eq!(parse(&v.to_string_pretty()).unwrap(), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("true false").is_err());
        assert!(parse("{'single': 1}").is_err());
    }

    #[test]
    fn from_str_impl_works() {
        let v: Value = "[1, 2, 3]".parse().unwrap();
        assert_eq!(v[2], 3.0);
        assert_eq!(v[9], Value::Null);
    }

    #[test]
    fn surrogate_pairs_combine() {
        // U+1F600 GRINNING FACE as its UTF-16 escape pair.
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v, Value::String("😀".to_string()));
        // Mixed with BMP escapes and raw text.
        let v = parse(r#""ok 😀 café""#).unwrap();
        assert_eq!(v, Value::String("ok 😀 café".to_string()));
    }

    #[test]
    fn non_bmp_strings_round_trip() {
        // The writer emits non-BMP scalars raw; the parser must accept
        // both the raw and the escaped spelling and agree.
        let v = Value::String("astral 😀𝄞".to_string());
        let text = v.to_string_pretty();
        assert_eq!(parse(&text).unwrap(), v);
        assert_eq!(parse(r#""astral 😀𝄞""#).unwrap(), v);
    }

    #[test]
    fn lone_surrogates_are_rejected() {
        // Lone high, terminated string.
        assert!(parse(r#""\ud83d""#).is_err());
        // Lone high followed by ordinary text.
        assert!(parse(r#""\ud83d oops""#).is_err());
        // High followed by a non-surrogate escape.
        assert!(parse(r#""\ud83dA""#).is_err());
        // Lone low surrogate.
        assert!(parse(r#""\ude00""#).is_err());
        // Two high surrogates in a row.
        assert!(parse(r#""\ud83d\ud83d""#).is_err());
    }

    #[test]
    fn strict_emitter_rejects_non_finite_numbers() {
        let poisoned = Value::Object(vec![(
            "rows".to_string(),
            Value::Array(vec![Value::Object(vec![
                ("makespan_ms".to_string(), Value::Number(1.5)),
                ("avg_delay_ms".to_string(), Value::Number(f64::NAN)),
            ])]),
        )]);
        let err = poisoned.to_string_pretty_strict().unwrap_err();
        assert_eq!(err.path, "/rows/0/avg_delay_ms");
        assert!(err.value.is_nan());
        // The lenient writer keeps its `null` convention.
        assert!(poisoned.to_string_pretty().contains("null"));
    }

    #[test]
    fn strict_emitter_matches_the_lenient_one_on_finite_trees() {
        let v: Value = r#"{"a": [1, 2.5, {"b": -3}], "s": "x"}"#.parse().unwrap();
        assert_eq!(v.to_string_pretty_strict().unwrap(), v.to_string_pretty());
    }
}
