//! Latency-vs-offered-load sweep: the open-loop traffic experiment.
//!
//! For each network (64-node 6-cube, 256-node 8-cube, 64-node 4-ary
//! 3-cube torus) and each tree algorithm, the sweep injects Poisson
//! multicast sessions at a ladder of offered loads and measures
//! steady-state session latency (batch-means CI), completion ratio,
//! throughput, and tree-cache hit rate — then runs the saturation
//! detector over the ladder. Destination sets come from a finite pool
//! of recurring groups (drawn once per network, shared by every
//! algorithm on that network), which is both the realistic workload
//! shape and what exercises the tree cache.
//!
//! Everything is keyed off `SweepConfig::seed`: identical configs
//! regenerate `results/traffic_sweep.{txt,json}` byte-for-byte, and the
//! determinism suite pins it.

use crate::json::{self, Value};
use hcube::{Cube, Resolution, Torus, TorusRouter};
use hypercast::{Algorithm, CacheStats};
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic::{saturation_point, ArrivalProcess, Arrivals, DestPattern, LoadPoint, TrafficSpec};
use wormsim::{EngineScratch, SimParams, SimTime};

/// Latency divergence factor that declares saturation (mean latency
/// above `3×` the lowest-load latency).
pub const SATURATION_LATENCY_FACTOR: f64 = 3.0;
/// Completion-ratio floor below which a load point counts as saturated.
pub const SATURATION_MIN_COMPLETION: f64 = 0.95;

/// Sweep dimensions and seeding.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepConfig {
    /// Sessions injected per load point.
    pub sessions: usize,
    /// Recurring destination groups per network pool.
    pub pool_groups: usize,
    /// Payload bytes per multicast.
    pub bytes: u32,
    /// Master seed; every per-run seed derives from it.
    pub seed: u64,
    /// Offered loads (sessions/ms) for the 64-node cube and the torus.
    pub loads_64: Vec<f64>,
    /// Offered loads (sessions/ms) for the 256-node cube.
    pub loads_256: Vec<f64>,
}

impl SweepConfig {
    /// The committed-artifact configuration.
    #[must_use]
    pub fn full() -> SweepConfig {
        SweepConfig {
            sessions: 240,
            pool_groups: 12,
            bytes: 4096,
            seed: 93,
            loads_64: vec![0.5, 1.0, 2.0, 4.0, 8.0],
            loads_256: vec![1.0, 2.0, 4.0, 8.0, 16.0],
        }
    }

    /// A short-horizon configuration for CI smoke runs and debug-mode
    /// tests (same schema, same code paths, far less work).
    #[must_use]
    pub fn smoke() -> SweepConfig {
        SweepConfig {
            sessions: 30,
            pool_groups: 4,
            bytes: 1024,
            seed: 93,
            loads_64: vec![1.0, 4.0, 16.0],
            loads_256: vec![2.0, 8.0, 32.0],
        }
    }
}

/// One measured load point of one series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SweepPoint {
    /// Offered load, sessions per millisecond.
    pub offered_per_ms: f64,
    /// Mean session latency (ms) among completed measured sessions.
    pub mean_latency_ms: f64,
    /// Batch-means 95% CI half-width (ms); NaN with < 2 batches.
    pub ci_half_width_ms: f64,
    /// Fraction of measured sessions completing inside the window.
    pub completion_ratio: f64,
    /// Completed sessions per millisecond of measurement span.
    pub throughput_per_ms: f64,
    /// Tree-cache hit rate of the run (0 for separate addressing).
    pub cache_hit_rate: f64,
    /// Full tree-cache counters of the run
    /// (hits/misses/evictions/invalidations; all zero for separate
    /// addressing).
    pub cache: CacheStats,
}

/// One (network, algorithm) latency-vs-load curve.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepSeries {
    /// Network label (`cube6`, `cube8`, `torus4x3`).
    pub network: String,
    /// Node count of the network.
    pub nodes: usize,
    /// Algorithm label (`W-sort`, …, or `Separate` on the torus).
    pub algorithm: String,
    /// Destinations per session.
    pub m: usize,
    /// The measured ladder, in ascending offered load.
    pub points: Vec<SweepPoint>,
    /// Saturation load detected over the ladder (None: never saturated).
    pub saturation_per_ms: Option<f64>,
}

/// The complete sweep result.
#[derive(Clone, Debug, PartialEq)]
pub struct TrafficSweep {
    /// The configuration that produced it.
    pub config: SweepConfig,
    /// All series, cubes first, torus last.
    pub series: Vec<SweepSeries>,
}

/// Stable FNV-1a seed derivation for one run of the sweep.
pub(crate) fn run_seed(master: u64, network: &str, algorithm: &str, point: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ master;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    };
    for b in network.bytes() {
        eat(b);
    }
    for b in algorithm.bytes() {
        eat(b);
    }
    for b in (point as u64).to_le_bytes() {
        eat(b);
    }
    h
}

/// Observation window sized to the arrival schedule plus drain slack.
pub(crate) fn horizon_for(sessions: usize, rate_per_ms: f64) -> SimTime {
    SimTime::from_ms((sessions as f64 / rate_per_ms * 1.25 + 30.0) as u64)
}

fn spec_for(cfg: &SweepConfig, pattern: &DestPattern, rate: f64, seed: u64) -> TrafficSpec {
    let mut spec = TrafficSpec::new(
        Arrivals::new(ArrivalProcess::Poisson, rate),
        pattern.clone(),
        cfg.sessions,
        seed,
    );
    spec.bytes = cfg.bytes;
    spec.horizon = horizon_for(cfg.sessions, rate);
    spec.cache_capacity = 2 * cfg.pool_groups;
    spec
}

fn detect(points: &[SweepPoint]) -> Option<f64> {
    let lps: Vec<LoadPoint> = points
        .iter()
        .map(|p| LoadPoint {
            offered: p.offered_per_ms,
            mean_latency_ms: p.mean_latency_ms,
            completion_ratio: p.completion_ratio,
        })
        .collect();
    saturation_point(&lps, SATURATION_LATENCY_FACTOR, SATURATION_MIN_COMPLETION)
}

/// Runs the full sweep for `cfg`. Deterministic: identical configs give
/// structurally identical results (and byte-identical JSON).
///
/// The whole sweep shares one [`EngineScratch`]: every load point of
/// every series replays into the same arenas, and recurring pool
/// sessions resolve their routes from the scratch's memo (the memo
/// restamps itself at each network boundary). Scratch reuse is
/// byte-invisible — the determinism suite pins the artifact bytes.
#[must_use]
pub fn traffic_sweep(cfg: &SweepConfig) -> TrafficSweep {
    let params = SimParams::ncube2(hypercast::PortModel::AllPort);
    let mut series: Vec<SweepSeries> = Vec::new();
    let mut scratch = EngineScratch::new();

    // --- hypercubes: all four paper algorithms over the pool -----------
    for (network, dim, m, loads) in [
        ("cube6", 6u8, 8usize, &cfg.loads_64),
        ("cube8", 8u8, 16usize, &cfg.loads_256),
    ] {
        let cube = Cube::of(dim);
        // One pool per network, shared across algorithms so the curves
        // are an apples-to-apples comparison.
        let mut pool_rng = StdRng::seed_from_u64(run_seed(cfg.seed, network, "pool", 0));
        let pattern = DestPattern::uniform_pool(&mut pool_rng, &cube, cfg.pool_groups, m);
        for algo in Algorithm::PAPER {
            let points: Vec<SweepPoint> = loads
                .iter()
                .enumerate()
                .map(|(pi, &rate)| {
                    let spec = spec_for(
                        cfg,
                        &pattern,
                        rate,
                        run_seed(cfg.seed, network, algo.name(), pi),
                    );
                    let r = traffic::run_cube_with_scratch(
                        &spec,
                        cube,
                        Resolution::HighToLow,
                        algo,
                        &params,
                        &mut scratch,
                    );
                    SweepPoint {
                        offered_per_ms: rate,
                        mean_latency_ms: r.latency.mean,
                        ci_half_width_ms: r.latency.ci_half_width,
                        completion_ratio: r.completion_ratio,
                        throughput_per_ms: r.throughput_per_ms,
                        cache_hit_rate: r.cache.hit_rate(),
                        cache: r.cache,
                    }
                })
                .collect();
            series.push(SweepSeries {
                network: network.into(),
                nodes: 1 << dim,
                algorithm: algo.name().into(),
                m,
                saturation_per_ms: detect(&points),
                points,
            });
        }
    }

    // --- torus: separate addressing (the tree algorithms are
    // hypercube-specific) ----------------------------------------------
    let torus = Torus::of(4, 3);
    let mut pool_rng = StdRng::seed_from_u64(run_seed(cfg.seed, "torus4x3", "pool", 0));
    let pattern = DestPattern::uniform_pool(&mut pool_rng, &torus, cfg.pool_groups, 8);
    let points: Vec<SweepPoint> = cfg
        .loads_64
        .iter()
        .enumerate()
        .map(|(pi, &rate)| {
            let spec = spec_for(
                cfg,
                &pattern,
                rate,
                run_seed(cfg.seed, "torus4x3", "Separate", pi),
            );
            let r = traffic::run_separate_on_with_scratch(
                &spec,
                TorusRouter::new(torus),
                &params,
                &mut scratch,
            );
            SweepPoint {
                offered_per_ms: rate,
                mean_latency_ms: r.latency.mean,
                ci_half_width_ms: r.latency.ci_half_width,
                completion_ratio: r.completion_ratio,
                throughput_per_ms: r.throughput_per_ms,
                cache_hit_rate: r.cache.hit_rate(),
                cache: r.cache,
            }
        })
        .collect();
    series.push(SweepSeries {
        network: "torus4x3".into(),
        nodes: 64,
        algorithm: "Separate".into(),
        m: 8,
        saturation_per_ms: detect(&points),
        points,
    });

    TrafficSweep {
        config: cfg.clone(),
        series,
    }
}

// ----------------------------------------------------------------------
// Serialization (first-party JSON, schema pinned by `from_json`).
// ----------------------------------------------------------------------

fn num_or_null(x: f64) -> Value {
    if x.is_finite() {
        Value::Number(x)
    } else {
        Value::Null
    }
}

fn loads_value(loads: &[f64]) -> Value {
    Value::Array(loads.iter().map(|&l| Value::Number(l)).collect())
}

impl TrafficSweep {
    /// Serializes the sweep as pretty-printed JSON (byte-stable for a
    /// given result).
    #[must_use]
    pub fn to_json(&self) -> String {
        let config = Value::Object(vec![
            (
                "sessions".into(),
                Value::Number(self.config.sessions as f64),
            ),
            (
                "pool_groups".into(),
                Value::Number(self.config.pool_groups as f64),
            ),
            ("bytes".into(), Value::Number(f64::from(self.config.bytes))),
            ("seed".into(), Value::Number(self.config.seed as f64)),
            ("arrivals".into(), Value::String("poisson".into())),
            ("loads_64".into(), loads_value(&self.config.loads_64)),
            ("loads_256".into(), loads_value(&self.config.loads_256)),
            (
                "saturation_latency_factor".into(),
                Value::Number(SATURATION_LATENCY_FACTOR),
            ),
            (
                "saturation_min_completion".into(),
                Value::Number(SATURATION_MIN_COMPLETION),
            ),
        ]);
        let series = Value::Array(
            self.series
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("network".into(), Value::String(s.network.clone())),
                        ("nodes".into(), Value::Number(s.nodes as f64)),
                        ("algorithm".into(), Value::String(s.algorithm.clone())),
                        ("m".into(), Value::Number(s.m as f64)),
                        (
                            "saturation_per_ms".into(),
                            s.saturation_per_ms.map_or(Value::Null, Value::Number),
                        ),
                        (
                            "points".into(),
                            Value::Array(
                                s.points
                                    .iter()
                                    .map(|p| {
                                        Value::Object(vec![
                                            (
                                                "offered_per_ms".into(),
                                                Value::Number(p.offered_per_ms),
                                            ),
                                            (
                                                "mean_latency_ms".into(),
                                                num_or_null(p.mean_latency_ms),
                                            ),
                                            (
                                                "ci_half_width_ms".into(),
                                                num_or_null(p.ci_half_width_ms),
                                            ),
                                            (
                                                "completion_ratio".into(),
                                                Value::Number(p.completion_ratio),
                                            ),
                                            (
                                                "throughput_per_ms".into(),
                                                Value::Number(p.throughput_per_ms),
                                            ),
                                            (
                                                "cache_hit_rate".into(),
                                                Value::Number(p.cache_hit_rate),
                                            ),
                                            (
                                                "cache_hits".into(),
                                                Value::Number(p.cache.hits as f64),
                                            ),
                                            (
                                                "cache_misses".into(),
                                                Value::Number(p.cache.misses as f64),
                                            ),
                                            (
                                                "cache_evictions".into(),
                                                Value::Number(p.cache.evictions as f64),
                                            ),
                                            (
                                                "cache_invalidations".into(),
                                                Value::Number(p.cache.invalidations as f64),
                                            ),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("id".into(), Value::String("traffic_sweep".into())),
            (
                "title".into(),
                Value::String("Open-loop multicast traffic: latency vs offered load".into()),
            ),
            ("config".into(), config),
            ("series".into(), series),
        ])
        .to_string_pretty()
    }

    /// Parses and validates a sweep artifact produced by
    /// [`TrafficSweep::to_json`] — the schema check CI runs against the
    /// committed `results/traffic_sweep.json`.
    ///
    /// # Errors
    /// A human-readable message naming the first missing/mistyped field.
    pub fn from_json(input: &str) -> Result<TrafficSweep, String> {
        let v = json::parse(input).map_err(|e| format!("invalid JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(Value::as_str)
            .ok_or("missing string field: id")?;
        if id != "traffic_sweep" {
            return Err(format!("unexpected id {id:?}"));
        }
        let cfg = v.get("config").ok_or("missing object field: config")?;
        let get_num = |obj: &Value, key: &str| -> Result<f64, String> {
            obj.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("missing numeric field: {key}"))
        };
        let get_loads = |key: &str| -> Result<Vec<f64>, String> {
            cfg.get(key)
                .and_then(Value::as_array)
                .ok_or_else(|| format!("missing array field: {key}"))?
                .iter()
                .map(|x| {
                    x.as_f64()
                        .ok_or_else(|| format!("non-numeric load in {key}"))
                })
                .collect()
        };
        let config = SweepConfig {
            sessions: get_num(cfg, "sessions")? as usize,
            pool_groups: get_num(cfg, "pool_groups")? as usize,
            bytes: get_num(cfg, "bytes")? as u32,
            seed: get_num(cfg, "seed")? as u64,
            loads_64: get_loads("loads_64")?,
            loads_256: get_loads("loads_256")?,
        };
        let series_v = v
            .get("series")
            .and_then(Value::as_array)
            .ok_or("missing array field: series")?;
        let mut series = Vec::with_capacity(series_v.len());
        for (i, s) in series_v.iter().enumerate() {
            let ctx = |key: &str| format!("series[{i}]: missing field {key}");
            let network = s
                .get("network")
                .and_then(Value::as_str)
                .ok_or_else(|| ctx("network"))?
                .to_string();
            let algorithm = s
                .get("algorithm")
                .and_then(Value::as_str)
                .ok_or_else(|| ctx("algorithm"))?
                .to_string();
            let nodes = get_num(s, "nodes")? as usize;
            let m = get_num(s, "m")? as usize;
            let saturation_per_ms = match s.get("saturation_per_ms") {
                Some(Value::Null) | None => None,
                Some(x) => Some(
                    x.as_f64()
                        .ok_or_else(|| format!("series[{i}]: non-numeric saturation"))?,
                ),
            };
            let pts = s
                .get("points")
                .and_then(Value::as_array)
                .ok_or_else(|| ctx("points"))?;
            let opt_num = |p: &Value, key: &str| -> Result<f64, String> {
                match p.get(key) {
                    Some(Value::Null) => Ok(f64::NAN),
                    Some(x) => x
                        .as_f64()
                        .ok_or_else(|| format!("series[{i}]: non-numeric {key}")),
                    None => Err(format!("series[{i}]: missing point field {key}")),
                }
            };
            let points = pts
                .iter()
                .map(|p| {
                    Ok(SweepPoint {
                        offered_per_ms: get_num(p, "offered_per_ms")?,
                        mean_latency_ms: opt_num(p, "mean_latency_ms")?,
                        ci_half_width_ms: opt_num(p, "ci_half_width_ms")?,
                        completion_ratio: get_num(p, "completion_ratio")?,
                        throughput_per_ms: get_num(p, "throughput_per_ms")?,
                        cache_hit_rate: get_num(p, "cache_hit_rate")?,
                        cache: CacheStats {
                            hits: get_num(p, "cache_hits")? as u64,
                            misses: get_num(p, "cache_misses")? as u64,
                            evictions: get_num(p, "cache_evictions")? as u64,
                            invalidations: get_num(p, "cache_invalidations")? as u64,
                        },
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            series.push(SweepSeries {
                network,
                nodes,
                algorithm,
                m,
                points,
                saturation_per_ms,
            });
        }
        Ok(TrafficSweep { config, series })
    }

    /// Renders the sweep as a plain-text report (the `.txt` artifact).
    #[must_use]
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("Open-loop multicast traffic: latency vs offered load\n");
        out.push_str(&format!(
            "sessions/point = {}, pool = {} groups, payload = {} B, seed = {}, arrivals = poisson\n",
            self.config.sessions, self.config.pool_groups, self.config.bytes, self.config.seed
        ));
        out.push_str(&format!(
            "saturation: latency > {SATURATION_LATENCY_FACTOR}x base or completion < {SATURATION_MIN_COMPLETION}\n",
        ));
        for s in &self.series {
            out.push('\n');
            out.push_str(&format!(
                "== {} ({} nodes), {}  [m = {}] ==\n",
                s.network, s.nodes, s.algorithm, s.m
            ));
            out.push_str(
                "  load/ms   latency ms   ±95% CI   complete   thru/ms   cache hit   hit/miss/evict/inv\n",
            );
            for p in &s.points {
                out.push_str(&format!(
                    "  {:>7.2}   {:>10.4}   {:>7.4}   {:>8.3}   {:>7.3}   {:>9.3}   {}/{}/{}/{}\n",
                    p.offered_per_ms,
                    p.mean_latency_ms,
                    p.ci_half_width_ms,
                    p.completion_ratio,
                    p.throughput_per_ms,
                    p.cache_hit_rate,
                    p.cache.hits,
                    p.cache.misses,
                    p.cache.evictions,
                    p.cache.invalidations,
                ));
            }
            match s.saturation_per_ms {
                Some(l) => out.push_str(&format!("  saturation detected at {l} sessions/ms\n")),
                None => out.push_str("  no saturation inside the swept range\n"),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_is_deterministic_and_round_trips() {
        let cfg = SweepConfig {
            sessions: 16,
            pool_groups: 3,
            bytes: 512,
            seed: 7,
            loads_64: vec![1.0, 8.0],
            loads_256: vec![2.0, 16.0],
        };
        let a = traffic_sweep(&cfg);
        let b = traffic_sweep(&cfg);
        assert_eq!(
            a.to_json(),
            b.to_json(),
            "sweep must regenerate bit-identically"
        );

        // 2 cubes x 4 algorithms + 1 torus series.
        assert_eq!(a.series.len(), 9);
        for s in &a.series {
            assert_eq!(s.points.len(), 2, "{}", s.network);
        }

        let parsed = TrafficSweep::from_json(&a.to_json()).unwrap();
        assert_eq!(parsed.to_json(), a.to_json(), "JSON round-trip");
        assert_eq!(parsed, a);
    }

    #[test]
    fn pool_workloads_hit_the_cache() {
        let cfg = SweepConfig {
            sessions: 20,
            pool_groups: 3,
            bytes: 512,
            seed: 3,
            loads_64: vec![2.0],
            loads_256: vec![4.0],
        };
        let sweep = traffic_sweep(&cfg);
        for s in sweep
            .series
            .iter()
            .filter(|s| s.network.starts_with("cube"))
        {
            for p in &s.points {
                assert!(
                    p.cache_hit_rate > 0.0,
                    "{} {}: recurring groups must hit the cache",
                    s.network,
                    s.algorithm
                );
                assert!(p.cache.hits > 0);
                // The pool fits (capacity = 2x groups) and nothing
                // invalidates trees in a churn-free sweep.
                assert_eq!(p.cache.evictions, 0);
                assert_eq!(p.cache.invalidations, 0);
            }
        }
        // Separate addressing builds no trees.
        let torus = sweep
            .series
            .iter()
            .find(|s| s.network == "torus4x3")
            .unwrap();
        assert!(torus
            .points
            .iter()
            .all(|p| p.cache_hit_rate == 0.0 && p.cache == CacheStats::default()));
    }

    #[test]
    fn from_json_rejects_schema_violations() {
        assert!(TrafficSweep::from_json("{}").is_err());
        assert!(TrafficSweep::from_json("[1, 2]").is_err());
        assert!(TrafficSweep::from_json("not json").is_err());
        let wrong_id = r#"{ "id": "fig11", "config": {}, "series": [] }"#;
        assert!(TrafficSweep::from_json(wrong_id).is_err());
    }
}
