//! Zero-load anchoring: a one-session traffic run at `t = 0` must be
//! **byte-identical** to the single-shot simulation entry points, on
//! the hypercube and on the torus. This is what licenses comparing
//! loaded measurements against the validated single-shot model — the
//! traffic path adds scheduling machinery but no new physics.

use hcube::{Cube, NodeId, Resolution, Torus, TorusRouter};
use hypercast::{Algorithm, PortModel};
use traffic::{ArrivalProcess, Arrivals, DestPattern, TrafficSpec};
use wormsim::{simulate_multicast, simulate_on, DepMessage, SimParams, SimTime};

fn one_shot_spec(source: NodeId, dests: Vec<NodeId>) -> TrafficSpec {
    let mut spec = TrafficSpec::new(
        Arrivals::new(ArrivalProcess::Poisson, 1.0),
        DestPattern::Fixed { source, dests },
        1,
        999, // seed is irrelevant: one arrival at t=0, fixed pattern
    );
    spec.warmup = 0;
    spec.horizon = SimTime::from_ms(10_000);
    spec
}

#[test]
fn zero_load_cube_run_matches_simulate_multicast_byte_for_byte() {
    let cube = Cube::of(6);
    let params = SimParams::ncube2(PortModel::AllPort);
    // Deliberately unsorted destination listing: the cache canonicalizes,
    // construction is order-insensitive, and the replay must not care.
    let dests: Vec<NodeId> = [45u32, 3, 17, 60, 9, 33, 12, 25]
        .into_iter()
        .map(NodeId)
        .collect();
    for algo in Algorithm::ALL {
        let tree = algo
            .build(
                cube,
                Resolution::HighToLow,
                params.port_model,
                NodeId(5),
                &dests,
            )
            .unwrap();
        let single = simulate_multicast(&tree, &params, 4096);

        let spec = one_shot_spec(NodeId(5), dests.clone());
        let report = traffic::run_cube(&spec, cube, Resolution::HighToLow, algo, &params);

        assert_eq!(report.sessions.len(), 1, "{algo:?}");
        let session = &report.sessions[0];
        assert!(session.delivered, "{algo:?}");
        assert_eq!(
            format!("{:?}", session.deliveries),
            format!("{:?}", single.deliveries),
            "{algo:?}: per-destination deliveries must be byte-identical"
        );
        assert_eq!(session.completion, single.max_delay, "{algo:?}");
        assert_eq!(
            format!("{:?}", report.net),
            format!("{:?}", single.stats),
            "{algo:?}: run-wide network statistics must be byte-identical"
        );
    }
}

#[test]
fn zero_load_torus_run_matches_simulate_on_byte_for_byte() {
    let torus = Torus::of(4, 3);
    let params = SimParams::ncube2(PortModel::AllPort);
    let source = NodeId(7);
    let dests: Vec<NodeId> = [30u32, 2, 55, 41, 19].into_iter().map(NodeId).collect();

    // The single-shot reference: a plain separate-addressing workload.
    let workload: Vec<DepMessage> = dests
        .iter()
        .map(|&dst| DepMessage {
            src: source,
            dst,
            bytes: 4096,
            deps: vec![],
            min_start: SimTime::ZERO,
        })
        .collect();
    let single = simulate_on(TorusRouter::new(torus), &params, &workload);

    let spec = one_shot_spec(source, dests.clone());
    let report = traffic::run_separate_on(&spec, TorusRouter::new(torus), &params);

    let session = &report.sessions[0];
    assert!(session.delivered);
    let expected: Vec<(NodeId, SimTime)> = dests
        .iter()
        .zip(&single.messages)
        .map(|(&d, m)| (d, m.delivered))
        .collect();
    assert_eq!(
        format!("{:?}", session.deliveries),
        format!("{expected:?}"),
        "per-destination deliveries must be byte-identical"
    );
    assert_eq!(
        format!("{:?}", report.net),
        format!("{:?}", single.stats),
        "run-wide network statistics must be byte-identical"
    );
}

#[test]
fn traffic_reports_are_byte_deterministic_across_backends() {
    let params = SimParams::ncube2(PortModel::AllPort);
    for process in [
        ArrivalProcess::Deterministic,
        ArrivalProcess::Poisson,
        ArrivalProcess::Bursty { mean_burst: 3 },
    ] {
        let spec = TrafficSpec::new(
            Arrivals::new(process, 2.0),
            DestPattern::UniformRandom { m: 5 },
            30,
            4242,
        );
        let a = traffic::run_cube(
            &spec,
            Cube::of(6),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let b = traffic::run_cube(
            &spec,
            Cube::of(6),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"), "{process}");

        let t1 = traffic::run_separate_on(&spec, TorusRouter::new(Torus::of(4, 3)), &params);
        let t2 = traffic::run_separate_on(&spec, TorusRouter::new(Torus::of(4, 3)), &params);
        assert_eq!(format!("{t1:?}"), format!("{t2:?}"), "{process}");
    }
}
