//! Property tests of the traffic subsystem's two key invariants:
//! cache transparency (a cached tree is indistinguishable from a
//! cold-built one) and schedule monotonicity/determinism.

use hcube::{Cube, NodeId, Resolution};
use hypercast::{Algorithm, PortModel, TreeCache};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use traffic::{ArrivalProcess, Arrivals};

fn instance() -> impl Strategy<Value = (u8, u32, Vec<u32>)> {
    (3u8..=6).prop_flat_map(|n| {
        let m = 1u32 << n;
        (
            Just(n),
            0..m,
            prop::collection::btree_set(0..m, 1..=(m as usize - 1).min(20)),
        )
            .prop_map(|(n, src, set)| {
                let dests: Vec<u32> = set.into_iter().filter(|&d| d != src).collect();
                (n, src, dests)
            })
    })
}

proptest! {
    /// Cache transparency: for any instance and any listing order, the
    /// cached tree's unicast list is identical to a cold build's —
    /// unicast for unicast, steps included.
    #[test]
    fn cached_and_cold_trees_are_identical((n, src, mut dests) in instance(),
                                           allport in any::<bool>(),
                                           shuffle_seed in any::<u64>()) {
        prop_assume!(!dests.is_empty());
        let port = if allport { PortModel::AllPort } else { PortModel::OnePort };
        let cube = Cube::of(n);
        for algo in Algorithm::ALL {
            let as_nodes: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
            let cold = algo
                .build(cube, Resolution::HighToLow, port, NodeId(src), &as_nodes)
                .unwrap();

            // Warm the cache with the sorted order, then look up a
            // shuffled listing of the same set: must be a hit AND equal
            // to the cold build.
            let mut cache = TreeCache::new(8);
            let warm = cache
                .get_or_build(algo, cube, Resolution::HighToLow, port, NodeId(src), &as_nodes)
                .unwrap();
            prop_assert_eq!(&warm.unicasts, &cold.unicasts);
            prop_assert_eq!(warm.steps, cold.steps);

            // Deterministic shuffle of the listing order.
            use rand::seq::SliceRandom;
            let mut rng = StdRng::seed_from_u64(shuffle_seed);
            dests.shuffle(&mut rng);
            let shuffled: Vec<NodeId> = dests.iter().copied().map(NodeId).collect();
            let hit = cache
                .get_or_build(algo, cube, Resolution::HighToLow, port, NodeId(src), &shuffled)
                .unwrap();
            prop_assert!(std::sync::Arc::ptr_eq(&warm, &hit),
                         "reordered listing must be a cache hit");
            prop_assert_eq!(&hit.unicasts, &cold.unicasts);
        }
    }

    /// Arrival schedules are nondecreasing, start at zero, and are a
    /// pure function of (process, rate, seed).
    #[test]
    fn schedules_are_monotone_and_deterministic(seed in any::<u64>(),
                                                sessions in 1usize..200,
                                                rate_tenths in 1u32..100,
                                                which in 0u8..3) {
        let process = match which {
            0 => ArrivalProcess::Deterministic,
            1 => ArrivalProcess::Poisson,
            _ => ArrivalProcess::Bursty { mean_burst: 4 },
        };
        let arrivals = Arrivals::new(process, f64::from(rate_tenths) / 10.0);
        let a = arrivals.schedule(&mut StdRng::seed_from_u64(seed), sessions);
        let b = arrivals.schedule(&mut StdRng::seed_from_u64(seed), sessions);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.len(), sessions);
        prop_assert_eq!(a[0], wormsim::SimTime::ZERO);
        prop_assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }
}
