//! The session scheduler: converts an arrival schedule plus a
//! destination pattern into one windowed dependency workload and
//! attributes the results back to sessions.
//!
//! Each arriving multicast session becomes a batch of [`DepMessage`]s —
//! one per tree unicast (hypercube backends) or one per destination
//! (separate addressing, any topology) — whose `min_start` is the
//! session's arrival time. Forwarding dependencies stay *within* a
//! session; across sessions the only coupling is physical channel
//! contention, exactly as in the network. The whole run executes under
//! [`wormsim::simulate_window_on`], so a saturated backlog is cut off at
//! the horizon instead of extending the run without bound.
//!
//! Hypercube sessions build their trees through a [`TreeCache`]: under
//! recurring destination patterns (the [`DestPattern::Pool`] population)
//! most arrivals are pointer-clone cache hits rather than full `W-sort`
//! constructions; the report carries the cache counters.

use crate::arrivals::Arrivals;
use crate::patterns::DestPattern;
use crate::stats::{BatchMeans, LoadPoint};
use hcube::{Cube, Ecube, NodeId, Resolution, Router, Topology};
use hypercast::{Algorithm, CacheStats, TreeCache};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wormsim::{simulate_window_on, DepMessage, NetStats, RunResult, SimParams, SimTime};

/// Configuration of one open-loop traffic run.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Arrival process and offered load.
    pub arrivals: Arrivals,
    /// Destination population.
    pub pattern: DestPattern,
    /// Number of sessions to inject.
    pub sessions: usize,
    /// Sessions discarded from the front before measuring (warmup
    /// truncation; must be `< sessions` for any statistics to exist).
    pub warmup: usize,
    /// Payload bytes per multicast.
    pub bytes: u32,
    /// Observation window: sessions unfinished at the horizon time out.
    pub horizon: SimTime,
    /// RNG seed; identical specs with identical seeds reproduce the
    /// report byte-for-byte.
    pub seed: u64,
    /// Tree-cache capacity (hypercube backends; 0 disables caching).
    pub cache_capacity: usize,
    /// Maximum batch count for the batch-means interval.
    pub max_batches: usize,
}

impl TrafficSpec {
    /// A spec with the common defaults: 4 KB payloads, 200 ms horizon,
    /// 64-tree cache, 10 batches, 10% warmup.
    #[must_use]
    pub fn new(
        arrivals: Arrivals,
        pattern: DestPattern,
        sessions: usize,
        seed: u64,
    ) -> TrafficSpec {
        TrafficSpec {
            arrivals,
            pattern,
            sessions,
            warmup: sessions / 10,
            bytes: 4096,
            horizon: SimTime::from_ms(200),
            seed,
            cache_capacity: 64,
            max_batches: 10,
        }
    }
}

/// One session's outcome inside a traffic run.
#[derive(Clone, Debug)]
pub struct SessionRecord {
    /// When the session entered the network.
    pub arrival: SimTime,
    /// When its last constituent message delivered (the horizon if the
    /// session was cut off).
    pub completion: SimTime,
    /// `completion − arrival`; only a latency in the usual sense when
    /// `delivered`.
    pub latency: SimTime,
    /// Whether every constituent message delivered inside the window.
    pub delivered: bool,
    /// Delivery time per destination, in tree order (empty entries are
    /// impossible; timed-out messages record their abort time).
    pub deliveries: Vec<(NodeId, SimTime)>,
}

/// Outcome of one open-loop traffic run: per-session records, the
/// steady-state measurement, cache counters, and run-wide network
/// statistics.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Offered load, sessions per millisecond.
    pub offered_rate_per_ms: f64,
    /// One record per injected session, in arrival order.
    pub sessions: Vec<SessionRecord>,
    /// Sessions discarded before measurement.
    pub warmup: usize,
    /// Sessions included in the measurement (post-warmup).
    pub measured_sessions: usize,
    /// Measured sessions that completed inside the window.
    pub completed_measured: usize,
    /// `completed_measured / measured_sessions` (1.0 when nothing was
    /// measured).
    pub completion_ratio: f64,
    /// Batch-means statistics over measured completed-session latencies
    /// in milliseconds.
    pub latency: BatchMeans,
    /// Completed measured sessions per millisecond of measurement span.
    pub throughput_per_ms: f64,
    /// Tree-cache counters (all-zero for separate-addressing backends,
    /// which build no trees).
    pub cache: CacheStats,
    /// Network statistics of the single shared run.
    pub net: NetStats,
    /// The observation window the run executed under.
    pub horizon: SimTime,
}

impl TrafficReport {
    /// This run as a point of a latency-vs-offered-load sweep.
    #[must_use]
    pub fn load_point(&self) -> LoadPoint {
        LoadPoint {
            offered: self.offered_rate_per_ms,
            mean_latency_ms: self.latency.mean,
            completion_ratio: self.completion_ratio,
        }
    }
}

/// A session's messages laid out in the shared workload.
struct SessionSpan {
    arrival: SimTime,
    range: std::ops::Range<usize>,
    dests: Vec<NodeId>,
}

/// Appends one session's tree unicasts to `workload` (deps offset to
/// the session's base, `min_start` = arrival).
fn push_tree_session(
    workload: &mut Vec<DepMessage>,
    tree: &hypercast::MulticastTree,
    bytes: u32,
    arrival: SimTime,
) -> std::ops::Range<usize> {
    let base = workload.len();
    let mut inbound: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for (i, u) in tree.unicasts.iter().enumerate() {
        inbound.insert(u.dst, base + i);
    }
    for u in &tree.unicasts {
        workload.push(DepMessage {
            src: u.src,
            dst: u.dst,
            bytes,
            deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
            min_start: arrival,
        });
    }
    base..workload.len()
}

/// Attributes a finished run back to its sessions and assembles the
/// report.
fn assemble(
    spec: &TrafficSpec,
    run: &RunResult,
    spans: Vec<SessionSpan>,
    cache: CacheStats,
) -> TrafficReport {
    let sessions: Vec<SessionRecord> = spans
        .into_iter()
        .map(|span| {
            let msgs = &run.messages[span.range.clone()];
            let delivered = msgs.iter().all(|m| m.outcome.is_delivered());
            let completion = msgs
                .iter()
                .map(|m| m.delivered)
                .max()
                .unwrap_or(span.arrival);
            let deliveries = span
                .dests
                .iter()
                .zip(msgs)
                .map(|(&d, m)| (d, m.delivered))
                .collect();
            SessionRecord {
                arrival: span.arrival,
                completion,
                latency: completion.saturating_sub(span.arrival),
                delivered,
                deliveries,
            }
        })
        .collect();

    let measured = &sessions[spec.warmup.min(sessions.len())..];
    let completed: Vec<&SessionRecord> = measured.iter().filter(|s| s.delivered).collect();
    let latencies_ms: Vec<f64> = completed.iter().map(|s| s.latency.as_ms()).collect();
    let latency = BatchMeans::of(&latencies_ms, spec.max_batches);
    let completion_ratio = if measured.is_empty() {
        1.0
    } else {
        completed.len() as f64 / measured.len() as f64
    };
    let throughput_per_ms = match (
        measured.first(),
        completed.iter().map(|s| s.completion).max(),
    ) {
        (Some(first), Some(last)) => {
            let span_ms = last.saturating_sub(first.arrival).as_ms();
            if span_ms > 0.0 {
                completed.len() as f64 / span_ms
            } else {
                0.0
            }
        }
        _ => 0.0,
    };

    TrafficReport {
        offered_rate_per_ms: spec.arrivals.rate_per_ms,
        warmup: spec.warmup.min(sessions.len()),
        measured_sessions: measured.len(),
        completed_measured: completed.len(),
        completion_ratio,
        latency,
        throughput_per_ms,
        cache,
        net: run.stats.clone(),
        horizon: spec.horizon,
        sessions,
    }
}

/// Runs open-loop multicast traffic on a hypercube: every session
/// builds (or cache-hits) an `algo` tree and replays it with the
/// session's arrival as `min_start`.
///
/// Fully deterministic: identical `(spec, cube, resolution, algo,
/// params)` give byte-identical reports.
///
/// # Panics
/// On invalid pattern draws (the [`DestPattern`] contracts) or a
/// malformed [`DestPattern::Fixed`] set (duplicate or out-of-range
/// destinations — the same panics as [`Algorithm::build`] would
/// surface through the cache).
#[must_use]
pub fn run_cube(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
) -> TrafficReport {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schedule = spec.arrivals.schedule(&mut rng, spec.sessions);
    let mut cache = TreeCache::new(spec.cache_capacity);
    let mut workload: Vec<DepMessage> = Vec::new();
    let mut spans = Vec::with_capacity(schedule.len());
    for &arrival in &schedule {
        let (source, dests) = spec.pattern.draw_cube(&mut rng, cube);
        let tree = cache
            .get_or_build(algo, cube, resolution, params.port_model, source, &dests)
            .expect("traffic destination draw produced an invalid multicast");
        let range = push_tree_session(&mut workload, &tree, spec.bytes, arrival);
        // Deliveries are attributed in tree (unicast) order.
        let dests_in_tree_order: Vec<NodeId> = tree.unicasts.iter().map(|u| u.dst).collect();
        spans.push(SessionSpan {
            arrival,
            range,
            dests: dests_in_tree_order,
        });
    }
    let run = simulate_window_on(
        Ecube::new(cube, resolution),
        params,
        &workload,
        spec.horizon,
    )
    .expect("windowed traffic runs cannot deadlock");
    assemble(spec, &run, spans, cache.stats())
}

/// Runs open-loop **separate-addressing** traffic on any routed
/// topology: each session sends one independent unicast per destination
/// (no tree, no cache). This is the backend the torus uses — the
/// paper's tree algorithms are hypercube-specific.
///
/// # Panics
/// On invalid pattern draws, including [`DestPattern::SubcubeBiased`]
/// (hypercube-only; see [`DestPattern::is_topology_generic`]).
#[must_use]
pub fn run_separate_on<R: Router>(
    spec: &TrafficSpec,
    router: R,
    params: &SimParams,
) -> TrafficReport
where
    R::Topo: Topology,
{
    let topo = router.topology();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schedule = spec.arrivals.schedule(&mut rng, spec.sessions);
    let mut workload: Vec<DepMessage> = Vec::new();
    let mut spans = Vec::with_capacity(schedule.len());
    for &arrival in &schedule {
        let (source, dests) = spec.pattern.draw_on(&mut rng, &topo);
        let base = workload.len();
        for &dst in &dests {
            workload.push(DepMessage {
                src: source,
                dst,
                bytes: spec.bytes,
                deps: vec![],
                min_start: arrival,
            });
        }
        spans.push(SessionSpan {
            arrival,
            range: base..workload.len(),
            dests,
        });
    }
    let run = simulate_window_on(router, params, &workload, spec.horizon)
        .expect("windowed traffic runs cannot deadlock");
    assemble(spec, &run, spans, CacheStats::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use hcube::{Torus, TorusRouter};
    use hypercast::PortModel;

    fn spec(rate: f64, sessions: usize, seed: u64) -> TrafficSpec {
        TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, rate),
            DestPattern::UniformRandom { m: 6 },
            sessions,
            seed,
        )
    }

    #[test]
    fn cube_run_is_byte_deterministic() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let s = spec(2.0, 40, 11);
        let a = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let b = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.sessions.len(), 40);
        assert_eq!(a.measured_sessions, 36);
    }

    #[test]
    fn different_seeds_differ() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let a = run_cube(
            &spec(2.0, 30, 1),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let b = run_cube(
            &spec(2.0, 30, 2),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert_ne!(format!("{:?}", a.sessions), format!("{:?}", b.sessions));
    }

    #[test]
    fn pool_pattern_produces_cache_hits() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut rng = StdRng::seed_from_u64(3);
        let pool = DestPattern::uniform_pool(&mut rng, &Cube::of(5), 4, 6);
        let mut s = TrafficSpec::new(Arrivals::new(ArrivalProcess::Poisson, 1.0), pool, 50, 7);
        s.cache_capacity = 16;
        let r = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert!(r.cache.hits > 0, "pool workload must hit the cache");
        assert!(r.cache.misses <= 4, "at most one miss per distinct group");
        assert!(r.cache.hit_rate() > 0.5);
    }

    #[test]
    fn light_load_completes_everything() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let r = run_cube(
            &spec(0.5, 30, 5),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert_eq!(r.completed_measured, r.measured_sessions);
        assert!((r.completion_ratio - 1.0).abs() < 1e-12);
        assert!(r.latency.mean > 0.0);
        assert!(r.throughput_per_ms > 0.0);
        assert_eq!(r.net.timed_out, 0);
    }

    #[test]
    fn crushing_load_saturates_the_window() {
        let params = SimParams::ncube2(PortModel::OnePort);
        let mut s = spec(2000.0, 200, 5);
        s.horizon = SimTime::from_ms(2);
        let r = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::Separate,
            &params,
        );
        assert!(
            r.completion_ratio < 1.0,
            "an impossible load must overflow the window (ratio {})",
            r.completion_ratio
        );
        assert!(r.net.timed_out > 0);
    }

    #[test]
    fn torus_backend_runs_separate_addressing() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let torus = Torus::of(4, 2);
        let s = spec(1.0, 25, 9);
        let a = run_separate_on(&s, TorusRouter::new(torus), &params);
        let b = run_separate_on(&s, TorusRouter::new(torus), &params);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.cache, CacheStats::default(), "no trees, no cache traffic");
        assert!(a.completed_measured > 0);
    }
}
