//! The session scheduler: converts an arrival schedule plus a
//! destination pattern into one windowed dependency workload and
//! attributes the results back to sessions.
//!
//! Each arriving multicast session becomes a batch of [`DepMessage`]s —
//! one per tree unicast (hypercube backends) or one per destination
//! (separate addressing, any topology) — whose `min_start` is the
//! session's arrival time. Forwarding dependencies stay *within* a
//! session; across sessions the only coupling is physical channel
//! contention, exactly as in the network. The whole run executes under
//! [`wormsim::simulate_window_on`], so a saturated backlog is cut off at
//! the horizon instead of extending the run without bound.
//!
//! Hypercube sessions build their trees through a [`TreeCache`]: under
//! recurring destination patterns (the [`DestPattern::Pool`] population)
//! most arrivals are pointer-clone cache hits rather than full `W-sort`
//! constructions; the report carries the cache counters.

use crate::arrivals::Arrivals;
use crate::patterns::DestPattern;
use crate::stats::{BatchMeans, LoadPoint};
use hcube::{Cube, Ecube, NodeId, Resolution, Router, Topology};
use hypercast::{Algorithm, CacheStats, TreeCache};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wormsim::{
    simulate_window_on_with_scratch, DepMessage, EngineScratch, NetStats, RunResult, SimParams,
    SimTime,
};

/// Configuration of one open-loop traffic run.
#[derive(Clone, Debug)]
pub struct TrafficSpec {
    /// Arrival process and offered load.
    pub arrivals: Arrivals,
    /// Destination population.
    pub pattern: DestPattern,
    /// Number of sessions to inject.
    pub sessions: usize,
    /// Sessions discarded from the front before measuring (warmup
    /// truncation; must be `< sessions` for any statistics to exist).
    pub warmup: usize,
    /// Payload bytes per multicast.
    pub bytes: u32,
    /// Observation window: sessions unfinished at the horizon time out.
    pub horizon: SimTime,
    /// RNG seed; identical specs with identical seeds reproduce the
    /// report byte-for-byte.
    pub seed: u64,
    /// Tree-cache capacity (hypercube backends; 0 disables caching).
    pub cache_capacity: usize,
    /// Maximum batch count for the batch-means interval.
    pub max_batches: usize,
}

impl TrafficSpec {
    /// A spec with the common defaults: 4 KB payloads, 200 ms horizon,
    /// 64-tree cache, 10 batches, 10% warmup.
    #[must_use]
    pub fn new(
        arrivals: Arrivals,
        pattern: DestPattern,
        sessions: usize,
        seed: u64,
    ) -> TrafficSpec {
        TrafficSpec {
            arrivals,
            pattern,
            sessions,
            warmup: sessions / 10,
            bytes: 4096,
            horizon: SimTime::from_ms(200),
            seed,
            cache_capacity: 64,
            max_batches: 10,
        }
    }
}

/// One session's outcome inside a traffic run.
#[derive(Clone, Debug)]
pub struct SessionRecord {
    /// When the session entered the network.
    pub arrival: SimTime,
    /// When its last constituent message delivered (the horizon if the
    /// session was cut off).
    pub completion: SimTime,
    /// `completion − arrival`; only a latency in the usual sense when
    /// `delivered`.
    pub latency: SimTime,
    /// Whether every constituent message delivered inside the window.
    pub delivered: bool,
    /// Delivery time per destination, in tree order (empty entries are
    /// impossible; timed-out messages record their abort time).
    pub deliveries: Vec<(NodeId, SimTime)>,
}

/// Outcome of one open-loop traffic run: per-session records, the
/// steady-state measurement, cache counters, and run-wide network
/// statistics.
#[derive(Clone, Debug)]
pub struct TrafficReport {
    /// Offered load, sessions per millisecond.
    pub offered_rate_per_ms: f64,
    /// One record per injected session, in arrival order.
    pub sessions: Vec<SessionRecord>,
    /// Sessions discarded before measurement.
    pub warmup: usize,
    /// Sessions included in the measurement (post-warmup).
    pub measured_sessions: usize,
    /// Measured sessions that completed inside the window.
    pub completed_measured: usize,
    /// `completed_measured / measured_sessions` (1.0 when nothing was
    /// measured).
    pub completion_ratio: f64,
    /// Batch-means statistics over measured completed-session latencies
    /// in milliseconds.
    pub latency: BatchMeans,
    /// Completed measured sessions per millisecond of measurement span.
    pub throughput_per_ms: f64,
    /// Tree-cache counters (all-zero for separate-addressing backends,
    /// which build no trees).
    pub cache: CacheStats,
    /// Network statistics of the single shared run.
    pub net: NetStats,
    /// The observation window the run executed under.
    pub horizon: SimTime,
}

impl TrafficReport {
    /// This run as a point of a latency-vs-offered-load sweep.
    #[must_use]
    pub fn load_point(&self) -> LoadPoint {
        LoadPoint {
            offered: self.offered_rate_per_ms,
            mean_latency_ms: self.latency.mean,
            completion_ratio: self.completion_ratio,
        }
    }
}

/// A session's messages laid out in the shared workload. `pub(crate)`
/// so the telemetry layer can attribute engine results back to
/// sessions without re-deriving the layout.
#[derive(Clone, Debug)]
pub(crate) struct SessionSpan {
    pub(crate) arrival: SimTime,
    pub(crate) range: std::ops::Range<usize>,
    pub(crate) dests: Vec<NodeId>,
    /// Whether this session's tree came out of the [`TreeCache`]
    /// (always `false` for separate addressing, which builds no trees).
    pub(crate) cache_hit: bool,
}

/// A fully assembled traffic run, ready to simulate: the windowed
/// dependency workload plus the bookkeeping needed to attribute the
/// results back to sessions.
///
/// Produced by [`assemble_cube_sessions`] / [`assemble_separate_sessions_on`]
/// and consumed (by reference — the same assembly can be replayed any
/// number of times) by [`run_sessions_on_with_scratch`]. Splitting
/// assembly from simulation is what lets the `engine_bench` harness
/// time the engine hot path alone, without tree construction or report
/// assembly diluting the measurement.
#[derive(Clone, Debug)]
pub struct SessionWorkload {
    workload: Vec<DepMessage>,
    pub(crate) spans: Vec<SessionSpan>,
    cache: CacheStats,
}

impl SessionWorkload {
    /// The flattened dependency workload (all sessions, arrival-ordered).
    #[must_use]
    pub fn messages(&self) -> &[DepMessage] {
        &self.workload
    }

    /// Number of sessions in the assembly.
    #[must_use]
    pub fn sessions(&self) -> usize {
        self.spans.len()
    }

    /// Tree-cache counters accumulated during assembly (all zero for
    /// separate addressing).
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// The `i`-th session extracted as a standalone workload: its slice
    /// of the flattened assembly with dependency indices rebased to the
    /// session (dependencies never cross sessions, so the rebase is
    /// exact) and `min_start` rebased to time zero. This is the
    /// "sessions replayed into one scratch" unit the `engine_bench`
    /// harness times: each session is a complete dependency workload of
    /// its own, so a worker can drive one engine run per session
    /// through a persistent [`EngineScratch`].
    ///
    /// Assembles a workload from raw parts. `pub(crate)` so sibling
    /// session builders (the collective engine) can lay out their own
    /// spans without widening the field visibility.
    pub(crate) fn from_parts(
        workload: Vec<DepMessage>,
        spans: Vec<SessionSpan>,
        cache: CacheStats,
    ) -> SessionWorkload {
        SessionWorkload {
            workload,
            spans,
            cache,
        }
    }

    /// # Panics
    /// If `i >= self.sessions()`.
    #[must_use]
    pub fn session_workload(&self, i: usize) -> Vec<DepMessage> {
        let span = &self.spans[i];
        self.workload[span.range.clone()]
            .iter()
            .map(|m| {
                let mut m = m.clone();
                for d in &mut m.deps {
                    *d -= span.range.start;
                }
                m.min_start = m.min_start.saturating_sub(span.arrival);
                m
            })
            .collect()
    }
}

/// Appends one session's tree unicasts to `workload` (deps offset to
/// the session's base, `min_start` = arrival). Shared with the chaos
/// engine, whose retry waves lay out the same per-session batches.
pub(crate) fn push_tree_session(
    workload: &mut Vec<DepMessage>,
    tree: &hypercast::MulticastTree,
    bytes: u32,
    arrival: SimTime,
) -> std::ops::Range<usize> {
    let base = workload.len();
    let mut inbound: std::collections::HashMap<NodeId, usize> = std::collections::HashMap::new();
    for (i, u) in tree.unicasts.iter().enumerate() {
        inbound.insert(u.dst, base + i);
    }
    for u in &tree.unicasts {
        workload.push(DepMessage {
            src: u.src,
            dst: u.dst,
            bytes,
            deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
            min_start: arrival,
        });
    }
    base..workload.len()
}

/// Attributes a finished run back to its sessions and assembles the
/// report. `pub(crate)` so the telemetry entry points can assemble the
/// identical report from an *observed* run of the same workload.
pub(crate) fn assemble(
    spec: &TrafficSpec,
    run: &RunResult,
    spans: &[SessionSpan],
    cache: CacheStats,
) -> TrafficReport {
    let sessions: Vec<SessionRecord> = spans
        .iter()
        .map(|span| {
            let msgs = &run.messages[span.range.clone()];
            let delivered = msgs.iter().all(|m| m.outcome.is_delivered());
            let completion = msgs
                .iter()
                .map(|m| m.delivered)
                .max()
                .unwrap_or(span.arrival);
            let deliveries = span
                .dests
                .iter()
                .zip(msgs)
                .map(|(&d, m)| (d, m.delivered))
                .collect();
            SessionRecord {
                arrival: span.arrival,
                completion,
                latency: completion.saturating_sub(span.arrival),
                delivered,
                deliveries,
            }
        })
        .collect();

    let measured = &sessions[spec.warmup.min(sessions.len())..];
    let completed: Vec<&SessionRecord> = measured.iter().filter(|s| s.delivered).collect();
    let latencies_ms: Vec<f64> = completed.iter().map(|s| s.latency.as_ms()).collect();
    let latency = BatchMeans::of(&latencies_ms, spec.max_batches);
    let completion_ratio = if measured.is_empty() {
        1.0
    } else {
        completed.len() as f64 / measured.len() as f64
    };
    let throughput_per_ms = match (
        measured.first(),
        completed.iter().map(|s| s.completion).max(),
    ) {
        (Some(first), Some(last)) => {
            let span_ms = last.saturating_sub(first.arrival).as_ms();
            if span_ms > 0.0 {
                completed.len() as f64 / span_ms
            } else {
                0.0
            }
        }
        _ => 0.0,
    };

    TrafficReport {
        offered_rate_per_ms: spec.arrivals.rate_per_ms,
        warmup: spec.warmup.min(sessions.len()),
        measured_sessions: measured.len(),
        completed_measured: completed.len(),
        completion_ratio,
        latency,
        throughput_per_ms,
        cache,
        net: run.stats.clone(),
        horizon: spec.horizon,
        sessions,
    }
}

/// Runs open-loop multicast traffic on a hypercube: every session
/// builds (or cache-hits) an `algo` tree and replays it with the
/// session's arrival as `min_start`.
///
/// Fully deterministic: identical `(spec, cube, resolution, algo,
/// params)` give byte-identical reports.
///
/// # Panics
/// On invalid pattern draws (the [`DestPattern`] contracts) or a
/// malformed [`DestPattern::Fixed`] set (duplicate or out-of-range
/// destinations — the same panics as [`Algorithm::build`] would
/// surface through the cache).
#[must_use]
pub fn run_cube(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
) -> TrafficReport {
    let mut scratch = EngineScratch::new();
    run_cube_with_scratch(spec, cube, resolution, algo, params, &mut scratch)
}

/// Scratch-reusing [`run_cube`]: the sweep hot path. One
/// [`EngineScratch`] per worker lets every session of every load point
/// replay into the same arenas — and, through the scratch's route
/// memo, recurring sessions (the [`TreeCache`] hit path) never
/// recompute an E-cube route. Reports are byte-identical to
/// [`run_cube`].
///
/// # Panics
/// See [`run_cube`].
#[must_use]
pub fn run_cube_with_scratch(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
    scratch: &mut EngineScratch,
) -> TrafficReport {
    let sessions = assemble_cube_sessions(spec, cube, resolution, algo, params);
    run_sessions_on_with_scratch(
        spec,
        Ecube::new(cube, resolution),
        &sessions,
        params,
        scratch,
    )
}

/// Assembles the windowed workload of a hypercube traffic run without
/// simulating it: arrival schedule, per-session tree builds (through
/// the [`TreeCache`]), and dependency wiring.
///
/// Deterministic for identical inputs; [`run_cube`] is exactly this
/// followed by [`run_sessions_on_with_scratch`].
///
/// # Panics
/// See [`run_cube`].
#[must_use]
pub fn assemble_cube_sessions(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
) -> SessionWorkload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schedule = spec.arrivals.schedule(&mut rng, spec.sessions);
    let mut cache = TreeCache::new(spec.cache_capacity);
    let mut workload: Vec<DepMessage> = Vec::new();
    let mut spans = Vec::with_capacity(schedule.len());
    for &arrival in &schedule {
        let (source, dests) = spec.pattern.draw_cube(&mut rng, cube);
        let before = cache.stats();
        let tree = cache
            .get_or_build(algo, cube, resolution, params.port_model, source, &dests)
            .expect("traffic destination draw produced an invalid multicast");
        let cache_hit = cache.stats().since(before).hits > 0;
        let range = push_tree_session(&mut workload, &tree, spec.bytes, arrival);
        // Deliveries are attributed in tree (unicast) order.
        let dests_in_tree_order: Vec<NodeId> = tree.unicasts.iter().map(|u| u.dst).collect();
        spans.push(SessionSpan {
            arrival,
            range,
            dests: dests_in_tree_order,
            cache_hit,
        });
    }
    SessionWorkload {
        workload,
        spans,
        cache: cache.stats(),
    }
}

/// Simulates a pre-assembled [`SessionWorkload`] under the spec's
/// observation window and attributes the results back to sessions.
///
/// This is the engine hot path in isolation: the same assembly can be
/// replayed any number of times (the `engine_bench` harness does
/// exactly that, cold vs warm), and replaying through one scratch is
/// byte-identical to a fresh run.
///
/// # Panics
/// If `sessions` references nodes outside `router`'s topology.
#[must_use]
pub fn run_sessions_on_with_scratch<R: Router>(
    spec: &TrafficSpec,
    router: R,
    sessions: &SessionWorkload,
    params: &SimParams,
    scratch: &mut EngineScratch,
) -> TrafficReport {
    let run =
        simulate_window_on_with_scratch(router, params, &sessions.workload, spec.horizon, scratch)
            .expect("windowed traffic runs cannot deadlock");
    assemble(spec, &run, &sessions.spans, sessions.cache)
}

/// Runs open-loop **separate-addressing** traffic on any routed
/// topology: each session sends one independent unicast per destination
/// (no tree, no cache). This is the backend the torus uses — the
/// paper's tree algorithms are hypercube-specific.
///
/// # Panics
/// On invalid pattern draws, including [`DestPattern::SubcubeBiased`]
/// (hypercube-only; see [`DestPattern::is_topology_generic`]).
#[must_use]
pub fn run_separate_on<R: Router>(
    spec: &TrafficSpec,
    router: R,
    params: &SimParams,
) -> TrafficReport
where
    R::Topo: Topology,
{
    let mut scratch = EngineScratch::new();
    run_separate_on_with_scratch(spec, router, params, &mut scratch)
}

/// Scratch-reusing [`run_separate_on`]: same semantics, reused engine
/// arenas and memoized routes. Reports are byte-identical to
/// [`run_separate_on`].
///
/// # Panics
/// See [`run_separate_on`].
#[must_use]
pub fn run_separate_on_with_scratch<R: Router>(
    spec: &TrafficSpec,
    router: R,
    params: &SimParams,
    scratch: &mut EngineScratch,
) -> TrafficReport
where
    R::Topo: Topology,
{
    let sessions = assemble_separate_sessions_on(spec, &router);
    run_sessions_on_with_scratch(spec, router, &sessions, params, scratch)
}

/// Assembles the windowed workload of a separate-addressing traffic run
/// on any routed topology (one independent unicast per destination, no
/// trees) without simulating it.
///
/// # Panics
/// See [`run_separate_on`].
#[must_use]
pub fn assemble_separate_sessions_on<R: Router>(spec: &TrafficSpec, router: &R) -> SessionWorkload
where
    R::Topo: Topology,
{
    let topo = router.topology();
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schedule = spec.arrivals.schedule(&mut rng, spec.sessions);
    let mut workload: Vec<DepMessage> = Vec::new();
    let mut spans = Vec::with_capacity(schedule.len());
    for &arrival in &schedule {
        let (source, dests) = spec.pattern.draw_on(&mut rng, &topo);
        let base = workload.len();
        for &dst in &dests {
            workload.push(DepMessage {
                src: source,
                dst,
                bytes: spec.bytes,
                deps: vec![],
                min_start: arrival,
            });
        }
        spans.push(SessionSpan {
            arrival,
            range: base..workload.len(),
            dests,
            cache_hit: false,
        });
    }
    SessionWorkload {
        workload,
        spans,
        cache: CacheStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::ArrivalProcess;
    use hcube::{Torus, TorusRouter};
    use hypercast::PortModel;

    fn spec(rate: f64, sessions: usize, seed: u64) -> TrafficSpec {
        TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, rate),
            DestPattern::UniformRandom { m: 6 },
            sessions,
            seed,
        )
    }

    #[test]
    fn cube_run_is_byte_deterministic() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let s = spec(2.0, 40, 11);
        let a = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let b = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.sessions.len(), 40);
        assert_eq!(a.measured_sessions, 36);
    }

    #[test]
    fn different_seeds_differ() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let a = run_cube(
            &spec(2.0, 30, 1),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let b = run_cube(
            &spec(2.0, 30, 2),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert_ne!(format!("{:?}", a.sessions), format!("{:?}", b.sessions));
    }

    #[test]
    fn pool_pattern_produces_cache_hits() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut rng = StdRng::seed_from_u64(3);
        let pool = DestPattern::uniform_pool(&mut rng, &Cube::of(5), 4, 6);
        let mut s = TrafficSpec::new(Arrivals::new(ArrivalProcess::Poisson, 1.0), pool, 50, 7);
        s.cache_capacity = 16;
        let r = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert!(r.cache.hits > 0, "pool workload must hit the cache");
        assert!(r.cache.misses <= 4, "at most one miss per distinct group");
        assert!(r.cache.hit_rate() > 0.5);
    }

    #[test]
    fn light_load_completes_everything() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let r = run_cube(
            &spec(0.5, 30, 5),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert_eq!(r.completed_measured, r.measured_sessions);
        assert!((r.completion_ratio - 1.0).abs() < 1e-12);
        assert!(r.latency.mean > 0.0);
        assert!(r.throughput_per_ms > 0.0);
        assert_eq!(r.net.timed_out, 0);
    }

    #[test]
    fn crushing_load_saturates_the_window() {
        let params = SimParams::ncube2(PortModel::OnePort);
        let mut s = spec(2000.0, 200, 5);
        s.horizon = SimTime::from_ms(2);
        let r = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::Separate,
            &params,
        );
        assert!(
            r.completion_ratio < 1.0,
            "an impossible load must overflow the window (ratio {})",
            r.completion_ratio
        );
        assert!(r.net.timed_out > 0);
    }

    #[test]
    fn scratch_reuse_reports_are_byte_identical() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let s = spec(2.0, 40, 11);
        let fresh = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let mut scratch = EngineScratch::new();
        for _ in 0..2 {
            let again = run_cube_with_scratch(
                &s,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                &mut scratch,
            );
            assert_eq!(
                format!("{fresh:?}"),
                format!("{again:?}"),
                "scratch-reuse run diverged from the fresh-allocation run"
            );
        }
        assert!(
            scratch.route_memo().hits() > 0,
            "replayed sessions must hit the route memo"
        );
        // The same scratch then serves a *different* router type: the
        // memo restamps and the torus report still matches fresh.
        let torus = Torus::of(4, 2);
        let ts = spec(1.0, 25, 9);
        let fresh = run_separate_on(&ts, TorusRouter::new(torus), &params);
        let again =
            run_separate_on_with_scratch(&ts, TorusRouter::new(torus), &params, &mut scratch);
        assert_eq!(format!("{fresh:?}"), format!("{again:?}"));
    }

    #[test]
    fn session_extraction_rebases_deps_and_start_times() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let s = spec(2.0, 12, 11);
        let assembly = assemble_cube_sessions(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let mut total = 0;
        for i in 0..assembly.sessions() {
            let w = assembly.session_workload(i);
            assert!(!w.is_empty());
            total += w.len();
            for (j, m) in w.iter().enumerate() {
                // Rebased deps stay inside the session and point
                // strictly backwards (the tree is parent-before-child).
                assert!(m.deps.iter().all(|&d| d < j), "session {i} msg {j}");
                assert_eq!(m.min_start, SimTime::ZERO);
                // The payload matches the flattened assembly.
                let flat = &assembly.messages()[assembly.spans[i].range.clone()][j];
                assert_eq!((m.src, m.dst, m.bytes), (flat.src, flat.dst, flat.bytes));
            }
            // A standalone session replay is a complete, runnable
            // workload: everything delivers on an uncontended network.
            let run = wormsim::simulate_on(
                hcube::Ecube::new(Cube::of(5), Resolution::HighToLow),
                &params,
                &w,
            );
            assert!(run.messages.iter().all(|m| m.outcome.is_delivered()));
        }
        assert_eq!(total, assembly.messages().len());
    }

    #[test]
    fn torus_backend_runs_separate_addressing() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let torus = Torus::of(4, 2);
        let s = spec(1.0, 25, 9);
        let a = run_separate_on(&s, TorusRouter::new(torus), &params);
        let b = run_separate_on(&s, TorusRouter::new(torus), &params);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.cache, CacheStats::default(), "no trees, no cache traffic");
        assert!(a.completed_measured > 0);
    }
}
