//! Online fault churn: seed-deterministic failure/repair processes.
//!
//! A [`ChurnSpec`] describes links and nodes dying and reviving *while
//! traffic flows*, as two independent MTBF/MTTR renewal processes (one
//! for links, one for nodes). Each process is rendered into a plain
//! [`FaultTimeline`] of timestamped events, which the chaos engine
//! snapshots into epoch-numbered [`wormsim::FaultPlan`]s — churn is
//! *data*, generated up front, never sampled mid-simulation.
//!
//! **Model.** With per-element MTBF `μ` and `k` elements, the merged
//! failure stream is Poisson with constant rate `k/μ` (the superposition
//! of `k` exponential clocks); each failure picks its victim uniformly
//! among the elements currently *live* and schedules its repair an
//! `Exp(MTTR)` gap later. Failures are only injected before
//! [`ChurnSpec::churn_until`]; already-scheduled repairs complete
//! naturally afterwards, so the network always heals once churn stops —
//! the property that makes time-to-recover measurable.
//!
//! **Determinism.** Gaps are drawn through
//! [`exp_gap_ns`] (the same bit-exact
//! exponential sampler as Poisson arrivals), victims by index into a
//! sorted live-set, and the link and node streams use separate RNG
//! streams derived from the run seed — so enabling churn never perturbs
//! the traffic RNG stream, which is what keeps a quiet
//! ([`ChurnSpec::is_quiet`]) chaos run byte-identical to the plain
//! engine.

use crate::arrivals::exp_gap_ns;
use hcube::{Dim, NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use wormsim::{FaultEvent, FaultEventKind, FaultTimeline, SimTime};

/// Seed tweak of the link-churn RNG stream (`b"clnk"`).
const LINK_STREAM: u64 = 0x636c_6e6b;
/// Seed tweak of the node-churn RNG stream (`b"cnod"`).
const NODE_STREAM: u64 = 0x636e_6f64;

/// A failure/repair process over the measurement window. An MTBF of
/// [`f64::INFINITY`] disables the corresponding stream entirely.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChurnSpec {
    /// Mean time between failures of one directed link, in ms.
    pub link_mtbf_ms: f64,
    /// Mean time to repair a failed link, in ms.
    pub link_mttr_ms: f64,
    /// Mean time between failures of one node, in ms.
    pub node_mtbf_ms: f64,
    /// Mean time to repair a failed node, in ms.
    pub node_mttr_ms: f64,
    /// Failures are only injected before this time; pending repairs
    /// still complete afterwards (the network always heals).
    pub churn_until: SimTime,
}

impl ChurnSpec {
    /// No churn at all: both streams disabled.
    #[must_use]
    pub fn quiet() -> ChurnSpec {
        ChurnSpec {
            link_mtbf_ms: f64::INFINITY,
            link_mttr_ms: 0.0,
            node_mtbf_ms: f64::INFINITY,
            node_mttr_ms: 0.0,
            churn_until: SimTime::ZERO,
        }
    }

    /// Whether both streams are disabled (the generated timeline is
    /// empty and a chaos run degenerates to the plain engine).
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.link_mtbf_ms.is_infinite() && self.node_mtbf_ms.is_infinite()
    }

    /// Renders the churn process on `topo` into a concrete event
    /// timeline, treating each link as a single failure element.
    /// Deterministic in `(spec, topology, seed)`; the RNG streams are
    /// derived from `seed` but separate from (and non-interfering with)
    /// the traffic engine's arrival/pattern stream.
    #[must_use]
    pub fn timeline_on<T: Topology>(&self, topo: &T, seed: u64) -> FaultTimeline {
        self.timeline_on_lanes(topo, 1, seed)
    }

    /// [`timeline_on`](ChurnSpec::timeline_on) at `(link, lane)` fault
    /// granularity: every lane of every directed link is an independent
    /// failure element, enumerated lane-minor (`(node, port, lane)`
    /// lexicographic). For the dateline torus at its default two lanes
    /// this is exactly the per-virtual-channel element space the old
    /// 4n-port encoding churned over, drawn in the same RNG order — the
    /// chaos sweep's byte-identity anchor. With `lanes = 1` the events
    /// are whole-link `LinkDown`/`LinkUp`, identical to `timeline_on`.
    ///
    /// # Panics
    /// If `lanes` is zero.
    #[must_use]
    pub fn timeline_on_lanes<T: Topology>(&self, topo: &T, lanes: u8, seed: u64) -> FaultTimeline {
        assert!(lanes >= 1, "a router has at least one lane");
        let mut events: Vec<FaultEvent> = Vec::new();
        if self.link_mtbf_ms.is_finite() {
            let links: Vec<(u32, u8, u8)> = (0..topo.node_count() as u32)
                .flat_map(|v| {
                    (0..topo.ports_per_node()).flat_map(move |p| (0..lanes).map(move |l| (v, p, l)))
                })
                .collect();
            renewal_stream(
                &mut StdRng::seed_from_u64(seed ^ LINK_STREAM),
                &links,
                self.link_mtbf_ms,
                self.link_mttr_ms,
                self.churn_until,
                &mut events,
                |&(v, p, l)| {
                    if lanes == 1 {
                        FaultEventKind::LinkDown(NodeId(v), Dim(p))
                    } else {
                        FaultEventKind::LaneDown(NodeId(v), Dim(p), l)
                    }
                },
                |&(v, p, l)| {
                    if lanes == 1 {
                        FaultEventKind::LinkUp(NodeId(v), Dim(p))
                    } else {
                        FaultEventKind::LaneUp(NodeId(v), Dim(p), l)
                    }
                },
            );
        }
        if self.node_mtbf_ms.is_finite() {
            let nodes: Vec<u32> = (0..topo.node_count() as u32).collect();
            renewal_stream(
                &mut StdRng::seed_from_u64(seed ^ NODE_STREAM),
                &nodes,
                self.node_mtbf_ms,
                self.node_mttr_ms,
                self.churn_until,
                &mut events,
                |&v| FaultEventKind::NodeDown(NodeId(v)),
                |&v| FaultEventKind::NodeUp(NodeId(v)),
            );
        }
        FaultTimeline::new(events)
    }
}

/// Generates one merged-Poisson failure/repair stream over `elements`,
/// appending `down`/`up` events. Victims are drawn uniformly among the
/// currently-live elements (a failure arriving while everything is down
/// is skipped); each failure schedules its own `Exp(mttr)` repair.
#[allow(clippy::too_many_arguments)]
fn renewal_stream<E: Copy + Ord, R: RngCore>(
    rng: &mut R,
    elements: &[E],
    mtbf_ms: f64,
    mttr_ms: f64,
    churn_until: SimTime,
    events: &mut Vec<FaultEvent>,
    down: impl Fn(&E) -> FaultEventKind,
    up: impl Fn(&E) -> FaultEventKind,
) {
    assert!(
        mtbf_ms > 0.0 && mttr_ms >= 0.0,
        "MTBF must be positive and MTTR nonnegative"
    );
    if elements.is_empty() || churn_until == SimTime::ZERO {
        return;
    }
    // Superposition of per-element exponential clocks: one merged
    // Poisson stream at k/MTBF. The rate is held constant (not scaled by
    // the momentarily-live count) — a second-order effect at realistic
    // failure densities, and it keeps the stream a pure function of the
    // RNG state.
    let mean_gap_ns = mtbf_ms * 1.0e6 / elements.len() as f64;
    let mean_repair_ns = mttr_ms * 1.0e6;
    let mut live: BTreeSet<E> = elements.iter().copied().collect();
    // Pending repairs, ordered by (time, element) for determinism.
    let mut repairs: BTreeMap<(u64, E), ()> = BTreeMap::new();
    let mut now: u64 = 0;
    loop {
        now += exp_gap_ns(rng, mean_gap_ns).max(1);
        if SimTime::from_ns(now) >= churn_until {
            break;
        }
        // Complete every repair due before this failure, so the victim
        // draw sees the true live-set.
        while let Some((&(t, e), ())) = repairs.iter().next() {
            if t > now {
                break;
            }
            repairs.remove(&(t, e));
            events.push(FaultEvent {
                at: SimTime::from_ns(t),
                kind: up(&e),
            });
            live.insert(e);
        }
        if live.is_empty() {
            continue; // everything is already down; the arrival is lost
        }
        let idx = rng.gen_range(0..live.len());
        let victim = *live.iter().nth(idx).expect("index < len");
        live.remove(&victim);
        events.push(FaultEvent {
            at: SimTime::from_ns(now),
            kind: down(&victim),
        });
        let back = now + exp_gap_ns(rng, mean_repair_ns).max(1);
        repairs.insert((back, victim), ());
    }
    // Churn stopped: let every scheduled repair complete.
    for (&(t, e), ()) in &repairs {
        events.push(FaultEvent {
            at: SimTime::from_ns(t),
            kind: up(&e),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::Cube;

    fn churny() -> ChurnSpec {
        ChurnSpec {
            link_mtbf_ms: 50.0,
            link_mttr_ms: 2.0,
            node_mtbf_ms: 200.0,
            node_mttr_ms: 3.0,
            churn_until: SimTime::from_ms(20),
        }
    }

    #[test]
    fn quiet_spec_generates_no_events() {
        let tl = ChurnSpec::quiet().timeline_on(&Cube::of(6), 42);
        assert!(tl.is_empty());
    }

    #[test]
    fn timeline_is_seed_deterministic() {
        let spec = churny();
        let a = spec.timeline_on(&Cube::of(6), 42);
        let b = spec.timeline_on(&Cube::of(6), 42);
        assert_eq!(a, b);
        let c = spec.timeline_on(&Cube::of(6), 43);
        assert_ne!(a, c);
    }

    #[test]
    fn every_failure_is_eventually_repaired() {
        let tl = churny().timeline_on(&Cube::of(6), 7);
        assert!(!tl.is_empty(), "this spec must actually produce churn");
        let last = tl.epochs().pop().expect("at least one epoch");
        assert!(
            last.plan.is_empty(),
            "final epoch must be fully healed, got {:?}",
            last.plan
        );
    }

    #[test]
    fn failures_stop_at_churn_until() {
        let spec = churny();
        let tl = spec.timeline_on(&Cube::of(6), 7);
        for e in tl.events() {
            match e.kind {
                FaultEventKind::LinkDown(..)
                | FaultEventKind::NodeDown(..)
                | FaultEventKind::LaneDown(..) => {
                    assert!(e.at < spec.churn_until, "failure at {} after cutoff", e.at);
                }
                FaultEventKind::LinkUp(..)
                | FaultEventKind::NodeUp(..)
                | FaultEventKind::LaneUp(..) => {}
            }
        }
    }

    /// The lane-granular element space draws the same RNG stream as an
    /// equally-sized single-lane port space: 2 lanes over 2n torus
    /// ports churn exactly like 4n ports did under the old VC-in-port
    /// encoding, element-for-element — the byte-identity anchor of the
    /// chaos sweep's torus rows.
    #[test]
    fn lane_churn_matches_an_equivalent_port_space() {
        let mut spec = churny();
        spec.node_mtbf_ms = f64::INFINITY;
        // 16 nodes × (4 ports × 2 lanes) vs 16 nodes × (8 ports): the
        // element spaces have equal size and lexicographic order under
        // the lane-minor mapping port4 = 2·port + lane.
        let narrow = hcube::Torus::of(4, 2); // 2n = 4 ports
        let wide = hcube::Torus::of(2, 4); // 2n = 8 ports
        assert_eq!(narrow.node_count(), wide.node_count());
        let lanes = spec.timeline_on_lanes(&narrow, 2, 42);
        let ports = spec.timeline_on(&wide, 42);
        assert!(!lanes.is_empty());
        let rank = |kind: FaultEventKind| -> (bool, u32, usize) {
            match kind {
                FaultEventKind::LaneDown(v, p, l) => {
                    (true, v.0, usize::from(p.0) * 2 + usize::from(l))
                }
                FaultEventKind::LaneUp(v, p, l) => {
                    (false, v.0, usize::from(p.0) * 2 + usize::from(l))
                }
                FaultEventKind::LinkDown(v, p) => (true, v.0, usize::from(p.0)),
                FaultEventKind::LinkUp(v, p) => (false, v.0, usize::from(p.0)),
                FaultEventKind::NodeDown(..) | FaultEventKind::NodeUp(..) => unreachable!(),
            }
        };
        let ev_lane: Vec<_> = lanes
            .events()
            .iter()
            .map(|e| (e.at, rank(e.kind)))
            .collect();
        let ev_port: Vec<_> = ports
            .events()
            .iter()
            .map(|e| (e.at, rank(e.kind)))
            .collect();
        assert_eq!(ev_lane, ev_port);
        // And every multi-lane event is lane-granular.
        assert!(lanes.events().iter().all(|e| matches!(
            e.kind,
            FaultEventKind::LaneDown(..) | FaultEventKind::LaneUp(..)
        )));
    }

    #[test]
    fn higher_churn_rate_means_more_failures() {
        let mut calm = churny();
        calm.link_mtbf_ms = 400.0;
        calm.node_mtbf_ms = f64::INFINITY;
        let mut wild = calm;
        wild.link_mtbf_ms = 20.0;
        let cube = Cube::of(6);
        assert!(wild.timeline_on(&cube, 5).len() > calm.timeline_on(&cube, 5).len());
    }

    #[test]
    fn link_only_churn_never_touches_nodes() {
        let mut spec = churny();
        spec.node_mtbf_ms = f64::INFINITY;
        let tl = spec.timeline_on(&Cube::of(6), 11);
        assert!(tl.events().iter().all(|e| matches!(
            e.kind,
            FaultEventKind::LinkDown(..) | FaultEventKind::LinkUp(..)
        )));
    }
}
