//! Open-loop *collective* traffic: every session is one full-machine
//! collective operation instead of a single multicast.
//!
//! Sessions arrive by the spec's [`Arrivals`](crate::arrivals::Arrivals)
//! process; each rebuilds its [`CollectiveSchedule`] — allgather and
//! reduce-scatter re-derive all `N` constituent trees, allreduce the one
//! tree of its (rotating) root — with [`Algorithm`](hypercast::Algorithm)-family trees going
//! through the run's shared [`TreeCache`], so after the first session
//! the per-arrival cost is pointer-clone cache hits plus dependency
//! layout. Bine trees are built directly (they are cheaper to construct
//! than to cache). The assembled workload then runs under the same
//! windowed engine as plain multicast traffic, so reports are directly
//! comparable.

use crate::engine::{
    run_sessions_on_with_scratch, SessionSpan, SessionWorkload, TrafficReport, TrafficSpec,
};
use hcube::{Cube, Ecube, NodeId, Resolution, Router, Topology};
use hypercast::collectives::{
    allgather, allgather_separate, allreduce, allreduce_separate, reduce_scatter,
    reduce_scatter_separate,
};
use hypercast::{CollectiveKind, CollectiveSchedule, TreeCache, TreeFamily};
use rand::rngs::StdRng;
use rand::SeedableRng;
use wormsim::{DepMessage, EngineScratch, SimParams};

/// Appends one collective session to `workload`: one [`DepMessage`] per
/// op, dependency indices offset to the session's base, `min_start` =
/// the session's arrival.
fn push_collective_session(
    workload: &mut Vec<DepMessage>,
    sched: &CollectiveSchedule,
    arrival: wormsim::SimTime,
) -> std::ops::Range<usize> {
    let base = workload.len();
    for op in &sched.ops {
        workload.push(DepMessage {
            src: op.src,
            dst: op.dst,
            bytes: op.bytes,
            deps: op.deps.iter().map(|&d| base + d).collect(),
            min_start: arrival,
        });
    }
    base..workload.len()
}

/// Assembles the windowed workload of a hypercube collective traffic
/// run without simulating it: arrival schedule, per-session schedule
/// builds (tree families through the shared [`TreeCache`]), and
/// dependency wiring. The spec's `bytes` is the per-node block size;
/// allreduce roots rotate round-robin across sessions.
///
/// # Panics
/// If a schedule build fails — impossible for full-machine collectives
/// on a valid cube (every node is a legal source).
#[must_use]
pub fn assemble_collective_cube_sessions(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    kind: CollectiveKind,
    family: TreeFamily,
    params: &SimParams,
) -> SessionWorkload {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schedule = spec.arrivals.schedule(&mut rng, spec.sessions);
    let mut cache = TreeCache::new(spec.cache_capacity);
    let mut workload: Vec<DepMessage> = Vec::new();
    let mut spans = Vec::with_capacity(schedule.len());
    let nodes = cube.node_count() as u32;
    for (i, &arrival) in schedule.iter().enumerate() {
        let before = cache.stats();
        let sched = match kind {
            CollectiveKind::Allgather => allgather(
                family,
                cube,
                resolution,
                params.port_model,
                spec.bytes,
                Some(&mut cache),
            ),
            CollectiveKind::ReduceScatter => reduce_scatter(
                family,
                cube,
                resolution,
                params.port_model,
                spec.bytes,
                Some(&mut cache),
            ),
            CollectiveKind::Allreduce => allreduce(
                family,
                cube,
                resolution,
                params.port_model,
                NodeId(i as u32 % nodes),
                spec.bytes,
                Some(&mut cache),
            ),
        }
        .expect("full-machine collectives cannot fail to build");
        let cache_hit = cache.stats().since(before).hits > 0;
        let range = push_collective_session(&mut workload, &sched, arrival);
        spans.push(SessionSpan {
            arrival,
            range,
            dests: sched.ops.iter().map(|op| op.dst).collect(),
            cache_hit,
        });
    }
    SessionWorkload::from_parts(workload, spans, cache.stats())
}

/// Runs open-loop collective traffic on a hypercube: every session is
/// one full-machine `kind` collective built from `family` trees.
///
/// Fully deterministic: identical inputs give byte-identical reports.
///
/// # Panics
/// See [`assemble_collective_cube_sessions`].
#[must_use]
pub fn run_collective_cube(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    kind: CollectiveKind,
    family: TreeFamily,
    params: &SimParams,
) -> TrafficReport {
    let mut scratch = EngineScratch::new();
    run_collective_cube_with_scratch(spec, cube, resolution, kind, family, params, &mut scratch)
}

/// Scratch-reusing [`run_collective_cube`]: the collectives-sweep hot
/// path. Reports are byte-identical to [`run_collective_cube`].
///
/// # Panics
/// See [`assemble_collective_cube_sessions`].
#[must_use]
pub fn run_collective_cube_with_scratch(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    kind: CollectiveKind,
    family: TreeFamily,
    params: &SimParams,
    scratch: &mut EngineScratch,
) -> TrafficReport {
    let sessions = assemble_collective_cube_sessions(spec, cube, resolution, kind, family, params);
    run_sessions_on_with_scratch(
        spec,
        Ecube::new(cube, resolution),
        &sessions,
        params,
        scratch,
    )
}

/// Runs open-loop **separate-addressing** collective traffic on any
/// routed topology (the torus backend): no trees, no cache — each
/// session replays the direct-exchange schedule of its collective.
/// Allreduce roots rotate round-robin across sessions.
///
/// # Panics
/// If the topology has fewer than two nodes.
#[must_use]
pub fn run_collective_separate_on<R: Router>(
    spec: &TrafficSpec,
    router: R,
    kind: CollectiveKind,
    params: &SimParams,
) -> TrafficReport
where
    R::Topo: Topology,
{
    let topo = router.topology();
    let nodes = topo.node_count() as u32;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let schedule = spec.arrivals.schedule(&mut rng, spec.sessions);
    let mut workload: Vec<DepMessage> = Vec::new();
    let mut spans = Vec::with_capacity(schedule.len());
    for (i, &arrival) in schedule.iter().enumerate() {
        let sched = match kind {
            CollectiveKind::Allgather => allgather_separate(&topo, spec.bytes),
            CollectiveKind::ReduceScatter => reduce_scatter_separate(&topo, spec.bytes),
            CollectiveKind::Allreduce => {
                allreduce_separate(&topo, NodeId(i as u32 % nodes), spec.bytes)
            }
        };
        let range = push_collective_session(&mut workload, &sched, arrival);
        spans.push(SessionSpan {
            arrival,
            range,
            dests: sched.ops.iter().map(|op| op.dst).collect(),
            cache_hit: false,
        });
    }
    let sessions = SessionWorkload::from_parts(workload, spans, hypercast::CacheStats::default());
    let mut scratch = EngineScratch::new();
    run_sessions_on_with_scratch(spec, router, &sessions, params, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, Arrivals};
    use crate::patterns::DestPattern;
    use hcube::{Torus, TorusRouter};
    use hypercast::{Algorithm, PortModel};

    fn spec(sessions: usize) -> TrafficSpec {
        let mut s = TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, 0.05),
            DestPattern::UniformRandom { m: 6 },
            sessions,
            7,
        );
        s.bytes = 256;
        s
    }

    #[test]
    fn collective_traffic_is_deterministic() {
        let params = SimParams::ncube2(PortModel::AllPort);
        for kind in CollectiveKind::ALL {
            let a = run_collective_cube(
                &spec(12),
                Cube::of(4),
                Resolution::HighToLow,
                kind,
                TreeFamily::Alg(Algorithm::WSort),
                &params,
            );
            let b = run_collective_cube(
                &spec(12),
                Cube::of(4),
                Resolution::HighToLow,
                kind,
                TreeFamily::Alg(Algorithm::WSort),
                &params,
            );
            assert_eq!(a.latency.mean, b.latency.mean, "{}", kind.name());
            assert_eq!(a.completed_measured, b.completed_measured);
            assert_eq!(a.net.makespan, b.net.makespan);
        }
    }

    #[test]
    fn algorithm_families_hit_the_cache_after_the_first_session() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let sessions = assemble_collective_cube_sessions(
            &spec(5),
            Cube::of(4),
            Resolution::HighToLow,
            CollectiveKind::Allgather,
            TreeFamily::Alg(Algorithm::WSort),
            &params,
        );
        let stats = sessions.cache_stats();
        assert_eq!(stats.misses, 16, "one build per root, first session");
        assert_eq!(stats.hits, 4 * 16, "later sessions fully cached");
        assert!(!sessions.spans[0].cache_hit);
        assert!(sessions.spans[1..].iter().all(|s| s.cache_hit));
    }

    #[test]
    fn bine_family_builds_without_touching_the_cache() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let sessions = assemble_collective_cube_sessions(
            &spec(3),
            Cube::of(3),
            Resolution::HighToLow,
            CollectiveKind::Allgather,
            TreeFamily::Bine,
            &params,
        );
        let stats = sessions.cache_stats();
        assert_eq!(stats.misses + stats.hits, 0);
        assert_eq!(sessions.sessions(), 3);
    }

    #[test]
    fn separate_collectives_run_on_the_torus() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let torus = Torus::of(4, 2);
        for kind in CollectiveKind::ALL {
            let report =
                run_collective_separate_on(&spec(6), TorusRouter::new(torus), kind, &params);
            assert_eq!(report.sessions.len(), 6, "{}", kind.name());
            assert!(report.completion_ratio > 0.0, "{}", kind.name());
        }
    }
}
