//! The flight recorder: session-level spans and windowed time-series
//! telemetry over the traffic and chaos engines.
//!
//! Every `*_with_telemetry` entry point runs the **same workload as its
//! plain counterpart, once, observed** — probes are statically
//! dispatched and never perturb the engine (pinned by the byte-identity
//! tests), so the returned report is byte-identical to the unobserved
//! run and the telemetry is derived from the very same
//! [`wormsim::RunResult`]s.
//!
//! Two views come out of one run:
//!
//! * **Spans** ([`SessionTrace`]) — one trace per session, causally
//!   chaining every attempt of its retry/repair chain, each with an
//!   *exact* latency decomposition ([`PhaseBreakdown`]): scheduler
//!   queueing (launch → injection of the critical message), head-flit
//!   blocking (the critical message's accumulated channel waits), and
//!   pure transit. The decomposition is exact in integer nanoseconds:
//!   `queueing + blocked + transit` equals the attempt's duration, and
//!   summing attempt durations plus the inter-attempt
//!   [`SessionTrace::backoff`] gaps
//!   reproduces the session's end-to-end latency to the nanosecond.
//!   Tree construction is instantaneous in simulated time (builds happen
//!   between waves), so it appears in the taxonomy as a zero-duration
//!   phase and never in the decomposition.
//! * **Time-series** ([`TimeSeries`]) — the observation window cut into
//!   fixed buckets, each carrying offered/delivered session counts,
//!   goodput, a log₂ latency histogram with p50/p95/p99, cache hit
//!   counters, the live fault-element count at the bucket's start, and
//!   per-dimension head-flit blocked time (attributed from the probe's
//!   closed blocking intervals). The series is built by a deterministic
//!   fold over the session traces — byte-identical no matter how a
//!   caller later shards sessions across workers.
//!
//! **Reconciliation contract.** Bucket sums equal the aggregate report
//! exactly: Σ offered = sessions, Σ delivered = delivered sessions,
//! Σ cache lookups/hits = the report's cache counters, and Σ per-dim
//! blocked time = [`wormsim::NetStats::blocked_time`] (external
//! contention; hop-0 and virtual-channel port waits are excluded, same
//! classification as the engine's own accounting). The tests in this
//! module pin every identity.
//!
//! Exporters: [`Telemetry::to_chrome_trace`] (Perfetto, one track per
//! epoch wave plus counter tracks for the series),
//! [`Telemetry::to_metrics`] (a [`wormsim::MetricsRegistry`] for
//! Prometheus/JSON), and hand-rolled JSON documents
//! ([`Telemetry::spans_to_json_string`], [`TimeSeries::to_json_string`])
//! — the build environment is offline, so serialization leans on
//! [`wormsim::json_escape`] instead of serde.

use crate::chaos::{
    classify, run_chaos_cube_on_timeline_telemetry, run_chaos_separate_telemetry_on_with_scratch,
    Attempt, AttemptOutcome, ChaosReport, ChaosSpec, SessionFailure, WaveSpan, WaveTelemetry,
};
use crate::engine::{
    assemble, assemble_cube_sessions, assemble_separate_sessions_on, SessionWorkload,
    TrafficReport, TrafficSpec,
};
use crate::stats::Quantiles;
use hcube::{Cube, Ecube, Resolution, Router, Topology};
use hypercast::Algorithm;
use wormsim::{
    json_escape, simulate_window_observed_on_with_scratch, BlockedInterval, ChannelMap,
    EngineScratch, FaultEpoch, FaultPlan, FaultTimeline, Histogram, MessageResult, MetricsRegistry,
    Probe, RunResult, SimParams, SimTime,
};

/// Telemetry layer configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Number of fixed-width time-series buckets the observation window
    /// is cut into (clamped to at least 1).
    pub buckets: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig { buckets: 24 }
    }
}

impl TelemetryConfig {
    /// A config with `buckets` time-series buckets.
    #[must_use]
    pub fn new(buckets: usize) -> TelemetryConfig {
        TelemetryConfig { buckets }
    }
}

/// Exact latency decomposition of one attempt, from its **critical
/// message** (the constituent message that resolved last — the one that
/// determined the attempt's completion).
///
/// The three phases partition the attempt's duration exactly:
/// `queueing + blocked + transit == resolution − launch` in integer
/// nanoseconds. An attempt whose critical message never entered the
/// network (failed before injection) charges its whole duration to
/// `queueing`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Launch → injection of the critical message: dependency waiting
    /// plus serialized send-software startup.
    pub queueing: SimTime,
    /// The critical message's accumulated channel-blocked time (head
    /// flit waiting for busy channels, external or virtual).
    pub blocked: SimTime,
    /// Everything else between injection and resolution: header hops
    /// and payload drain.
    pub transit: SimTime,
}

impl PhaseBreakdown {
    /// `queueing + blocked + transit` — exactly the attempt duration.
    #[must_use]
    pub fn total(&self) -> SimTime {
        SimTime::from_ns(self.queueing.as_ns() + self.blocked.as_ns() + self.transit.as_ns())
    }
}

/// How one attempt (or a plain traffic session's single attempt) ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Every constituent message delivered.
    Delivered,
    /// A constituent message hit a fault.
    Faulted,
    /// The (repaired) tree could not cover every requested destination.
    Unreachable,
    /// Cut off by the observation-window horizon.
    WindowCut,
}

impl SpanOutcome {
    /// Stable lower-case label (used by the JSON and Perfetto exporters).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            SpanOutcome::Delivered => "delivered",
            SpanOutcome::Faulted => "faulted",
            SpanOutcome::Unreachable => "unreachable",
            SpanOutcome::WindowCut => "window_cut",
        }
    }
}

/// One attempt's span: launch → resolution, with its exact phase
/// decomposition.
#[derive(Clone, Debug)]
pub struct AttemptSpan {
    /// Attempt number within the session (1 = first attempt).
    pub number: u32,
    /// Index of the epoch wave this attempt was simulated in (0 for the
    /// plain traffic path, which runs as one wave).
    pub wave: usize,
    /// When the attempt launched (the session arrival, or the
    /// backoff-delayed relaunch for retries).
    pub launch: SimTime,
    /// When the attempt resolved: last delivery, or abort time.
    pub resolution: SimTime,
    /// How the attempt ended.
    pub outcome: SpanOutcome,
    /// Whether the attempt's tree came out of the cache; `None` when
    /// the path performs no cache lookup (separate addressing).
    pub cache_hit: Option<bool>,
    /// Constituent messages simulated for this attempt.
    pub messages: usize,
    /// The exact latency decomposition.
    pub phases: PhaseBreakdown,
}

impl AttemptSpan {
    /// `resolution − launch`.
    #[must_use]
    pub fn duration(&self) -> SimTime {
        self.resolution.saturating_sub(self.launch)
    }
}

/// One session's full trace: its attempts, causally chained through the
/// retry/repair machinery, plus the inter-attempt backoff total.
///
/// Invariant (pinned by tests): `Σ attempt durations + backoff ==
/// completion − arrival` exactly.
#[derive(Clone, Debug)]
pub struct SessionTrace {
    /// Session index (arrival order; matches the report's session list).
    pub session: usize,
    /// When the session first entered the network.
    pub arrival: SimTime,
    /// When its final attempt resolved.
    pub completion: SimTime,
    /// Whether every requested destination was delivered to.
    pub delivered: bool,
    /// Total time spent in backoff gaps between attempts.
    pub backoff: SimTime,
    /// The attempts, in attempt-number order.
    pub attempts: Vec<AttemptSpan>,
}

impl SessionTrace {
    /// `completion − arrival`.
    #[must_use]
    pub fn latency(&self) -> SimTime {
        self.completion.saturating_sub(self.arrival)
    }
}

/// One fixed-width bucket of the windowed time-series.
#[derive(Clone, Debug)]
pub struct TelemetryBucket {
    /// Bucket start time.
    pub start: SimTime,
    /// Sessions that *arrived* in this bucket.
    pub offered: u64,
    /// Delivered sessions that *completed* in this bucket.
    pub delivered: u64,
    /// `delivered` per millisecond of bucket width — the goodput curve.
    pub goodput_per_ms: f64,
    /// Log₂ histogram of latencies (ns) of sessions completing here.
    pub latency: Histogram,
    /// p50/p95/p99 of that histogram (NaN when the bucket is empty).
    pub quantiles: Quantiles,
    /// Tree-cache hits among lookups performed in this bucket.
    pub cache_hits: u64,
    /// Tree-cache lookups (one per attempt launch, cube paths only).
    pub cache_lookups: u64,
    /// Fault elements (links, lanes, nodes) down at the bucket's start.
    pub live_faults: u64,
    /// Head-flit blocked time on external channels, by topology
    /// dimension (hop-0 and virtual-channel port waits excluded — the
    /// engine's own contention classification).
    pub blocked_ns_per_dim: Vec<u64>,
}

/// The windowed time-series: `[0, horizon)` cut into fixed buckets.
#[derive(Clone, Debug)]
pub struct TimeSeries {
    /// The observation window the series covers.
    pub horizon: SimTime,
    /// Bucket width in nanoseconds (`ceil(horizon / buckets)`; events
    /// past the nominal end clamp into the final bucket).
    pub bucket_ns: u64,
    /// Topology dimensions (length of each bucket's per-dim vector).
    pub dims: u8,
    /// The buckets, in time order.
    pub buckets: Vec<TelemetryBucket>,
}

impl TimeSeries {
    /// Serializes the series as a standalone JSON document
    /// (`telemetry-timeseries/v1`). Times in milliseconds; the latency
    /// histogram as trimmed log₂ bucket counts.
    #[must_use]
    pub fn to_json_string(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"telemetry-timeseries/v1\",\n");
        out.push_str(&format!(
            "  \"horizon_ms\": {},\n",
            jf(self.horizon.as_ms())
        ));
        out.push_str(&format!(
            "  \"bucket_ms\": {},\n",
            jf(self.bucket_ns as f64 / 1e6)
        ));
        out.push_str(&format!("  \"dims\": {},\n", self.dims));
        out.push_str("  \"buckets\": [\n");
        for (i, b) in self.buckets.iter().enumerate() {
            let mut hist = b.latency.counts();
            while hist.last() == Some(&0) {
                hist.pop();
            }
            let hist: Vec<String> = hist.iter().map(u64::to_string).collect();
            let dims: Vec<String> = b.blocked_ns_per_dim.iter().map(u64::to_string).collect();
            out.push_str(&format!(
                "    {{\"start_ms\": {}, \"offered\": {}, \"delivered\": {}, \
                 \"goodput_per_ms\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {}, \
                 \"cache_hits\": {}, \"cache_lookups\": {}, \"live_faults\": {}, \
                 \"blocked_ns_per_dim\": [{}], \"latency_hist\": [{}]}}{}\n",
                jf(b.start.as_ms()),
                b.offered,
                b.delivered,
                jf(b.goodput_per_ms),
                jf(b.quantiles.p50_ms),
                jf(b.quantiles.p95_ms),
                jf(b.quantiles.p99_ms),
                b.cache_hits,
                b.cache_lookups,
                b.live_faults,
                dims.join(", "),
                hist.join(", "),
                if i + 1 < self.buckets.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The full telemetry of one observed run: session spans plus the
/// windowed time-series.
#[derive(Clone, Debug)]
pub struct Telemetry {
    /// One trace per session, in arrival order.
    pub sessions: Vec<SessionTrace>,
    /// The windowed time-series.
    pub series: TimeSeries,
    /// Number of epoch waves the run was simulated in (1 for the plain
    /// traffic path).
    pub waves: usize,
}

impl Telemetry {
    /// Serializes the session spans as a standalone JSON document
    /// (`telemetry-spans/v1`). All times are integer nanoseconds so the
    /// exact-decomposition invariant survives serialization.
    #[must_use]
    pub fn spans_to_json_string(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"telemetry-spans/v1\",\n");
        out.push_str(&format!("  \"waves\": {},\n", self.waves));
        out.push_str("  \"sessions\": [\n");
        for (i, s) in self.sessions.iter().enumerate() {
            let attempts: Vec<String> = s
                .attempts
                .iter()
                .map(|a| {
                    format!(
                        "{{\"number\": {}, \"wave\": {}, \"launch_ns\": {}, \
                         \"resolution_ns\": {}, \"outcome\": \"{}\", \"cache_hit\": {}, \
                         \"messages\": {}, \"queueing_ns\": {}, \"blocked_ns\": {}, \
                         \"transit_ns\": {}}}",
                        a.number,
                        a.wave,
                        a.launch.as_ns(),
                        a.resolution.as_ns(),
                        a.outcome.label(),
                        match a.cache_hit {
                            Some(true) => "true",
                            Some(false) => "false",
                            None => "null",
                        },
                        a.messages,
                        a.phases.queueing.as_ns(),
                        a.phases.blocked.as_ns(),
                        a.phases.transit.as_ns(),
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"session\": {}, \"arrival_ns\": {}, \"completion_ns\": {}, \
                 \"delivered\": {}, \"backoff_ns\": {}, \"attempts\": [{}]}}{}\n",
                s.session,
                s.arrival.as_ns(),
                s.completion.as_ns(),
                s.delivered,
                s.backoff.as_ns(),
                attempts.join(", "),
                if i + 1 < self.sessions.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the telemetry as Chrome/Perfetto trace JSON: one
    /// track (`tid`) per **epoch wave** on a "sessions (by wave)"
    /// process — each attempt a slice named `s<session>#<attempt>`
    /// carrying its decomposition in `args` — plus counter tracks for
    /// the time-series (goodput, live faults, cache hit rate, p95).
    /// Loadable in `ui.perfetto.dev` and `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from(
            "{\n  \"displayTimeUnit\": \"ns\",\n  \"otherData\": {\"generator\": \"traffic-telemetry\"},\n  \"traceEvents\": [\n",
        );
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    ");
            out.push_str(&s);
        };
        emit(
            "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"sessions (by wave)\"}}".into(),
            &mut out,
        );
        emit(
            "{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"telemetry series\"}}".into(),
            &mut out,
        );
        for w in 0..self.waves.max(1) {
            emit(
                format!(
                    "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {w}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
                    json_escape(&format!("wave {w}"))
                ),
                &mut out,
            );
        }
        for s in &self.sessions {
            for a in &s.attempts {
                emit(
                    format!(
                        "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \
                         \"name\": \"s{}#{}\", \"args\": {{\"session\": {}, \"outcome\": \"{}\", \
                         \"cache_hit\": {}, \"queueing_ns\": {}, \"blocked_ns\": {}, \
                         \"transit_ns\": {}}}}}",
                        a.wave,
                        format_us(a.launch.as_ns()),
                        format_us(a.duration().as_ns().max(1)),
                        s.session,
                        a.number,
                        s.session,
                        a.outcome.label(),
                        match a.cache_hit {
                            Some(true) => "true",
                            Some(false) => "false",
                            None => "null",
                        },
                        a.phases.queueing.as_ns(),
                        a.phases.blocked.as_ns(),
                        a.phases.transit.as_ns(),
                    ),
                    &mut out,
                );
            }
        }
        for b in &self.series.buckets {
            let ts = format_us(b.start.as_ns());
            let hit_rate = if b.cache_lookups > 0 {
                b.cache_hits as f64 / b.cache_lookups as f64
            } else {
                0.0
            };
            for (name, value) in [
                ("goodput_per_ms", jf(b.goodput_per_ms)),
                ("offered", b.offered.to_string()),
                ("live_faults", b.live_faults.to_string()),
                ("cache_hit_rate", jf(hit_rate)),
                (
                    "p95_ms",
                    if b.quantiles.p95_ms.is_finite() {
                        jf(b.quantiles.p95_ms)
                    } else {
                        "0".into()
                    },
                ),
            ] {
                emit(
                    format!(
                        "{{\"ph\": \"C\", \"pid\": 2, \"tid\": 0, \"ts\": {ts}, \"name\": \"{name}\", \"args\": {{\"{name}\": {value}}}}}"
                    ),
                    &mut out,
                );
            }
        }
        out.push_str("\n  ]\n}");
        out
    }

    /// Aggregates the telemetry into a [`MetricsRegistry`] for the
    /// Prometheus-text and metrics-JSON exporters.
    #[must_use]
    pub fn to_metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.inc("telemetry_sessions_total", self.sessions.len() as u64);
        reg.inc(
            "telemetry_sessions_delivered_total",
            self.sessions.iter().filter(|s| s.delivered).count() as u64,
        );
        reg.inc(
            "telemetry_attempts_total",
            self.sessions.iter().map(|s| s.attempts.len() as u64).sum(),
        );
        let (mut lookups, mut hits) = (0u64, 0u64);
        for s in &self.sessions {
            for a in &s.attempts {
                if let Some(hit) = a.cache_hit {
                    lookups += 1;
                    hits += u64::from(hit);
                }
                if a.outcome == SpanOutcome::Delivered {
                    reg.observe("attempt_queueing_ns", a.phases.queueing.as_ns());
                    reg.observe("attempt_blocked_ns", a.phases.blocked.as_ns());
                    reg.observe("attempt_transit_ns", a.phases.transit.as_ns());
                }
            }
            if s.delivered {
                reg.observe("session_latency_ns", s.latency().as_ns());
                reg.observe("session_backoff_ns", s.backoff.as_ns());
            }
        }
        reg.inc("telemetry_cache_lookups_total", lookups);
        reg.inc("telemetry_cache_hits_total", hits);
        reg.inc(
            "telemetry_blocked_ns_total",
            self.series
                .buckets
                .iter()
                .flat_map(|b| b.blocked_ns_per_dim.iter())
                .sum(),
        );
        reg.set_gauge("telemetry_waves", self.waves as f64);
        reg.set_gauge("telemetry_buckets", self.series.buckets.len() as f64);
        reg.set_gauge("telemetry_bucket_ms", self.series.bucket_ns as f64 / 1e6);
        reg
    }
}

/// The telemetry probe: records every head-flit blocking episode as a
/// closed `[from, until)` interval, closing at the grant — exactly when
/// the engine charges the wait to its own accounting, so the closed
/// intervals reconcile with [`wormsim::NetStats`] to the nanosecond.
/// Waits still open at an abort are discarded (the engine never charges
/// them either).
#[derive(Clone, Debug, Default)]
pub struct TelemetryProbe {
    /// Per-message open wait: `(channel, hop, since)`.
    waiting: Vec<Option<(usize, usize, SimTime)>>,
    closed: Vec<BlockedInterval>,
}

impl TelemetryProbe {
    /// A fresh probe.
    #[must_use]
    pub fn new() -> TelemetryProbe {
        TelemetryProbe::default()
    }

    /// Drains the closed intervals and resets the per-message wait
    /// table (message indices restart per wave).
    pub fn take_intervals(&mut self) -> Vec<BlockedInterval> {
        self.waiting.clear();
        std::mem::take(&mut self.closed)
    }
}

impl Probe for TelemetryProbe {
    #[inline]
    fn on_channel_blocked(&mut self, t: SimTime, msg: usize, ch: usize, hop: usize, _depth: usize) {
        if msg >= self.waiting.len() {
            self.waiting.resize(msg + 1, None);
        }
        // A stall-window retry re-blocks on the same channel: the wait
        // is continuous, so keep the original start.
        match self.waiting[msg] {
            Some((wch, _, _)) if wch == ch => {}
            _ => self.waiting[msg] = Some((ch, hop, t)),
        }
    }

    #[inline]
    fn on_channel_granted(&mut self, t: SimTime, msg: usize, _ch: usize, _hop: usize) {
        if let Some(slot) = self.waiting.get_mut(msg) {
            if let Some((channel, hop, from)) = slot.take() {
                self.closed.push(BlockedInterval {
                    message: msg,
                    channel,
                    hop,
                    from,
                    until: t,
                });
            }
        }
    }
}

/// Computes one attempt's resolution time and exact phase breakdown
/// from its constituent message results.
fn decompose(launch: SimTime, msgs: &[MessageResult]) -> (SimTime, PhaseBreakdown) {
    let resolution = msgs
        .iter()
        .map(|m| m.delivered)
        .max()
        .unwrap_or(launch)
        .max(launch);
    let duration = resolution.saturating_sub(launch);
    let critical = msgs.iter().max_by_key(|m| m.delivered);
    let phases = match critical {
        Some(c) if c.injected != SimTime::ZERO && c.injected >= launch => {
            let queueing = c.injected.saturating_sub(launch);
            let after_inject = resolution.saturating_sub(c.injected);
            let blocked = SimTime::from_ns(c.blocked_time.as_ns().min(after_inject.as_ns()));
            PhaseBreakdown {
                queueing,
                blocked,
                transit: after_inject.saturating_sub(blocked),
            }
        }
        // Never injected (failed before entering the network): the
        // whole duration is queueing by definition.
        _ => PhaseBreakdown {
            queueing: duration,
            blocked: SimTime::ZERO,
            transit: SimTime::ZERO,
        },
    };
    (resolution, phases)
}

/// Maps the chaos engine's attempt classification onto the span
/// outcome vocabulary.
fn outcome_of(outcome: &AttemptOutcome) -> SpanOutcome {
    match outcome {
        AttemptOutcome::Delivered => SpanOutcome::Delivered,
        AttemptOutcome::WindowCut => SpanOutcome::WindowCut,
        AttemptOutcome::Failed(SessionFailure::Faulted(_)) => SpanOutcome::Faulted,
        AttemptOutcome::Failed(SessionFailure::Unreachable { .. }) => SpanOutcome::Unreachable,
        AttemptOutcome::Failed(SessionFailure::WindowCut) => SpanOutcome::WindowCut,
    }
}

/// Keeps only external-channel, hop>0 intervals (genuine contention —
/// the engine's `blocked_time` classification) and attributes each to
/// its topology dimension: `(dim, from_ns, until_ns)`.
fn classify_intervals<R: Router>(
    intervals: &[BlockedInterval],
    map: &ChannelMap<R>,
) -> Vec<(u8, u64, u64)> {
    intervals
        .iter()
        .filter(|iv| iv.hop > 0 && !map.is_virtual(iv.channel))
        .map(|iv| (map.dim_of(iv.channel), iv.from.as_ns(), iv.until.as_ns()))
        .collect()
}

/// Fault elements (links, lanes, nodes) down under `plan`.
fn live_faults(plan: &FaultPlan) -> u64 {
    (plan.dead_link_count() + plan.dead_lanes().count() + plan.dead_nodes().count()) as u64
}

/// The deterministic bucket fold: sessions, blocked intervals, and the
/// epoch timeline folded into the windowed time-series. Pure data →
/// data, independent of simulation order — the worker-invariance
/// guarantee of the telemetry sweep rests on this.
fn build_series(
    cfg: &TelemetryConfig,
    horizon: SimTime,
    dims: u8,
    traces: &[SessionTrace],
    blocked: &[(u8, u64, u64)],
    epochs: &[(u64, u64)],
) -> TimeSeries {
    let n = cfg.buckets.max(1);
    let horizon_ns = horizon.as_ns().max(1);
    let bucket_ns = horizon_ns.div_ceil(n as u64).max(1);
    let idx = |t: SimTime| -> usize { ((t.as_ns() / bucket_ns) as usize).min(n - 1) };

    let mut buckets: Vec<TelemetryBucket> = (0..n)
        .map(|i| TelemetryBucket {
            start: SimTime::from_ns(i as u64 * bucket_ns),
            offered: 0,
            delivered: 0,
            goodput_per_ms: 0.0,
            latency: Histogram::new(),
            quantiles: Quantiles {
                p50_ms: f64::NAN,
                p95_ms: f64::NAN,
                p99_ms: f64::NAN,
            },
            cache_hits: 0,
            cache_lookups: 0,
            live_faults: 0,
            blocked_ns_per_dim: vec![0; dims as usize],
        })
        .collect();

    for tr in traces {
        buckets[idx(tr.arrival)].offered += 1;
        for a in &tr.attempts {
            if let Some(hit) = a.cache_hit {
                let b = &mut buckets[idx(a.launch)];
                b.cache_lookups += 1;
                b.cache_hits += u64::from(hit);
            }
        }
        if tr.delivered {
            let b = &mut buckets[idx(tr.completion)];
            b.delivered += 1;
            b.latency.observe(tr.latency().as_ns());
        }
    }

    for &(dim, from, until) in blocked {
        if until <= from {
            continue;
        }
        let first = ((from / bucket_ns) as usize).min(n - 1);
        let last = (((until - 1) / bucket_ns) as usize).min(n - 1);
        for (i, b) in buckets.iter_mut().enumerate().take(last + 1).skip(first) {
            let bs = i as u64 * bucket_ns;
            // The final bucket absorbs any tail past the nominal window.
            let be = if i == n - 1 { u64::MAX } else { bs + bucket_ns };
            let overlap = until.min(be).saturating_sub(from.max(bs));
            b.blocked_ns_per_dim[dim as usize] += overlap;
        }
    }

    let bucket_ms = bucket_ns as f64 / 1e6;
    for b in &mut buckets {
        if !epochs.is_empty() {
            let e = epochs
                .partition_point(|&(start, _)| start <= b.start.as_ns())
                .saturating_sub(1);
            b.live_faults = epochs[e].1;
        }
        b.goodput_per_ms = b.delivered as f64 / bucket_ms;
        if b.latency.count() > 0 {
            b.quantiles = Quantiles::from_latency_histogram(&b.latency);
        }
    }

    TimeSeries {
        horizon,
        bucket_ns,
        dims,
        buckets,
    }
}

/// Builds the traffic-path telemetry (single wave) from an observed
/// run's message results and the probe's blocking intervals.
fn traffic_telemetry<R: Router>(
    spec: &TrafficSpec,
    assembly: &SessionWorkload,
    run: &RunResult,
    intervals: &[BlockedInterval],
    map: &ChannelMap<R>,
    cfg: &TelemetryConfig,
    lookups: bool,
) -> Telemetry {
    let traces: Vec<SessionTrace> = assembly
        .spans
        .iter()
        .enumerate()
        .map(|(i, span)| {
            let msgs = &run.messages[span.range.clone()];
            let (resolution, phases) = decompose(span.arrival, msgs);
            let outcome = outcome_of(&classify(msgs, 0));
            SessionTrace {
                session: i,
                arrival: span.arrival,
                completion: resolution,
                delivered: outcome == SpanOutcome::Delivered,
                backoff: SimTime::ZERO,
                attempts: vec![AttemptSpan {
                    number: 1,
                    wave: 0,
                    launch: span.arrival,
                    resolution,
                    outcome,
                    cache_hit: lookups.then_some(span.cache_hit),
                    messages: msgs.len(),
                    phases,
                }],
            }
        })
        .collect();
    let blocked = classify_intervals(intervals, map);
    let series = build_series(cfg, spec.horizon, map.dimensions(), &traces, &blocked, &[]);
    Telemetry {
        sessions: traces,
        series,
        waves: 1,
    }
}

/// [`run_cube`](crate::run_cube) with the flight recorder attached: one
/// observed engine run yields both the byte-identical [`TrafficReport`]
/// and the derived [`Telemetry`].
///
/// # Panics
/// See [`run_cube`](crate::run_cube).
#[must_use]
pub fn run_cube_with_telemetry(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
    cfg: &TelemetryConfig,
) -> (TrafficReport, Telemetry) {
    let assembly = assemble_cube_sessions(spec, cube, resolution, algo, params);
    let mut probe = TelemetryProbe::new();
    let mut scratch = EngineScratch::new();
    let run = simulate_window_observed_on_with_scratch(
        Ecube::new(cube, resolution),
        params,
        assembly.messages(),
        spec.horizon,
        &mut probe,
        &mut scratch,
    )
    .expect("windowed traffic runs cannot deadlock");
    let report = assemble(spec, &run, &assembly.spans, assembly.cache_stats());
    let map = ChannelMap::new(Ecube::new(cube, resolution));
    let intervals = probe.take_intervals();
    let telemetry = traffic_telemetry(spec, &assembly, &run, &intervals, &map, cfg, true);
    (report, telemetry)
}

/// [`run_separate_on`](crate::run_separate_on) with the flight recorder
/// attached: observed separate-addressing traffic on any routed
/// topology. No trees are built, so span cache fields are `None` and
/// the series' cache counters stay zero.
///
/// # Panics
/// See [`run_separate_on`](crate::run_separate_on).
#[must_use]
pub fn run_separate_with_telemetry_on<R: Router + Copy>(
    spec: &TrafficSpec,
    router: R,
    params: &SimParams,
    cfg: &TelemetryConfig,
) -> (TrafficReport, Telemetry)
where
    R::Topo: Topology,
{
    let assembly = assemble_separate_sessions_on(spec, &router);
    let mut probe = TelemetryProbe::new();
    let mut scratch = EngineScratch::new();
    let run = simulate_window_observed_on_with_scratch(
        router,
        params,
        assembly.messages(),
        spec.horizon,
        &mut probe,
        &mut scratch,
    )
    .expect("windowed traffic runs cannot deadlock");
    let report = assemble(spec, &run, &assembly.spans, assembly.cache_stats());
    let map = ChannelMap::new(router);
    let intervals = probe.take_intervals();
    let telemetry = traffic_telemetry(spec, &assembly, &run, &intervals, &map, cfg, false);
    (report, telemetry)
}

/// The chaos-path collector: implements [`WaveTelemetry`] to record
/// every wave's attempts and blocking intervals as the epoch loop runs.
struct ChaosCollector {
    probe: TelemetryProbe,
    waves: usize,
    /// `(session, span)` per simulated attempt, in wave order.
    attempts: Vec<(usize, AttemptSpan)>,
    intervals: Vec<BlockedInterval>,
    /// Whether this path performs cache lookups (cube: yes; separate
    /// addressing: no).
    lookups: bool,
}

impl ChaosCollector {
    fn new(lookups: bool) -> ChaosCollector {
        ChaosCollector {
            probe: TelemetryProbe::new(),
            waves: 0,
            attempts: Vec::new(),
            intervals: Vec::new(),
            lookups,
        }
    }

    /// Assembles the final telemetry once the epoch loop has finished.
    fn finish<R: Router>(
        mut self,
        report: &ChaosReport,
        epochs: &[FaultEpoch],
        map: &ChannelMap<R>,
        cfg: &TelemetryConfig,
    ) -> Telemetry {
        self.attempts
            .sort_by_key(|(session, a)| (*session, a.number));
        let mut traces: Vec<SessionTrace> = report
            .sessions
            .iter()
            .enumerate()
            .map(|(i, s)| SessionTrace {
                session: i,
                arrival: s.arrival,
                completion: s.completion,
                delivered: s.delivered,
                backoff: SimTime::ZERO,
                attempts: Vec::new(),
            })
            .collect();
        for (session, a) in self.attempts {
            traces[session].attempts.push(a);
        }
        for tr in &mut traces {
            let spent: u64 = tr.attempts.iter().map(|a| a.duration().as_ns()).sum();
            tr.backoff = SimTime::from_ns(tr.latency().as_ns().saturating_sub(spent));
        }
        let blocked = classify_intervals(&self.intervals, map);
        let epoch_counts: Vec<(u64, u64)> = epochs
            .iter()
            .map(|e| (e.start.as_ns(), live_faults(&e.plan)))
            .collect();
        let series = build_series(
            cfg,
            report.horizon,
            map.dimensions(),
            &traces,
            &blocked,
            &epoch_counts,
        );
        Telemetry {
            sessions: traces,
            series,
            waves: self.waves,
        }
    }
}

impl WaveTelemetry for ChaosCollector {
    type P = TelemetryProbe;

    fn probe(&mut self) -> &mut TelemetryProbe {
        &mut self.probe
    }

    fn record_wave(
        &mut self,
        attempts: &[Attempt],
        spans: &[WaveSpan],
        run: &RunResult,
        _plan: &FaultPlan,
    ) {
        let wave = self.waves;
        self.waves += 1;
        for (attempt, span) in attempts.iter().zip(spans) {
            let msgs = &run.messages[span.range.clone()];
            let (resolution, phases) = decompose(attempt.launch, msgs);
            let outcome = outcome_of(&classify(msgs, span.missing));
            self.attempts.push((
                attempt.session,
                AttemptSpan {
                    number: attempt.number,
                    wave,
                    launch: attempt.launch,
                    resolution,
                    outcome,
                    cache_hit: self.lookups.then_some(span.cache_hit),
                    messages: msgs.len(),
                    phases,
                },
            ));
        }
        self.intervals.extend(self.probe.take_intervals());
    }
}

/// [`run_chaos_cube`](crate::run_chaos_cube) with the flight recorder
/// attached: the byte-identical [`ChaosReport`] plus per-attempt spans
/// (causally chained through the retry/repair machinery) and the
/// windowed time-series, whose goodput dip and refill around each fault
/// epoch is the run's time-to-recover made visible.
///
/// # Panics
/// See [`run_chaos_cube`](crate::run_chaos_cube).
#[must_use]
pub fn run_chaos_cube_with_telemetry(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
    cfg: &TelemetryConfig,
) -> (ChaosReport, Telemetry) {
    let timeline = spec.churn.timeline_on(&cube, spec.traffic.seed);
    run_chaos_cube_on_timeline_with_telemetry(spec, cube, resolution, algo, params, &timeline, cfg)
}

/// [`run_chaos_cube_with_telemetry`] against an explicit, already
/// rendered fault timeline (scripted outages, tests).
///
/// # Panics
/// See [`run_chaos_cube`](crate::run_chaos_cube).
#[must_use]
pub fn run_chaos_cube_on_timeline_with_telemetry(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
    timeline: &FaultTimeline,
    cfg: &TelemetryConfig,
) -> (ChaosReport, Telemetry) {
    let mut scratch = EngineScratch::new();
    let mut collector = ChaosCollector::new(true);
    let report = run_chaos_cube_on_timeline_telemetry(
        spec,
        cube,
        resolution,
        algo,
        params,
        timeline,
        &mut scratch,
        &mut collector,
    );
    let map = ChannelMap::new(Ecube::new(cube, resolution));
    let telemetry = collector.finish(&report, &timeline.epochs(), &map, cfg);
    (report, telemetry)
}

/// [`run_chaos_separate_on`](crate::run_chaos_separate_on) with the
/// flight recorder attached.
///
/// # Panics
/// See [`run_chaos_separate_on`](crate::run_chaos_separate_on).
#[must_use]
pub fn run_chaos_separate_with_telemetry_on<R: Router + Copy>(
    spec: &ChaosSpec,
    router: R,
    params: &SimParams,
    cfg: &TelemetryConfig,
) -> (ChaosReport, Telemetry)
where
    R::Topo: Topology,
{
    let mut scratch = EngineScratch::new();
    let mut collector = ChaosCollector::new(false);
    let report = run_chaos_separate_telemetry_on_with_scratch(
        spec,
        router,
        params,
        &mut scratch,
        &mut collector,
    );
    let topo = router.topology();
    let timeline = spec
        .churn
        .timeline_on_lanes(&topo, router.lanes(), spec.traffic.seed);
    let map = ChannelMap::new(router);
    let telemetry = collector.finish(&report, &timeline.epochs(), &map, cfg);
    (report, telemetry)
}

/// JSON float formatting: shortest round-trip for finite values, `null`
/// for NaN/∞ (empty-bucket quantiles).
fn jf(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Nanoseconds → the Chrome trace format's microsecond unit, fraction
/// preserved.
fn format_us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let mut s = format!("{whole}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, Arrivals};
    use crate::chaos::run_chaos_cube;
    use crate::churn::ChurnSpec;
    use crate::engine::{run_cube, run_separate_on};
    use crate::patterns::DestPattern;
    use hcube::{Torus, TorusRouter};
    use hypercast::PortModel;

    fn spec(rate: f64, sessions: usize, seed: u64) -> TrafficSpec {
        TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, rate),
            DestPattern::UniformRandom { m: 6 },
            sessions,
            seed,
        )
    }

    fn churny(until: SimTime) -> ChurnSpec {
        ChurnSpec {
            link_mtbf_ms: 10.0,
            link_mttr_ms: 2.0,
            node_mtbf_ms: 40.0,
            node_mttr_ms: 3.0,
            churn_until: until,
        }
    }

    #[test]
    fn telemetry_report_is_byte_identical_to_the_plain_run() {
        let params = SimParams::ncube2(PortModel::AllPort);
        for rate in [2.0, 60.0] {
            let s = spec(rate, 40, 11);
            let plain = run_cube(
                &s,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
            );
            let (observed, tel) = run_cube_with_telemetry(
                &s,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                &TelemetryConfig::default(),
            );
            assert_eq!(format!("{plain:?}"), format!("{observed:?}"), "rate {rate}");
            assert_eq!(tel.sessions.len(), plain.sessions.len());
            assert_eq!(tel.waves, 1);
        }
    }

    #[test]
    fn span_decomposition_sums_exactly_to_the_reported_latency() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let s = spec(30.0, 60, 7);
        let (report, tel) = run_cube_with_telemetry(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            &TelemetryConfig::default(),
        );
        assert!(
            report.net.blocked_time > SimTime::ZERO,
            "this load must produce contention"
        );
        for (tr, rec) in tel.sessions.iter().zip(&report.sessions) {
            assert_eq!(tr.arrival, rec.arrival);
            assert_eq!(tr.completion, rec.completion);
            assert_eq!(tr.delivered, rec.delivered);
            let spent: u64 = tr.attempts.iter().map(|a| a.phases.total().as_ns()).sum();
            assert_eq!(
                spent + tr.backoff.as_ns(),
                rec.latency.as_ns(),
                "session {} decomposition must sum exactly",
                tr.session
            );
            for a in &tr.attempts {
                assert_eq!(a.phases.total(), a.duration());
            }
        }
        assert!(
            tel.sessions
                .iter()
                .flat_map(|t| &t.attempts)
                .any(|a| a.phases.blocked > SimTime::ZERO),
            "some critical message must have blocked under this load"
        );
    }

    #[test]
    fn bucket_sums_reconcile_with_the_aggregate_report() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        let pool = DestPattern::uniform_pool(&mut rng, &Cube::of(5), 4, 6);
        let mut s = TrafficSpec::new(Arrivals::new(ArrivalProcess::Poisson, 30.0), pool, 80, 7);
        s.cache_capacity = 16;
        let (report, tel) = run_cube_with_telemetry(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            &TelemetryConfig::new(16),
        );
        let b = &tel.series.buckets;
        assert_eq!(b.len(), 16);
        assert_eq!(
            b.iter().map(|x| x.offered).sum::<u64>(),
            report.sessions.len() as u64
        );
        let delivered = report.sessions.iter().filter(|x| x.delivered).count() as u64;
        assert_eq!(b.iter().map(|x| x.delivered).sum::<u64>(), delivered);
        assert_eq!(b.iter().map(|x| x.latency.count()).sum::<u64>(), delivered);
        assert_eq!(
            b.iter().map(|x| x.cache_lookups).sum::<u64>(),
            report.cache.hits + report.cache.misses
        );
        assert_eq!(
            b.iter().map(|x| x.cache_hits).sum::<u64>(),
            report.cache.hits
        );
        assert_eq!(
            b.iter()
                .flat_map(|x| x.blocked_ns_per_dim.iter())
                .sum::<u64>(),
            report.net.blocked_time.as_ns(),
            "per-dimension blocked time must reconcile with NetStats exactly"
        );
        assert!(b.iter().all(|x| x.live_faults == 0));
    }

    #[test]
    fn chaos_telemetry_report_matches_and_attempt_chains_reconcile() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut ts = spec(2.0, 60, 3);
        ts.horizon = SimTime::from_ms(60);
        let cspec = ChaosSpec::new(ts, churny(SimTime::from_ms(15)));
        let plain = run_chaos_cube(
            &cspec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let (observed, tel) = run_chaos_cube_with_telemetry(
            &cspec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            &TelemetryConfig::new(20),
        );
        assert_eq!(format!("{plain:?}"), format!("{observed:?}"));
        // Quiet epochs simulate no wave and retry bursts can add extra
        // waves within one epoch, so no fixed relation to the epoch
        // count holds — but a churny run must have simulated something.
        assert!(tel.waves > 0);
        for (tr, rec) in tel.sessions.iter().zip(&observed.sessions) {
            assert_eq!(tr.attempts.len() as u32, rec.attempts);
            let spent: u64 = tr.attempts.iter().map(|a| a.phases.total().as_ns()).sum();
            assert_eq!(
                spent + tr.backoff.as_ns(),
                rec.latency.as_ns(),
                "chaos session {} attempt chain must sum exactly",
                tr.session
            );
            let last = tr.attempts.last().expect("every session has attempts");
            assert_eq!(last.outcome == SpanOutcome::Delivered, rec.delivered);
            // Attempt numbers are the causal chain 1..=n.
            for (i, a) in tr.attempts.iter().enumerate() {
                assert_eq!(a.number as usize, i + 1);
            }
        }
        assert!(
            tel.sessions.iter().any(|t| t.attempts.len() > 1),
            "churn at this density must retry at least one session"
        );
        // Cache reconciliation: one lookup per attempt on the cube path.
        let attempts: u64 = tel.sessions.iter().map(|t| t.attempts.len() as u64).sum();
        let b = &tel.series.buckets;
        assert_eq!(b.iter().map(|x| x.cache_lookups).sum::<u64>(), attempts);
        assert_eq!(
            b.iter().map(|x| x.cache_lookups).sum::<u64>(),
            observed.cache.hits + observed.cache.misses
        );
        assert_eq!(
            b.iter()
                .flat_map(|x| x.blocked_ns_per_dim.iter())
                .sum::<u64>(),
            observed.net.blocked_time.as_ns()
        );
        assert!(
            b.iter().any(|x| x.live_faults > 0),
            "churn must surface in the live-fault series"
        );
    }

    #[test]
    fn separate_addressing_telemetry_has_no_cache_activity() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let torus = Torus::of(4, 2);
        let ts = spec(1.0, 25, 9);
        let plain = run_separate_on(&ts, TorusRouter::new(torus), &params);
        let (observed, tel) = run_separate_with_telemetry_on(
            &ts,
            TorusRouter::new(torus),
            &params,
            &TelemetryConfig::default(),
        );
        assert_eq!(format!("{plain:?}"), format!("{observed:?}"));
        assert!(tel
            .sessions
            .iter()
            .flat_map(|t| &t.attempts)
            .all(|a| a.cache_hit.is_none()));
        assert!(tel
            .series
            .buckets
            .iter()
            .all(|b| b.cache_lookups == 0 && b.cache_hits == 0));
    }

    #[test]
    fn exporters_emit_wellformed_documents() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let (_, tel) = run_cube_with_telemetry(
            &spec(10.0, 30, 5),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            &TelemetryConfig::new(8),
        );
        let spans = tel.spans_to_json_string();
        assert!(spans.starts_with('{') && spans.trim_end().ends_with('}'));
        assert!(spans.contains("\"schema\": \"telemetry-spans/v1\""));
        assert!(spans.contains("\"queueing_ns\""));
        let series = tel.series.to_json_string();
        assert!(series.starts_with('{') && series.trim_end().ends_with('}'));
        assert!(series.contains("\"schema\": \"telemetry-timeseries/v1\""));
        assert!(series.contains("\"goodput_per_ms\""));
        let trace = tel.to_chrome_trace();
        assert!(trace.contains("\"traceEvents\""));
        assert!(trace.contains("sessions (by wave)"));
        assert!(trace.contains("\"ph\": \"C\""));
        let reg = tel.to_metrics();
        assert_eq!(reg.counter("telemetry_sessions_total"), 30);
        assert!(reg.histogram("session_latency_ns").is_some());
        let prom = reg.to_prometheus_text();
        assert!(prom.contains("telemetry_sessions_total"));
    }

    #[test]
    fn time_to_recover_is_visible_as_a_goodput_dip_and_refill() {
        // A scripted mid-window outage: goodput must dip while the
        // victim is down and refill after it revives.
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut ts = spec(4.0, 120, 17);
        ts.horizon = SimTime::from_ms(40);
        let cspec = ChaosSpec::new(ts, churny(SimTime::from_ms(12)));
        let (report, tel) = run_chaos_cube_with_telemetry(
            &cspec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            &TelemetryConfig::new(20),
        );
        assert!(report.fault_events > 0);
        let b = &tel.series.buckets;
        let churn_active: Vec<&TelemetryBucket> = b.iter().filter(|x| x.live_faults > 0).collect();
        let quiet_tail: Vec<&TelemetryBucket> = b
            .iter()
            .skip_while(|x| x.live_faults == 0)
            .skip_while(|x| x.live_faults > 0)
            .filter(|x| x.offered > 0 || x.delivered > 0)
            .collect();
        assert!(!churn_active.is_empty(), "churn buckets must exist");
        if !quiet_tail.is_empty() {
            let dip = churn_active
                .iter()
                .map(|x| x.goodput_per_ms)
                .fold(f64::INFINITY, f64::min);
            let refill = quiet_tail
                .iter()
                .map(|x| x.goodput_per_ms)
                .fold(0.0, f64::max);
            assert!(
                refill > dip,
                "goodput must refill after churn ends (dip {dip}, refill {refill})"
            );
        }
    }
}
