//! The chaos engine: open-loop traffic under online fault churn, with
//! self-healing retries.
//!
//! [`run_chaos_cube`] extends [`run_cube`](crate::run_cube) with a
//! [`ChurnSpec`] failure/repair process and a
//! [`RetryPolicy`]:
//!
//! 1. the churn process is rendered into a [`FaultTimeline`] and
//!    snapshotted into epoch-numbered [`wormsim::FaultPlan`]s — the
//!    fault state is piecewise constant;
//! 2. sessions launched in epoch *e* run under epoch *e*'s plan for
//!    their whole lifetime (the *epoch isolation* approximation: a
//!    session straddling a fault event sees the state at its launch,
//!    and channel contention does not couple across epochs);
//! 3. a session attempt that hits a fault (a constituent message ends
//!    [`Outcome::Failed`](wormsim::Outcome), or the fault-pruned tree
//!    could not cover every requested destination) is *retried*: the
//!    next attempt launches an exponential-backoff gap after the
//!    failure resolved, rebuilds its tree through
//!    [`hypercast::repair`](hypercast::repair::repair) against the fault
//!    state of the retry's epoch (cached per epoch in the shared
//!    [`TreeCache`]), and counts one more attempt — up to
//!    `1 + max_retries` attempts, after which the session is **lost**;
//! 4. a session cut off by the observation-window horizon
//!    ([`Outcome::TimedOut`](wormsim::Outcome)) is *not* retried: the
//!    window cut is an artifact of measurement, not a network fault, and
//!    retrying it would make a quiet chaos run diverge from the plain
//!    engine.
//!
//! The first attempt always replays the pristine-cube tree — sources do
//! not know the fault state until a send fails, so fault *detection* is
//! end-to-end: the failed attempt itself is the detection, and the
//! repaired tree only enters on the retry. With churn disabled
//! ([`ChurnSpec::is_quiet`]) the whole machinery degenerates to a
//! single epoch with an empty plan and the run is byte-identical to
//! [`run_cube`](crate::run_cube) (pinned by the equivalence tests).
//!
//! **Backoff units.** [`RetryPolicy`] backoffs are abstract units; the
//! chaos engine interprets them as **microseconds** of simulated time.

use crate::churn::ChurnSpec;
use crate::engine::{push_tree_session, TrafficSpec};
use crate::stats::BatchMeans;
use hcube::{Cube, Ecube, NodeId, Resolution, Router, Topology};
use hypercast::protocol::RetryPolicy;
use hypercast::{Algorithm, CacheStats, NetworkFaults, TreeCache};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fmt;
use wormsim::{
    simulate_observed_with_faults_on_with_scratch, DepMessage, EngineScratch, FaultCause,
    FaultEpoch, FaultTimeline, NetStats, NoopProbe, Outcome, Probe, SimTime,
};

/// Configuration of one chaos run: plain open-loop traffic plus a churn
/// process and a retry policy.
#[derive(Clone, Debug)]
pub struct ChaosSpec {
    /// The underlying open-loop traffic configuration (arrivals,
    /// pattern, sessions, window, seed, cache).
    pub traffic: TrafficSpec,
    /// The failure/repair process.
    pub churn: ChurnSpec,
    /// Retry policy for faulted sessions; backoffs are in microseconds
    /// of simulated time.
    pub retry: RetryPolicy,
}

impl ChaosSpec {
    /// A chaos spec wrapping `traffic` with the given churn and the
    /// default retry policy (3 retries, 10 µs base backoff, ×2).
    #[must_use]
    pub fn new(traffic: TrafficSpec, churn: ChurnSpec) -> ChaosSpec {
        ChaosSpec {
            traffic,
            churn,
            retry: RetryPolicy::default(),
        }
    }
}

/// Why a session ultimately failed (its *first* failing attempt's
/// diagnosis — preserved verbatim through every retry, so backoff
/// exhaustion still reports the original cause).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionFailure {
    /// A constituent message hit a fault (dead endpoint, dead channel,
    /// or a failed dependency).
    Faulted(FaultCause),
    /// The fault-pruned retry tree could not cover every requested
    /// destination (dead or unreachable nodes).
    Unreachable {
        /// Requested destinations the tree could not reach.
        missing: usize,
    },
    /// The session was cut off by the observation-window horizon.
    /// Terminal: window cuts are measurement artifacts and never retry.
    WindowCut,
}

impl fmt::Display for SessionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionFailure::Faulted(cause) => write!(f, "session hit a fault: {cause}"),
            SessionFailure::Unreachable { missing } => {
                write!(f, "{missing} destination(s) unreachable after repair")
            }
            SessionFailure::WindowCut => {
                write!(f, "session cut off by the observation window")
            }
        }
    }
}

impl std::error::Error for SessionFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionFailure::Faulted(cause) => Some(cause),
            SessionFailure::Unreachable { .. } | SessionFailure::WindowCut => None,
        }
    }
}

/// The typed error of a session lost after exhausting its retry budget
/// (or whose next retry would land past the horizon): chains through
/// [`source`](std::error::Error::source) to the original
/// [`SessionFailure`], and through that to the underlying
/// [`FaultCause`] when there was one.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetriesExhausted {
    /// Attempts actually made (1 initial + retries).
    pub attempts: u32,
    /// The first attempt's failure diagnosis.
    pub cause: SessionFailure,
}

impl fmt::Display for RetriesExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session lost after {} attempt(s)", self.attempts)
    }
}

impl std::error::Error for RetriesExhausted {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.cause)
    }
}

/// One session's outcome inside a chaos run.
#[derive(Clone, Debug)]
pub struct ChaosSession {
    /// When the session first entered the network.
    pub arrival: SimTime,
    /// When its final attempt resolved (last delivery, abort, or — for
    /// a session whose retry fell past the horizon — the failed
    /// attempt's resolution).
    pub completion: SimTime,
    /// `completion − arrival`.
    pub latency: SimTime,
    /// Attempts made (1 = delivered first try).
    pub attempts: u32,
    /// Whether every originally requested destination was delivered to.
    pub delivered: bool,
    /// Why the session failed, when it did — the first failing
    /// attempt's diagnosis, preserved through every retry.
    pub failure: Option<SessionFailure>,
}

impl ChaosSession {
    /// The typed retry-exhaustion error of a lost session (`None` for
    /// delivered or merely window-cut sessions).
    #[must_use]
    pub fn as_error(&self) -> Option<RetriesExhausted> {
        match self.failure {
            Some(cause) if cause != SessionFailure::WindowCut => Some(RetriesExhausted {
                attempts: self.attempts,
                cause,
            }),
            _ => None,
        }
    }
}

/// Outcome of one chaos run: per-session records plus degradation and
/// recovery statistics.
#[derive(Clone, Debug)]
pub struct ChaosReport {
    /// Offered load, sessions per millisecond.
    pub offered_rate_per_ms: f64,
    /// One record per injected session, in arrival order.
    pub sessions: Vec<ChaosSession>,
    /// Sessions discarded before measurement.
    pub warmup: usize,
    /// Sessions included in the measurement (post-warmup).
    pub measured_sessions: usize,
    /// Measured sessions whose every destination was delivered to.
    pub delivered_measured: usize,
    /// `delivered_measured / measured_sessions` (1.0 when nothing was
    /// measured).
    pub delivery_ratio: f64,
    /// Batch-means statistics over measured delivered-session latencies
    /// in milliseconds (retries included: a rescued session's latency
    /// spans all its attempts).
    pub latency: BatchMeans,
    /// Delivered measured sessions per millisecond of measurement span
    /// — the *goodput* against the offered load.
    pub goodput_per_ms: f64,
    /// Distribution of attempts per session: `retry_histogram[k]` =
    /// sessions that made exactly `k + 1` attempts.
    pub retry_histogram: Vec<u64>,
    /// Sessions lost to retry exhaustion (or a retry past the horizon).
    pub lost: u64,
    /// Sessions cut off by the horizon (terminal, never retried).
    pub window_cut: u64,
    /// Time from the last fault/repair event until the last disrupted
    /// session resolved — `Some(ZERO)` when churn never disrupted
    /// anything, `None` when there was no churn at all.
    pub time_to_recover: Option<SimTime>,
    /// Tree-cache counters (hits/misses/evictions/invalidations).
    pub cache: CacheStats,
    /// Network statistics, aggregated over every per-epoch wave.
    pub net: NetStats,
    /// The observation window the run executed under.
    pub horizon: SimTime,
    /// Number of fault epochs the window was partitioned into.
    pub epochs: usize,
    /// Number of fault/repair events in the generated timeline.
    pub fault_events: usize,
}

/// One pending session attempt.
#[derive(Clone, Debug)]
pub(crate) struct Attempt {
    pub(crate) session: usize,
    pub(crate) number: u32,
    pub(crate) launch: SimTime,
    pub(crate) first_failure: Option<SessionFailure>,
}

/// How one simulated attempt ended.
pub(crate) enum AttemptOutcome {
    Delivered,
    Failed(SessionFailure),
    WindowCut,
}

/// One attempt's slice of a wave workload: the message range it
/// occupies, how many requested destinations its tree could not cover,
/// and whether its tree came out of the cache.
pub(crate) struct WaveSpan {
    pub(crate) range: std::ops::Range<usize>,
    pub(crate) missing: usize,
    pub(crate) cache_hit: bool,
}

/// A flight recorder threaded through the epoch-wave loop. The plain
/// chaos entry points use [`NoTelemetry`], which monomorphizes to the
/// unobserved engine and records nothing — byte-identity of the plain
/// path is pinned by the zero-churn equivalence tests.
pub(crate) trait WaveTelemetry {
    /// The engine probe simulated waves run under.
    type P: Probe;
    /// The probe to observe the next wave with.
    fn probe(&mut self) -> &mut Self::P;
    /// Called once per simulated wave, after the engine run, with the
    /// wave's attempts (in launch order), their workload spans, the raw
    /// run result, and the epoch's fault plan (deadline included).
    fn record_wave(
        &mut self,
        attempts: &[Attempt],
        spans: &[WaveSpan],
        run: &wormsim::RunResult,
        plan: &wormsim::FaultPlan,
    );
}

/// The no-op recorder: a [`NoopProbe`] and empty hooks.
#[derive(Default)]
pub(crate) struct NoTelemetry(NoopProbe);

impl WaveTelemetry for NoTelemetry {
    type P = NoopProbe;
    fn probe(&mut self) -> &mut NoopProbe {
        &mut self.0
    }
    fn record_wave(
        &mut self,
        _attempts: &[Attempt],
        _spans: &[WaveSpan],
        _run: &wormsim::RunResult,
        _plan: &wormsim::FaultPlan,
    ) {
    }
}

/// Runs open-loop multicast traffic on a hypercube under online fault
/// churn. See the module docs for the execution model.
///
/// # Panics
/// See [`run_cube`](crate::run_cube); additionally panics on a
/// malformed [`ChurnSpec`] (nonpositive MTBF).
#[must_use]
pub fn run_chaos_cube(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &wormsim::SimParams,
) -> ChaosReport {
    let mut scratch = EngineScratch::new();
    run_chaos_cube_with_scratch(spec, cube, resolution, algo, params, &mut scratch)
}

/// Scratch-reusing [`run_chaos_cube`]; byte-identical reports.
///
/// # Panics
/// See [`run_chaos_cube`].
#[must_use]
pub fn run_chaos_cube_with_scratch(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &wormsim::SimParams,
    scratch: &mut EngineScratch,
) -> ChaosReport {
    let timeline = spec.churn.timeline_on(&cube, spec.traffic.seed);
    run_chaos_cube_on_timeline(spec, cube, resolution, algo, params, &timeline, scratch)
}

/// [`run_chaos_cube`] against an explicit, already-rendered fault
/// timeline (scripted outages, tests). The [`ChurnSpec`] inside `spec`
/// is ignored; everything else applies unchanged.
///
/// # Panics
/// See [`run_chaos_cube`].
#[must_use]
pub fn run_chaos_cube_on_timeline(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &wormsim::SimParams,
    timeline: &FaultTimeline,
    scratch: &mut EngineScratch,
) -> ChaosReport {
    run_chaos_cube_on_timeline_telemetry(
        spec,
        cube,
        resolution,
        algo,
        params,
        timeline,
        scratch,
        &mut NoTelemetry::default(),
    )
}

/// [`run_chaos_cube_on_timeline`] with a [`WaveTelemetry`] recorder
/// observing every wave. The report is byte-identical regardless of the
/// recorder (probes never perturb the engine).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_chaos_cube_on_timeline_telemetry<T: WaveTelemetry>(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &wormsim::SimParams,
    timeline: &FaultTimeline,
    scratch: &mut EngineScratch,
    tel: &mut T,
) -> ChaosReport {
    // Draw the arrival schedule and every destination pattern up front,
    // in exactly the plain engine's RNG order — churn must not perturb
    // the traffic stream.
    let mut rng = StdRng::seed_from_u64(spec.traffic.seed);
    let schedule = spec
        .traffic
        .arrivals
        .schedule(&mut rng, spec.traffic.sessions);
    let draws: Vec<(NodeId, Vec<NodeId>)> = schedule
        .iter()
        .map(|_| spec.traffic.pattern.draw_cube(&mut rng, cube))
        .collect();

    let mut cache = TreeCache::new(spec.traffic.cache_capacity);
    let build = |cache: &mut TreeCache,
                 attempt: &Attempt,
                 faults: &NetworkFaults|
     -> std::sync::Arc<hypercast::MulticastTree> {
        let (source, dests) = &draws[attempt.session];
        if attempt.number == 1 {
            // End-to-end fault detection: the first attempt always
            // replays the pristine tree (the source has not yet learned
            // of any fault).
            cache
                .get_or_build(algo, cube, resolution, params.port_model, *source, dests)
                .expect("traffic destination draw produced an invalid multicast")
        } else {
            cache
                .get_or_build_repaired(
                    algo,
                    cube,
                    resolution,
                    params.port_model,
                    *source,
                    dests,
                    faults,
                )
                .expect("traffic destination draw produced an invalid multicast")
        }
    };

    run_epoch_waves(
        spec,
        &schedule,
        timeline,
        &mut cache,
        scratch,
        |cache, attempts, faults, plan, scratch| {
            let mut workload: Vec<DepMessage> = Vec::new();
            let mut spans = Vec::with_capacity(attempts.len());
            for attempt in attempts {
                let before = cache.stats();
                let tree = build(cache, attempt, faults);
                let cache_hit = cache.stats().since(before).hits > 0;
                let range =
                    push_tree_session(&mut workload, &tree, spec.traffic.bytes, attempt.launch);
                // Coverage check: which requested destinations does the
                // (possibly repaired) tree actually reach?
                let covered: BTreeSet<NodeId> = tree.unicasts.iter().map(|u| u.dst).collect();
                let missing = draws[attempt.session]
                    .1
                    .iter()
                    .filter(|d| !covered.contains(d))
                    .count();
                spans.push(WaveSpan {
                    range,
                    missing,
                    cache_hit,
                });
            }
            let run = simulate_observed_with_faults_on_with_scratch(
                Ecube::new(cube, resolution),
                params,
                &workload,
                plan,
                tel.probe(),
                scratch,
            )
            .expect("windowed chaos runs cannot deadlock");
            tel.record_wave(attempts, &spans, &run, plan);
            (run, spans)
        },
    )
}

/// Separate-addressing chaos on any routed topology: each attempt
/// re-sends one independent unicast per destination — there is no tree
/// and no repair, so recovery relies entirely on the victim node or
/// link reviving before the retry budget runs out (the baseline the
/// tree algorithms' repair path is measured against).
///
/// # Panics
/// See [`run_separate_on`](crate::run_separate_on).
#[must_use]
pub fn run_chaos_separate_on<R: Router + Copy>(
    spec: &ChaosSpec,
    router: R,
    params: &wormsim::SimParams,
) -> ChaosReport
where
    R::Topo: Topology,
{
    let mut scratch = EngineScratch::new();
    run_chaos_separate_on_with_scratch(spec, router, params, &mut scratch)
}

/// Scratch-reusing [`run_chaos_separate_on`]; byte-identical reports.
///
/// # Panics
/// See [`run_chaos_separate_on`].
#[must_use]
pub fn run_chaos_separate_on_with_scratch<R: Router + Copy>(
    spec: &ChaosSpec,
    router: R,
    params: &wormsim::SimParams,
    scratch: &mut EngineScratch,
) -> ChaosReport
where
    R::Topo: Topology,
{
    run_chaos_separate_telemetry_on_with_scratch(spec, router, params, scratch, &mut {
        NoTelemetry::default()
    })
}

/// [`run_chaos_separate_on_with_scratch`] with a [`WaveTelemetry`]
/// recorder observing every wave; byte-identical reports.
pub(crate) fn run_chaos_separate_telemetry_on_with_scratch<R: Router + Copy, T: WaveTelemetry>(
    spec: &ChaosSpec,
    router: R,
    params: &wormsim::SimParams,
    scratch: &mut EngineScratch,
    tel: &mut T,
) -> ChaosReport
where
    R::Topo: Topology,
{
    let topo = router.topology();
    // Churn at the router's (link, lane) fault granularity: every lane
    // is an independent failure element. For the dateline torus this is
    // the same per-virtual-channel element space the old 4n-port
    // encoding churned over (byte-identity pinned in `churn`'s tests).
    let timeline = spec
        .churn
        .timeline_on_lanes(&topo, router.lanes(), spec.traffic.seed);
    let mut rng = StdRng::seed_from_u64(spec.traffic.seed);
    let schedule = spec
        .traffic
        .arrivals
        .schedule(&mut rng, spec.traffic.sessions);
    let draws: Vec<(NodeId, Vec<NodeId>)> = schedule
        .iter()
        .map(|_| spec.traffic.pattern.draw_on(&mut rng, &topo))
        .collect();

    let mut cache = TreeCache::new(0); // separate addressing builds no trees
    run_epoch_waves(
        spec,
        &schedule,
        &timeline,
        &mut cache,
        scratch,
        |_cache, attempts, _faults, plan, scratch| {
            let mut workload: Vec<DepMessage> = Vec::new();
            let mut spans = Vec::with_capacity(attempts.len());
            for attempt in attempts {
                let (source, dests) = &draws[attempt.session];
                let base = workload.len();
                for &dst in dests {
                    workload.push(DepMessage {
                        src: *source,
                        dst,
                        bytes: spec.traffic.bytes,
                        deps: vec![],
                        min_start: attempt.launch,
                    });
                }
                spans.push(WaveSpan {
                    range: base..workload.len(),
                    missing: 0,
                    cache_hit: false,
                });
            }
            let run = simulate_observed_with_faults_on_with_scratch(
                router,
                params,
                &workload,
                plan,
                tel.probe(),
                scratch,
            )
            .expect("windowed chaos runs cannot deadlock");
            tel.record_wave(attempts, &spans, &run, plan);
            (run, spans)
        },
    )
}

/// The shared epoch-wave loop: partitions attempts by launch epoch,
/// simulates each wave under its epoch's fault plan (plus the window
/// deadline), classifies every attempt, schedules retries, and
/// assembles the report. `simulate_wave` builds and runs one wave's
/// workload, returning the run plus each attempt's `(range, missing)`.
fn run_epoch_waves<F>(
    spec: &ChaosSpec,
    schedule: &[SimTime],
    timeline: &FaultTimeline,
    cache: &mut TreeCache,
    scratch: &mut EngineScratch,
    mut simulate_wave: F,
) -> ChaosReport
where
    F: FnMut(
        &mut TreeCache,
        &[Attempt],
        &NetworkFaults,
        &wormsim::FaultPlan,
        &mut EngineScratch,
    ) -> (wormsim::RunResult, Vec<WaveSpan>),
{
    let horizon = spec.traffic.horizon;
    let epochs: Vec<FaultEpoch> = timeline.epochs();
    let epoch_of = |t: SimTime| -> usize {
        // Last epoch whose start is <= t.
        epochs.partition_point(|e| e.start <= t).saturating_sub(1)
    };

    // Per-epoch pending queues, seeded with every session's first
    // attempt (sessions arriving past the horizon still launch — the
    // window cuts them, exactly as in the plain engine).
    let mut pending: Vec<Vec<Attempt>> = vec![Vec::new(); epochs.len()];
    for (session, &arrival) in schedule.iter().enumerate() {
        pending[epoch_of(arrival)].push(Attempt {
            session,
            number: 1,
            launch: arrival,
            first_failure: None,
        });
    }

    let max_attempts = 1 + spec.retry.max_retries;
    let mut sessions: Vec<Option<ChaosSession>> = vec![None; schedule.len()];
    let mut net = NetStats::default();
    let mut lost: u64 = 0;

    for e in 0..epochs.len() {
        cache.set_epoch(epochs[e].index);
        let faults = NetworkFaults::from(&epochs[e].plan);
        let mut plan = epochs[e].plan.clone();
        plan.deadline_all(horizon);
        // Waves: retries that land back inside this epoch run in the
        // next wave. Bounded by the retry budget, so this terminates.
        while !pending[e].is_empty() {
            let mut wave = std::mem::take(&mut pending[e]);
            wave.sort_by_key(|a| (a.launch, a.session, a.number));
            let (run, spans) = simulate_wave(cache, &wave, &faults, &plan, scratch);
            net.absorb(&run.stats);
            for (attempt, span) in wave.into_iter().zip(spans) {
                let msgs = &run.messages[span.range];
                let resolution = msgs
                    .iter()
                    .map(|m| m.delivered)
                    .max()
                    .unwrap_or(attempt.launch);
                let outcome = classify(msgs, span.missing);
                let arrival = schedule[attempt.session];
                match outcome {
                    AttemptOutcome::Delivered => {
                        sessions[attempt.session] = Some(ChaosSession {
                            arrival,
                            completion: resolution,
                            latency: resolution.saturating_sub(arrival),
                            attempts: attempt.number,
                            delivered: true,
                            failure: None,
                        });
                    }
                    AttemptOutcome::WindowCut => {
                        // Terminal: never retried (see the module docs).
                        sessions[attempt.session] = Some(ChaosSession {
                            arrival,
                            completion: resolution,
                            latency: resolution.saturating_sub(arrival),
                            attempts: attempt.number,
                            delivered: false,
                            failure: Some(SessionFailure::WindowCut),
                        });
                    }
                    AttemptOutcome::Failed(failure) => {
                        let first_failure = attempt.first_failure.unwrap_or(failure);
                        let backoff_us = spec.retry.backoff(attempt.number);
                        let relaunch = resolution + SimTime::from_ns(backoff_us * 1000);
                        if attempt.number >= max_attempts || relaunch >= horizon {
                            lost += 1;
                            sessions[attempt.session] = Some(ChaosSession {
                                arrival,
                                completion: resolution,
                                latency: resolution.saturating_sub(arrival),
                                attempts: attempt.number,
                                delivered: false,
                                failure: Some(first_failure),
                            });
                        } else {
                            pending[epoch_of(relaunch).max(e)].push(Attempt {
                                session: attempt.session,
                                number: attempt.number + 1,
                                launch: relaunch,
                                first_failure: Some(first_failure),
                            });
                        }
                    }
                }
            }
        }
    }

    let sessions: Vec<ChaosSession> = sessions
        .into_iter()
        .map(|s| s.expect("every attempt chain reaches a terminal state"))
        .collect();
    assemble_chaos(spec, sessions, timeline, cache.stats(), net, lost)
}

/// Classifies one attempt from its per-message outcomes plus the
/// count of requested destinations its tree could not cover.
pub(crate) fn classify(msgs: &[wormsim::MessageResult], missing: usize) -> AttemptOutcome {
    if let Some(cause) = msgs.iter().find_map(|m| match m.outcome {
        Outcome::Failed(cause) => Some(cause),
        _ => None,
    }) {
        return AttemptOutcome::Failed(SessionFailure::Faulted(cause));
    }
    if missing > 0 {
        return AttemptOutcome::Failed(SessionFailure::Unreachable { missing });
    }
    if msgs.iter().any(|m| m.outcome == Outcome::TimedOut) {
        return AttemptOutcome::WindowCut;
    }
    AttemptOutcome::Delivered
}

/// Assembles the final report from terminal session records.
/// `pub(crate)` so the sharded driver can assemble the identical report
/// from its per-session attempt chains.
pub(crate) fn assemble_chaos(
    spec: &ChaosSpec,
    sessions: Vec<ChaosSession>,
    timeline: &FaultTimeline,
    cache: CacheStats,
    net: NetStats,
    lost: u64,
) -> ChaosReport {
    let warmup = spec.traffic.warmup.min(sessions.len());
    let measured = &sessions[warmup..];
    let delivered: Vec<&ChaosSession> = measured.iter().filter(|s| s.delivered).collect();
    let latencies_ms: Vec<f64> = delivered.iter().map(|s| s.latency.as_ms()).collect();
    let latency = BatchMeans::of(&latencies_ms, spec.traffic.max_batches);
    let delivery_ratio = if measured.is_empty() {
        1.0
    } else {
        delivered.len() as f64 / measured.len() as f64
    };
    let goodput_per_ms = match (
        measured.first(),
        delivered.iter().map(|s| s.completion).max(),
    ) {
        (Some(first), Some(last)) => {
            let span_ms = last.saturating_sub(first.arrival).as_ms();
            if span_ms > 0.0 {
                delivered.len() as f64 / span_ms
            } else {
                0.0
            }
        }
        _ => 0.0,
    };
    let max_attempts = sessions.iter().map(|s| s.attempts).max().unwrap_or(1);
    let mut retry_histogram = vec![0u64; max_attempts as usize];
    for s in &sessions {
        retry_histogram[s.attempts as usize - 1] += 1;
    }
    let window_cut = sessions
        .iter()
        .filter(|s| s.failure == Some(SessionFailure::WindowCut))
        .count() as u64;
    // Time-to-recover: from the last fault/repair event until the last
    // disrupted session (a retry or an undelivered outcome) resolved.
    let time_to_recover = timeline.last_event().map(|last_event| {
        sessions
            .iter()
            .filter(|s| s.attempts > 1 || !s.delivered)
            .map(|s| s.completion)
            .max()
            .map_or(SimTime::ZERO, |t| t.saturating_sub(last_event))
    });
    ChaosReport {
        offered_rate_per_ms: spec.traffic.arrivals.rate_per_ms,
        warmup,
        measured_sessions: measured.len(),
        delivered_measured: delivered.len(),
        delivery_ratio,
        latency,
        goodput_per_ms,
        retry_histogram,
        lost,
        window_cut,
        time_to_recover,
        cache,
        net,
        horizon: spec.traffic.horizon,
        epochs: timeline.epochs().len(),
        fault_events: timeline.len(),
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, Arrivals};
    use crate::engine::{run_cube, run_separate_on};
    use crate::patterns::DestPattern;
    use hcube::{Torus, TorusRouter};
    use hypercast::PortModel;
    use wormsim::{FaultEvent, FaultEventKind, SimParams};

    fn traffic_spec(rate: f64, sessions: usize, seed: u64) -> TrafficSpec {
        TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, rate),
            DestPattern::UniformRandom { m: 6 },
            sessions,
            seed,
        )
    }

    fn churny(until: SimTime) -> ChurnSpec {
        ChurnSpec {
            link_mtbf_ms: 10.0,
            link_mttr_ms: 2.0,
            node_mtbf_ms: 40.0,
            node_mttr_ms: 3.0,
            churn_until: until,
        }
    }

    /// The fields a quiet chaos run must replicate byte-for-byte from
    /// the plain engine.
    fn plain_view(r: &crate::engine::TrafficReport) -> String {
        let per_session: Vec<_> = r
            .sessions
            .iter()
            .map(|s| (s.arrival, s.completion, s.latency, s.delivered))
            .collect();
        format!(
            "{per_session:?} {:?} {:?} {:?} {} {} {}",
            r.latency,
            r.cache,
            r.net,
            r.completed_measured,
            r.completion_ratio,
            r.throughput_per_ms
        )
    }

    fn chaos_view(r: &ChaosReport) -> String {
        let per_session: Vec<_> = r
            .sessions
            .iter()
            .map(|s| (s.arrival, s.completion, s.latency, s.delivered))
            .collect();
        format!(
            "{per_session:?} {:?} {:?} {:?} {} {} {}",
            r.latency, r.cache, r.net, r.delivered_measured, r.delivery_ratio, r.goodput_per_ms
        )
    }

    #[test]
    fn zero_churn_cube_run_matches_the_plain_engine() {
        let params = SimParams::ncube2(PortModel::AllPort);
        // Include a load high enough that some sessions get window-cut,
        // to pin that cut sessions are terminal (not retried).
        for rate in [2.0, 60.0] {
            let ts = traffic_spec(rate, 40, 11);
            let plain = run_cube(
                &ts,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
            );
            let chaos = run_chaos_cube(
                &ChaosSpec::new(ts, ChurnSpec::quiet()),
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
            );
            assert_eq!(plain_view(&plain), chaos_view(&chaos), "rate {rate}");
            assert!(chaos.sessions.iter().all(|s| s.attempts == 1));
            assert_eq!(chaos.time_to_recover, None);
            assert_eq!(chaos.epochs, 1);
            assert_eq!(chaos.lost, 0);
        }
    }

    #[test]
    fn zero_churn_separate_run_matches_the_plain_engine() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let torus = Torus::of(4, 2);
        let ts = traffic_spec(1.0, 25, 9);
        let plain = run_separate_on(&ts, TorusRouter::new(torus), &params);
        let chaos = run_chaos_separate_on(
            &ChaosSpec::new(ts, ChurnSpec::quiet()),
            TorusRouter::new(torus),
            &params,
        );
        assert_eq!(plain_view(&plain), chaos_view(&chaos));
    }

    #[test]
    fn chaos_run_is_byte_deterministic_and_scratch_invariant() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let spec = ChaosSpec::new(traffic_spec(2.0, 40, 11), churny(SimTime::from_ms(10)));
        let fresh = run_chaos_cube(
            &spec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let mut scratch = EngineScratch::new();
        for _ in 0..2 {
            let again = run_chaos_cube_with_scratch(
                &spec,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                &mut scratch,
            );
            assert_eq!(format!("{fresh:?}"), format!("{again:?}"));
        }
    }

    #[test]
    fn churn_causes_retries_and_recovery_is_measured() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut ts = traffic_spec(2.0, 60, 3);
        ts.horizon = SimTime::from_ms(60);
        let spec = ChaosSpec::new(ts, churny(SimTime::from_ms(15)));
        let r = run_chaos_cube(
            &spec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        assert!(r.fault_events > 0, "this churn spec must produce events");
        assert!(r.epochs > 1);
        assert!(
            r.sessions.iter().any(|s| s.attempts > 1) || r.lost > 0,
            "churn at this density must disrupt at least one session"
        );
        let ttr = r
            .time_to_recover
            .expect("churn ran, so recovery is measured");
        assert!(
            ttr < r.horizon,
            "recovery must complete inside the window, got {ttr}"
        );
        assert_eq!(
            r.retry_histogram.iter().sum::<u64>() as usize,
            r.sessions.len()
        );
        assert!(
            r.cache.invalidations > 0 || r.cache.misses > 0,
            "epoch advances must show up in the cache counters"
        );
    }

    #[test]
    fn dead_destination_exhausts_retries_preserving_the_original_cause() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let victim = NodeId(9);
        let mut ts = TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, 1.0),
            DestPattern::Fixed {
                source: NodeId(0),
                dests: vec![NodeId(3), victim],
            },
            1,
            5,
        );
        ts.warmup = 0;
        // The destination dies before the run and never revives.
        let timeline = FaultTimeline::new(vec![FaultEvent {
            at: SimTime::ZERO,
            kind: FaultEventKind::NodeDown(victim),
        }]);
        let spec = ChaosSpec::new(ts, ChurnSpec::quiet());
        let r = run_chaos_cube_on_timeline(
            &spec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            &timeline,
            &mut EngineScratch::new(),
        );
        let s = &r.sessions[0];
        assert!(!s.delivered);
        assert_eq!(
            s.attempts,
            1 + spec.retry.max_retries,
            "the full retry budget must be spent"
        );
        assert_eq!(r.lost, 1);
        // The *first* attempt hit the dead endpoint; later repaired
        // attempts merely pruned it. Exhaustion must still report the
        // original cause through the error chain.
        let err = s.as_error().expect("lost sessions expose a typed error");
        assert_eq!(err.attempts, s.attempts);
        let source = std::error::Error::source(&err).expect("chained to the session failure");
        assert_eq!(
            source.to_string(),
            SessionFailure::Faulted(FaultCause::DeadEndpoint).to_string()
        );
        let root = source.source().expect("chained through to the fault cause");
        assert_eq!(root.to_string(), FaultCause::DeadEndpoint.to_string());
        assert_eq!(err.cause, SessionFailure::Faulted(FaultCause::DeadEndpoint));
    }

    #[test]
    fn repaired_retry_rescues_a_session_after_the_victim_revives() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let victim = NodeId(3);
        let mut ts = TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, 1.0),
            DestPattern::Fixed {
                source: NodeId(0),
                dests: vec![victim, NodeId(17)],
            },
            1,
            5,
        );
        ts.warmup = 0;
        ts.horizon = SimTime::from_ms(100);
        // Dead at launch, revived well before the backoff expires.
        let timeline = FaultTimeline::new(vec![
            FaultEvent {
                at: SimTime::ZERO,
                kind: FaultEventKind::NodeDown(victim),
            },
            FaultEvent {
                at: SimTime::from_ns(1_000),
                kind: FaultEventKind::NodeUp(victim),
            },
        ]);
        let spec = ChaosSpec::new(ts, ChurnSpec::quiet());
        let r = run_chaos_cube_on_timeline(
            &spec,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            &timeline,
            &mut EngineScratch::new(),
        );
        let s = &r.sessions[0];
        assert!(s.delivered, "the retry must land after the revival");
        assert!(s.attempts > 1);
        assert_eq!(s.failure, None);
        assert_eq!(r.lost, 0);
        let ttr = r.time_to_recover.expect("faults happened");
        assert!(ttr > SimTime::ZERO);
    }
}
