//! Steady-state output analysis: warmup truncation, batch-means
//! confidence intervals, throughput, and the saturation detector.
//!
//! Open-loop simulations start empty, so early sessions see an
//! unrepresentatively idle network; the engine discards a configured
//! *warmup* prefix before measuring. Because successive session
//! latencies are autocorrelated (they share channels), the classic
//! i.i.d. confidence interval is invalid — the module uses the
//! **batch-means** method instead: partition the measured sequence into
//! `k` contiguous batches, treat the batch means as (approximately)
//! independent, and build a Student-t interval over them.
//!
//! Everything here is pure f64 arithmetic over already-deterministic
//! inputs (`sqrt` is correctly rounded per IEEE-754), so reports are
//! byte-stable across platforms.

/// Two-sided 95% Student-t critical values, indexed by degrees of
/// freedom (1-based; index 0 unused). Beyond the table the normal
/// quantile 1.96 is used.
const T_95: [f64; 31] = [
    f64::NAN,
    12.706,
    4.303,
    3.182,
    2.776,
    2.571,
    2.447,
    2.365,
    2.306,
    2.262,
    2.228,
    2.201,
    2.179,
    2.160,
    2.145,
    2.131,
    2.120,
    2.110,
    2.101,
    2.093,
    2.086,
    2.080,
    2.074,
    2.069,
    2.064,
    2.060,
    2.056,
    2.052,
    2.048,
    2.045,
    2.042,
];

fn t_crit(df: usize) -> f64 {
    if df == 0 {
        f64::NAN
    } else if df < T_95.len() {
        T_95[df]
    } else {
        1.96
    }
}

/// A batch-means summary of one measured latency sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchMeans {
    /// Observations measured (post-warmup, completed sessions).
    pub n: usize,
    /// Number of batches actually formed.
    pub batches: usize,
    /// Grand mean over all measured observations.
    pub mean: f64,
    /// Half-width of the 95% confidence interval on the mean (batch
    /// means, Student-t). `NaN` with fewer than 2 batches.
    pub ci_half_width: f64,
}

impl BatchMeans {
    /// Computes batch-means statistics over `xs` using up to
    /// `max_batches` contiguous, nearly-equal batches: when `n` is not
    /// a multiple of the batch count, the remainder is distributed one
    /// observation at a time across the leading batches, so batch sizes
    /// never differ by more than 1. (Folding the whole remainder into
    /// one batch — the old behavior — weights that batch's mean
    /// equally in the variance while it summarizes up to twice as many
    /// observations, biasing the confidence interval whenever
    /// `n % k != 0`.)
    ///
    /// With fewer observations than batches, each observation is its
    /// own batch. Empty input gives `n = 0` and `NaN` statistics.
    #[must_use]
    pub fn of(xs: &[f64], max_batches: usize) -> BatchMeans {
        let n = xs.len();
        if n == 0 {
            return BatchMeans {
                n: 0,
                batches: 0,
                mean: f64::NAN,
                ci_half_width: f64::NAN,
            };
        }
        let mean = xs.iter().sum::<f64>() / n as f64;
        let k = max_batches.max(1).min(n);
        let base = n / k;
        let rem = n % k;
        let mut batch_means = Vec::with_capacity(k);
        let mut start = 0;
        for b in 0..k {
            // The first `rem` batches absorb one extra observation.
            let len = base + usize::from(b < rem);
            let end = start + len;
            batch_means.push(xs[start..end].iter().sum::<f64>() / len as f64);
            start = end;
        }
        debug_assert_eq!(start, n);
        let ci_half_width = if k < 2 {
            f64::NAN
        } else {
            let bm_mean = batch_means.iter().sum::<f64>() / k as f64;
            let var = batch_means
                .iter()
                .map(|&m| (m - bm_mean) * (m - bm_mean))
                .sum::<f64>()
                / (k as f64 - 1.0);
            t_crit(k - 1) * (var / k as f64).sqrt()
        };
        BatchMeans {
            n,
            batches: k,
            mean,
            ci_half_width,
        }
    }
}

/// Latency quantiles in milliseconds, resolved from a log₂-bucketed
/// [`wormsim::Histogram`] of **nanosecond** samples. Each quantile is
/// the upper bound of the bucket its rank falls in (conservative within
/// a factor of 2 — the price of the fixed-size deterministic
/// representation the telemetry time-series is built on). All three
/// are `NaN` for an empty histogram.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantiles {
    /// Median latency (ms), bucket-resolved.
    pub p50_ms: f64,
    /// 95th-percentile latency (ms), bucket-resolved.
    pub p95_ms: f64,
    /// 99th-percentile latency (ms), bucket-resolved.
    pub p99_ms: f64,
}

impl Quantiles {
    /// Resolves p50/p95/p99 from a histogram of nanosecond samples.
    #[must_use]
    pub fn from_latency_histogram(h: &wormsim::Histogram) -> Quantiles {
        let ms = |q: f64| -> f64 { h.quantile(q).map_or(f64::NAN, |ns| ns as f64 / 1_000_000.0) };
        Quantiles {
            p50_ms: ms(0.50),
            p95_ms: ms(0.95),
            p99_ms: ms(0.99),
        }
    }
}

/// One measured load point of a latency-vs-offered-load sweep.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadPoint {
    /// Offered load, sessions per millisecond.
    pub offered: f64,
    /// Mean session latency (ms) among completed measured sessions.
    pub mean_latency_ms: f64,
    /// Fraction of measured sessions that completed inside the window.
    pub completion_ratio: f64,
}

/// Detects the saturation load of a sweep: the smallest offered load at
/// which the network stops keeping up, defined as **either**
///
/// * mean latency exceeding `latency_factor` × the base (lowest-load)
///   latency — the latency knee, **or**
/// * the completion ratio dropping below `min_completion` — sessions
///   overflowing the observation window outright.
///
/// Points must be sorted by ascending offered load. Returns `None` when
/// every point is below both thresholds (the sweep never saturated).
///
/// ```
/// use traffic::stats::{saturation_point, LoadPoint};
/// let pts = [
///     LoadPoint { offered: 1.0, mean_latency_ms: 0.4, completion_ratio: 1.0 },
///     LoadPoint { offered: 2.0, mean_latency_ms: 0.5, completion_ratio: 1.0 },
///     LoadPoint { offered: 4.0, mean_latency_ms: 2.9, completion_ratio: 0.98 },
/// ];
/// assert_eq!(saturation_point(&pts, 4.0, 0.9), Some(4.0));
/// ```
/// The base latency is the **first finite** mean in the sweep: a point
/// with zero completed sessions reports `NaN` latency, and using it as
/// the base would silently disable the latency-knee test for the whole
/// sweep (every `NaN` comparison is false). The completion-ratio test
/// is independent of the base and always applies.
#[must_use]
pub fn saturation_point(
    points: &[LoadPoint],
    latency_factor: f64,
    min_completion: f64,
) -> Option<f64> {
    let base = points
        .iter()
        .map(|p| p.mean_latency_ms)
        .find(|m| m.is_finite());
    points
        .iter()
        .find(|p| {
            matches!(base, Some(b) if b > 0.0 && p.mean_latency_ms > latency_factor * b)
                || p.completion_ratio < min_completion
        })
        .map(|p| p.offered)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_means_of_a_constant_sequence() {
        let xs = vec![2.5; 40];
        let bm = BatchMeans::of(&xs, 10);
        assert_eq!(bm.n, 40);
        assert_eq!(bm.batches, 10);
        assert!((bm.mean - 2.5).abs() < 1e-12);
        assert!(bm.ci_half_width.abs() < 1e-12);
    }

    #[test]
    fn batch_means_interval_covers_a_linear_ramp_mean() {
        let xs: Vec<f64> = (0..100).map(f64::from).collect();
        let bm = BatchMeans::of(&xs, 10);
        assert!((bm.mean - 49.5).abs() < 1e-9);
        assert!(bm.ci_half_width > 0.0);
    }

    #[test]
    fn batch_means_degenerates_gracefully() {
        assert_eq!(BatchMeans::of(&[], 10).n, 0);
        let one = BatchMeans::of(&[7.0], 10);
        assert_eq!(one.batches, 1);
        assert!((one.mean - 7.0).abs() < 1e-12);
        assert!(one.ci_half_width.is_nan());
        // Fewer observations than batches: one batch per observation.
        let three = BatchMeans::of(&[1.0, 2.0, 3.0], 10);
        assert_eq!(three.batches, 3);
        assert!(three.ci_half_width > 0.0);
    }

    #[test]
    fn batch_remainder_is_distributed_across_batches() {
        // n = 10, k = 4 → batch sizes 3, 3, 2, 2 (never 2, 2, 2, 4).
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let bm = BatchMeans::of(&xs, 4);
        assert_eq!(bm.batches, 4);
        assert!((bm.mean - 4.5).abs() < 1e-12);
        // Expected batch means over [0,1,2], [3,4,5], [6,7], [8,9].
        let means = [1.0, 4.0, 6.5, 8.5];
        let bm_mean: f64 = means.iter().sum::<f64>() / 4.0;
        let var: f64 = means
            .iter()
            .map(|m| (m - bm_mean) * (m - bm_mean))
            .sum::<f64>()
            / 3.0;
        let expect = 3.182 * (var / 4.0).sqrt();
        assert!(
            (bm.ci_half_width - expect).abs() < 1e-9,
            "CI must weight nearly-equal batches: got {}, want {expect}",
            bm.ci_half_width
        );
    }

    #[test]
    fn equal_batches_are_unchanged_by_the_remainder_rule() {
        let xs: Vec<f64> = (0..40).map(f64::from).collect();
        let a = BatchMeans::of(&xs, 8); // 40 % 8 == 0: exact batches
        assert_eq!(a.batches, 8);
        // Batch b covers 5 consecutive values with mean 5b + 2.
        let means: Vec<f64> = (0..8).map(|b| 5.0 * f64::from(b) + 2.0).collect();
        let bm_mean: f64 = means.iter().sum::<f64>() / 8.0;
        let var: f64 = means
            .iter()
            .map(|m| (m - bm_mean) * (m - bm_mean))
            .sum::<f64>()
            / 7.0;
        let expect = 2.365 * (var / 8.0).sqrt();
        assert!((a.ci_half_width - expect).abs() < 1e-9);
    }

    #[test]
    fn saturation_by_latency_knee() {
        let pts = [
            LoadPoint {
                offered: 0.5,
                mean_latency_ms: 1.0,
                completion_ratio: 1.0,
            },
            LoadPoint {
                offered: 1.0,
                mean_latency_ms: 1.5,
                completion_ratio: 1.0,
            },
            LoadPoint {
                offered: 2.0,
                mean_latency_ms: 9.0,
                completion_ratio: 1.0,
            },
        ];
        assert_eq!(saturation_point(&pts, 4.0, 0.9), Some(2.0));
    }

    #[test]
    fn saturation_by_window_overflow() {
        let pts = [
            LoadPoint {
                offered: 0.5,
                mean_latency_ms: 1.0,
                completion_ratio: 1.0,
            },
            LoadPoint {
                offered: 1.0,
                mean_latency_ms: 1.2,
                completion_ratio: 0.5,
            },
        ];
        assert_eq!(saturation_point(&pts, 10.0, 0.9), Some(1.0));
    }

    #[test]
    fn unsaturated_sweep_returns_none() {
        let pts = [
            LoadPoint {
                offered: 0.5,
                mean_latency_ms: 1.0,
                completion_ratio: 1.0,
            },
            LoadPoint {
                offered: 1.0,
                mean_latency_ms: 1.1,
                completion_ratio: 1.0,
            },
        ];
        assert_eq!(saturation_point(&pts, 4.0, 0.9), None);
        assert_eq!(saturation_point(&[], 4.0, 0.9), None);
    }

    #[test]
    fn nan_base_point_does_not_disable_the_latency_knee() {
        // The lowest load completed zero sessions (NaN latency, caught
        // by the completion test is NOT the case here: ratio kept high
        // to isolate the knee path). The knee must be measured against
        // the first *finite* latency instead.
        let pts = [
            LoadPoint {
                offered: 0.25,
                mean_latency_ms: f64::NAN,
                completion_ratio: 1.0,
            },
            LoadPoint {
                offered: 0.5,
                mean_latency_ms: 1.0,
                completion_ratio: 1.0,
            },
            LoadPoint {
                offered: 2.0,
                mean_latency_ms: 9.0,
                completion_ratio: 1.0,
            },
        ];
        assert_eq!(
            saturation_point(&pts, 4.0, 0.9),
            Some(2.0),
            "knee must fall back to the first finite-latency base"
        );
        // All-NaN latencies: the knee test stays off, the completion
        // test still works.
        let all_nan = [LoadPoint {
            offered: 1.0,
            mean_latency_ms: f64::NAN,
            completion_ratio: 0.2,
        }];
        assert_eq!(saturation_point(&all_nan, 4.0, 0.9), Some(1.0));
    }
}
