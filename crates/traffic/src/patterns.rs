//! Destination populations: *which* multicast does each session run?
//!
//! A traffic source pairs an arrival process (when) with a destination
//! pattern (what). The random patterns delegate every draw to
//! [`hcube::sampling`], so the traffic engine's populations are
//! bit-identical to the figure workloads given the same RNG state.
//!
//! The [`DestPattern::Pool`] variant models the empirically dominant
//! case of *recurring* communication groups (many arrivals, few distinct
//! multicast patterns); it is what gives the tree cache its hit rate
//! under sustained load.

use hcube::{sampling, Cube, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::{Rng, RngCore};

/// How each arriving session picks its multicast source and destination
/// set.
#[derive(Clone, PartialEq, Debug)]
pub enum DestPattern {
    /// Every session runs exactly this multicast (the zero-load
    /// equivalence tests use a one-session run of this pattern).
    Fixed {
        /// Multicast source.
        source: NodeId,
        /// Destination set.
        dests: Vec<NodeId>,
    },
    /// Uniform source, `m` distinct uniform destinations.
    UniformRandom {
        /// Destination count.
        m: usize,
    },
    /// Uniform source, destinations biased into the source's low-order
    /// subcube (see [`sampling::sample_subcube_biased`]). Hypercube
    /// backends only.
    SubcubeBiased {
        /// Destination count.
        m: usize,
        /// Width of the subcube in low dimensions.
        low_dims: u8,
        /// Probability each draw lands in the subcube.
        bias: f64,
    },
    /// Uniform source, destinations concentrated on a few hot nodes
    /// (see [`sampling::sample_hotspot`]).
    Hotspot {
        /// Destination count.
        m: usize,
        /// The hot nodes.
        hotspots: Vec<NodeId>,
        /// Probability each draw picks a hot node.
        p: f64,
    },
    /// Each session picks uniformly from a finite pool of pre-drawn
    /// `(source, destinations)` groups — recurring communication
    /// patterns, the workload the tree cache exists for.
    Pool {
        /// The recurring groups.
        groups: Vec<(NodeId, Vec<NodeId>)>,
    },
}

impl DestPattern {
    /// Builds a [`DestPattern::Pool`] of `groups` uniform-random groups
    /// of `m` destinations each, drawn once up front from `rng`.
    ///
    /// # Panics
    /// If `groups == 0` or the draws themselves panic (oversized `m`).
    #[must_use]
    pub fn uniform_pool<T: Topology, R: RngCore>(
        rng: &mut R,
        topo: &T,
        groups: usize,
        m: usize,
    ) -> DestPattern {
        assert!(groups > 0, "a pool needs at least one group");
        let n = topo.node_count() as u32;
        let pool = (0..groups)
            .map(|_| {
                let source = NodeId(rng.gen_range(0..n));
                let dests = sampling::sample_distinct(rng, topo, source, m);
                (source, dests)
            })
            .collect();
        DestPattern::Pool { groups: pool }
    }

    /// Whether this pattern can run on an arbitrary [`Topology`]
    /// (subcube bias is meaningful only on a hypercube).
    #[must_use]
    pub fn is_topology_generic(&self) -> bool {
        !matches!(self, DestPattern::SubcubeBiased { .. })
    }

    /// Draws one session's `(source, destinations)` on a hypercube.
    ///
    /// # Panics
    /// On invalid parameters (oversized `m`, out-of-range nodes) — the
    /// same contracts as the underlying [`sampling`] draws.
    #[must_use]
    pub fn draw_cube<R: RngCore>(&self, rng: &mut R, cube: Cube) -> (NodeId, Vec<NodeId>) {
        match self {
            DestPattern::SubcubeBiased { m, low_dims, bias } => {
                let n = Topology::node_count(&cube) as u32;
                let source = NodeId(rng.gen_range(0..n));
                let dests =
                    sampling::sample_subcube_biased(rng, cube, source, *m, *low_dims, *bias);
                (source, dests)
            }
            generic => generic.draw_on(rng, &cube),
        }
    }

    /// Draws one session's `(source, destinations)` on any topology.
    ///
    /// # Panics
    /// If the pattern is [`DestPattern::SubcubeBiased`] (use
    /// [`DestPattern::draw_cube`]) or on invalid draw parameters.
    #[must_use]
    pub fn draw_on<T: Topology, R: RngCore>(&self, rng: &mut R, topo: &T) -> (NodeId, Vec<NodeId>) {
        let n = topo.node_count() as u32;
        match self {
            DestPattern::Fixed { source, dests } => (*source, dests.clone()),
            DestPattern::UniformRandom { m } => {
                let source = NodeId(rng.gen_range(0..n));
                let dests = sampling::sample_distinct(rng, topo, source, *m);
                (source, dests)
            }
            DestPattern::SubcubeBiased { .. } => {
                panic!("subcube-biased pattern requires a hypercube backend")
            }
            DestPattern::Hotspot { m, hotspots, p } => {
                let source = NodeId(rng.gen_range(0..n));
                let dests = sampling::sample_hotspot(rng, topo, source, *m, hotspots, *p);
                (source, dests)
            }
            DestPattern::Pool { groups } => {
                let (source, dests) = groups.choose(rng).expect("non-empty pool");
                (*source, dests.clone())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::Torus;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fixed_ignores_the_rng() {
        let p = DestPattern::Fixed {
            source: NodeId(3),
            dests: vec![NodeId(1), NodeId(7)],
        };
        let a = p.draw_cube(&mut StdRng::seed_from_u64(0), Cube::of(3));
        let b = p.draw_cube(&mut StdRng::seed_from_u64(99), Cube::of(3));
        assert_eq!(a, b);
        assert_eq!(a.0, NodeId(3));
    }

    #[test]
    fn uniform_draws_are_valid_on_cube_and_torus() {
        let cube = Cube::of(5);
        let torus = Torus::of(4, 2);
        let p = DestPattern::UniformRandom { m: 6 };
        let (s, d) = p.draw_cube(&mut StdRng::seed_from_u64(1), cube);
        assert_eq!(d.len(), 6);
        assert!(!d.contains(&s));
        let (s2, d2) = p.draw_on(&mut StdRng::seed_from_u64(1), &torus);
        assert_eq!(d2.len(), 6);
        assert!(!d2.contains(&s2));
    }

    #[test]
    fn pool_draws_only_pool_members() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool = DestPattern::uniform_pool(&mut rng, &Cube::of(4), 3, 4);
        let DestPattern::Pool { ref groups } = pool else {
            panic!("not a pool")
        };
        for seed in 0..20 {
            let drawn = pool.draw_cube(&mut StdRng::seed_from_u64(seed), Cube::of(4));
            assert!(groups.contains(&drawn), "{drawn:?} not in pool");
        }
    }

    #[test]
    fn subcube_bias_requires_a_cube() {
        let p = DestPattern::SubcubeBiased {
            m: 3,
            low_dims: 2,
            bias: 0.9,
        };
        assert!(!p.is_topology_generic());
        let (s, d) = p.draw_cube(&mut StdRng::seed_from_u64(2), Cube::of(5));
        assert_eq!(d.len(), 3);
        assert!(!d.contains(&s));
    }

    #[test]
    #[should_panic(expected = "hypercube backend")]
    fn subcube_bias_panics_on_generic_draw() {
        let p = DestPattern::SubcubeBiased {
            m: 3,
            low_dims: 2,
            bias: 0.9,
        };
        let _ = p.draw_on(&mut StdRng::seed_from_u64(2), &Torus::of(4, 2));
    }
}
