//! # traffic — open-loop steady-state multicast load generation
//!
//! The paper's evaluation (and the rest of this workspace's figure
//! machinery) measures *one multicast at a time* on an idle network.
//! This crate asks the complementary question the paper's Section 6
//! leaves open: **how do the tree algorithms behave under sustained
//! load** — sessions arriving continuously, contending for channels,
//! all the way up to saturation?
//!
//! The subsystem is layered on the existing engine rather than beside
//! it:
//!
//! * [`arrivals`] — *when* sessions arrive: deterministic, Poisson, or
//!   bursty on-off point processes at a configured offered load, with a
//!   [deterministic natural log](arrivals::det_ln) so exponential gaps
//!   are byte-identical across platforms;
//! * [`patterns`] — *what* each session multicasts: fixed, uniform,
//!   subcube-biased, hot-spot, or a finite [`DestPattern::Pool`] of
//!   recurring groups (drawing through [`hcube::sampling`], the same
//!   primitives the figure workloads use);
//! * [`engine`] — the session scheduler: each arrival becomes a batch of
//!   [`wormsim::DepMessage`]s whose `min_start` is the arrival time,
//!   trees come from a [`hypercast::TreeCache`] (recurring groups are
//!   pointer-clone hits), and the whole run executes under
//!   [`wormsim::simulate_window_on`] so saturation cannot run away;
//! * [`stats`] — steady-state output analysis: warmup truncation,
//!   batch-means confidence intervals, throughput, and the
//!   [`stats::saturation_point`] detector for latency-vs-load sweeps;
//! * [`churn`] / [`chaos`] — online fault churn and self-healing
//!   recovery: a seed-deterministic MTBF/MTTR failure/repair process
//!   rendered into epoch-numbered fault plans, with faulted sessions
//!   retried under exponential backoff through
//!   [`hypercast::repair`](hypercast::repair::repair)-rebuilt trees,
//!   surfacing delivery ratio, goodput, retry distributions, and
//!   time-to-recover;
//! * [`shard`] — the sharded session driver: the paper's
//!   contention-free trees make sessions mutually independent, so the
//!   sharded entry points simulate each session (or chaos retry chain)
//!   alone on one of N worker threads — each with its own
//!   [`wormsim::EngineScratch`], chaos workers sharing one
//!   [`hypercast::TreeStore`] — and merge results in session order, so
//!   every report is byte-identical at any worker count;
//! * [`telemetry`] — the flight recorder: every `*_with_telemetry`
//!   entry point runs the same workload once, observed, returning the
//!   byte-identical report **plus** per-session spans with an exact
//!   latency decomposition (queueing / head-flit blocking / transit,
//!   causally chained through retries) and a deterministic windowed
//!   time-series (goodput, latency quantiles, cache hit rate, live
//!   faults, per-dimension blocked time), exportable as Perfetto
//!   traces, Prometheus metrics, or standalone JSON.
//!
//! **Zero-load anchoring.** A one-session run of a
//! [`DestPattern::Fixed`] pattern is byte-identical to the single-shot
//! [`wormsim::multicast::simulate_multicast`] replay — the first
//! arrival of every schedule is at `t = 0` and `min_start` staggering
//! degenerates to the plain workload. The integration tests pin this,
//! which anchors every loaded measurement to the validated single-shot
//! model.
//!
//! ## Quick example
//!
//! ```
//! use hcube::{Cube, Resolution};
//! use hypercast::{Algorithm, PortModel};
//! use traffic::{ArrivalProcess, Arrivals, DestPattern, TrafficSpec};
//! use wormsim::SimParams;
//!
//! let spec = TrafficSpec::new(
//!     Arrivals::new(ArrivalProcess::Poisson, 2.0), // 2 sessions/ms
//!     DestPattern::UniformRandom { m: 8 },
//!     50,
//!     42,
//! );
//! let report = traffic::run_cube(
//!     &spec, Cube::of(6), Resolution::HighToLow, Algorithm::WSort,
//!     &SimParams::ncube2(PortModel::AllPort),
//! );
//! assert_eq!(report.sessions.len(), 50);
//! assert!(report.completion_ratio > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arrivals;
pub mod chaos;
pub mod churn;
pub mod collective;
pub mod engine;
pub mod patterns;
pub mod shard;
pub mod stats;
pub mod telemetry;

pub use arrivals::{ArrivalProcess, Arrivals};
pub use chaos::{
    run_chaos_cube, run_chaos_cube_on_timeline, run_chaos_cube_with_scratch, run_chaos_separate_on,
    run_chaos_separate_on_with_scratch, ChaosReport, ChaosSession, ChaosSpec, RetriesExhausted,
    SessionFailure,
};
pub use churn::ChurnSpec;
pub use collective::{
    assemble_collective_cube_sessions, run_collective_cube, run_collective_cube_with_scratch,
    run_collective_separate_on,
};
pub use engine::{
    assemble_cube_sessions, assemble_separate_sessions_on, run_cube, run_cube_with_scratch,
    run_separate_on, run_separate_on_with_scratch, run_sessions_on_with_scratch, SessionRecord,
    SessionWorkload, TrafficReport, TrafficSpec,
};
pub use patterns::DestPattern;
pub use shard::{
    run_chaos_cube_sharded, run_chaos_cube_sharded_with_store, run_chaos_separate_sharded_on,
    run_cube_sharded, run_separate_sharded_on, run_sessions_sharded_on, run_trials,
};
pub use stats::{saturation_point, BatchMeans, LoadPoint, Quantiles};
pub use telemetry::{
    run_chaos_cube_on_timeline_with_telemetry, run_chaos_cube_with_telemetry,
    run_chaos_separate_with_telemetry_on, run_cube_with_telemetry, run_separate_with_telemetry_on,
    AttemptSpan, PhaseBreakdown, SessionTrace, SpanOutcome, Telemetry, TelemetryBucket,
    TelemetryConfig, TelemetryProbe, TimeSeries,
};
