//! The sharded session driver: partitions the independent sessions of
//! an open-loop run across N worker threads.
//!
//! The paper's central property — contention-free multicast trees make
//! sessions mutually independent — is exactly what lets a simulation
//! fleet scale across cores: each session (and each chaos retry chain)
//! can be simulated alone, on its own worker, with its own
//! [`EngineScratch`]. The sharded entry points here do that, then merge
//! the per-session results **in session-index order**, so every report
//! is a pure function of the spec — *byte-identical at any worker
//! count* (pinned in `workloads/tests/determinism.rs`).
//!
//! # Semantics: the independent-session approximation
//!
//! [`run_cube`](crate::run_cube) simulates all sessions in one shared
//! network, so concurrent sessions couple through physical channel
//! contention. The sharded runs drop exactly that coupling: each
//! session is simulated **alone** on an idle network (its arrival time
//! and the observation window are preserved, so warmup truncation and
//! horizon cuts behave identically). Under the paper's recurring-pool
//! workloads the trees are contention-free *within* a session by
//! construction, so this is the natural "millions of independent users"
//! scaling model — but it is a *different, documented mode*, not a
//! parallel implementation of the contended run: a sharded report
//! matches its contended counterpart only when sessions never collide
//! (e.g. a single session; pinned in the tests below).
//!
//! # Determinism
//!
//! Three rules keep reports worker-count-invariant:
//!
//! 1. **Assembly is serial.** Arrival schedules, destination draws, and
//!    (for the plain runs) tree builds happen on the calling thread, in
//!    the plain engine's exact RNG order.
//! 2. **Merge is trial-indexed.** [`run_trials`] returns results in
//!    trial order regardless of which worker ran what; network counters
//!    are absorbed by ascending session index.
//! 3. **Cache counters are replayed, not raced.** Chaos workers share
//!    one [`TreeStore`] (an unbounded, lock-protected build memo whose
//!    hit/miss split depends on scheduling and is never reported);
//!    the reported [`CacheStats`] come from a serial replay of the
//!    run's lookup sequence — sorted by `(epoch, launch, session,
//!    attempt)` — through a fresh [`TreeCache`] of the spec's capacity.

use crate::chaos::{
    assemble_chaos, classify, AttemptOutcome, ChaosReport, ChaosSession, ChaosSpec, SessionFailure,
};
use crate::engine::{
    assemble, assemble_cube_sessions, assemble_separate_sessions_on, push_tree_session,
    SessionWorkload, TrafficReport, TrafficSpec,
};
use hcube::{Cube, Ecube, NodeId, Resolution, Router, Topology};
use hypercast::{Algorithm, CacheStats, NetworkFaults, TreeCache, TreeKey, TreeStore};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use wormsim::{
    simulate_observed_with_faults_on_with_scratch, simulate_window_on_with_scratch, DepMessage,
    EngineScratch, FaultEpoch, NetStats, NoopProbe, RunResult, SimParams, SimTime,
};

/// Runs `count` independent trials across `workers` threads and
/// returns the results **in trial order**, regardless of which worker
/// ran what.
///
/// Each worker owns one [`EngineScratch`] for its whole lifetime (the
/// sweep hot-path discipline) and claims trials from a shared atomic
/// counter; results land in their trial's slot. With `workers == 1`
/// (or fewer than two trials) everything runs inline on the calling
/// thread — no threads are spawned, so a single-worker sharded run has
/// no scheduling noise at all.
///
/// This is the one slot-fill pool in the workspace: the
/// `chaossweep`/`telemetrysweep` worker pools and the `mcast serve`
/// daemon all drive their trials through it.
///
/// # Panics
/// If `workers == 0`, or if a worker thread panics (the panic is
/// propagated by the thread scope).
pub fn run_trials<T, F>(workers: usize, count: usize, run: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut EngineScratch) -> T + Sync,
{
    assert!(workers > 0, "a sharded run needs at least one worker");
    if workers == 1 || count <= 1 {
        let mut scratch = EngineScratch::new();
        return (0..count).map(|i| run(i, &mut scratch)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers.min(count) {
            scope.spawn(|| {
                let mut scratch = EngineScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let out = run(i, &mut scratch);
                    *slots[i].lock().expect("trial slot lock poisoned") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("trial slot lock poisoned")
                .expect("every trial slot is filled before the scope ends")
        })
        .collect()
}

/// One session of `sessions`, extracted as a standalone workload with
/// dependency indices rebased to the session but `min_start` kept
/// **absolute** — the session replays at its true arrival time, so the
/// spec's observation window cuts it exactly where the contended run
/// would.
fn extract_session(sessions: &SessionWorkload, i: usize) -> Vec<DepMessage> {
    let span = &sessions.spans[i];
    sessions.messages()[span.range.clone()]
        .iter()
        .map(|m| {
            let mut m = m.clone();
            for d in &mut m.deps {
                *d -= span.range.start;
            }
            m
        })
        .collect()
}

/// Simulates a pre-assembled [`SessionWorkload`] with each session
/// alone on an idle network, sharded across `workers` threads, and
/// merges the results in session order. The sharded counterpart of
/// [`run_sessions_on_with_scratch`](crate::run_sessions_on_with_scratch);
/// see the module docs for how its semantics differ.
///
/// # Panics
/// If `workers == 0`, or if `sessions` references nodes outside
/// `router`'s topology.
#[must_use]
pub fn run_sessions_sharded_on<R>(
    spec: &TrafficSpec,
    router: R,
    sessions: &SessionWorkload,
    params: &SimParams,
    workers: usize,
) -> TrafficReport
where
    R: Router + Copy + Sync,
{
    let runs = run_trials(workers, sessions.sessions(), |i, scratch| {
        let workload = extract_session(sessions, i);
        simulate_window_on_with_scratch(router, params, &workload, spec.horizon, scratch)
            .expect("windowed traffic runs cannot deadlock")
    });
    let mut merged = RunResult {
        messages: Vec::with_capacity(sessions.messages().len()),
        stats: NetStats::default(),
    };
    for run in runs {
        merged.stats.absorb(&run.stats);
        merged.messages.extend(run.messages);
    }
    assemble(spec, &merged, &sessions.spans, sessions.cache_stats())
}

/// Sharded [`run_cube`](crate::run_cube): serial assembly (schedule,
/// draws, tree builds through the [`TreeCache`] — cache counters are
/// byte-identical to the contended run's), then each session simulated
/// alone across `workers` threads. See the module docs for the
/// independent-session semantics.
///
/// # Panics
/// See [`run_cube`](crate::run_cube); additionally if `workers == 0`.
#[must_use]
pub fn run_cube_sharded(
    spec: &TrafficSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
    workers: usize,
) -> TrafficReport {
    let sessions = assemble_cube_sessions(spec, cube, resolution, algo, params);
    run_sessions_sharded_on(
        spec,
        Ecube::new(cube, resolution),
        &sessions,
        params,
        workers,
    )
}

/// Sharded [`run_separate_on`](crate::run_separate_on): separate
/// addressing on any routed topology, each session simulated alone
/// across `workers` threads.
///
/// # Panics
/// See [`run_separate_on`](crate::run_separate_on); additionally if
/// `workers == 0`.
#[must_use]
pub fn run_separate_sharded_on<R>(
    spec: &TrafficSpec,
    router: R,
    params: &SimParams,
    workers: usize,
) -> TrafficReport
where
    R: Router + Copy + Sync,
    R::Topo: Topology,
{
    let sessions = assemble_separate_sessions_on(spec, &router);
    run_sessions_sharded_on(spec, router, &sessions, params, workers)
}

/// One tree lookup a chaos attempt performed, logged for the serial
/// cache replay.
struct Lookup {
    /// Index into the timeline's epoch vector.
    epoch: usize,
    launch: SimTime,
    session: usize,
    number: u32,
}

/// The terminal state of one session's retry chain.
struct ChainOutcome {
    record: ChaosSession,
    lost: bool,
    net: NetStats,
    lookups: Vec<Lookup>,
}

/// Drives every session's retry chain to a terminal state, sharded
/// across `workers` threads. `attempt_fn(session, number, launch,
/// epoch, scratch)` simulates one attempt solo and returns the run plus
/// the count of requested destinations its tree could not cover.
///
/// The chain replicates the epoch-wave loop's per-session decisions
/// exactly: first attempts launch at their arrival, an attempt runs
/// under the fault plan of the epoch containing its launch (clamped to
/// never run under an earlier epoch than its predecessor), failures
/// back off exponentially from the attempt's resolution time, and a
/// chain ends on delivery, a window cut (terminal, never retried),
/// retry exhaustion, or a relaunch past the horizon.
fn run_chaos_chains<F>(
    spec: &ChaosSpec,
    schedule: &[SimTime],
    epochs: &[FaultEpoch],
    workers: usize,
    attempt_fn: F,
) -> (Vec<ChaosSession>, u64, NetStats, Vec<Lookup>)
where
    F: Fn(usize, u32, SimTime, usize, &mut EngineScratch) -> (RunResult, usize) + Sync,
{
    let horizon = spec.traffic.horizon;
    let max_attempts = 1 + spec.retry.max_retries;
    let epoch_of = |t: SimTime| -> usize {
        // Last epoch whose start is <= t.
        epochs.partition_point(|e| e.start <= t).saturating_sub(1)
    };

    let outcomes = run_trials(workers, schedule.len(), |session, scratch| {
        let arrival = schedule[session];
        let mut number = 1u32;
        let mut launch = arrival;
        let mut first_failure: Option<SessionFailure> = None;
        let mut net = NetStats::default();
        let mut lookups = Vec::new();
        let mut epoch_floor = 0usize;
        let mut lost = false;
        let record = loop {
            let e = epoch_of(launch).max(epoch_floor);
            epoch_floor = e;
            lookups.push(Lookup {
                epoch: e,
                launch,
                session,
                number,
            });
            let (run, missing) = attempt_fn(session, number, launch, e, scratch);
            net.absorb(&run.stats);
            let resolution = run
                .messages
                .iter()
                .map(|m| m.delivered)
                .max()
                .unwrap_or(launch);
            match classify(&run.messages, missing) {
                AttemptOutcome::Delivered => {
                    break ChaosSession {
                        arrival,
                        completion: resolution,
                        latency: resolution.saturating_sub(arrival),
                        attempts: number,
                        delivered: true,
                        failure: None,
                    };
                }
                AttemptOutcome::WindowCut => {
                    // Terminal: window cuts are measurement artifacts
                    // and never retry (see the chaos module docs).
                    break ChaosSession {
                        arrival,
                        completion: resolution,
                        latency: resolution.saturating_sub(arrival),
                        attempts: number,
                        delivered: false,
                        failure: Some(SessionFailure::WindowCut),
                    };
                }
                AttemptOutcome::Failed(failure) => {
                    let failure = first_failure.unwrap_or(failure);
                    first_failure = Some(failure);
                    let backoff_us = spec.retry.backoff(number);
                    let relaunch = resolution + SimTime::from_ns(backoff_us * 1000);
                    if number >= max_attempts || relaunch >= horizon {
                        lost = true;
                        break ChaosSession {
                            arrival,
                            completion: resolution,
                            latency: resolution.saturating_sub(arrival),
                            attempts: number,
                            delivered: false,
                            failure: Some(failure),
                        };
                    }
                    number += 1;
                    launch = relaunch;
                }
            }
        };
        ChainOutcome {
            record,
            lost,
            net,
            lookups,
        }
    });

    let mut net = NetStats::default();
    let mut lost = 0u64;
    let mut sessions = Vec::with_capacity(outcomes.len());
    let mut lookups = Vec::new();
    for outcome in outcomes {
        net.absorb(&outcome.net);
        lost += u64::from(outcome.lost);
        sessions.push(outcome.record);
        lookups.extend(outcome.lookups);
    }
    // Canonical replay order: epoch-major, then launch/session/attempt
    // — a pure function of the spec, independent of worker scheduling.
    lookups.sort_by_key(|l| (l.epoch, l.launch, l.session, l.number));
    (sessions, lost, net, lookups)
}

/// The [`TreeKey`] a chaos attempt's tree was built under: pristine for
/// first attempts (end-to-end fault detection — the source has not yet
/// learned of any fault), repaired against the attempt's epoch for
/// retries.
#[allow(clippy::too_many_arguments)]
fn chaos_key(
    algo: Algorithm,
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
    source: NodeId,
    dests: &[NodeId],
    epoch: &FaultEpoch,
    number: u32,
) -> TreeKey {
    let mut key = TreeKey::new(algo, cube, resolution, params.port_model, source, dests);
    if number > 1 {
        key.epoch = epoch.index;
        key.repaired = true;
    }
    key
}

/// Sharded [`run_chaos_cube`](crate::run_chaos_cube): open-loop
/// hypercube traffic under online fault churn, with each session's
/// retry chain simulated alone on a worker. A fresh [`TreeStore`] is
/// created per run; use
/// [`run_chaos_cube_sharded_with_store`] to keep trees warm across
/// runs (the `mcast serve` daemon does).
///
/// # Panics
/// See [`run_chaos_cube`](crate::run_chaos_cube); additionally if
/// `workers == 0`.
#[must_use]
pub fn run_chaos_cube_sharded(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
    workers: usize,
) -> ChaosReport {
    run_chaos_cube_sharded_with_store(
        spec,
        cube,
        resolution,
        algo,
        params,
        workers,
        &TreeStore::new(),
    )
}

/// [`run_chaos_cube_sharded`] against a caller-owned [`TreeStore`].
/// The store only memoizes tree builds — reported [`CacheStats`] come
/// from the serial replay (see the module docs), so a warm store
/// changes wall-clock time, never a single report byte.
///
/// # Panics
/// See [`run_chaos_cube_sharded`].
#[must_use]
pub fn run_chaos_cube_sharded_with_store(
    spec: &ChaosSpec,
    cube: Cube,
    resolution: Resolution,
    algo: Algorithm,
    params: &SimParams,
    workers: usize,
    store: &TreeStore,
) -> ChaosReport {
    let timeline = spec.churn.timeline_on(&cube, spec.traffic.seed);
    let epochs: Vec<FaultEpoch> = timeline.epochs();
    // Snapshot each epoch's fault state and deadline-stamped plan once,
    // serially, so workers only read.
    let faults: Vec<NetworkFaults> = epochs
        .iter()
        .map(|e| NetworkFaults::from(&e.plan))
        .collect();
    let plans: Vec<wormsim::FaultPlan> = epochs
        .iter()
        .map(|e| {
            let mut plan = e.plan.clone();
            plan.deadline_all(spec.traffic.horizon);
            plan
        })
        .collect();

    // Draw the arrival schedule and every destination pattern up front,
    // in exactly the plain engine's RNG order — churn must not perturb
    // the traffic stream.
    let mut rng = StdRng::seed_from_u64(spec.traffic.seed);
    let schedule = spec
        .traffic
        .arrivals
        .schedule(&mut rng, spec.traffic.sessions);
    let draws: Vec<(NodeId, Vec<NodeId>)> = schedule
        .iter()
        .map(|_| spec.traffic.pattern.draw_cube(&mut rng, cube))
        .collect();

    let (sessions, lost, net, lookups) = run_chaos_chains(
        spec,
        &schedule,
        &epochs,
        workers,
        |session, number, launch, e, scratch| {
            let (source, dests) = &draws[session];
            let key = chaos_key(
                algo, cube, resolution, params, *source, dests, &epochs[e], number,
            );
            let tree = store
                .get_or_build(&key, (number > 1).then_some(&faults[e]))
                .expect("traffic destination draw produced an invalid multicast");
            let mut workload: Vec<DepMessage> = Vec::new();
            push_tree_session(&mut workload, &tree, spec.traffic.bytes, launch);
            // Coverage check: which requested destinations does the
            // (possibly repaired) tree actually reach?
            let covered: BTreeSet<NodeId> = tree.unicasts.iter().map(|u| u.dst).collect();
            let missing = dests.iter().filter(|d| !covered.contains(d)).count();
            let run = simulate_observed_with_faults_on_with_scratch(
                Ecube::new(cube, resolution),
                params,
                &workload,
                &plans[e],
                &mut NoopProbe,
                scratch,
            )
            .expect("windowed chaos runs cannot deadlock");
            (run, missing)
        },
    );

    // Serial cache replay: the reported counters are a pure function of
    // the canonical lookup order, never of worker scheduling or store
    // warmth. Every epoch advances the cache even if no lookup landed
    // in it, mirroring the serial epoch loop's invalidation discipline.
    let mut cache = TreeCache::new(spec.traffic.cache_capacity);
    let mut replay = lookups.iter().peekable();
    for (e, epoch) in epochs.iter().enumerate() {
        cache.set_epoch(epoch.index);
        while let Some(l) = replay.next_if(|l| l.epoch == e) {
            let (source, dests) = &draws[l.session];
            let key = chaos_key(
                algo, cube, resolution, params, *source, dests, epoch, l.number,
            );
            let stored = store
                .get(&key)
                .expect("the parallel phase built every tree it logged");
            cache.get_or_insert_with(key, || stored);
        }
    }
    assemble_chaos(spec, sessions, &timeline, cache.stats(), net, lost)
}

/// Sharded [`run_chaos_separate_on`](crate::run_chaos_separate_on):
/// separate-addressing chaos on any routed topology, each session's
/// retry chain simulated alone on a worker. No trees, no repair, no
/// cache — recovery relies entirely on the victim reviving before the
/// retry budget runs out.
///
/// # Panics
/// See [`run_chaos_separate_on`](crate::run_chaos_separate_on);
/// additionally if `workers == 0`.
#[must_use]
pub fn run_chaos_separate_sharded_on<R>(
    spec: &ChaosSpec,
    router: R,
    params: &SimParams,
    workers: usize,
) -> ChaosReport
where
    R: Router + Copy + Sync,
    R::Topo: Topology,
{
    let topo = router.topology();
    let timeline = spec
        .churn
        .timeline_on_lanes(&topo, router.lanes(), spec.traffic.seed);
    let epochs: Vec<FaultEpoch> = timeline.epochs();
    let plans: Vec<wormsim::FaultPlan> = epochs
        .iter()
        .map(|e| {
            let mut plan = e.plan.clone();
            plan.deadline_all(spec.traffic.horizon);
            plan
        })
        .collect();

    let mut rng = StdRng::seed_from_u64(spec.traffic.seed);
    let schedule = spec
        .traffic
        .arrivals
        .schedule(&mut rng, spec.traffic.sessions);
    let draws: Vec<(NodeId, Vec<NodeId>)> = schedule
        .iter()
        .map(|_| spec.traffic.pattern.draw_on(&mut rng, &topo))
        .collect();

    let (sessions, lost, net, _lookups) = run_chaos_chains(
        spec,
        &schedule,
        &epochs,
        workers,
        |session, _number, launch, e, scratch| {
            let (source, dests) = &draws[session];
            let workload: Vec<DepMessage> = dests
                .iter()
                .map(|&dst| DepMessage {
                    src: *source,
                    dst,
                    bytes: spec.traffic.bytes,
                    deps: vec![],
                    min_start: launch,
                })
                .collect();
            let run = simulate_observed_with_faults_on_with_scratch(
                router,
                params,
                &workload,
                &plans[e],
                &mut NoopProbe,
                scratch,
            )
            .expect("windowed chaos runs cannot deadlock");
            (run, 0)
        },
    );
    // Separate addressing builds no trees: all-zero cache counters,
    // exactly like the serial separate chaos path.
    assemble_chaos(spec, sessions, &timeline, CacheStats::default(), net, lost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::{ArrivalProcess, Arrivals};
    use crate::churn::ChurnSpec;
    use crate::engine::run_cube;
    use crate::patterns::DestPattern;
    use hcube::{Torus, TorusRouter};
    use hypercast::PortModel;

    fn spec(rate: f64, sessions: usize, seed: u64) -> TrafficSpec {
        TrafficSpec::new(
            Arrivals::new(ArrivalProcess::Poisson, rate),
            DestPattern::UniformRandom { m: 6 },
            sessions,
            seed,
        )
    }

    fn churny(until: SimTime) -> ChurnSpec {
        ChurnSpec {
            link_mtbf_ms: 10.0,
            link_mttr_ms: 2.0,
            node_mtbf_ms: 40.0,
            node_mttr_ms: 3.0,
            churn_until: until,
        }
    }

    #[test]
    fn run_trials_returns_results_in_trial_order() {
        for workers in [1, 2, 5] {
            let out = run_trials(workers, 17, |i, _scratch| i * i);
            assert_eq!(out, (0..17).map(|i| i * i).collect::<Vec<_>>());
        }
        assert!(run_trials(3, 0, |i, _| i).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = run_trials(0, 4, |i, _| i);
    }

    #[test]
    fn sharded_cube_run_is_worker_count_invariant() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let s = spec(2.0, 30, 11);
        let one = run_cube_sharded(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            1,
        );
        for workers in [2, 3, 8] {
            let many = run_cube_sharded(
                &s,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                workers,
            );
            assert_eq!(
                format!("{one:?}"),
                format!("{many:?}"),
                "{workers} workers diverged from 1"
            );
        }
    }

    #[test]
    fn sharded_torus_run_is_worker_count_invariant() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let torus = Torus::of(4, 2);
        let s = spec(1.0, 25, 9);
        let one = run_separate_sharded_on(&s, TorusRouter::new(torus), &params, 1);
        for workers in [2, 8] {
            let many = run_separate_sharded_on(&s, TorusRouter::new(torus), &params, workers);
            assert_eq!(format!("{one:?}"), format!("{many:?}"));
        }
    }

    #[test]
    fn single_session_sharded_run_matches_the_contended_engine() {
        // With one session there is nothing to contend with: the
        // independent-session approximation is exact and the sharded
        // report must equal the contended one byte-for-byte.
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut s = spec(1.0, 1, 7);
        s.warmup = 0;
        let contended = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let sharded = run_cube_sharded(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            4,
        );
        assert_eq!(format!("{contended:?}"), format!("{sharded:?}"));
    }

    #[test]
    fn sharded_cube_preserves_the_assembly_cache_counters() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let mut rng = StdRng::seed_from_u64(3);
        let pool = DestPattern::uniform_pool(&mut rng, &Cube::of(5), 4, 6);
        let mut s = TrafficSpec::new(Arrivals::new(ArrivalProcess::Poisson, 1.0), pool, 50, 7);
        s.cache_capacity = 16;
        let contended = run_cube(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
        );
        let sharded = run_cube_sharded(
            &s,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            3,
        );
        // Assembly is shared, so the tree-cache counters are identical
        // even though the network timings are not.
        assert_eq!(contended.cache, sharded.cache);
    }

    #[test]
    fn sharded_chaos_cube_is_worker_count_invariant() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let cs = ChaosSpec::new(spec(2.0, 40, 11), churny(SimTime::from_ms(10)));
        let one = run_chaos_cube_sharded(
            &cs,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            1,
        );
        assert!(
            one.fault_events > 0,
            "this churn spec must produce events for the test to bite"
        );
        for workers in [2, 8] {
            let many = run_chaos_cube_sharded(
                &cs,
                Cube::of(5),
                Resolution::HighToLow,
                Algorithm::WSort,
                &params,
                workers,
            );
            assert_eq!(
                format!("{one:?}"),
                format!("{many:?}"),
                "{workers} workers diverged from 1"
            );
        }
    }

    #[test]
    fn sharded_chaos_report_is_store_warmth_invariant() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let cs = ChaosSpec::new(spec(2.0, 40, 11), churny(SimTime::from_ms(10)));
        let store = TreeStore::new();
        let cold = run_chaos_cube_sharded_with_store(
            &cs,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            2,
            &store,
        );
        assert!(!store.is_empty());
        let warm = run_chaos_cube_sharded_with_store(
            &cs,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            2,
            &store,
        );
        assert_eq!(
            format!("{cold:?}"),
            format!("{warm:?}"),
            "a warm store must never change a report byte"
        );
    }

    #[test]
    fn sharded_chaos_torus_is_worker_count_invariant() {
        let params = SimParams::ncube2(PortModel::AllPort);
        let torus = Torus::of(4, 2);
        let cs = ChaosSpec::new(spec(1.0, 25, 9), churny(SimTime::from_ms(10)));
        let one = run_chaos_separate_sharded_on(&cs, TorusRouter::new(torus), &params, 1);
        for workers in [2, 8] {
            let many =
                run_chaos_separate_sharded_on(&cs, TorusRouter::new(torus), &params, workers);
            assert_eq!(format!("{one:?}"), format!("{many:?}"));
        }
    }

    #[test]
    fn zero_churn_sharded_chaos_matches_the_sharded_plain_run() {
        // With no faults every chain is one attempt under an empty plan
        // — per-session timings must match the plain sharded run.
        let params = SimParams::ncube2(PortModel::AllPort);
        let ts = spec(2.0, 30, 11);
        let plain = run_cube_sharded(
            &ts,
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            2,
        );
        let chaos = run_chaos_cube_sharded(
            &ChaosSpec::new(ts, ChurnSpec::quiet()),
            Cube::of(5),
            Resolution::HighToLow,
            Algorithm::WSort,
            &params,
            2,
        );
        let plain_sessions: Vec<_> = plain
            .sessions
            .iter()
            .map(|s| (s.arrival, s.completion, s.latency, s.delivered))
            .collect();
        let chaos_sessions: Vec<_> = chaos
            .sessions
            .iter()
            .map(|s| (s.arrival, s.completion, s.latency, s.delivered))
            .collect();
        assert_eq!(format!("{plain_sessions:?}"), format!("{chaos_sessions:?}"));
        assert!(chaos.sessions.iter().all(|s| s.attempts == 1));
        assert_eq!(chaos.lost, 0);
        assert_eq!(format!("{:?}", plain.net), format!("{:?}", chaos.net));
    }
}
