//! Arrival processes: when do multicast sessions enter the network?
//!
//! An open-loop traffic source injects sessions at a configured
//! *offered load* regardless of how the network is coping — the defining
//! property that lets a sweep find the saturation point. Three processes
//! are modeled:
//!
//! * **Deterministic** — evenly spaced arrivals at exactly the mean
//!   inter-arrival gap (a fluid approximation; zero burstiness);
//! * **Poisson** — i.i.d. exponential gaps (the classic open-loop
//!   memoryless source);
//! * **Bursty (on-off)** — geometrically sized bursts of back-to-back
//!   arrivals separated by compensating idle gaps, preserving the mean
//!   rate while concentrating arrivals in time.
//!
//! The first session of every schedule arrives at `t = 0`; this is what
//! makes a one-session run *byte-identical* to the single-shot
//! simulation entry points (the zero-load equivalence tests pin it).
//!
//! **Determinism.** Exponential sampling needs a natural logarithm, and
//! `f64::ln` is **not** guaranteed bit-identical across platforms/libms.
//! [`det_ln`] reimplements it from correctly-rounded IEEE primitives
//! (multiply, add, divide — which *are* bit-exact everywhere) with a
//! fixed-iteration series, so identical seeds give identical schedules
//! on every host. Accuracy ≈ 1 ulp over the full finite range, far
//! beyond what a simulation schedule can observe.

use rand::{Rng, RngCore};
use wormsim::SimTime;

/// ln 2 to full f64 precision — a compile-time literal, so using it is
/// bit-exact everywhere.
const LN_2: f64 = std::f64::consts::LN_2;

/// √2 to full f64 precision (mantissa-centering threshold).
const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// Deterministic natural logarithm over positive finite `x`, built only
/// from IEEE-754 basic operations (bit-exact on every conforming
/// platform, unlike libm's `ln`).
///
/// Decomposes `x = m · 2^e` with `m ∈ [1, 2)`, maps `m` to
/// `t = (m − 1)/(m + 1)` (so `|t| < 1/3`) and evaluates the atanh
/// series `ln m = 2(t + t³/3 + t⁵/5 + …)` to a fixed 11 terms — the
/// last term is below `2⁻⁵⁷` of the first, i.e. under the rounding
/// floor.
///
/// ```
/// use traffic::arrivals::det_ln;
/// assert!((det_ln(1.0)).abs() < 1e-15);
/// assert!((det_ln(std::f64::consts::E) - 1.0).abs() < 1e-14);
/// assert!((det_ln(0.125) + 3.0 * std::f64::consts::LN_2).abs() < 1e-14);
/// ```
///
/// # Panics
/// If `x` is not a positive finite number.
#[must_use]
pub fn det_ln(x: f64) -> f64 {
    assert!(
        x.is_finite() && x > 0.0,
        "det_ln domain is positive finite, got {x}"
    );
    let bits = x.to_bits();
    let mut exp = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mantissa_bits = bits & 0x000f_ffff_ffff_ffff;
    let m = if exp == -1023 {
        // Subnormal: scale into the normal range by 2^52 (an exact
        // power-of-two multiply), then read the true exponent back off.
        let scaled = x * f64::from_bits(1075u64 << 52); // × 2^52
        let sbits = scaled.to_bits();
        exp = ((sbits >> 52) & 0x7ff) as i64 - 1023 - 52;
        f64::from_bits((sbits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52))
    } else {
        f64::from_bits(mantissa_bits | (1023u64 << 52))
    };
    // Center the mantissa on 1 (use m/2 when m > sqrt(2)) so |t| stays
    // small and the series converges fast.
    let (m, exp) = if m > SQRT_2 {
        (m * 0.5, exp + 1)
    } else {
        (m, exp)
    };
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let mut term = t;
    let mut sum = t;
    for k in 1..11u32 {
        term *= t2;
        sum += term / f64::from(2 * k + 1);
    }
    2.0 * sum + exp as f64 * LN_2
}

/// Draws `u ∈ (0, 1]` from the RNG's top 53 bits (never 0, so
/// `det_ln(u)` is always defined).
fn unit_open_closed<R: RngCore>(rng: &mut R) -> f64 {
    (((rng.next_u64() >> 11) + 1) as f64) * (1.0 / (1u64 << 53) as f64)
}

/// Draws one exponentially distributed gap with the given mean (in
/// nanoseconds), truncated to whole nanoseconds — the shared sampling
/// primitive of the Poisson arrival process and the fault-churn
/// failure/repair streams. Built on [`det_ln`], so identical RNG states
/// give identical gaps on every platform.
#[must_use]
pub fn exp_gap_ns<R: RngCore>(rng: &mut R, mean_ns: f64) -> u64 {
    let u = unit_open_closed(rng);
    (-mean_ns * det_ln(u)) as u64
}

/// The shape of the arrival point process (the rate is carried
/// separately by [`Arrivals`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArrivalProcess {
    /// Evenly spaced arrivals, one mean gap apart.
    Deterministic,
    /// Exponential i.i.d. gaps (memoryless source).
    Poisson,
    /// On-off bursts: geometrically distributed burst sizes with mean
    /// `mean_burst` arrive back-to-back (one engine tick apart), then a
    /// compensating idle gap restores the configured mean rate.
    Bursty {
        /// Mean sessions per burst (≥ 1).
        mean_burst: u32,
    },
}

impl ArrivalProcess {
    /// Parses a CLI spelling: `det`, `poisson`, or `bursty[:B]`.
    ///
    /// # Errors
    /// A human-readable message for unknown spellings.
    pub fn parse(s: &str) -> Result<ArrivalProcess, String> {
        match s {
            "det" | "deterministic" => Ok(ArrivalProcess::Deterministic),
            "poisson" => Ok(ArrivalProcess::Poisson),
            "bursty" => Ok(ArrivalProcess::Bursty { mean_burst: 4 }),
            other => {
                if let Some(b) = other.strip_prefix("bursty:") {
                    let mean_burst: u32 = b
                        .parse()
                        .map_err(|_| format!("bad burst size in --arrivals {other}"))?;
                    if mean_burst == 0 {
                        return Err("burst size must be >= 1".into());
                    }
                    Ok(ArrivalProcess::Bursty { mean_burst })
                } else {
                    Err(format!(
                        "unknown arrival process {other:?} (expected det | poisson | bursty[:B])"
                    ))
                }
            }
        }
    }
}

impl std::fmt::Display for ArrivalProcess {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArrivalProcess::Deterministic => write!(f, "det"),
            ArrivalProcess::Poisson => write!(f, "poisson"),
            ArrivalProcess::Bursty { mean_burst } => write!(f, "bursty:{mean_burst}"),
        }
    }
}

/// A configured arrival source: a process shape plus an offered load in
/// sessions per millisecond.
#[derive(Clone, Copy, Debug)]
pub struct Arrivals {
    /// Point-process shape.
    pub process: ArrivalProcess,
    /// Offered load, sessions per millisecond of simulated time.
    pub rate_per_ms: f64,
}

impl Arrivals {
    /// Creates a source with the given shape and offered load.
    ///
    /// # Panics
    /// If `rate_per_ms` is not positive and finite.
    #[must_use]
    pub fn new(process: ArrivalProcess, rate_per_ms: f64) -> Arrivals {
        assert!(
            rate_per_ms.is_finite() && rate_per_ms > 0.0,
            "offered load must be positive, got {rate_per_ms}"
        );
        Arrivals {
            process,
            rate_per_ms,
        }
    }

    /// Mean inter-arrival gap implied by the rate.
    #[must_use]
    pub fn mean_gap(&self) -> SimTime {
        SimTime::from_ns((1.0e6 / self.rate_per_ms) as u64)
    }

    /// Generates the arrival times of `sessions` sessions. The first
    /// arrival is always at [`SimTime::ZERO`]; times are nondecreasing.
    /// Identical `(process, rate, rng state)` give identical schedules
    /// on every platform.
    #[must_use]
    pub fn schedule<R: RngCore>(&self, rng: &mut R, sessions: usize) -> Vec<SimTime> {
        let mean_ns = 1.0e6 / self.rate_per_ms;
        let mut times = Vec::with_capacity(sessions);
        let mut now: u64 = 0;
        let mut burst_left: u32 = 0;
        for i in 0..sessions {
            if i > 0 {
                let gap_ns: u64 = match self.process {
                    ArrivalProcess::Deterministic => mean_ns as u64,
                    ArrivalProcess::Poisson => exp_gap_ns(rng, mean_ns),
                    ArrivalProcess::Bursty { mean_burst } => {
                        if burst_left > 0 {
                            burst_left -= 1;
                            1 // back-to-back within the burst
                        } else {
                            // Geometric burst size with mean `mean_burst`
                            // (support ≥ 1), then an idle gap scaled to
                            // keep the long-run rate at the target: each
                            // burst of B sessions is followed by one idle
                            // gap of B mean gaps.
                            let p = 1.0 / f64::from(mean_burst);
                            let mut b: u32 = 1;
                            while !rng.gen_bool(p) && b < 64 * mean_burst {
                                b += 1;
                            }
                            burst_left = b - 1;
                            (mean_ns * f64::from(b)) as u64
                        }
                    }
                };
                now += gap_ns;
            }
            times.push(SimTime::from_ns(now));
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn det_ln_matches_libm_closely() {
        for &x in &[
            1e-300, 1e-10, 0.1, 0.5, 0.9999, 1.0, 1.0001, 2.0, 10.0, 12345.678, 1e300,
        ] {
            let got = det_ln(x);
            let want = x.ln();
            assert!(
                (got - want).abs() <= want.abs().max(1.0) * 1e-14,
                "ln({x}): {got} vs {want}"
            );
        }
    }

    #[test]
    fn det_ln_handles_subnormals() {
        let tiny = f64::from_bits(1); // smallest positive subnormal
        let got = det_ln(tiny);
        assert!((got - tiny.ln()).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn det_ln_rejects_zero() {
        let _ = det_ln(0.0);
    }

    #[test]
    fn first_arrival_is_zero_for_every_process() {
        for process in [
            ArrivalProcess::Deterministic,
            ArrivalProcess::Poisson,
            ArrivalProcess::Bursty { mean_burst: 4 },
        ] {
            let a = Arrivals::new(process, 2.0);
            let times = a.schedule(&mut StdRng::seed_from_u64(1), 5);
            assert_eq!(times[0], SimTime::ZERO, "{process}");
            assert!(times.windows(2).all(|w| w[0] <= w[1]), "{process}");
        }
    }

    #[test]
    fn deterministic_gaps_are_exact() {
        let a = Arrivals::new(ArrivalProcess::Deterministic, 2.0); // every 0.5 ms
        let times = a.schedule(&mut StdRng::seed_from_u64(0), 4);
        let ns: Vec<u64> = times.iter().map(|t| t.as_ns()).collect();
        assert_eq!(ns, vec![0, 500_000, 1_000_000, 1_500_000]);
    }

    #[test]
    fn poisson_schedule_is_seed_deterministic() {
        let a = Arrivals::new(ArrivalProcess::Poisson, 5.0);
        let x = a.schedule(&mut StdRng::seed_from_u64(42), 100);
        let y = a.schedule(&mut StdRng::seed_from_u64(42), 100);
        assert_eq!(x, y);
        let z = a.schedule(&mut StdRng::seed_from_u64(43), 100);
        assert_ne!(x, z);
    }

    #[test]
    fn poisson_mean_gap_is_near_target() {
        let a = Arrivals::new(ArrivalProcess::Poisson, 2.0); // mean 0.5 ms
        let times = a.schedule(&mut StdRng::seed_from_u64(7), 2000);
        let span_ns = times.last().unwrap().as_ns();
        let mean_gap = span_ns as f64 / 1999.0;
        assert!(
            (mean_gap - 500_000.0).abs() < 50_000.0,
            "mean gap {mean_gap} ns"
        );
    }

    #[test]
    fn bursty_preserves_the_mean_rate() {
        let a = Arrivals::new(ArrivalProcess::Bursty { mean_burst: 4 }, 2.0);
        let times = a.schedule(&mut StdRng::seed_from_u64(9), 2000);
        let mean_gap = times.last().unwrap().as_ns() as f64 / 1999.0;
        assert!(
            (mean_gap - 500_000.0).abs() < 75_000.0,
            "mean gap {mean_gap} ns"
        );
        // Bursts exist: some gaps are exactly 1 ns.
        let tight = times
            .windows(2)
            .filter(|w| w[1].as_ns() - w[0].as_ns() == 1)
            .count();
        assert!(tight > 100, "only {tight} back-to-back arrivals");
    }

    #[test]
    fn parse_round_trips() {
        for s in ["det", "poisson", "bursty:7"] {
            let p = ArrivalProcess::parse(s).unwrap();
            assert_eq!(p.to_string(), s.replace("deterministic", "det"));
        }
        assert!(ArrivalProcess::parse("uniform").is_err());
        assert!(ArrivalProcess::parse("bursty:0").is_err());
    }
}
