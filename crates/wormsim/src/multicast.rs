//! Driving multicast trees and reduction schedules through the network
//! model — the simulation counterpart of the paper's nCUBE-2
//! measurements.
//!
//! The physical execution is *self-timed*: each node forwards as soon as
//! its inbound payload is delivered, issuing its sends in the
//! algorithm-specified order. The step numbers of the tree are the design
//! abstraction; contention-freedom (Definition 4) is what guarantees the
//! self-timed execution never blocks.

use crate::engine::{
    simulate, simulate_observed, simulate_on, simulate_on_with_scratch, simulate_with_faults,
    DepMessage, NetStats, RunResult, SimError,
};
use crate::faults::FaultPlan;
use crate::params::SimParams;
use crate::probe::Probe;
use crate::scratch::EngineScratch;
use crate::time::SimTime;
use hcube::NodeId;
use hypercast::collectives::ReductionSchedule;
use hypercast::MulticastTree;
use std::collections::HashMap;

/// Delivery-time summary of a simulated collective operation.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Delivery time per destination, in tree order.
    pub deliveries: Vec<(NodeId, SimTime)>,
    /// Mean delivery delay among destinations (the paper's "average
    /// delay").
    pub avg_delay: SimTime,
    /// Maximum delivery delay among destinations.
    pub max_delay: SimTime,
    /// Total channel-blocking episodes across all constituent unicasts
    /// (0 for a contention-free implementation).
    pub blocks: u64,
    /// Total time spent blocked.
    pub blocked_time: SimTime,
    /// Full network statistics of the underlying run (per-dimension
    /// channel utilization, deepest FIFO queue, port waits, …).
    pub stats: NetStats,
}

impl SimReport {
    pub(crate) fn from_run(deliveries: Vec<(NodeId, SimTime)>, run: &RunResult) -> SimReport {
        let max_delay = deliveries
            .iter()
            .map(|&(_, t)| t)
            .max()
            .unwrap_or(SimTime::ZERO);
        let avg = if deliveries.is_empty() {
            SimTime::ZERO
        } else {
            SimTime(
                deliveries.iter().map(|&(_, t)| t.as_ns()).sum::<u64>() / deliveries.len() as u64,
            )
        };
        SimReport {
            deliveries,
            avg_delay: avg,
            max_delay,
            blocks: run.stats.blocks,
            blocked_time: run.stats.blocked_time,
            stats: run.stats.clone(),
        }
    }
}

/// Converts a multicast tree into the engine's dependency workload: one
/// [`DepMessage`] per tree unicast, where each forward depends on the
/// node's inbound unicast (self-timed execution).
///
/// Every multicast entry point builds its workload through this helper,
/// so observed and unobserved runs simulate byte-identical inputs.
#[must_use]
pub fn multicast_workload(tree: &MulticastTree, bytes: u32) -> Vec<DepMessage> {
    // Tree unicasts are sorted by (step, src, order); map each node's
    // inbound unicast index so forwards can depend on it.
    let mut inbound: HashMap<NodeId, usize> = HashMap::new();
    for (i, u) in tree.unicasts.iter().enumerate() {
        inbound.insert(u.dst, i);
    }
    tree.unicasts
        .iter()
        .map(|u| DepMessage {
            src: u.src,
            dst: u.dst,
            bytes,
            deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
            min_start: SimTime::ZERO,
        })
        .collect()
}

/// Outcome of a multicast replayed over a faulty network.
#[derive(Clone, Debug)]
pub struct FaultSimReport {
    /// Delivery time per destination that actually received the payload.
    pub deliveries: Vec<(NodeId, SimTime)>,
    /// Destinations that did not receive the payload (their unicast
    /// failed, timed out, or an ancestor's did).
    pub lost: Vec<NodeId>,
    /// `delivered / (delivered + lost)`; 1.0 for an empty tree.
    pub delivery_ratio: f64,
    /// Completion time of the last successful delivery.
    pub makespan: SimTime,
    /// External-channel blocking episodes (contention + stall retries).
    pub blocks: u64,
}

/// Replays a multicast tree over a network with `plan`'s faults
/// injected. Unicasts whose ancestors fail are themselves lost, so the
/// report's `lost` set is exactly the subtrees cut off by the faults.
///
/// # Errors
/// Propagates the engine's [`SimError`] — notably
/// [`SimError::Deadlock`] when the plan wedges a worm forever without a
/// deadline to rescue it.
pub fn simulate_multicast_with_faults(
    tree: &MulticastTree,
    params: &SimParams,
    bytes: u32,
    plan: &FaultPlan,
) -> Result<FaultSimReport, SimError> {
    let workload = multicast_workload(tree, bytes);
    let run = simulate_with_faults(tree.cube, tree.resolution, params, &workload, plan)?;
    let mut deliveries = Vec::new();
    let mut lost = Vec::new();
    for (u, r) in tree.unicasts.iter().zip(&run.messages) {
        if r.outcome.is_delivered() {
            deliveries.push((u.dst, r.delivered));
        } else {
            lost.push(u.dst);
        }
    }
    let total = deliveries.len() + lost.len();
    let makespan = deliveries
        .iter()
        .map(|&(_, t)| t)
        .max()
        .unwrap_or(SimTime::ZERO);
    Ok(FaultSimReport {
        delivery_ratio: if total == 0 {
            1.0
        } else {
            deliveries.len() as f64 / total as f64
        },
        deliveries,
        lost,
        makespan,
        blocks: run.stats.blocks,
    })
}

/// Simulates a multicast tree delivering a `bytes`-byte payload.
///
/// Returns per-destination delays measured from the source's initiation
/// at time zero, exactly the quantity Figures 11–14 plot ("the delay
/// between the sending of a multicast message and its receipt at the
/// destination").
#[must_use]
pub fn simulate_multicast(tree: &MulticastTree, params: &SimParams, bytes: u32) -> SimReport {
    let workload = multicast_workload(tree, bytes);
    let run = simulate(tree.cube, tree.resolution, params, &workload);
    let deliveries = tree
        .unicasts
        .iter()
        .zip(&run.messages)
        .map(|(u, r)| (u.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// [`simulate_multicast`] replayed through a reusable [`EngineScratch`]:
/// the engine resets the scratch's event heap, message table, and
/// channel state instead of reallocating them, and recurring
/// `(src, dst)` pairs hit the scratch's route memo. The report is
/// byte-identical to [`simulate_multicast`] — sweeps that evaluate
/// thousands of trees per worker thread use this entry point with one
/// scratch per worker.
#[must_use]
pub fn simulate_multicast_with_scratch(
    tree: &MulticastTree,
    params: &SimParams,
    bytes: u32,
    scratch: &mut EngineScratch,
) -> SimReport {
    let workload = multicast_workload(tree, bytes);
    let router = hcube::Ecube::new(tree.cube, tree.resolution);
    let run = simulate_on_with_scratch(router, params, &workload, scratch);
    let deliveries = tree
        .unicasts
        .iter()
        .zip(&run.messages)
        .map(|(u, r)| (u.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// [`simulate_multicast`] on an E-cube router carrying `lanes` virtual
/// lanes per physical link — the CLI's `--lanes` path. With `lanes == 1`
/// the report is byte-identical to [`simulate_multicast`]; extra lanes
/// let same-class worms sidestep each other, trading buffer space for
/// contention blocking.
#[must_use]
pub fn simulate_multicast_lanes(
    tree: &MulticastTree,
    params: &SimParams,
    bytes: u32,
    lanes: u8,
) -> SimReport {
    let workload = multicast_workload(tree, bytes);
    let router = hcube::Ecube::with_lanes(tree.cube, tree.resolution, lanes);
    let run = simulate_on(router, params, &workload);
    let deliveries = tree
        .unicasts
        .iter()
        .zip(&run.messages)
        .map(|(u, r)| (u.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// [`simulate_multicast`] with an in-loop [`Probe`] observer attached:
/// same workload, same deterministic schedule, but every semantic event
/// (injection, channel grant/block/release, tail drain, delivery) is
/// reported to `probe` as it happens.
///
/// Pair with [`EventRecorder`](crate::probe::EventRecorder) for exact
/// per-channel contention accounting or
/// [`Metrics`](crate::metrics::Metrics) for aggregate counters; combine
/// both with [`Tee`](crate::probe::Tee).
#[must_use]
pub fn simulate_multicast_observed<P: Probe>(
    tree: &MulticastTree,
    params: &SimParams,
    bytes: u32,
    probe: &mut P,
) -> SimReport {
    let workload = multicast_workload(tree, bytes);
    let run = simulate_observed(tree.cube, tree.resolution, params, &workload, probe);
    let deliveries = tree
        .unicasts
        .iter()
        .zip(&run.messages)
        .map(|(u, r)| (u.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// Simulates a reduction schedule: every node contributes a `bytes`-byte
/// message toward the root, combining after each arrival. The report's
/// deliveries record the arrival of each partial contribution at its
/// parent; `max_delay` is the reduction's completion time at the root.
#[must_use]
pub fn simulate_reduction(
    sched: &ReductionSchedule,
    cube: hcube::Cube,
    resolution: hcube::Resolution,
    params: &SimParams,
    bytes: u32,
) -> SimReport {
    // A node's upward message depends on all inbound (child) messages.
    let mut inbound: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, u) in sched.unicasts.iter().enumerate() {
        inbound.entry(u.dst).or_default().push(i);
    }
    let workload: Vec<DepMessage> = sched
        .unicasts
        .iter()
        .map(|u| DepMessage {
            src: u.src,
            dst: u.dst,
            bytes,
            deps: inbound.get(&u.src).cloned().unwrap_or_default(),
            min_start: SimTime::ZERO,
        })
        .collect();
    let run = simulate(cube, resolution, params, &workload);
    let deliveries = sched
        .unicasts
        .iter()
        .zip(&run.messages)
        .map(|(u, r)| (u.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// Per-tree slice of a concurrent run: delivery times and blocking
/// *attributable to this tree's own messages*. Unlike [`SimReport`] it
/// carries no [`NetStats`] — channel-level statistics of a shared run
/// belong to the run, not to any one tree (see [`ConcurrentReport`]).
#[derive(Clone, Debug)]
pub struct TreeReport {
    /// Delivery time per destination, in tree order.
    pub deliveries: Vec<(NodeId, SimTime)>,
    /// Mean delivery delay among this tree's destinations.
    pub avg_delay: SimTime,
    /// Maximum delivery delay among this tree's destinations.
    pub max_delay: SimTime,
    /// Blocking episodes of this tree's messages only.
    pub blocks: u64,
    /// Time this tree's messages spent blocked.
    pub blocked_time: SimTime,
}

/// Outcome of [`simulate_concurrent_multicasts`]: per-tree attribution
/// plus the run-wide network statistics **once**. Earlier revisions
/// cloned the full shared [`NetStats`] into every per-tree report, which
/// both misattributed run-wide channel statistics to individual trees
/// and cost `O(trees · channels)` copies.
#[derive(Clone, Debug)]
pub struct ConcurrentReport {
    /// One report per input tree, in input order.
    pub trees: Vec<TreeReport>,
    /// Network statistics of the single shared run (all trees combined).
    pub stats: NetStats,
}

impl ConcurrentReport {
    /// Whether the run simulated no trees at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

/// Simulates several multicasts running **concurrently** on one network
/// (e.g. different data-parallel operations in flight at once). Each
/// tree's internal forwarding dependencies are preserved; across trees
/// the only coupling is physical channel contention.
///
/// Returns one [`TreeReport`] per input tree plus the shared run-wide
/// [`NetStats`]. All trees must share the same cube and resolution.
///
/// # Panics
/// If the trees disagree on cube or resolution.
#[must_use]
pub fn simulate_concurrent_multicasts(
    trees: &[&MulticastTree],
    params: &SimParams,
    bytes: u32,
) -> ConcurrentReport {
    let Some(first) = trees.first() else {
        return ConcurrentReport {
            trees: Vec::new(),
            stats: NetStats::default(),
        };
    };
    let cube = first.cube;
    let resolution = first.resolution;
    let mut workload: Vec<DepMessage> = Vec::new();
    let mut ranges = Vec::with_capacity(trees.len());
    for tree in trees {
        assert_eq!(tree.cube, cube, "concurrent trees must share a cube");
        assert_eq!(tree.resolution, resolution, "and a resolution order");
        let base = workload.len();
        let mut inbound: HashMap<NodeId, usize> = HashMap::new();
        for (i, u) in tree.unicasts.iter().enumerate() {
            inbound.insert(u.dst, base + i);
        }
        for u in &tree.unicasts {
            workload.push(DepMessage {
                src: u.src,
                dst: u.dst,
                bytes,
                deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
                min_start: SimTime::ZERO,
            });
        }
        ranges.push(base..workload.len());
    }
    let run = simulate(cube, resolution, params, &workload);
    let per_tree = trees
        .iter()
        .zip(ranges)
        .map(|(tree, range)| {
            let deliveries: Vec<(NodeId, SimTime)> = tree
                .unicasts
                .iter()
                .zip(&run.messages[range.clone()])
                .map(|(u, r)| (u.dst, r.delivered))
                .collect();
            // Blocks attributable to this tree's messages only.
            let blocks: u64 = run.messages[range.clone()]
                .iter()
                .map(|m| u64::from(m.blocks))
                .sum();
            let blocked_time: SimTime = run.messages[range].iter().map(|m| m.blocked_time).sum();
            let max_delay = deliveries
                .iter()
                .map(|&(_, t)| t)
                .max()
                .unwrap_or(SimTime::ZERO);
            let avg_delay = if deliveries.is_empty() {
                SimTime::ZERO
            } else {
                SimTime(
                    deliveries.iter().map(|&(_, t)| t.as_ns()).sum::<u64>()
                        / deliveries.len() as u64,
                )
            };
            TreeReport {
                deliveries,
                avg_delay,
                max_delay,
                blocks,
                blocked_time,
            }
        })
        .collect();
    ConcurrentReport {
        trees: per_tree,
        stats: run.stats,
    }
}

/// Simulates a personalized-communication (scatter) schedule: each edge
/// carries its subtree's accumulated blocks, so payload sizes differ per
/// unicast.
#[must_use]
pub fn simulate_scatter(
    sched: &hypercast::collectives::ScatterSchedule,
    params: &SimParams,
) -> SimReport {
    let tree = &sched.tree;
    let mut inbound: HashMap<NodeId, usize> = HashMap::new();
    for (i, u) in tree.unicasts.iter().enumerate() {
        inbound.insert(u.dst, i);
    }
    let workload: Vec<DepMessage> = tree
        .unicasts
        .iter()
        .zip(&sched.bytes_per_edge)
        .map(|(u, &bytes)| DepMessage {
            src: u.src,
            dst: u.dst,
            // Oversized blocks saturate instead of panicking; 4 GiB per
            // edge is already far outside the modeled machine.
            bytes: u32::try_from(bytes).unwrap_or(u32::MAX),
            deps: inbound.get(&u.src).map(|&i| vec![i]).unwrap_or_default(),
            min_start: SimTime::ZERO,
        })
        .collect();
    let run = simulate(tree.cube, tree.resolution, params, &workload);
    let deliveries = tree
        .unicasts
        .iter()
        .zip(&run.messages)
        .map(|(u, r)| (u.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// Simulates a concatenation gather: each participant sends its subtree's
/// accumulated blocks toward the root after hearing from its children.
#[must_use]
pub fn simulate_gather(
    sched: &hypercast::collectives::GatherSchedule,
    cube: hcube::Cube,
    resolution: hcube::Resolution,
    params: &SimParams,
) -> SimReport {
    let mut inbound: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (i, u) in sched.unicasts.iter().enumerate() {
        inbound.entry(u.dst).or_default().push(i);
    }
    let workload: Vec<DepMessage> = sched
        .unicasts
        .iter()
        .zip(&sched.bytes_per_edge)
        .map(|(u, &bytes)| DepMessage {
            src: u.src,
            dst: u.dst,
            // Saturate like `simulate_scatter` rather than panicking.
            bytes: u32::try_from(bytes).unwrap_or(u32::MAX),
            deps: inbound.get(&u.src).cloned().unwrap_or_default(),
            min_start: SimTime::ZERO,
        })
        .collect();
    let run = simulate(cube, resolution, params, &workload);
    let deliveries = sched
        .unicasts
        .iter()
        .zip(&run.messages)
        .map(|(u, r)| (u.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// Simulates a *chunked, pipelined* multicast: the payload is split into
/// `chunks` equal pieces that stream down the tree independently — chunk
/// `c` crosses an edge as soon as it has arrived at the edge's sender,
/// while later chunks are still in flight upstream (an extension
/// implementing the classic pipelined-tree broadcast; the paper's
/// algorithms send the payload monolithically).
///
/// A destination's delay is the delivery time of its **last** chunk.
///
/// # Panics
/// If `chunks == 0`.
#[must_use]
pub fn simulate_chunked_multicast(
    tree: &MulticastTree,
    params: &SimParams,
    bytes: u32,
    chunks: u32,
) -> SimReport {
    assert!(chunks >= 1, "at least one chunk");
    let chunk_bytes = bytes.div_ceil(chunks);
    let mut inbound: HashMap<NodeId, usize> = HashMap::new();
    for (i, u) in tree.unicasts.iter().enumerate() {
        inbound.insert(u.dst, i);
    }
    // Message index: edge e, chunk c → e * chunks + c.
    let e_count = tree.unicasts.len();
    let mut workload = Vec::with_capacity(e_count * chunks as usize);
    for u in &tree.unicasts {
        for c in 0..chunks {
            let deps = match inbound.get(&u.src) {
                // Chunk c may be forwarded once chunk c arrived here.
                Some(&parent_edge) => vec![parent_edge * chunks as usize + c as usize],
                None => Vec::new(),
            };
            workload.push(DepMessage {
                src: u.src,
                dst: u.dst,
                bytes: chunk_bytes,
                deps,
                min_start: SimTime::ZERO,
            });
        }
    }
    let run = simulate(tree.cube, tree.resolution, params, &workload);
    // Per destination: the max over its chunks.
    let deliveries: Vec<(NodeId, SimTime)> = tree
        .unicasts
        .iter()
        .enumerate()
        .map(|(e, u)| {
            let last = (0..chunks as usize)
                .map(|c| run.messages[e * chunks as usize + c].delivered)
                .max()
                .expect("chunks ≥ 1");
            (u.dst, last)
        })
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// Convenience: the no-contention latency of a single unicast between two
/// nodes, through the full engine (used by validation tests to pin the
/// engine to the closed-form model).
#[must_use]
pub fn simulate_unicast(
    cube: hcube::Cube,
    resolution: hcube::Resolution,
    params: &SimParams,
    src: NodeId,
    dst: NodeId,
    bytes: u32,
) -> SimTime {
    let run = simulate(
        cube,
        resolution,
        params,
        &[DepMessage {
            src,
            dst,
            bytes,
            deps: Vec::new(),
            min_start: SimTime::ZERO,
        }],
    );
    run.messages[0].delivered
}

#[cfg(test)]
mod tests {
    use super::*;
    use hcube::{Cube, Resolution};
    use hypercast::{Algorithm, PortModel};

    fn dests(v: &[u32]) -> Vec<NodeId> {
        v.iter().copied().map(NodeId).collect()
    }

    #[test]
    fn wsort_figure_3e_two_transfer_generations() {
        // W-sort needs 2 steps; simulated max delay must be under 3
        // transfer times and show zero blocking (contention-free).
        let p = SimParams::ncube2(PortModel::AllPort);
        let t = Algorithm::WSort
            .build(
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(&[
                    0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
                ]),
            )
            .unwrap();
        let r = simulate_multicast(&t, &p, 4096);
        assert_eq!(r.blocks, 0, "Theorem 6: no channel blocking");
        let transfer = p.t_byte * 4096;
        assert!(r.max_delay < transfer * 3);
        assert!(r.max_delay > transfer * 2); // two sequential generations
        assert_eq!(r.deliveries.len(), 8);
    }

    #[test]
    fn ucube_all_port_slower_than_wsort_here() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let set = dests(&[
            0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111,
        ]);
        let build = |a: Algorithm| {
            a.build(
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &set,
            )
            .unwrap()
        };
        let u = simulate_multicast(&build(Algorithm::UCube), &p, 4096);
        let w = simulate_multicast(&build(Algorithm::WSort), &p, 4096);
        assert!(w.max_delay < u.max_delay);
        assert!(w.avg_delay < u.avg_delay);
    }

    #[test]
    fn one_port_ucube_has_no_blocking() {
        // The [9] guarantee: contention-free regardless of startup and
        // message length — the simulator must agree.
        let p = SimParams::ncube2(PortModel::OnePort);
        let t = Algorithm::UCube
            .build(
                Cube::of(5),
                Resolution::HighToLow,
                PortModel::OnePort,
                NodeId(7),
                &dests(&[1, 2, 3, 9, 14, 21, 28, 30, 31]),
            )
            .unwrap();
        let r = simulate_multicast(&t, &p, 4096);
        assert_eq!(r.blocks, 0);
    }

    #[test]
    fn single_destination_matches_unicast() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let t = Algorithm::WSort
            .build(
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(&[0b1011]),
            )
            .unwrap();
        let r = simulate_multicast(&t, &p, 4096);
        assert_eq!(r.max_delay, p.unicast_latency(3, 4096));
        assert_eq!(r.avg_delay, r.max_delay);
    }

    #[test]
    fn reduction_completes_at_root() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let bcast = hypercast::collectives::broadcast(
            Algorithm::WSort,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let red = ReductionSchedule::from_multicast(&bcast);
        let r = simulate_reduction(&red, Cube::of(3), Resolution::HighToLow, &p, 64);
        assert_eq!(r.deliveries.len(), 7);
        // Root receives the last contribution at max_delay; every inbound
        // edge of the root is among the deliveries.
        assert!(r
            .deliveries
            .iter()
            .any(|&(dst, t)| dst == NodeId(0) && t == r.max_delay));
    }

    #[test]
    fn concurrent_disjoint_multicasts_do_not_interact() {
        // Two multicasts confined to opposite halves of a 4-cube: the
        // concurrent run must equal each solo run exactly.
        let p = SimParams::ncube2(PortModel::AllPort);
        let lo = Algorithm::WSort
            .build(
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(&[1, 3, 5, 7]),
            )
            .unwrap();
        let hi = Algorithm::WSort
            .build(
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(8),
                &dests(&[9, 11, 13, 15]),
            )
            .unwrap();
        let solo_lo = simulate_multicast(&lo, &p, 4096);
        let solo_hi = simulate_multicast(&hi, &p, 4096);
        let both = simulate_concurrent_multicasts(&[&lo, &hi], &p, 4096);
        assert_eq!(both.trees[0].deliveries, solo_lo.deliveries);
        assert_eq!(both.trees[1].deliveries, solo_hi.deliveries);
        assert_eq!(both.trees[0].blocks + both.trees[1].blocks, 0);
        // Disjoint halves: per-tree attribution sums to the run total.
        assert_eq!(both.stats.blocks, 0);
    }

    #[test]
    fn concurrent_overlapping_multicasts_contend() {
        // Same source region, interleaved destinations: cross-operation
        // channel contention must appear (each op alone is clean).
        let p = SimParams::ncube2(PortModel::AllPort);
        let a = Algorithm::WSort
            .build(
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &dests(&[15]),
            )
            .unwrap();
        // P(0,15) = 0→8→12→14→15 and P(4,15) = 4→12→14→15 share the
        // arcs 12→14 and 14→15.
        let c = Algorithm::WSort
            .build(
                Cube::of(4),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(4),
                &dests(&[15]),
            )
            .unwrap();
        let reports = simulate_concurrent_multicasts(&[&a, &c], &p, 4096);
        let total_blocks: u64 = reports.trees.iter().map(|r| r.blocks).sum();
        assert!(total_blocks > 0, "expected cross-operation contention");
        // Per-message attribution reconciles with the shared run total.
        assert_eq!(total_blocks, reports.stats.blocks);
        // The loser is delayed beyond its solo time.
        let solo_c = simulate_multicast(&c, &p, 4096);
        assert!(reports.trees[1].max_delay >= solo_c.max_delay);
    }

    #[test]
    fn concurrent_empty_input() {
        let p = SimParams::ncube2(PortModel::AllPort);
        assert!(simulate_concurrent_multicasts(&[], &p, 128).is_empty());
    }

    #[test]
    fn scatter_delay_exceeds_equivalent_multicast() {
        // Forwarded subtree payloads make scatter at least as slow as the
        // same tree carrying one block to everyone.
        let p = SimParams::ncube2(PortModel::AllPort);
        let dest_set: Vec<NodeId> = (1..32).map(NodeId).collect();
        let sched = hypercast::collectives::scatter(
            Algorithm::WSort,
            Cube::of(5),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dest_set,
            1024,
        )
        .unwrap();
        let scatter_r = simulate_scatter(&sched, &p);
        let mcast_r = simulate_multicast(&sched.tree, &p, 1024);
        assert!(scatter_r.max_delay >= mcast_r.max_delay);
        assert_eq!(scatter_r.deliveries.len(), 31);
    }

    #[test]
    fn scatter_on_separate_addressing_matches_plain_multicast() {
        // With direct sends, every edge carries exactly one block: the
        // scatter and the multicast coincide.
        let p = SimParams::ncube2(PortModel::AllPort);
        let dest_set: Vec<NodeId> = (1..8).map(NodeId).collect();
        let sched = hypercast::collectives::scatter(
            Algorithm::Separate,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &dest_set,
            2048,
        )
        .unwrap();
        let a = simulate_scatter(&sched, &p);
        let b = simulate_multicast(&sched.tree, &p, 2048);
        assert_eq!(a.max_delay, b.max_delay);
        assert_eq!(a.avg_delay, b.avg_delay);
    }

    #[test]
    fn gather_completes_at_root_and_dominates_reduction() {
        // Concatenation gather carries growing payloads, so it costs at
        // least as much as a same-shape combining reduction of one block.
        let p = SimParams::ncube2(PortModel::AllPort);
        let cube = Cube::of(4);
        let sources: Vec<NodeId> = (1..16).map(NodeId).collect();
        let g = hypercast::collectives::gather(
            Algorithm::WSort,
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            &sources,
            1024,
        )
        .unwrap();
        let rg = simulate_gather(&g, cube, Resolution::HighToLow, &p);
        assert_eq!(rg.deliveries.len(), 15);
        assert!(rg
            .deliveries
            .iter()
            .any(|&(dst, t)| dst == NodeId(0) && t == rg.max_delay));
        let bcast = hypercast::collectives::broadcast(
            Algorithm::WSort,
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let red = ReductionSchedule::from_multicast(&bcast);
        let rr = simulate_reduction(&red, cube, Resolution::HighToLow, &p, 1024);
        assert!(rg.max_delay >= rr.max_delay);
    }

    #[test]
    fn all_to_all_broadcast_runs_concurrently() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let cube = Cube::of(3);
        let trees = hypercast::collectives::all_to_all_broadcast(
            Algorithm::WSort,
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
        )
        .unwrap();
        let refs: Vec<&hypercast::MulticastTree> = trees.iter().collect();
        let reports = simulate_concurrent_multicasts(&refs, &p, 512);
        assert_eq!(reports.trees.len(), 8);
        // Every operation completes; the composite is slower than a solo
        // broadcast because the 8 operations share channels.
        let solo = simulate_multicast(&trees[0], &p, 512);
        let slowest = reports.trees.iter().map(|r| r.max_delay).max().unwrap();
        assert!(slowest >= solo.max_delay);
        for r in &reports.trees {
            assert_eq!(r.deliveries.len(), 7);
        }
        // The run-wide makespan is exactly the slowest delivery.
        assert_eq!(reports.stats.makespan, slowest);
    }

    #[test]
    fn chunking_helps_deep_trees_with_large_payloads() {
        // A broadcast chain is n transfers deep; pipelining 64 KB into 8
        // chunks overlaps the generations.
        let p = SimParams::ncube2(PortModel::AllPort);
        let t = hypercast::collectives::broadcast(
            Algorithm::WSort,
            Cube::of(6),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let plain = simulate_multicast(&t, &p, 65536);
        let chunked = simulate_chunked_multicast(&t, &p, 65536, 8);
        assert!(
            chunked.max_delay < plain.max_delay,
            "chunked {} vs plain {}",
            chunked.max_delay,
            plain.max_delay
        );
        // One chunk must be identical to the plain multicast.
        let one = simulate_chunked_multicast(&t, &p, 65536, 1);
        assert_eq!(one.max_delay, plain.max_delay);
        assert_eq!(one.avg_delay, plain.avg_delay);
    }

    #[test]
    fn over_chunking_small_payloads_hurts() {
        // 256-byte payload in 64 chunks: per-message startup dominates.
        let p = SimParams::ncube2(PortModel::AllPort);
        let t = hypercast::collectives::broadcast(
            Algorithm::WSort,
            Cube::of(4),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        let plain = simulate_multicast(&t, &p, 256);
        let shredded = simulate_chunked_multicast(&t, &p, 256, 64);
        assert!(shredded.max_delay > plain.max_delay);
    }

    #[test]
    fn faulty_multicast_loses_exactly_the_cut_subtree() {
        use crate::faults::FaultPlan;
        let p = SimParams::ncube2(PortModel::AllPort);
        let t = hypercast::collectives::broadcast(
            Algorithm::UCube,
            Cube::of(3),
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
        )
        .unwrap();
        // Kill node 0b100: its inbound unicast and every forward out of
        // it are lost; the low half still delivers.
        let mut plan = FaultPlan::none();
        plan.fail_node(NodeId(0b100));
        let r = simulate_multicast_with_faults(&t, &p, 1024, &plan).unwrap();
        assert!(r.lost.contains(&NodeId(0b100)));
        // U-cube broadcast from 0: node 4 forwards to 5, 6 (and 6→7 is
        // sent by 6). Whatever the exact shape, the live half {1,2,3}
        // must be delivered.
        for v in [1u32, 2, 3] {
            assert!(
                r.deliveries.iter().any(|&(d, _)| d == NodeId(v)),
                "node {v} should be reachable"
            );
        }
        assert!(r.delivery_ratio < 1.0);
        let clean = simulate_multicast(&t, &p, 1024);
        assert_eq!(r.deliveries.len() + r.lost.len(), clean.deliveries.len());
    }

    #[test]
    fn empty_tree_reports_zero() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let t = Algorithm::UCube
            .build(
                Cube::of(3),
                Resolution::HighToLow,
                PortModel::AllPort,
                NodeId(0),
                &[],
            )
            .unwrap();
        let r = simulate_multicast(&t, &p, 4096);
        assert_eq!(r.max_delay, SimTime::ZERO);
        assert_eq!(r.avg_delay, SimTime::ZERO);
        assert!(r.deliveries.is_empty());
    }

    #[test]
    fn simulate_unicast_equals_formula_for_all_pairs() {
        let p = SimParams::ncube2(PortModel::AllPort);
        let cube = Cube::of(4);
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s == d {
                    continue;
                }
                let t =
                    simulate_unicast(cube, Resolution::HighToLow, &p, NodeId(s), NodeId(d), 1024);
                assert_eq!(t, p.unicast_latency(NodeId(s).distance(NodeId(d)), 1024));
            }
        }
    }
}
