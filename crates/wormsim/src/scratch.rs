//! Reusable engine arenas: run many workloads without reallocating.
//!
//! Every `simulate*` entry point ultimately runs through an
//! [`EngineScratch`]: the fresh-allocation entry points create one on
//! the spot, while the `*_with_scratch` variants
//! ([`simulate_on_with_scratch`](crate::engine::simulate_on_with_scratch),
//! [`simulate_window_on_with_scratch`](crate::engine::simulate_window_on_with_scratch),
//! …) accept a caller-owned scratch and *reset* it instead — the event
//! heap, message table, channel arbitration table, dead-channel flags,
//! CPU-serialization clocks, and the failure-cascade stack all keep
//! their allocations between runs, and the embedded
//! [`RouteMemo`] keeps the routes themselves.
//!
//! The contract is **byte-identity**: a run replayed into a reused
//! scratch produces a [`RunResult`](crate::RunResult) bit-identical to
//! the fresh-allocation path. The pieces that make this hold are each
//! individually deterministic — the event queue's reset rewinds its
//! sequence counter (same tie-breaking), the channel table's reset
//! restores the pristine free state (cheaply, via a dirty flag that
//! only forces a sweep after runs that didn't drain cleanly), and the
//! route memo returns the same deterministic channel sequences a fresh
//! computation would. `workloads/tests/determinism.rs` pins the claim
//! on cube, torus, and faulted workloads.

use crate::engine::arbitration::Channels;
use crate::engine::events::EventQueue;
use crate::engine::worm::{MsgState, Outcome};
use crate::network::RouteMemo;
use crate::time::SimTime;

/// The reusable arena behind the engine's hot path.
///
/// One scratch serves one engine run at a time; reuse it sequentially
/// (e.g. one scratch per worker thread in a sweep). Reusing across
/// different routers, topologies, and port models is safe — every
/// buffer is resized per run and the route memo restamps itself.
///
/// ```
/// use hcube::{Cube, Ecube, NodeId, Resolution};
/// use hypercast::PortModel;
/// use wormsim::{simulate_on_with_scratch, DepMessage, EngineScratch, SimParams, SimTime};
///
/// let router = Ecube::new(Cube::of(4), Resolution::HighToLow);
/// let params = SimParams::ncube2(PortModel::AllPort);
/// let w = [DepMessage { src: NodeId(0), dst: NodeId(5), bytes: 256,
///                       deps: vec![], min_start: SimTime::ZERO }];
/// let mut scratch = EngineScratch::new();
/// let first = simulate_on_with_scratch(router, &params, &w, &mut scratch);
/// let again = simulate_on_with_scratch(router, &params, &w, &mut scratch);
/// assert_eq!(first.messages, again.messages); // byte-identical replay
/// assert!(scratch.route_memo().hits() > 0);   // routes were reused
/// ```
#[derive(Default)]
pub struct EngineScratch {
    /// Per-message worm state, reset in place each run.
    pub(crate) msgs: Vec<MsgState>,
    /// Channel arbitration table (holders + FIFO wait queues).
    pub(crate) channels: Channels,
    /// Per-channel dead flags from the run's fault plan.
    pub(crate) dead: Vec<bool>,
    /// The deterministic event heap.
    pub(crate) queue: EventQueue,
    /// Per-node CPU-free clocks for serialized send startup.
    pub(crate) cpu_free: Vec<SimTime>,
    /// Work stack of the failure-cascade walk in `finish`.
    pub(crate) finish_stack: Vec<(usize, Outcome)>,
    /// Memoized `(src, dst, port_model) → route` channel sequences.
    pub(crate) memo: RouteMemo,
    /// Per-dimension external-channel counts, keyed by the router stamp
    /// they were computed for — recomputing them walks every external
    /// channel, which a reused scratch skips.
    pub(crate) dim_channels: Vec<u32>,
    /// External-channel → coordinate-dimension table, cached alongside
    /// `dim_channels`: the per-release busy-time accounting reads this
    /// instead of re-deriving the dimension from channel coordinates.
    pub(crate) dim_table: Vec<u8>,
    /// The router stamp `dim_channels` / `dim_table` belong to.
    pub(crate) dim_stamp: Option<u64>,
}

impl EngineScratch {
    /// An empty scratch; buffers grow to fit on first use.
    #[must_use]
    pub fn new() -> EngineScratch {
        EngineScratch::default()
    }

    /// The embedded route memo (hit/miss counters, memoized-route
    /// count) — the observability hook the benchmark harness reports.
    #[must_use]
    pub fn route_memo(&self) -> &RouteMemo {
        &self.memo
    }

    /// Drops the memoized routes (the arenas themselves keep their
    /// allocations; they are reset per run anyway).
    pub fn clear_routes(&mut self) {
        self.memo.clear();
    }
}

impl std::fmt::Debug for EngineScratch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineScratch")
            .field("msgs", &self.msgs.len())
            .field("memoized_routes", &self.memo.len())
            .field("memo_hits", &self.memo.hits())
            .field("memo_misses", &self.memo.misses())
            .finish_non_exhaustive()
    }
}
