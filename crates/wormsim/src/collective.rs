//! Executing [`CollectiveSchedule`]s through the wormhole engine.
//!
//! A [`CollectiveSchedule`] is already an
//! explicit DAG of annotated unicasts, so execution is a direct
//! translation: one [`DepMessage`] per op, dependencies copied verbatim,
//! and the self-timed engine does the rest. The same workload runs on
//! any [`Router`] — the hypercube's E-cube or the torus's
//! dateline-lane router — which is how the collectives sweep compares
//! topologies under one timing model.

use crate::engine::{simulate_on, DepMessage};
use crate::multicast::SimReport;
use crate::params::SimParams;
use crate::time::SimTime;
use hcube::{Cube, Ecube, Resolution, Router};
use hypercast::CollectiveSchedule;

/// Converts a collective schedule into the engine's dependency workload:
/// one [`DepMessage`] per op, with the schedule's own dependency edges.
#[must_use]
pub fn collective_workload(sched: &CollectiveSchedule) -> Vec<DepMessage> {
    sched
        .ops
        .iter()
        .map(|op| DepMessage {
            src: op.src,
            dst: op.dst,
            bytes: op.bytes,
            deps: op.deps.clone(),
            min_start: SimTime::ZERO,
        })
        .collect()
}

/// Executes a collective schedule on an arbitrary router. The report's
/// deliveries record the arrival of every constituent unicast;
/// `max_delay` is the collective's completion time.
#[must_use]
pub fn simulate_collective_on<R: Router>(
    sched: &CollectiveSchedule,
    router: R,
    params: &SimParams,
) -> SimReport {
    let workload = collective_workload(sched);
    let run = simulate_on(router, params, &workload);
    let deliveries = sched
        .ops
        .iter()
        .zip(&run.messages)
        .map(|(op, r)| (op.dst, r.delivered))
        .collect();
    SimReport::from_run(deliveries, &run)
}

/// [`simulate_collective_on`] with the hypercube's E-cube router — the
/// common case for the paper-side collectives.
#[must_use]
pub fn simulate_collective(
    sched: &CollectiveSchedule,
    cube: Cube,
    resolution: Resolution,
    params: &SimParams,
) -> SimReport {
    simulate_collective_on(sched, Ecube::new(cube, resolution), params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::SimParams;
    use hcube::{NodeId, Torus, TorusRouter};
    use hypercast::collectives::{allgather, allgather_separate, allreduce};
    use hypercast::{Algorithm, PortModel, TreeFamily};

    #[test]
    fn allgather_delivers_every_op_on_the_cube() {
        let cube = Cube::of(3);
        let sched = allgather(
            TreeFamily::Alg(Algorithm::WSort),
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            256,
            None,
        )
        .unwrap();
        let params = SimParams::ncube2(PortModel::AllPort);
        let report = simulate_collective(&sched, cube, Resolution::HighToLow, &params);
        assert_eq!(report.deliveries.len(), 8 * 7);
        assert!(report.max_delay > SimTime::ZERO);
    }

    #[test]
    fn allreduce_broadcast_phase_waits_for_the_reduction() {
        let cube = Cube::of(3);
        let sched = allreduce(
            TreeFamily::Bine,
            cube,
            Resolution::HighToLow,
            PortModel::AllPort,
            NodeId(0),
            64,
            None,
        )
        .unwrap();
        let params = SimParams::ncube2(PortModel::AllPort);
        let report = simulate_collective(&sched, cube, Resolution::HighToLow, &params);
        // Every broadcast-phase delivery is later than every reduce-phase
        // delivery into the root.
        let reduce_done = sched
            .ops
            .iter()
            .zip(&report.deliveries)
            .filter(|(op, _)| op.dst == NodeId(0))
            .map(|(_, &(_, t))| t)
            .max()
            .unwrap();
        let first_bcast = sched
            .ops
            .iter()
            .zip(&report.deliveries)
            .filter(|(op, _)| op.src == NodeId(0) && op.step > 3)
            .map(|(_, &(_, t))| t)
            .min()
            .unwrap();
        assert!(first_bcast > reduce_done);
    }

    #[test]
    fn separate_allgather_runs_on_the_torus_router() {
        let torus = Torus::of(3, 2);
        let sched = allgather_separate(&torus, 128);
        let params = SimParams::ncube2(PortModel::AllPort);
        let report = simulate_collective_on(&sched, TorusRouter::new(torus), &params);
        assert_eq!(report.deliveries.len(), 9 * 8);
        assert!(report.deliveries.iter().all(|&(_, t)| t > SimTime::ZERO));
    }
}
