//! Simulation time: integer nanoseconds.
//!
//! Integer time keeps the event queue exactly deterministic (no float
//! comparison hazards) and nanosecond resolution comfortably covers the
//! nCUBE-2's microsecond-scale constants while leaving headroom for
//! multi-second simulated horizons in a `u64`.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A point in (or duration of) simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// Constructs from nanoseconds.
    #[inline]
    #[must_use]
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Constructs from microseconds.
    #[inline]
    #[must_use]
    pub const fn from_us(us: u64) -> SimTime {
        SimTime(us * 1_000)
    }

    /// Constructs from milliseconds.
    #[inline]
    #[must_use]
    pub const fn from_ms(ms: u64) -> SimTime {
        SimTime(ms * 1_000_000)
    }

    /// The value in nanoseconds.
    #[inline]
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The value in (fractional) microseconds.
    #[inline]
    #[must_use]
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The value in (fractional) milliseconds.
    #[inline]
    #[must_use]
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating subtraction (durations never go negative).
    #[inline]
    #[must_use]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        SimTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_us(75).as_ns(), 75_000);
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert!((SimTime::from_ns(450).as_us() - 0.45).abs() < 1e-12);
        assert!((SimTime::from_us(1_840).as_ms() - 1.84).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(3);
        assert_eq!(a + b, SimTime::from_us(13));
        assert_eq!(a - b, SimTime::from_us(7));
        assert_eq!(b * 4, SimTime::from_us(12));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let s: SimTime = [a, b, b].into_iter().sum();
        assert_eq!(s, SimTime::from_us(16));
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(75).to_string(), "75.000µs");
        assert_eq!(SimTime::from_ms(2).to_string(), "2.000ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(999) < SimTime::from_us(1));
    }
}
