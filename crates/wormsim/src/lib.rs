//! # wormsim — a discrete-event wormhole-routed hypercube simulator
//!
//! The evaluation substrate of this reproduction: a from-scratch
//! equivalent of the **MultiSim** (CSIM-based) simulator the paper used
//! for its large-cube experiments, plus parameter presets calibrated to
//! the published characteristics of its hardware testbed, the **nCUBE-2**.
//!
//! The model is channel-granularity wormhole switching:
//!
//! * a worm's header acquires the directed channels of its E-cube route
//!   in order (`t_hop` each), blocking in place — and holding everything
//!   acquired — when a channel is busy (FIFO arbitration);
//! * after the last acquisition, the payload drains at `t_byte` per byte
//!   and all held channels release at tail-drain;
//! * software costs: per-message send startup (`t_send_sw`, serialized on
//!   the sending CPU) and receive overhead (`t_recv_sw`);
//! * one-port nodes are modeled with virtual injection and consumption
//!   channels, so port serialization falls out of ordinary contention.
//!
//! [`engine::simulate`] executes arbitrary dependency workloads;
//! [`multicast::simulate_multicast`] and
//! [`multicast::simulate_reduction`] replay `hypercast` trees, producing
//! the per-destination delays plotted in the paper's Figures 11–14.
//!
//! ## Quick example
//!
//! ```
//! use hcube::{Cube, NodeId, Resolution};
//! use hypercast::{Algorithm, PortModel};
//! use wormsim::{SimParams, simulate_multicast};
//!
//! let tree = Algorithm::WSort
//!     .build(Cube::of(5), Resolution::HighToLow, PortModel::AllPort,
//!            NodeId(0), &[NodeId(3), NodeId(17), NodeId(30)])
//!     .unwrap();
//! let report = simulate_multicast(&tree, &SimParams::ncube2(PortModel::AllPort), 4096);
//! assert_eq!(report.blocks, 0); // contention-free ⇒ no channel blocking
//! assert!(report.max_delay.as_ms() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod collective;
pub mod engine;
pub mod faults;
pub mod flit;
pub mod metrics;
pub mod multicast;
pub mod network;
pub mod params;
pub mod probe;
pub mod scratch;
pub mod time;
pub mod trace;

pub use collective::{collective_workload, simulate_collective, simulate_collective_on};
pub use engine::{
    simulate, simulate_observed, simulate_observed_on, simulate_observed_with_faults_on,
    simulate_observed_with_faults_on_with_scratch, simulate_on, simulate_on_with_scratch,
    simulate_window_observed_on, simulate_window_observed_on_with_scratch, simulate_window_on,
    simulate_window_on_with_scratch, simulate_with_faults, simulate_with_faults_on,
    simulate_with_faults_on_with_scratch, try_simulate, try_simulate_observed_on, try_simulate_on,
    try_simulate_on_with_scratch, DepMessage, FaultCause, MessageResult, NetStats, Outcome,
    RunResult, SimError,
};
pub use faults::{FaultEpoch, FaultEvent, FaultEventKind, FaultPlan, FaultTimeline};
pub use flit::{simulate_flits, simulate_flits_on, FlitMessage, FlitResult};
pub use metrics::{Histogram, Metrics, MetricsRegistry};
pub use multicast::{
    multicast_workload, simulate_chunked_multicast, simulate_concurrent_multicasts,
    simulate_gather, simulate_multicast, simulate_multicast_lanes, simulate_multicast_observed,
    simulate_multicast_with_faults, simulate_multicast_with_scratch, simulate_reduction,
    simulate_scatter, simulate_unicast, ConcurrentReport, FaultSimReport, SimReport, TreeReport,
};
pub use network::{ChannelMap, RouteMemo};
pub use params::SimParams;
pub use probe::{
    json_escape, BlockedInterval, EventRecorder, NoopProbe, Probe, ProbeEvent, Tee, WatchdogAlarm,
};
pub use scratch::EngineScratch;
pub use time::SimTime;
pub use trace::ChannelTrace;
