//! Fault injection for the wormhole simulator.
//!
//! A [`FaultPlan`] describes which parts of the network are broken and
//! when, independent of any particular workload:
//!
//! * **dead links** — directed external channels that can never be
//!   acquired: a worm whose header reaches one aborts, releasing every
//!   channel it holds (the router's abort-and-discard path), and its
//!   message finishes [`Failed`](crate::engine::Outcome::Failed);
//! * **dead nodes** — every incident channel is dead, and messages whose
//!   source or destination is dead fail immediately;
//! * **transient stalls** — time windows during which a channel refuses
//!   acquisition (arbitration glitches, hot-spot backpressure): worms
//!   retry when the window closes, accruing blocked time;
//! * **stuck channels** — held forever by a phantom worm. These never
//!   abort anyone; they produce genuine *deadlock*, which the engine's
//!   watchdog detects and reports as
//!   [`SimError::Deadlock`](crate::engine::SimError::Deadlock);
//! * **deadlines** — a global and/or per-message time bound. A message
//!   undelivered at its deadline aborts with
//!   [`TimedOut`](crate::engine::Outcome::TimedOut), releasing its
//!   channels — the recovery story that distinguishes a timeout from a
//!   deadlock.
//!
//! Plans are plain data: deterministic, cheap to clone, and buildable
//! either explicitly ([`FaultPlan::fail_link`] …) or randomly from a
//! seed ([`FaultPlan::random_links`], [`FaultPlan::random_nodes`]).

use crate::time::SimTime;
use hcube::{Cube, Dim, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::{rngs::StdRng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};

/// A declarative description of injected faults. See the module docs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Directed external channels that are permanently dead, as
    /// `(from, dim)` pairs. A dead link kills every lane of the channel.
    dead_links: BTreeSet<(u32, u8)>,
    /// Single dead lanes of otherwise-live links, as `(from, dim, lane)`
    /// triples — the `(link, lane)` fault granularity of multi-lane
    /// channels. On a single-lane router, lane 0 is the whole link.
    dead_lanes: BTreeSet<(u32, u8, u8)>,
    /// Nodes that are down entirely.
    dead_nodes: BTreeSet<u32>,
    /// Transient unavailability windows `[from, until)` per channel,
    /// kept sorted by start time.
    stalls: BTreeMap<(u32, u8), Vec<(SimTime, SimTime)>>,
    /// Channels held forever by a phantom worm (deadlock injection).
    stuck: BTreeSet<(u32, u8)>,
    /// Absolute deadline applied to every message without an override.
    default_deadline: Option<SimTime>,
    /// Absolute per-message deadlines, keyed by workload index.
    message_deadlines: BTreeMap<usize, SimTime>,
}

impl FaultPlan {
    /// An empty plan (no faults). [`Default`] gives the same.
    #[must_use]
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self == &FaultPlan::default()
    }

    /// Whether the plan damages the network itself — dead links, dead
    /// nodes, stuck channels, or stall windows. Deadline-only plans (the
    /// open-loop observation window) answer `false`, which lets the
    /// engine skip the whole channel-fault wiring pass on its hottest
    /// path.
    #[must_use]
    pub fn has_network_faults(&self) -> bool {
        !self.dead_links.is_empty()
            || !self.dead_lanes.is_empty()
            || !self.dead_nodes.is_empty()
            || !self.stuck.is_empty()
            || !self.stalls.is_empty()
    }

    /// Whether any channel has transient stall windows. Gates the
    /// per-acquisition stall lookup in the engine's event loop.
    #[must_use]
    pub fn has_stalls(&self) -> bool {
        !self.stalls.is_empty()
    }

    /// Whether any node is down entirely. Gates the pre-run endpoint
    /// scan.
    #[must_use]
    pub fn has_dead_nodes(&self) -> bool {
        !self.dead_nodes.is_empty()
    }

    /// The plan-wide default deadline, if one was set with
    /// [`deadline_all`](FaultPlan::deadline_all). The engine schedules
    /// it as a single window-close event instead of one deadline event
    /// per message.
    #[must_use]
    pub fn default_deadline(&self) -> Option<SimTime> {
        self.default_deadline
    }

    /// The per-message deadline override of workload message `index`,
    /// if any — *not* falling back to the default (use
    /// [`deadline`](FaultPlan::deadline) for the effective bound).
    #[must_use]
    pub fn message_deadline(&self, index: usize) -> Option<SimTime> {
        self.message_deadlines.get(&index).copied()
    }

    // ----- construction -------------------------------------------------

    /// Kills the directed external channel leaving `from` in `dim`.
    pub fn fail_link(&mut self, from: NodeId, dim: Dim) -> &mut Self {
        self.dead_links.insert((from.0, dim.0));
        self
    }

    /// Kills a single lane of the directed channel leaving `from` on
    /// `port` — the other lanes of the link stay usable, and an
    /// adaptive engine routes worms around the dead lane inside the
    /// lane class. [`fail_link`](FaultPlan::fail_link) kills every lane
    /// at once.
    pub fn fail_lane(&mut self, from: NodeId, port: Dim, lane: u8) -> &mut Self {
        self.dead_lanes.insert((from.0, port.0, lane));
        self
    }

    /// Repairs a single lane (the inverse of
    /// [`fail_lane`](FaultPlan::fail_lane)); a no-op if the lane was
    /// not dead.
    pub fn revive_lane(&mut self, from: NodeId, port: Dim, lane: u8) -> &mut Self {
        self.dead_lanes.remove(&(from.0, port.0, lane));
        self
    }

    /// Kills both directions of the physical link between `a` and its
    /// neighbor across `dim` (a severed cable rather than a dead driver).
    pub fn fail_duplex(&mut self, a: NodeId, dim: Dim) -> &mut Self {
        let b = NodeId(a.0 ^ (1 << dim.0));
        self.fail_link(a, dim);
        self.fail_link(b, dim)
    }

    /// Takes node `v` down: every incident channel dies, and messages
    /// sourced at or destined to `v` fail immediately.
    pub fn fail_node(&mut self, v: NodeId) -> &mut Self {
        self.dead_nodes.insert(v.0);
        self
    }

    /// Repairs the directed channel leaving `from` in `dim` (the inverse
    /// of [`fail_link`](FaultPlan::fail_link)); a no-op if the link was
    /// not dead. This is how a [`FaultTimeline`] advances a plan across
    /// repair events.
    pub fn revive_link(&mut self, from: NodeId, dim: Dim) -> &mut Self {
        self.dead_links.remove(&(from.0, dim.0));
        self
    }

    /// Brings node `v` back up (the inverse of
    /// [`fail_node`](FaultPlan::fail_node)); a no-op if it was not dead.
    pub fn revive_node(&mut self, v: NodeId) -> &mut Self {
        self.dead_nodes.remove(&v.0);
        self
    }

    /// Makes the channel leaving `from` in `dim` refuse acquisition
    /// during `[from_t, until_t)`. Windows may overlap; later lookups
    /// resolve chains.
    ///
    /// # Panics
    /// If `until_t <= from_t` (an empty window is a plan bug).
    pub fn stall(
        &mut self,
        from: NodeId,
        dim: Dim,
        from_t: SimTime,
        until_t: SimTime,
    ) -> &mut Self {
        assert!(until_t > from_t, "stall window must have positive length");
        let windows = self.stalls.entry((from.0, dim.0)).or_default();
        windows.push((from_t, until_t));
        windows.sort_unstable();
        self
    }

    /// Marks the channel leaving `from` in `dim` as held forever by a
    /// phantom worm — the deterministic way to inject a deadlock.
    pub fn stick(&mut self, from: NodeId, dim: Dim) -> &mut Self {
        self.stuck.insert((from.0, dim.0));
        self
    }

    /// Sets the absolute deadline applied to every message that has no
    /// per-message override: undelivered at `t`, a message aborts with
    /// `TimedOut` and releases its channels.
    pub fn deadline_all(&mut self, t: SimTime) -> &mut Self {
        self.default_deadline = Some(t);
        self
    }

    /// Sets an absolute deadline for workload message `index` only.
    pub fn deadline_for(&mut self, index: usize, t: SimTime) -> &mut Self {
        self.message_deadlines.insert(index, t);
        self
    }

    // ----- random generation --------------------------------------------

    /// A plan with `k` distinct directed external links of `cube` chosen
    /// uniformly at random from `seed` (deterministic). `k` saturates at
    /// the channel count.
    #[must_use]
    pub fn random_links(cube: Cube, k: usize, seed: u64) -> FaultPlan {
        FaultPlan::random_links_on(&cube, k, seed)
    }

    /// Topology-generic [`random_links`](FaultPlan::random_links): `k`
    /// distinct directed channels of any [`Topology`], chosen uniformly
    /// at random from `seed`. Channels are enumerated in `(node, port)`
    /// index order, so for the hypercube the chosen set is identical to
    /// `random_links` at the same seed.
    #[must_use]
    pub fn random_links_on<T: Topology>(topo: &T, k: usize, seed: u64) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6c69_6e6b); // "link"
        let ports = topo.ports_per_node();
        let mut all: Vec<(u32, u8)> = (0..topo.node_count() as u32)
            .flat_map(|v| (0..ports).map(move |p| (v, p)))
            .collect();
        let k = k.min(all.len());
        let (chosen, _) = all.partial_shuffle(&mut rng, k);
        let mut plan = FaultPlan::none();
        for &(v, d) in chosen.iter() {
            plan.fail_link(NodeId(v), Dim(d));
        }
        plan
    }

    /// A plan with `k` distinct dead nodes chosen uniformly at random
    /// from `seed`, never choosing nodes listed in `protected` (the
    /// multicast source, typically). `k` saturates at the number of
    /// eligible nodes.
    #[must_use]
    pub fn random_nodes(cube: Cube, k: usize, seed: u64, protected: &[NodeId]) -> FaultPlan {
        FaultPlan::random_nodes_on(&cube, k, seed, protected)
    }

    /// Topology-generic [`random_nodes`](FaultPlan::random_nodes); node
    /// enumeration order matches the cube version, so identical seeds
    /// give identical hypercube plans.
    #[must_use]
    pub fn random_nodes_on<T: Topology>(
        topo: &T,
        k: usize,
        seed: u64,
        protected: &[NodeId],
    ) -> FaultPlan {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6e6f_6465); // "node"
        let mut all: Vec<u32> = (0..topo.node_count() as u32)
            .filter(|v| !protected.iter().any(|p| p.0 == *v))
            .collect();
        let k = k.min(all.len());
        let (chosen, _) = all.partial_shuffle(&mut rng, k);
        let mut plan = FaultPlan::none();
        for &v in chosen.iter() {
            plan.fail_node(NodeId(v));
        }
        plan
    }

    // ----- queries (used by the engine) ---------------------------------

    /// Whether node `v` is down.
    #[must_use]
    pub fn node_dead(&self, v: NodeId) -> bool {
        self.dead_nodes.contains(&v.0)
    }

    /// Whether the directed channel leaving `from` on `port` was
    /// explicitly killed with [`fail_link`](FaultPlan::fail_link).
    ///
    /// This is the topology-generic query: it looks only at the link
    /// set. The engine combines it with [`node_dead`] on both endpoints
    /// (found through the topology's neighbor function) to decide
    /// whether a channel is usable.
    ///
    /// [`node_dead`]: FaultPlan::node_dead
    #[must_use]
    pub fn link_dead(&self, from: NodeId, port: Dim) -> bool {
        self.dead_links.contains(&(from.0, port.0))
    }

    /// Whether the single lane `lane` of the channel leaving `from` on
    /// `port` was killed with [`fail_lane`](FaultPlan::fail_lane). Like
    /// [`link_dead`](FaultPlan::link_dead) this looks only at the lane
    /// set; the engine combines it with the link- and node-level
    /// queries per `(link, lane)` channel.
    #[must_use]
    pub fn lane_dead(&self, from: NodeId, port: Dim, lane: u8) -> bool {
        !self.dead_lanes.is_empty() && self.dead_lanes.contains(&(from.0, port.0, lane))
    }

    /// Whether the directed **hypercube** channel leaving `from` in
    /// `dim` is unusable: the link itself is dead, or either endpoint
    /// node is down. The neighbor is computed by the cube's XOR rule;
    /// for other topologies combine [`link_dead`](FaultPlan::link_dead)
    /// with [`node_dead`](FaultPlan::node_dead) through the topology's
    /// own neighbor function.
    #[must_use]
    pub fn channel_dead(&self, from: NodeId, dim: Dim) -> bool {
        self.link_dead(from, dim)
            || self.node_dead(from)
            || self.node_dead(NodeId(from.0 ^ (1 << dim.0)))
    }

    /// Whether the channel leaving `from` in `dim` is stuck (phantom
    /// holder, never released).
    #[must_use]
    pub fn channel_stuck(&self, from: NodeId, dim: Dim) -> bool {
        self.stuck.contains(&(from.0, dim.0))
    }

    /// If the channel is inside a stall window at `t`, the time the
    /// window (including any chained overlapping windows) ends.
    #[must_use]
    pub fn stalled_until(&self, from: NodeId, dim: Dim, t: SimTime) -> Option<SimTime> {
        let windows = self.stalls.get(&(from.0, dim.0))?;
        let mut now = t;
        let mut hit = false;
        // Windows are sorted by start; chase chained windows forward.
        loop {
            let mut advanced = false;
            for &(s, e) in windows {
                if s <= now && now < e {
                    now = e;
                    advanced = true;
                    hit = true;
                }
            }
            if !advanced {
                break;
            }
        }
        hit.then_some(now)
    }

    /// The absolute deadline of workload message `index`, if any.
    #[must_use]
    pub fn deadline(&self, index: usize) -> Option<SimTime> {
        self.message_deadlines
            .get(&index)
            .copied()
            .or(self.default_deadline)
    }

    /// The dead directed links, as `(from, dim)`.
    pub fn dead_links(&self) -> impl Iterator<Item = (NodeId, Dim)> + '_ {
        self.dead_links.iter().map(|&(v, d)| (NodeId(v), Dim(d)))
    }

    /// The dead single lanes, as `(from, port, lane)`.
    pub fn dead_lanes(&self) -> impl Iterator<Item = (NodeId, Dim, u8)> + '_ {
        self.dead_lanes
            .iter()
            .map(|&(v, d, l)| (NodeId(v), Dim(d), l))
    }

    /// The dead nodes.
    pub fn dead_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.dead_nodes.iter().map(|&v| NodeId(v))
    }

    /// The stuck channels, as `(from, dim)`.
    pub fn stuck_channels(&self) -> impl Iterator<Item = (NodeId, Dim)> + '_ {
        self.stuck.iter().map(|&(v, d)| (NodeId(v), Dim(d)))
    }

    /// Number of dead directed links (not counting links implied by dead
    /// nodes).
    #[must_use]
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.len()
    }
}

// ----------------------------------------------------------------------
// Fault timelines: churn as data.
// ----------------------------------------------------------------------

/// What a single timestamped churn event does to the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultEventKind {
    /// The directed channel leaving the node in the dimension dies.
    LinkDown(NodeId, Dim),
    /// The directed channel leaving the node in the dimension is
    /// repaired.
    LinkUp(NodeId, Dim),
    /// The node goes down entirely.
    NodeDown(NodeId),
    /// The node comes back up.
    NodeUp(NodeId),
    /// A single lane of the directed channel dies (multi-lane links;
    /// [`LinkDown`](FaultEventKind::LinkDown) kills every lane at once).
    LaneDown(NodeId, Dim, u8),
    /// The lane is repaired.
    LaneUp(NodeId, Dim, u8),
}

/// One timestamped failure or repair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultEvent {
    /// Absolute simulated time the event takes effect.
    pub at: SimTime,
    /// What changes.
    pub kind: FaultEventKind,
}

/// One epoch of a [`FaultTimeline`]: a maximal interval over which the
/// fault state is constant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEpoch {
    /// Epoch number, counting from 0 (the state before the first event
    /// after time zero).
    pub index: u64,
    /// Start of the epoch (inclusive); epoch 0 starts at
    /// [`SimTime::ZERO`].
    pub start: SimTime,
    /// The cumulative fault state in force throughout the epoch.
    pub plan: FaultPlan,
}

/// A piecewise-constant fault process: a sorted sequence of failure and
/// repair events, snapshotted into epoch-numbered [`FaultPlan`]s.
///
/// This is the *online* counterpart of a static plan: link/node churn
/// (MTBF/MTTR arrival streams, scripted outages, …) is first rendered
/// into plain timestamped events, and the timeline then answers "what
/// does the network look like at time *t*" deterministically. Sessions
/// launched inside epoch *e* run under epoch *e*'s plan for their whole
/// lifetime — the epoch-isolation approximation the open-loop chaos
/// engine documents.
///
/// Events at identical timestamps apply in `FaultEventKind` order
/// (down before up, links before nodes) — the ordering is part of the
/// determinism contract.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultTimeline {
    events: Vec<FaultEvent>,
}

impl FaultTimeline {
    /// Builds a timeline from events in any order; they are sorted by
    /// `(time, kind)` so equal inputs give equal timelines.
    #[must_use]
    pub fn new(mut events: Vec<FaultEvent>) -> FaultTimeline {
        events.sort_unstable();
        FaultTimeline { events }
    }

    /// A timeline with no events: one healthy epoch covering all time.
    #[must_use]
    pub fn quiet() -> FaultTimeline {
        FaultTimeline::default()
    }

    /// Whether the timeline carries no events at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The sorted events.
    #[must_use]
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Time of the last event — after it the network state is final
    /// (recovery measurements are anchored here). `None` when empty.
    #[must_use]
    pub fn last_event(&self) -> Option<SimTime> {
        self.events.last().map(|e| e.at)
    }

    /// Snapshots the timeline into epochs: epoch 0 starts at time zero
    /// (events stamped exactly zero are folded into it), and every later
    /// distinct event timestamp starts the next epoch. Each epoch's plan
    /// is the cumulative fault state — failures applied, repairs erased.
    #[must_use]
    pub fn epochs(&self) -> Vec<FaultEpoch> {
        let mut out: Vec<FaultEpoch> = Vec::new();
        let mut plan = FaultPlan::none();
        let mut i = 0usize;
        // Events at t = 0 belong to epoch 0.
        while i < self.events.len() && self.events[i].at == SimTime::ZERO {
            apply(&mut plan, self.events[i].kind);
            i += 1;
        }
        out.push(FaultEpoch {
            index: 0,
            start: SimTime::ZERO,
            plan: plan.clone(),
        });
        while i < self.events.len() {
            let at = self.events[i].at;
            while i < self.events.len() && self.events[i].at == at {
                apply(&mut plan, self.events[i].kind);
                i += 1;
            }
            out.push(FaultEpoch {
                index: out.len() as u64,
                start: at,
                plan: plan.clone(),
            });
        }
        out
    }

    /// The cumulative fault state in force at time `t` (the plan of the
    /// epoch containing `t`).
    #[must_use]
    pub fn plan_at(&self, t: SimTime) -> FaultPlan {
        let mut plan = FaultPlan::none();
        for e in &self.events {
            if e.at > t {
                break;
            }
            apply(&mut plan, e.kind);
        }
        plan
    }
}

fn apply(plan: &mut FaultPlan, kind: FaultEventKind) {
    match kind {
        FaultEventKind::LinkDown(v, d) => {
            plan.fail_link(v, d);
        }
        FaultEventKind::LinkUp(v, d) => {
            plan.revive_link(v, d);
        }
        FaultEventKind::NodeDown(v) => {
            plan.fail_node(v);
        }
        FaultEventKind::NodeUp(v) => {
            plan.revive_node(v);
        }
        FaultEventKind::LaneDown(v, d, l) => {
            plan.fail_lane(v, d, l);
        }
        FaultEventKind::LaneUp(v, d, l) => {
            plan.revive_lane(v, d, l);
        }
    }
}

/// Bridge to `hypercast`'s tree-repair machinery: the structural
/// (time-independent) faults of a plan — dead links and dead nodes — as
/// a [`hypercast::repair::NetworkFaults`]. Transient stalls, stuck
/// channels, and deadlines have no structural counterpart and are
/// dropped: a repaired tree routes around permanent damage and rides out
/// temporal faults at simulation time.
impl From<&FaultPlan> for hypercast::repair::NetworkFaults {
    fn from(plan: &FaultPlan) -> hypercast::repair::NetworkFaults {
        let mut f = hypercast::repair::NetworkFaults::new();
        for (v, d) in plan.dead_links() {
            f.fail_link(v, d);
        }
        // A dead lane degrades the link but the tree-repair machinery
        // has no lane notion: map it conservatively to the whole link,
        // so repaired trees route around the damage entirely.
        for (v, d, _lane) in plan.dead_lanes() {
            f.fail_link(v, d);
        }
        for v in plan.dead_nodes() {
            f.fail_node(v);
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_kills_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_empty());
        assert!(!p.channel_dead(NodeId(0), Dim(0)));
        assert!(!p.node_dead(NodeId(3)));
        assert_eq!(p.deadline(7), None);
        assert_eq!(p.stalled_until(NodeId(0), Dim(0), SimTime::ZERO), None);
    }

    #[test]
    fn dead_node_kills_incident_channels_both_ways() {
        let mut p = FaultPlan::none();
        p.fail_node(NodeId(0b010));
        // Outgoing from the dead node.
        assert!(p.channel_dead(NodeId(0b010), Dim(0)));
        // Incoming from each neighbor.
        assert!(p.channel_dead(NodeId(0b011), Dim(0)));
        assert!(p.channel_dead(NodeId(0b000), Dim(1)));
        assert!(p.channel_dead(NodeId(0b110), Dim(2)));
        // Unrelated channels live.
        assert!(!p.channel_dead(NodeId(0b100), Dim(0)));
    }

    #[test]
    fn duplex_failure_kills_both_directions() {
        let mut p = FaultPlan::none();
        p.fail_duplex(NodeId(0b00), Dim(1));
        assert!(p.channel_dead(NodeId(0b00), Dim(1)));
        assert!(p.channel_dead(NodeId(0b10), Dim(1)));
        assert!(!p.channel_dead(NodeId(0b00), Dim(0)));
        assert_eq!(p.dead_link_count(), 2);
    }

    #[test]
    fn stall_windows_chain() {
        let mut p = FaultPlan::none();
        p.stall(
            NodeId(1),
            Dim(0),
            SimTime::from_us(10),
            SimTime::from_us(20),
        );
        p.stall(
            NodeId(1),
            Dim(0),
            SimTime::from_us(20),
            SimTime::from_us(30),
        );
        assert_eq!(
            p.stalled_until(NodeId(1), Dim(0), SimTime::from_us(15)),
            Some(SimTime::from_us(30))
        );
        assert_eq!(
            p.stalled_until(NodeId(1), Dim(0), SimTime::from_us(30)),
            None
        );
        assert_eq!(
            p.stalled_until(NodeId(1), Dim(0), SimTime::from_us(5)),
            None
        );
    }

    #[test]
    fn deadlines_prefer_per_message() {
        let mut p = FaultPlan::none();
        p.deadline_all(SimTime::from_ms(1));
        p.deadline_for(3, SimTime::from_ms(2));
        assert_eq!(p.deadline(0), Some(SimTime::from_ms(1)));
        assert_eq!(p.deadline(3), Some(SimTime::from_ms(2)));
    }

    #[test]
    fn random_links_are_deterministic_and_distinct() {
        let cube = Cube::of(4);
        let a = FaultPlan::random_links(cube, 6, 42);
        let b = FaultPlan::random_links(cube, 6, 42);
        assert_eq!(a, b);
        assert_eq!(a.dead_link_count(), 6);
        let c = FaultPlan::random_links(cube, 6, 43);
        assert_ne!(a, c, "different seeds should differ (w.h.p.)");
        // Saturation: more than exist.
        let all = FaultPlan::random_links(cube, 1000, 1);
        assert_eq!(all.dead_link_count(), 16 * 4);
    }

    #[test]
    fn random_nodes_respect_protection() {
        let cube = Cube::of(3);
        for seed in 0..20 {
            let p = FaultPlan::random_nodes(cube, 4, seed, &[NodeId(0)]);
            assert!(!p.node_dead(NodeId(0)), "seed {seed}");
            assert_eq!(p.dead_nodes().count(), 4);
        }
        // Saturation never claims the protected node.
        let p = FaultPlan::random_nodes(cube, 100, 9, &[NodeId(5)]);
        assert_eq!(p.dead_nodes().count(), 7);
        assert!(!p.node_dead(NodeId(5)));
    }

    #[test]
    fn link_dead_sees_only_explicit_links() {
        let mut p = FaultPlan::none();
        p.fail_link(NodeId(2), Dim(1));
        p.fail_node(NodeId(4));
        assert!(p.link_dead(NodeId(2), Dim(1)));
        // A dead node does NOT mark its links dead in the link set —
        // the engine folds node death in via the topology's neighbor.
        assert!(!p.link_dead(NodeId(4), Dim(0)));
        assert!(p.channel_dead(NodeId(4), Dim(0)));
    }

    #[test]
    fn generic_random_plans_match_cube_versions() {
        let cube = Cube::of(4);
        assert_eq!(
            FaultPlan::random_links(cube, 6, 42),
            FaultPlan::random_links_on(&cube, 6, 42)
        );
        assert_eq!(
            FaultPlan::random_nodes(cube, 3, 11, &[NodeId(0)]),
            FaultPlan::random_nodes_on(&cube, 3, 11, &[NodeId(0)])
        );
        // And they work on the torus's richer port space.
        let t = hcube::Torus::of(4, 2);
        let p = FaultPlan::random_links_on(&t, 10, 7);
        assert_eq!(p.dead_link_count(), 10);
        assert_eq!(p, FaultPlan::random_links_on(&t, 10, 7));
        assert!(p
            .dead_links()
            .all(|(v, port)| { (v.0 as usize) < 16 && port.0 < Topology::ports_per_node(&t) }));
    }

    #[test]
    fn quiet_timeline_is_one_healthy_epoch() {
        let tl = FaultTimeline::quiet();
        assert!(tl.is_empty());
        assert_eq!(tl.len(), 0);
        assert_eq!(tl.last_event(), None);
        let epochs = tl.epochs();
        assert_eq!(epochs.len(), 1);
        assert_eq!(epochs[0].index, 0);
        assert_eq!(epochs[0].start, SimTime::ZERO);
        assert!(epochs[0].plan.is_empty());
    }

    #[test]
    fn epochs_accumulate_failures_and_erase_repairs() {
        let tl = FaultTimeline::new(vec![
            FaultEvent {
                at: SimTime::from_ns(300),
                kind: FaultEventKind::LinkUp(NodeId(1), Dim(1)),
            },
            FaultEvent {
                at: SimTime::from_ns(100),
                kind: FaultEventKind::LinkDown(NodeId(1), Dim(1)),
            },
            FaultEvent {
                at: SimTime::from_ns(200),
                kind: FaultEventKind::NodeDown(NodeId(5)),
            },
        ]);
        assert_eq!(tl.last_event(), Some(SimTime::from_ns(300)));
        let epochs = tl.epochs();
        assert_eq!(epochs.len(), 4);
        assert!(epochs[0].plan.is_empty());
        assert!(epochs[1].plan.channel_dead(NodeId(1), Dim(1)));
        assert!(!epochs[1].plan.node_dead(NodeId(5)));
        assert!(epochs[2].plan.channel_dead(NodeId(1), Dim(1)));
        assert!(epochs[2].plan.node_dead(NodeId(5)));
        assert!(!epochs[3].plan.channel_dead(NodeId(1), Dim(1)));
        assert!(epochs[3].plan.node_dead(NodeId(5)));
        assert_eq!(epochs[3].start, SimTime::from_ns(300));
        assert_eq!(epochs[3].index, 3);
        // plan_at agrees with the epoch containing the query time.
        assert_eq!(tl.plan_at(SimTime::from_ns(150)), epochs[1].plan);
        assert_eq!(tl.plan_at(SimTime::from_ns(200)), epochs[2].plan);
        assert_eq!(tl.plan_at(SimTime::from_ns(1000)), epochs[3].plan);
    }

    #[test]
    fn time_zero_events_fold_into_epoch_zero() {
        let tl = FaultTimeline::new(vec![
            FaultEvent {
                at: SimTime::ZERO,
                kind: FaultEventKind::NodeDown(NodeId(3)),
            },
            FaultEvent {
                at: SimTime::from_ns(50),
                kind: FaultEventKind::NodeUp(NodeId(3)),
            },
        ]);
        let epochs = tl.epochs();
        assert_eq!(epochs.len(), 2);
        assert!(epochs[0].plan.node_dead(NodeId(3)));
        assert!(!epochs[1].plan.node_dead(NodeId(3)));
    }

    #[test]
    fn revive_ops_invert_failures() {
        let mut plan = FaultPlan::none();
        plan.fail_link(NodeId(0), Dim(1)).fail_node(NodeId(2));
        plan.revive_link(NodeId(0), Dim(1)).revive_node(NodeId(2));
        assert!(plan.is_empty());
        // Reviving something never failed is a no-op.
        plan.revive_link(NodeId(9), Dim(0)).revive_node(NodeId(9));
        assert!(plan.is_empty());
    }

    #[test]
    fn lane_faults_are_lane_granular() {
        let mut p = FaultPlan::none();
        p.fail_lane(NodeId(3), Dim(1), 2);
        assert!(p.has_network_faults());
        assert!(p.lane_dead(NodeId(3), Dim(1), 2));
        // Sibling lanes and the link itself stay alive.
        assert!(!p.lane_dead(NodeId(3), Dim(1), 0));
        assert!(!p.link_dead(NodeId(3), Dim(1)));
        assert_eq!(
            p.dead_lanes().collect::<Vec<_>>(),
            vec![(NodeId(3), Dim(1), 2)]
        );
        // revive_lane inverts fail_lane exactly.
        p.revive_lane(NodeId(3), Dim(1), 2);
        assert!(p.is_empty());
        p.revive_lane(NodeId(9), Dim(0), 0);
        assert!(p.is_empty());
    }

    #[test]
    fn lane_events_flow_through_timelines() {
        let tl = FaultTimeline::new(vec![
            FaultEvent {
                at: SimTime::from_ns(100),
                kind: FaultEventKind::LaneDown(NodeId(1), Dim(0), 1),
            },
            FaultEvent {
                at: SimTime::from_ns(200),
                kind: FaultEventKind::LaneUp(NodeId(1), Dim(0), 1),
            },
        ]);
        let epochs = tl.epochs();
        assert_eq!(epochs.len(), 3);
        assert!(!epochs[0].plan.lane_dead(NodeId(1), Dim(0), 1));
        assert!(epochs[1].plan.lane_dead(NodeId(1), Dim(0), 1));
        assert!(epochs[2].plan.is_empty());
        // Same timestamp: Down sorts (and applies) before Up, so a
        // down/up pair at one instant nets to "up" — exactly the
        // LinkDown/LinkUp convention.
        assert!(
            FaultEventKind::LaneDown(NodeId(0), Dim(0), 0)
                < FaultEventKind::LaneUp(NodeId(0), Dim(0), 0)
        );
    }

    #[test]
    fn dead_lanes_degrade_to_dead_links_for_tree_repair() {
        let mut p = FaultPlan::none();
        p.fail_lane(NodeId(2), Dim(1), 0);
        let f = hypercast::repair::NetworkFaults::from(&p);
        assert!(f.channel_dead(NodeId(2), Dim(1)));
    }
}
