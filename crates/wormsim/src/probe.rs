//! In-loop event instrumentation: the static-dispatch [`Probe`] trait
//! and its sinks.
//!
//! The paper's contention theory (Definitions 3–4, Theorem 3) is about
//! *where and when worms block*. [`crate::trace::ChannelTrace`]
//! reconstructs an occupancy *envelope* after the fact; a [`Probe`]
//! instead observes every semantic event **at its source inside the
//! event loop**: injection, channel request/grant/block/release, header
//! advance, tail drain, faults, timeouts, and watchdog alarms.
//!
//! The trait is threaded through the engine by *static dispatch*: the
//! event loop is generic over `P: Probe`, so the default [`NoopProbe`]
//! monomorphizes to nothing — the uninstrumented entry points compile to
//! the exact same loop as before (guarded by the `probe_overhead`
//! criterion bench). Three sinks ship with the crate:
//!
//! * [`NoopProbe`] — the zero-cost default;
//! * [`EventRecorder`] — a bounded ring buffer of timestamped
//!   [`ProbeEvent`]s plus *exact* (unbounded, never-dropped) accounting:
//!   per-channel hold and blocked time, hold/block intervals, queue
//!   depths, injection→delivery latencies, and watchdog alarms; it
//!   exports Chrome/Perfetto trace JSON
//!   ([`EventRecorder::to_chrome_trace`]);
//! * [`crate::metrics::Metrics`] — a counters/gauges/histograms registry
//!   with JSON and Prometheus-text exporters.
//!
//! [`Tee`] composes two sinks for a single run.

use crate::engine::FaultCause;
use crate::network::ChannelMap;
use crate::time::SimTime;
use crate::trace::Occupancy;
use hcube::Router;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// An observer of the engine's semantic events, called synchronously
/// from inside the event loop.
///
/// All methods default to no-ops, so a sink implements only what it
/// needs. The engine is generic over `P: Probe` (static dispatch): with
/// [`NoopProbe`] every call site monomorphizes away.
///
/// Timestamps are simulated time; `msg` is the index of the message in
/// the workload; `ch` is a dense channel index of the run's
/// [`ChannelMap`] (externals first, then virtual consumption/injection
/// channels — see [`crate::network`]).
pub trait Probe {
    /// All dependencies of `msg` are delivered; send processing starts.
    #[inline]
    fn on_eligible(&mut self, _t: SimTime, _msg: usize) {}

    /// `msg`'s worm enters the network (software startup paid);
    /// `route_len` is the number of channels it will acquire.
    #[inline]
    fn on_injected(&mut self, _t: SimTime, _msg: usize, _route_len: usize) {}

    /// `msg`'s header requests channel `ch` (hop `hop` of its route).
    #[inline]
    fn on_channel_requested(&mut self, _t: SimTime, _msg: usize, _ch: usize, _hop: usize) {}

    /// The request was granted; the worm now holds `ch`.
    #[inline]
    fn on_channel_granted(&mut self, _t: SimTime, _msg: usize, _ch: usize, _hop: usize) {}

    /// The request found `ch` busy (or stalled by a fault window): the
    /// worm blocks in place holding everything acquired so far. `depth`
    /// is the channel's FIFO depth after the worm queued (0 for a
    /// transient stall-window retry, which does not queue).
    #[inline]
    fn on_channel_blocked(
        &mut self,
        _t: SimTime,
        _msg: usize,
        _ch: usize,
        _hop: usize,
        _depth: usize,
    ) {
    }

    /// `ch`, held by `msg` since `held_since`, was released (tail drain
    /// or abort).
    #[inline]
    fn on_channel_released(&mut self, _t: SimTime, _msg: usize, _ch: usize, _held_since: SimTime) {}

    /// `msg`'s header advanced to hop `hop` of its route.
    #[inline]
    fn on_header_advanced(&mut self, _t: SimTime, _msg: usize, _hop: usize) {}

    /// `msg`'s tail drained at the destination router.
    #[inline]
    fn on_tail_drained(&mut self, _t: SimTime, _msg: usize) {}

    /// `msg` was delivered to the destination processor at `t`
    /// (`injected` is its injection time, for latency accounting).
    #[inline]
    fn on_delivered(&mut self, _t: SimTime, _msg: usize, _injected: SimTime) {}

    /// A fault terminated `msg` (dead endpoint/channel or a failed
    /// dependency).
    #[inline]
    fn on_fault(&mut self, _t: SimTime, _msg: usize, _cause: FaultCause) {}

    /// `msg` missed its deadline and aborted.
    #[inline]
    fn on_timeout(&mut self, _t: SimTime, _msg: usize) {}

    /// The event heap drained with worms still parked on channels: a
    /// wormhole deadlock. `holders` hold channels the `waiters` wait on
    /// (the same sets reported in
    /// [`SimError::Deadlock`](crate::engine::SimError::Deadlock)).
    #[inline]
    fn on_watchdog_alarm(&mut self, _t: SimTime, _holders: &[usize], _waiters: &[usize]) {}
}

/// The default sink: observes nothing, monomorphizes away entirely.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Fans every event out to two sinks (e.g. an [`EventRecorder`] and a
/// [`crate::metrics::Metrics`] registry in one run).
#[derive(Clone, Debug, Default)]
pub struct Tee<A: Probe, B: Probe>(
    /// First sink.
    pub A,
    /// Second sink.
    pub B,
);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    #[inline]
    fn on_eligible(&mut self, t: SimTime, msg: usize) {
        self.0.on_eligible(t, msg);
        self.1.on_eligible(t, msg);
    }
    #[inline]
    fn on_injected(&mut self, t: SimTime, msg: usize, route_len: usize) {
        self.0.on_injected(t, msg, route_len);
        self.1.on_injected(t, msg, route_len);
    }
    #[inline]
    fn on_channel_requested(&mut self, t: SimTime, msg: usize, ch: usize, hop: usize) {
        self.0.on_channel_requested(t, msg, ch, hop);
        self.1.on_channel_requested(t, msg, ch, hop);
    }
    #[inline]
    fn on_channel_granted(&mut self, t: SimTime, msg: usize, ch: usize, hop: usize) {
        self.0.on_channel_granted(t, msg, ch, hop);
        self.1.on_channel_granted(t, msg, ch, hop);
    }
    #[inline]
    fn on_channel_blocked(&mut self, t: SimTime, msg: usize, ch: usize, hop: usize, depth: usize) {
        self.0.on_channel_blocked(t, msg, ch, hop, depth);
        self.1.on_channel_blocked(t, msg, ch, hop, depth);
    }
    #[inline]
    fn on_channel_released(&mut self, t: SimTime, msg: usize, ch: usize, held_since: SimTime) {
        self.0.on_channel_released(t, msg, ch, held_since);
        self.1.on_channel_released(t, msg, ch, held_since);
    }
    #[inline]
    fn on_header_advanced(&mut self, t: SimTime, msg: usize, hop: usize) {
        self.0.on_header_advanced(t, msg, hop);
        self.1.on_header_advanced(t, msg, hop);
    }
    #[inline]
    fn on_tail_drained(&mut self, t: SimTime, msg: usize) {
        self.0.on_tail_drained(t, msg);
        self.1.on_tail_drained(t, msg);
    }
    #[inline]
    fn on_delivered(&mut self, t: SimTime, msg: usize, injected: SimTime) {
        self.0.on_delivered(t, msg, injected);
        self.1.on_delivered(t, msg, injected);
    }
    #[inline]
    fn on_fault(&mut self, t: SimTime, msg: usize, cause: FaultCause) {
        self.0.on_fault(t, msg, cause);
        self.1.on_fault(t, msg, cause);
    }
    #[inline]
    fn on_timeout(&mut self, t: SimTime, msg: usize) {
        self.0.on_timeout(t, msg);
        self.1.on_timeout(t, msg);
    }
    #[inline]
    fn on_watchdog_alarm(&mut self, t: SimTime, holders: &[usize], waiters: &[usize]) {
        self.0.on_watchdog_alarm(t, holders, waiters);
        self.1.on_watchdog_alarm(t, holders, waiters);
    }
}

/// One recorded event of the engine's taxonomy (the ring-buffer form;
/// watchdog alarms additionally land in
/// [`EventRecorder::alarms`] with their full holder/waiter sets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // field meanings match the `Probe` methods
pub enum ProbeEvent {
    /// Dependencies satisfied; send processing starts.
    Eligible { msg: usize },
    /// Worm entered the network.
    Injected { msg: usize, route_len: usize },
    /// Header requested a channel.
    ChannelRequested { msg: usize, ch: usize, hop: usize },
    /// Request granted.
    ChannelGranted { msg: usize, ch: usize, hop: usize },
    /// Request blocked (FIFO depth after queuing; 0 for stall retries).
    ChannelBlocked {
        msg: usize,
        ch: usize,
        hop: usize,
        depth: usize,
    },
    /// Channel released at tail drain or abort.
    ChannelReleased {
        msg: usize,
        ch: usize,
        held_since: SimTime,
    },
    /// Header advanced to the next hop.
    HeaderAdvanced { msg: usize, hop: usize },
    /// Tail drained at the destination router.
    TailDrained { msg: usize },
    /// Payload delivered to the destination processor.
    Delivered { msg: usize },
    /// Fault terminated the message.
    Fault { msg: usize, cause: FaultCause },
    /// Deadline abort.
    TimedOut { msg: usize },
    /// Watchdog deadlock alarm (set sizes only; see
    /// [`EventRecorder::alarms`]).
    WatchdogAlarm { holders: usize, waiters: usize },
}

/// A watchdog deadlock alarm with its full holder/waiter sets, exactly
/// as reported in [`SimError::Deadlock`](crate::engine::SimError).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WatchdogAlarm {
    /// Simulated time of the last event before the wedge.
    pub at: SimTime,
    /// Messages holding a channel somebody waits on.
    pub holders: Vec<usize>,
    /// Messages parked in channel FIFOs.
    pub waiters: Vec<usize>,
}

/// One exact blocking episode: `message` waited for `channel` (hop
/// `hop` of its route) over `[from, until]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockedInterval {
    /// Index of the waiting message.
    pub message: usize,
    /// The channel waited for.
    pub channel: usize,
    /// Hop index of the blocked acquisition (0 = source-side
    /// serialization, Theorem 3's benign case).
    pub hop: usize,
    /// When the wait began.
    pub from: SimTime,
    /// When the wait ended (grant or abort).
    pub until: SimTime,
}

/// Default ring-buffer capacity of an [`EventRecorder`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// A recording sink: a bounded ring buffer of timestamped events plus
/// exact per-channel occupancy/blocked-time/depth accounting.
///
/// The ring is bounded (oldest events drop first, counted in
/// [`dropped`](EventRecorder::dropped)); the *accounting* — occupancy
/// intervals, blocked intervals, per-channel totals, latencies, alarms —
/// is exact and never dropped, which is what the envelope-soundness and
/// utilization-exactness tests rely on.
#[derive(Clone, Debug)]
pub struct EventRecorder {
    capacity: usize,
    events: VecDeque<(SimTime, ProbeEvent)>,
    dropped: u64,
    total_events: u64,
    end_time: SimTime,
    // --- exact accounting, indexed by dense channel (resized on demand)
    channel_busy_ns: Vec<u64>,
    channel_blocked_ns: Vec<u64>,
    channel_blocked_hop0_ns: Vec<u64>,
    max_depth: Vec<u32>,
    // --- exact interval logs
    occupancies: Vec<Occupancy>,
    blocked: Vec<BlockedInterval>,
    // --- per-message open wait, indexed by message: (ch, hop, since)
    waiting: Vec<Option<(usize, usize, SimTime)>>,
    latencies: Vec<(usize, SimTime)>,
    alarms: Vec<WatchdogAlarm>,
}

impl Default for EventRecorder {
    fn default() -> EventRecorder {
        EventRecorder::new()
    }
}

fn grow<T: Clone + Default>(v: &mut Vec<T>, idx: usize) {
    if idx >= v.len() {
        v.resize(idx + 1, T::default());
    }
}

impl EventRecorder {
    /// A recorder with the [`DEFAULT_RING_CAPACITY`].
    #[must_use]
    pub fn new() -> EventRecorder {
        EventRecorder::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A recorder whose ring holds at most `capacity` events (the exact
    /// accounting is unaffected by the bound).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> EventRecorder {
        EventRecorder {
            capacity: capacity.max(1),
            events: VecDeque::with_capacity(capacity.clamp(1, 1 << 12)),
            dropped: 0,
            total_events: 0,
            end_time: SimTime::ZERO,
            channel_busy_ns: Vec::new(),
            channel_blocked_ns: Vec::new(),
            channel_blocked_hop0_ns: Vec::new(),
            max_depth: Vec::new(),
            occupancies: Vec::new(),
            blocked: Vec::new(),
            waiting: Vec::new(),
            latencies: Vec::new(),
            alarms: Vec::new(),
        }
    }

    fn push(&mut self, t: SimTime, e: ProbeEvent) {
        self.total_events += 1;
        self.end_time = self.end_time.max(t);
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back((t, e));
    }

    /// Closes `msg`'s open blocking episode (grant or abort) at `t`.
    fn close_wait(&mut self, msg: usize, t: SimTime) {
        if msg < self.waiting.len() {
            if let Some((ch, hop, since)) = self.waiting[msg].take() {
                let waited = t.saturating_sub(since).as_ns();
                grow(&mut self.channel_blocked_ns, ch);
                self.channel_blocked_ns[ch] += waited;
                if hop == 0 {
                    grow(&mut self.channel_blocked_hop0_ns, ch);
                    self.channel_blocked_hop0_ns[ch] += waited;
                }
                self.blocked.push(BlockedInterval {
                    message: msg,
                    channel: ch,
                    hop,
                    from: since,
                    until: t,
                });
            }
        }
    }

    /// The ring-buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(SimTime, ProbeEvent)> {
        self.events.iter()
    }

    /// Events evicted from the ring (never affects the exact accounting).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events observed, including evicted ones.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Timestamp of the latest observed event.
    #[must_use]
    pub fn end_time(&self) -> SimTime {
        self.end_time
    }

    /// Exact hold (busy) time of channel `ch`, in nanoseconds.
    #[must_use]
    pub fn busy_ns(&self, ch: usize) -> u64 {
        self.channel_busy_ns.get(ch).copied().unwrap_or(0)
    }

    /// Exact total time worms spent blocked waiting for `ch` (all hops),
    /// in nanoseconds.
    #[must_use]
    pub fn blocked_ns(&self, ch: usize) -> u64 {
        self.channel_blocked_ns.get(ch).copied().unwrap_or(0)
    }

    /// Exact blocked time on `ch` excluding hop-0 episodes — genuine
    /// in-network contention, net of the source-side port serialization
    /// Theorem 3 classifies as benign.
    #[must_use]
    pub fn contention_blocked_ns(&self, ch: usize) -> u64 {
        self.blocked_ns(ch) - self.channel_blocked_hop0_ns.get(ch).copied().unwrap_or(0)
    }

    /// Deepest FIFO queue ever observed on `ch`.
    #[must_use]
    pub fn max_queue_depth(&self, ch: usize) -> u32 {
        self.max_depth.get(ch).copied().unwrap_or(0)
    }

    /// The exact channel-holding intervals, in release order.
    #[must_use]
    pub fn occupancies(&self) -> &[Occupancy] {
        &self.occupancies
    }

    /// The exact blocking episodes, in close order.
    #[must_use]
    pub fn blocked_intervals(&self) -> &[BlockedInterval] {
        &self.blocked
    }

    /// Injection→delivery latency per delivered message.
    #[must_use]
    pub fn latencies(&self) -> &[(usize, SimTime)] {
        &self.latencies
    }

    /// Watchdog deadlock alarms, with full holder/waiter sets.
    #[must_use]
    pub fn alarms(&self) -> &[WatchdogAlarm] {
        &self.alarms
    }

    /// Serializes the recording as Chrome trace JSON (the Chrome/Perfetto
    /// "JSON trace event" format): one track (`tid`) per channel on a
    /// "channels (held)" process for occupancy slices, a parallel
    /// "channels (blocked)" process for blocking slices, and instant
    /// events for faults, timeouts, and watchdog alarms. Timestamps are
    /// microseconds (the format's unit); durations preserve the
    /// simulator's nanosecond resolution as fractions. Loadable in
    /// `ui.perfetto.dev` and `chrome://tracing`.
    #[must_use]
    pub fn to_chrome_trace<R: Router>(&self, map: &ChannelMap<R>) -> String {
        self.to_chrome_trace_with(&|ch| map.label(ch))
    }

    /// [`to_chrome_trace`](EventRecorder::to_chrome_trace) with a custom
    /// channel-label function.
    #[must_use]
    pub fn to_chrome_trace_with(&self, label: &dyn Fn(usize) -> String) -> String {
        let mut out = String::from(
            "{\n  \"displayTimeUnit\": \"ns\",\n  \"otherData\": {\"generator\": \"wormsim\"},\n  \"traceEvents\": [\n",
        );
        let mut first = true;
        let mut emit = |s: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    ");
            out.push_str(&s);
        };

        // Process + thread name metadata.
        emit(
            "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"channels (held)\"}}".into(),
            &mut out,
        );
        emit(
            "{\"ph\": \"M\", \"pid\": 2, \"tid\": 0, \"name\": \"process_name\", \"args\": {\"name\": \"channels (blocked)\"}}".into(),
            &mut out,
        );
        let mut used: Vec<usize> = self
            .occupancies
            .iter()
            .map(|o| o.channel)
            .chain(self.blocked.iter().map(|b| b.channel))
            .collect();
        used.sort_unstable();
        used.dedup();
        for &ch in &used {
            let name = json_escape(&label(ch));
            for pid in [1, 2] {
                emit(
                    format!(
                        "{{\"ph\": \"M\", \"pid\": {pid}, \"tid\": {ch}, \"name\": \"thread_name\", \"args\": {{\"name\": \"{name}\"}}}}"
                    ),
                    &mut out,
                );
            }
        }
        for o in &self.occupancies {
            emit(
                format!(
                    "{{\"ph\": \"X\", \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"name\": \"msg {}\", \"args\": {{\"message\": {}}}}}",
                    o.channel,
                    us(o.from),
                    us_dur(o.from, o.until),
                    o.message,
                    o.message
                ),
                &mut out,
            );
        }
        for b in &self.blocked {
            emit(
                format!(
                    "{{\"ph\": \"X\", \"pid\": 2, \"tid\": {}, \"ts\": {}, \"dur\": {}, \"name\": \"blocked msg {}\", \"args\": {{\"message\": {}, \"hop\": {}}}}}",
                    b.channel,
                    us(b.from),
                    us_dur(b.from, b.until),
                    b.message,
                    b.message,
                    b.hop
                ),
                &mut out,
            );
        }
        // Instant events: faults, timeouts, alarms (from the ring; exact
        // fault sets are small, and the alarms list is authoritative).
        for &(t, e) in &self.events {
            match e {
                ProbeEvent::Fault { msg, cause } => emit(
                    format!(
                        "{{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"ts\": {}, \"s\": \"g\", \"name\": \"fault msg {} ({:?})\"}}",
                        us(t),
                        msg,
                        cause
                    ),
                    &mut out,
                ),
                ProbeEvent::TimedOut { msg } => emit(
                    format!(
                        "{{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"ts\": {}, \"s\": \"g\", \"name\": \"timeout msg {}\"}}",
                        us(t),
                        msg
                    ),
                    &mut out,
                ),
                _ => {}
            }
        }
        for a in &self.alarms {
            emit(
                format!(
                    "{{\"ph\": \"i\", \"pid\": 1, \"tid\": 0, \"ts\": {}, \"s\": \"g\", \"name\": \"watchdog alarm: {} holder(s), {} waiter(s)\"}}",
                    us(a.at),
                    a.holders.len(),
                    a.waiters.len()
                ),
                &mut out,
            );
        }
        out.push_str("\n  ]\n}");
        out
    }
}

/// Nanoseconds → the Chrome trace format's microsecond unit, fraction
/// preserved, formatted for JSON.
fn us(t: SimTime) -> String {
    format_us(t.as_ns())
}

/// Duration in microseconds; Perfetto drops zero-duration slices, so
/// clamp to 1 ns.
fn us_dur(from: SimTime, until: SimTime) -> String {
    format_us(until.saturating_sub(from).as_ns().max(1))
}

fn format_us(ns: u64) -> String {
    let whole = ns / 1_000;
    let frac = ns % 1_000;
    if frac == 0 {
        format!("{whole}")
    } else {
        let mut s = format!("{whole}.{frac:03}");
        while s.ends_with('0') {
            s.pop();
        }
        s
    }
}

/// Escapes a string for inclusion inside a JSON string literal
/// (quotes, backslashes, and control characters). Shared by the Chrome
/// trace and metrics exporters here and by the telemetry exporters in
/// the traffic crate — the build environment is offline, so there is no
/// serde to lean on.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Probe for EventRecorder {
    fn on_eligible(&mut self, t: SimTime, msg: usize) {
        self.push(t, ProbeEvent::Eligible { msg });
    }

    fn on_injected(&mut self, t: SimTime, msg: usize, route_len: usize) {
        self.push(t, ProbeEvent::Injected { msg, route_len });
    }

    fn on_channel_requested(&mut self, t: SimTime, msg: usize, ch: usize, hop: usize) {
        self.push(t, ProbeEvent::ChannelRequested { msg, ch, hop });
    }

    fn on_channel_granted(&mut self, t: SimTime, msg: usize, ch: usize, hop: usize) {
        self.close_wait(msg, t);
        self.push(t, ProbeEvent::ChannelGranted { msg, ch, hop });
    }

    fn on_channel_blocked(&mut self, t: SimTime, msg: usize, ch: usize, hop: usize, depth: usize) {
        grow(&mut self.waiting, msg);
        // A stall-window retry re-blocks on the same channel: the wait is
        // continuous, so keep the original start.
        match self.waiting[msg] {
            Some((wch, _, _)) if wch == ch => {}
            _ => self.waiting[msg] = Some((ch, hop, t)),
        }
        grow(&mut self.max_depth, ch);
        self.max_depth[ch] = self.max_depth[ch].max(depth as u32);
        self.push(
            t,
            ProbeEvent::ChannelBlocked {
                msg,
                ch,
                hop,
                depth,
            },
        );
    }

    fn on_channel_released(&mut self, t: SimTime, msg: usize, ch: usize, held_since: SimTime) {
        grow(&mut self.channel_busy_ns, ch);
        self.channel_busy_ns[ch] += t.saturating_sub(held_since).as_ns();
        self.occupancies.push(Occupancy {
            message: msg,
            channel: ch,
            from: held_since,
            until: t,
        });
        self.push(
            t,
            ProbeEvent::ChannelReleased {
                msg,
                ch,
                held_since,
            },
        );
    }

    fn on_header_advanced(&mut self, t: SimTime, msg: usize, hop: usize) {
        self.push(t, ProbeEvent::HeaderAdvanced { msg, hop });
    }

    fn on_tail_drained(&mut self, t: SimTime, msg: usize) {
        self.push(t, ProbeEvent::TailDrained { msg });
    }

    fn on_delivered(&mut self, t: SimTime, msg: usize, injected: SimTime) {
        self.latencies.push((msg, t.saturating_sub(injected)));
        self.push(t, ProbeEvent::Delivered { msg });
    }

    fn on_fault(&mut self, t: SimTime, msg: usize, cause: FaultCause) {
        self.close_wait(msg, t);
        self.push(t, ProbeEvent::Fault { msg, cause });
    }

    fn on_timeout(&mut self, t: SimTime, msg: usize) {
        self.close_wait(msg, t);
        self.push(t, ProbeEvent::TimedOut { msg });
    }

    fn on_watchdog_alarm(&mut self, t: SimTime, holders: &[usize], waiters: &[usize]) {
        self.push(
            t,
            ProbeEvent::WatchdogAlarm {
                holders: holders.len(),
                waiters: waiters.len(),
            },
        );
        self.alarms.push(WatchdogAlarm {
            at: t,
            holders: holders.to_vec(),
            waiters: waiters.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_buffer_drops_oldest_but_keeps_exact_accounting() {
        let mut r = EventRecorder::with_capacity(4);
        for i in 0..10u64 {
            r.on_channel_granted(SimTime::from_ns(i), 0, 3, 0);
            r.on_channel_released(SimTime::from_ns(i + 1), 0, 3, SimTime::from_ns(i));
        }
        assert_eq!(r.events().count(), 4);
        assert_eq!(r.total_events(), 20);
        assert_eq!(r.dropped(), 16);
        // Exact accounting saw all 10 holds of 1 ns each.
        assert_eq!(r.busy_ns(3), 10);
        assert_eq!(r.occupancies().len(), 10);
    }

    #[test]
    fn blocked_interval_spans_block_to_grant() {
        let mut r = EventRecorder::new();
        r.on_channel_blocked(SimTime::from_ns(5), 7, 2, 1, 3);
        // A stall retry on the same channel keeps the original start.
        r.on_channel_blocked(SimTime::from_ns(8), 7, 2, 1, 0);
        r.on_channel_granted(SimTime::from_ns(12), 7, 2, 1);
        assert_eq!(r.blocked_ns(2), 7);
        assert_eq!(
            r.blocked_intervals(),
            &[BlockedInterval {
                message: 7,
                channel: 2,
                hop: 1,
                from: SimTime::from_ns(5),
                until: SimTime::from_ns(12),
            }]
        );
        assert_eq!(r.max_queue_depth(2), 3);
    }

    #[test]
    fn hop0_blocking_is_excluded_from_contention() {
        let mut r = EventRecorder::new();
        r.on_channel_blocked(SimTime::ZERO, 0, 9, 0, 1);
        r.on_channel_granted(SimTime::from_ns(10), 0, 9, 0);
        r.on_channel_blocked(SimTime::from_ns(20), 1, 9, 2, 1);
        r.on_channel_granted(SimTime::from_ns(25), 1, 9, 2);
        assert_eq!(r.blocked_ns(9), 15);
        assert_eq!(r.contention_blocked_ns(9), 5);
    }

    #[test]
    fn chrome_trace_is_emitted_for_empty_recordings() {
        let r = EventRecorder::new();
        let s = r.to_chrome_trace_with(&|ch| format!("ch{ch}"));
        assert!(s.contains("\"traceEvents\""));
        assert!(s.contains("process_name"));
    }

    #[test]
    fn microsecond_formatting_preserves_ns_fractions() {
        assert_eq!(format_us(1_000), "1");
        assert_eq!(format_us(1_500), "1.5");
        assert_eq!(format_us(1_001), "1.001");
        assert_eq!(format_us(999), "0.999");
        assert_eq!(format_us(0), "0");
    }

    #[test]
    fn tee_fans_out_to_both_sinks() {
        let mut tee = Tee(EventRecorder::new(), EventRecorder::new());
        tee.on_injected(SimTime::from_ns(1), 0, 3);
        tee.on_watchdog_alarm(SimTime::from_ns(2), &[1], &[2, 3]);
        for r in [&tee.0, &tee.1] {
            assert_eq!(r.total_events(), 2);
            assert_eq!(r.alarms().len(), 1);
            assert_eq!(r.alarms()[0].waiters, vec![2, 3]);
        }
    }
}
