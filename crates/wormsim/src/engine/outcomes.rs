//! Run-level outputs: aggregate statistics, per-run results, and the
//! typed error vocabulary.

use crate::engine::worm::MessageResult;
use crate::time::SimTime;
use std::fmt;

/// Aggregate network statistics of a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Time blocked on external channels (contention).
    pub blocked_time: SimTime,
    /// External-channel blocking episodes (contention).
    pub blocks: u64,
    /// Time blocked on virtual channels (one-port serialization).
    pub port_wait_time: SimTime,
    /// Virtual-channel blocking episodes.
    pub port_waits: u64,
    /// Completion time of the last delivery.
    pub makespan: SimTime,
    /// Messages that ended [`Outcome::Failed`](crate::engine::Outcome).
    pub failed: u64,
    /// Messages that ended [`Outcome::TimedOut`](crate::engine::Outcome).
    pub timed_out: u64,
    /// Per-coordinate-dimension total busy (held) time of external
    /// channels, indexed by dimension (`0..topology.dimensions()`).
    pub dim_busy: Vec<SimTime>,
    /// Number of external channels per coordinate dimension (the
    /// denominator of [`dim_utilization`](NetStats::dim_utilization)).
    pub dim_channels: Vec<u32>,
    /// Deepest FIFO wait queue ever observed on any channel (external
    /// or virtual) — an instantaneous congestion measure the aggregate
    /// blocked-time totals smear out.
    pub max_queue_depth: u32,
    /// Per-lane total busy (held) time of external channels, indexed by
    /// lane (`0..router.lanes()`). Length 1 for single-lane routers,
    /// where it duplicates the sum of `dim_busy`.
    pub lane_busy: Vec<SimTime>,
    /// Number of physical links — the per-lane external channel count,
    /// the denominator of [`lane_utilization`](NetStats::lane_utilization).
    pub lane_links: u32,
}

impl NetStats {
    /// Folds another run's statistics into this one: counters and busy
    /// times sum, `makespan` and `max_queue_depth` take the maximum,
    /// and the per-dimension vectors merge elementwise (adopting the
    /// other run's shape if this one is still empty). This is how the
    /// chaos engine aggregates the per-epoch waves of one measurement
    /// window into a single report.
    pub fn absorb(&mut self, other: &NetStats) {
        self.blocked_time += other.blocked_time;
        self.blocks += other.blocks;
        self.port_wait_time += other.port_wait_time;
        self.port_waits += other.port_waits;
        self.makespan = self.makespan.max(other.makespan);
        self.failed += other.failed;
        self.timed_out += other.timed_out;
        if self.dim_busy.len() < other.dim_busy.len() {
            self.dim_busy.resize(other.dim_busy.len(), SimTime::ZERO);
        }
        for (mine, theirs) in self.dim_busy.iter_mut().zip(&other.dim_busy) {
            *mine += *theirs;
        }
        if self.dim_channels.len() < other.dim_channels.len() {
            self.dim_channels.resize(other.dim_channels.len(), 0);
        }
        for (mine, theirs) in self.dim_channels.iter_mut().zip(&other.dim_channels) {
            *mine = (*mine).max(*theirs);
        }
        self.max_queue_depth = self.max_queue_depth.max(other.max_queue_depth);
        if self.lane_busy.len() < other.lane_busy.len() {
            self.lane_busy.resize(other.lane_busy.len(), SimTime::ZERO);
        }
        for (mine, theirs) in self.lane_busy.iter_mut().zip(&other.lane_busy) {
            *mine += *theirs;
        }
        self.lane_links = self.lane_links.max(other.lane_links);
    }

    /// Mean utilization of each lane across every physical link: held
    /// time divided by `makespan · links`, in lane order. All zeros for
    /// a run with zero makespan. The lane-sweep tables read the spread
    /// of this vector as the "how evenly did adaptive selection load
    /// the lanes" signal.
    #[must_use]
    pub fn lane_utilization(&self) -> Vec<f64> {
        if self.makespan == SimTime::ZERO || self.lane_links == 0 {
            return vec![0.0; self.lane_busy.len()];
        }
        let denom = self.makespan.as_ns() as f64 * f64::from(self.lane_links);
        self.lane_busy
            .iter()
            .map(|busy| busy.as_ns() as f64 / denom)
            .collect()
    }

    /// Mean utilization of the external channels of each coordinate
    /// dimension: held time divided by `makespan · channels`, in
    /// dimension order. Empty if the run had zero makespan.
    #[must_use]
    pub fn dim_utilization(&self) -> Vec<f64> {
        if self.makespan == SimTime::ZERO {
            return vec![0.0; self.dim_busy.len()];
        }
        self.dim_busy
            .iter()
            .zip(&self.dim_channels)
            .map(|(busy, &chans)| {
                if chans == 0 {
                    0.0
                } else {
                    busy.as_ns() as f64 / (self.makespan.as_ns() as f64 * f64::from(chans))
                }
            })
            .collect()
    }
}

/// Outcome of [`simulate`](crate::engine::simulate).
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-message results, indexed like the input workload.
    pub messages: Vec<MessageResult>,
    /// Aggregate statistics.
    pub stats: NetStats,
}

impl RunResult {
    /// Number of messages that were delivered.
    #[must_use]
    pub fn delivered_count(&self) -> usize {
        self.messages
            .iter()
            .filter(|m| m.outcome.is_delivered())
            .count()
    }

    /// Delivered fraction of the workload (1.0 for an empty workload).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        if self.messages.is_empty() {
            1.0
        } else {
            self.delivered_count() as f64 / self.messages.len() as f64
        }
    }
}

/// Typed failure modes of a simulation run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// A workload message sends to itself.
    SelfSend {
        /// Index of the offending message.
        index: usize,
    },
    /// A dependency index points outside the workload.
    DependencyOutOfRange {
        /// Index of the offending message.
        index: usize,
        /// The out-of-range dependency value.
        dep: usize,
    },
    /// The workload exceeds the event encoding's message-index
    /// capacity (2^28 messages); a larger workload would silently
    /// corrupt event payloads in release builds.
    WorkloadTooLarge {
        /// Number of messages in the rejected workload.
        messages: usize,
        /// Largest supported workload size.
        max: usize,
    },
    /// The dependency graph contains a cycle (or depends on something
    /// unsatisfiable), so some messages can never become eligible.
    DependencyCycle {
        /// Messages that never became eligible.
        stuck: Vec<usize>,
    },
    /// The network wedged: the event heap drained while worms were still
    /// blocked on channels that will never be released.
    Deadlock {
        /// Simulated time of the last event before the wedge.
        at: SimTime,
        /// Messages holding at least one channel another message waits
        /// on (a stuck channel's phantom holder is not a message and is
        /// not listed).
        holders: Vec<usize>,
        /// Messages waiting in some channel's queue.
        waiters: Vec<usize>,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SelfSend { index } => {
                write!(f, "self-send in workload (message {index})")
            }
            SimError::DependencyOutOfRange { index, dep } => {
                write!(
                    f,
                    "dependency index out of range (message {index} depends on {dep})"
                )
            }
            SimError::WorkloadTooLarge { messages, max } => {
                write!(
                    f,
                    "workload too large for the event encoding ({messages} messages, max {max})"
                )
            }
            SimError::DependencyCycle { stuck } => write!(
                f,
                "workload contains a dependency cycle or unsatisfiable message ({} stuck)",
                stuck.len()
            ),
            SimError::Deadlock {
                at,
                holders,
                waiters,
            } => write!(
                f,
                "deadlock at {at}: {} waiter(s) {:?} blocked behind holder(s) {:?}",
                waiters.len(),
                waiters,
                holders
            ),
        }
    }
}

impl std::error::Error for SimError {
    /// `SimError` is a leaf in every error chain: each variant fully
    /// describes its own failure, so there is never an underlying
    /// source. Layers that wrap a simulation failure (e.g. the traffic
    /// crate's retry exhaustion) chain *to* a `SimError`, not from it.
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dim_utilization_divides_by_channels_and_makespan() {
        let stats = NetStats {
            makespan: SimTime::from_ns(100),
            dim_busy: vec![SimTime::from_ns(100), SimTime::from_ns(400), SimTime::ZERO],
            dim_channels: vec![4, 8, 0],
            ..NetStats::default()
        };
        let u = stats.dim_utilization();
        assert_eq!(u.len(), 3);
        assert!((u[0] - 0.25).abs() < 1e-12);
        assert!((u[1] - 0.5).abs() < 1e-12);
        assert_eq!(u[2], 0.0);
    }

    #[test]
    fn absorb_sums_counters_and_maxes_extrema() {
        let mut a = NetStats {
            blocked_time: SimTime::from_ns(10),
            blocks: 2,
            port_wait_time: SimTime::from_ns(5),
            port_waits: 1,
            makespan: SimTime::from_ns(100),
            failed: 1,
            timed_out: 0,
            dim_busy: vec![SimTime::from_ns(4)],
            dim_channels: vec![2],
            max_queue_depth: 3,
            lane_busy: vec![SimTime::from_ns(4)],
            lane_links: 2,
        };
        let b = NetStats {
            blocked_time: SimTime::from_ns(7),
            blocks: 3,
            port_wait_time: SimTime::from_ns(2),
            port_waits: 4,
            makespan: SimTime::from_ns(60),
            failed: 0,
            timed_out: 2,
            dim_busy: vec![SimTime::from_ns(1), SimTime::from_ns(9)],
            dim_channels: vec![2, 8],
            max_queue_depth: 5,
            lane_busy: vec![SimTime::from_ns(6), SimTime::from_ns(2)],
            lane_links: 4,
        };
        a.absorb(&b);
        assert_eq!(a.blocked_time, SimTime::from_ns(17));
        assert_eq!(a.blocks, 5);
        assert_eq!(a.port_wait_time, SimTime::from_ns(7));
        assert_eq!(a.port_waits, 5);
        assert_eq!(a.makespan, SimTime::from_ns(100));
        assert_eq!(a.failed, 1);
        assert_eq!(a.timed_out, 2);
        assert_eq!(a.dim_busy, vec![SimTime::from_ns(5), SimTime::from_ns(9)]);
        assert_eq!(a.dim_channels, vec![2, 8]);
        assert_eq!(a.max_queue_depth, 5);
        assert_eq!(a.lane_busy, vec![SimTime::from_ns(10), SimTime::from_ns(2)]);
        assert_eq!(a.lane_links, 4);
    }

    #[test]
    fn lane_utilization_divides_by_links_and_makespan() {
        let stats = NetStats {
            makespan: SimTime::from_ns(100),
            lane_busy: vec![SimTime::from_ns(200), SimTime::from_ns(50)],
            lane_links: 4,
            ..NetStats::default()
        };
        let u = stats.lane_utilization();
        assert_eq!(u.len(), 2);
        assert!((u[0] - 0.5).abs() < 1e-12);
        assert!((u[1] - 0.125).abs() < 1e-12);
        // Zero makespan or zero links: all zeros, never a division.
        let empty = NetStats {
            lane_busy: vec![SimTime::from_ns(7)],
            ..NetStats::default()
        };
        assert_eq!(empty.lane_utilization(), vec![0.0]);
    }

    #[test]
    fn sim_error_is_an_error_leaf() {
        let e = SimError::SelfSend { index: 3 };
        let dyn_err: &dyn std::error::Error = &e;
        assert!(dyn_err.source().is_none());
        assert!(dyn_err.to_string().contains("message 3"));
    }

    #[test]
    fn zero_makespan_utilization_is_zero() {
        let stats = NetStats {
            dim_busy: vec![SimTime::from_ns(7)],
            dim_channels: vec![2],
            ..NetStats::default()
        };
        assert_eq!(stats.dim_utilization(), vec![0.0]);
    }
}
